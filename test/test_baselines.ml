(* Tests for the baseline detectors: the classic heartbeat algorithm and the
   registry's uniform driver interface. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

module Scenario = Scenarios.Scenario
module HB = Baselines.Heartbeat
module Registry = Baselines.Registry

let instant ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
  Net.Network.Deliver_after (Sim.Time.of_us 1)

let heartbeat_cluster ?(n = 4) ?(oracle = instant) () =
  let engine = Sim.Engine.create ~seed:4L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle oracle)
      engine ~n
  in
  let cluster =
    HB.create_cluster net ~beta:(Sim.Time.of_ms 10)
      ~initial_timeout:(Sim.Time.of_ms 25)
  in
  HB.start cluster;
  (engine, net, cluster)

let test_heartbeat_elects_min_id () =
  let engine, _, cluster = heartbeat_cluster () in
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check (Alcotest.option int_t) "min id" (Some 0) (HB.agreed_leader cluster);
  check bool_t "epochs advance" true (HB.min_epoch cluster > 100)

let test_heartbeat_suspects_crashed () =
  let engine, net, cluster = heartbeat_cluster () in
  ignore
    (Sim.Engine.schedule_at engine (Sim.Time.of_ms 500) (fun () ->
         Net.Network.crash net 0));
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check bool_t "everyone suspects 0" true
    (List.for_all (fun p -> List.mem 0 (HB.suspected cluster p)) [ 1; 2; 3 ]);
  check (Alcotest.option int_t) "fails over to 1" (Some 1)
    (HB.agreed_leader cluster)

let test_heartbeat_unsuspects_and_adapts () =
  (* A sender that is slow once gets suspected, then unsuspected when its
     heartbeat arrives; the timeout doubles so the same delay no longer
     triggers a suspicion. *)
  let burst = ref true in
  let oracle ~now:_ ~seq:_ ~src ~dst:_ _ =
    if src = 2 && !burst then Net.Network.Deliver_after (Sim.Time.of_ms 60)
    else Net.Network.Deliver_after (Sim.Time.of_us 100)
  in
  let engine, _, cluster = heartbeat_cluster ~oracle () in
  Sim.Engine.run_until engine (Sim.Time.of_ms 40);
  check bool_t "slow sender suspected" true
    (List.mem 2 (HB.suspected cluster 0));
  burst := false;
  Sim.Engine.run_until engine (Sim.Time.of_sec 1);
  check bool_t "unsuspected after delivery" false
    (List.mem 2 (HB.suspected cluster 0))

let test_heartbeat_round_of () =
  check (Alcotest.option int_t) "epoch tag" (Some 5)
    (HB.round_of (HB.Heartbeat { epoch = 5 }))

(* ------------------------------------------------------------ registry *)

let test_registry_names_unique () =
  let names = List.map (fun a -> a.Registry.name) Registry.all in
  check int_t "six algorithms" 6 (List.length names);
  check int_t "unique names" 6 (List.length (List.sort_uniq compare names));
  check bool_t "lookup hit" true (Registry.by_name "fig3" <> None);
  check bool_t "lookup miss" true (Registry.by_name "nope" = None)

let drive algo regime ~seconds =
  let scenario =
    Scenario.create
      (Scenario.default_params ~n:8 ~t:3 ~beta:(Sim.Time.of_ms 10))
      regime ~seed:42L
  in
  let engine = Sim.Engine.create ~seed:7L () in
  let instance = algo.Registry.make engine scenario in
  instance.Registry.start ();
  Sim.Engine.run_until engine (Sim.Time.of_sec seconds);
  instance

let test_all_stabilize_under_full_timely () =
  List.iter
    (fun algo ->
      let instance = drive algo Scenario.Full_timely ~seconds:5 in
      check bool_t
        (algo.Registry.name ^ " agrees under full timeliness")
        true
        (instance.Registry.agreed_leader () <> None))
    Registry.all

let test_heartbeat_flaps_under_chaos () =
  let instance = drive Registry.heartbeat Scenario.Chaos ~seconds:5 in
  (* Under rotating victims the suspected sets churn; there is no guarantee
     of a common leader. We sample: it must disagree at least sometimes.
     (Run a fresh instance and sample over time.) *)
  let scenario =
    Scenario.create
      (Scenario.default_params ~n:8 ~t:3 ~beta:(Sim.Time.of_ms 10))
      Scenario.Chaos ~seed:42L
  in
  let engine = Sim.Engine.create ~seed:7L () in
  let fresh = Registry.heartbeat.Registry.make engine scenario in
  fresh.Registry.start ();
  let anarchy = ref 0 in
  for _ = 1 to 50 do
    Sim.Engine.run_until engine
      (Sim.Time.add (Sim.Engine.now engine) (Sim.Time.of_ms 200));
    if fresh.Registry.agreed_leader () = None then incr anarchy
  done;
  ignore instance;
  check bool_t "anarchy periods exist under chaos" true (!anarchy > 0)

let test_count_only_ignores_time () =
  (* The order-based detector stabilizes under the message-pattern regime
     even though delays grow without bound. *)
  let instance =
    drive Registry.count_only (Scenario.Message_pattern { center = 6 })
      ~seconds:15
  in
  check (Alcotest.option int_t) "count-only elects the winning center"
    (Some 6)
    (instance.Registry.agreed_leader ())

let test_timer_only_fails_under_message_pattern () =
  (* The timeout-based detector cannot exploit winning order: the center's
     ever-growing delays keep it suspected, so the center is not elected. *)
  let instance =
    drive Registry.timer_only (Scenario.Message_pattern { center = 6 })
      ~seconds:15
  in
  check bool_t "timer-only does not settle on the center" true
    (instance.Registry.agreed_leader () <> Some 6)

let test_min_round_advances () =
  List.iter
    (fun algo ->
      let instance = drive algo Scenario.Full_timely ~seconds:2 in
      check bool_t (algo.Registry.name ^ " rounds advance") true
        (instance.Registry.min_round () > 10))
    Registry.all

let () =
  Alcotest.run "baselines"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "elects min id" `Quick test_heartbeat_elects_min_id;
          Alcotest.test_case "suspects crashed" `Quick
            test_heartbeat_suspects_crashed;
          Alcotest.test_case "unsuspects and adapts" `Quick
            test_heartbeat_unsuspects_and_adapts;
          Alcotest.test_case "round_of" `Quick test_heartbeat_round_of;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names_unique;
          Alcotest.test_case "full timely: all stabilize" `Slow
            test_all_stabilize_under_full_timely;
          Alcotest.test_case "chaos: heartbeat flaps" `Quick
            test_heartbeat_flaps_under_chaos;
          Alcotest.test_case "count-only is time-free" `Slow
            test_count_only_ignores_time;
          Alcotest.test_case "timer-only needs time" `Slow
            test_timer_only_fails_under_message_pattern;
          Alcotest.test_case "rounds advance" `Quick test_min_round_advances;
        ] );
    ]
