(* Tests for the parallel run farm: submission-order results, aggregate
   equality between sequential and multi-domain sweeps, and the O(1)
   [Engine.pending] counter under schedule/cancel/step interleavings. *)

let check = Alcotest.check
let int_t = Alcotest.int
let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

(* ------------------------------------------------------------- Pool *)

(* Unequal workloads so completion order differs from submission order on a
   real multi-domain pool; the result array must not care. *)
let spin k =
  let acc = ref 0 in
  for i = 1 to k * 100_000 do
    acc := !acc + (i mod 7)
  done;
  !acc

let test_pool_submission_order () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let thunks =
        Array.init 16 (fun i () ->
            ignore (spin (16 - i));
            i * i)
      in
      let results = Parallel.Pool.run pool thunks in
      Array.iteri
        (fun i r -> check int_t (Printf.sprintf "slot %d" i) (i * i) r)
        results)

let test_pool_map_order () =
  Parallel.Pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 20 (fun i -> i) in
      check
        (Alcotest.list int_t)
        "map keeps order"
        (List.map (fun x -> (2 * x) + 1) xs)
        (Parallel.Pool.map pool (fun x -> (2 * x) + 1) xs))

let test_pool_sequential_degenerate () =
  (* jobs:1 must not spawn domains and must behave like Array.map. *)
  let pool = Parallel.Pool.sequential in
  check int_t "jobs" 1 (Parallel.Pool.jobs pool);
  let order = ref [] in
  let thunks = Array.init 5 (fun i () -> order := i :: !order) in
  ignore (Parallel.Pool.run pool thunks);
  check (Alcotest.list int_t) "evaluated in order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

exception Boom of int

let test_pool_first_exception () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let thunks =
        Array.init 8 (fun i () -> if i mod 2 = 1 then raise (Boom i) else i)
      in
      match Parallel.Pool.run pool thunks with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
          check int_t "first failing index wins" 1 i)

(* ------------------------------------------------------------- Sweep *)

let sweep ?pool () =
  let n = 5 and t = 2 in
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  Harness.Sweep.run ?pool
    ~spec:
      Harness.Run.Spec.(
        default |> with_horizon (sec 15) |> with_crashes [ (0, sec 3) ])
    ~seeds:[ 1L; 2L; 3L; 4L; 5L; 6L ]
    ~env_of:(fun seed ->
      Scenarios.Env.make ~scenario_seed:seed config
        (Scenarios.Scenario.Rotating_star { center = 3 }))
    ()

let check_stats name a b =
  check int_t (name ^ " count") (Dstruct.Stats.count a) (Dstruct.Stats.count b);
  if not (Dstruct.Stats.is_empty a) then begin
    check (Alcotest.float 0.) (name ^ " mean") (Dstruct.Stats.mean a)
      (Dstruct.Stats.mean b);
    check (Alcotest.float 0.) (name ^ " stddev") (Dstruct.Stats.stddev a)
      (Dstruct.Stats.stddev b)
  end

let test_sweep_pool_equals_sequential () =
  let seq = sweep () in
  let par = Parallel.Pool.with_pool ~jobs:4 (fun pool -> sweep ~pool ()) in
  let open Harness.Sweep in
  check int_t "runs" seq.runs par.runs;
  check int_t "stabilized" seq.stabilized par.stabilized;
  check int_t "elected_center" seq.elected_center par.elected_center;
  check int_t "violations" seq.violations par.violations;
  (* Exact float equality: the fold replays Stats.add in seed order, so the
     accumulations must be bit-identical, not merely close. *)
  check_stats "stabilization_ms" seq.stabilization_ms par.stabilization_ms;
  check_stats "messages" seq.messages par.messages;
  check_stats "max_susp_level" seq.max_susp_level par.max_susp_level

(* ----------------------------------------------------- Engine.pending *)

(* Drive the engine through a deterministic schedule/cancel/step interleaving
   while mirroring it in a naive model; [pending] (now an O(1) counter
   maintained at cancel time) must track the model exactly. *)
let test_pending_interleavings () =
  let engine = Sim.Engine.create ~seed:3L () in
  let rng = Dstruct.Rng.create 99L in
  let live = ref [] (* (id, handle), not yet fired or cancelled *)
  and next_id = ref 0
  and scheduled = Hashtbl.create 64 (* id -> fired? *) in
  let model_pending () = List.length !live in
  for round = 1 to 200 do
    (match Dstruct.Rng.int rng 4 with
    | 0 | 1 ->
        (* schedule an event at a pseudo-random future offset *)
        let id = !next_id in
        incr next_id;
        let delay = Sim.Time.of_us (1 + Dstruct.Rng.int rng 50) in
        let h =
          Sim.Engine.schedule_after engine delay (fun () ->
              Hashtbl.replace scheduled id true)
        in
        Hashtbl.replace scheduled id false;
        live := (id, h) :: !live
    | 2 ->
        (* cancel a pseudo-random live event; double-cancel sometimes *)
        (match !live with
        | [] -> ()
        | l ->
            let victim = Dstruct.Rng.int rng (List.length l) in
            let id, h = List.nth l victim in
            Sim.Engine.cancel engine h;
            Sim.Engine.cancel engine h;
            (* idempotent *)
            live := List.filter (fun (i, _) -> i <> id) !live)
    | _ ->
        (* run a slice of virtual time; fired events leave the model *)
        let upto =
          Sim.Time.add (Sim.Engine.now engine)
            (Sim.Time.of_us (Dstruct.Rng.int rng 30))
        in
        Sim.Engine.run_until engine upto;
        live := List.filter (fun (id, _) -> not (Hashtbl.find scheduled id)) !live);
    check int_t
      (Printf.sprintf "pending after op %d" round)
      (model_pending ()) (Sim.Engine.pending engine)
  done;
  (* Cancelling an already-fired handle must not corrupt the counter. *)
  let h = Sim.Engine.schedule_after engine (Sim.Time.of_us 1) ignore in
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (ms 1));
  check int_t "idle" 0 (Sim.Engine.pending engine);
  Sim.Engine.cancel engine h;
  check int_t "cancel after fire is a no-op" 0 (Sim.Engine.pending engine)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "submission order" `Quick
            test_pool_submission_order;
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "sequential degenerate" `Quick
            test_pool_sequential_degenerate;
          Alcotest.test_case "first exception wins" `Quick
            test_pool_first_exception;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "pool aggregate = sequential" `Slow
            test_sweep_pool_equals_sequential;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pending across interleavings" `Quick
            test_pending_interleavings;
        ] );
    ]
