(* Tests for the core leader algorithm (Figures 1-3): message handlers on
   hand-built traces, the window [*] and bounded [**] conditions, closure
   rules, leader selection, and whole-cluster behaviour under a timely
   oracle. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let us = Sim.Time.of_us

let instant ~now:_ ~seq:_ ~src:_ ~dst:_ _ = Net.Network.Deliver_after (us 1)

(* A single node under test (pid 0) in an n-process network; messages are
   injected from the other pids. The node is NOT started: its timer never
   expires, so receiving rounds do not close and the suspicion handlers can
   be exercised in isolation. *)
let solo ?(n = 4) ?(t = 1) ?(closure = Omega.Config.Conjunction) variant =
  let engine = Sim.Engine.create ~seed:1L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle instant)
      engine ~n
  in
  let config = { (Omega.Config.default ~n ~t variant) with closure } in
  let node = Omega.Node.create config net ~me:0 in
  (engine, net, node)

let inject engine net ~src msg =
  Net.Network.send net ~src ~dst:0 msg;
  Sim.Engine.run_until engine (Sim.Time.add (Sim.Engine.now engine) (us 2))

let alive ~rn sl = Omega.Message.Alive { rn; susp_level = Array.of_list sl }
let susp ~rn suspects = Omega.Message.Suspicion { rn; suspects }

(* --------------------------------------------------- gossip (lines 4-5) *)

let test_gossip_merge_pointwise_max () =
  let engine, net, node = solo Omega.Config.Fig1 in
  inject engine net ~src:1 (alive ~rn:1 [ 0; 5; 0; 2 ]);
  check (Alcotest.list int_t) "merged" [ 0; 5; 0; 2 ]
    (Array.to_list (Omega.Node.susp_level node));
  inject engine net ~src:2 (alive ~rn:2 [ 1; 3; 7; 0 ]);
  check (Alcotest.list int_t) "pointwise max" [ 1; 5; 7; 2 ]
    (Array.to_list (Omega.Node.susp_level node))

let test_gossip_never_decreases () =
  let engine, net, node = solo Omega.Config.Fig1 in
  inject engine net ~src:1 (alive ~rn:1 [ 9; 9; 9; 9 ]);
  inject engine net ~src:1 (alive ~rn:2 [ 0; 0; 0; 0 ]);
  check (Alcotest.list int_t) "monotone" [ 9; 9; 9; 9 ]
    (Array.to_list (Omega.Node.susp_level node))

let test_gossip_merged_even_for_late_rounds () =
  (* Line 5 runs before the line-6 freshness check: gossip always merges. *)
  let engine, net, node = solo Omega.Config.Fig1 in
  inject engine net ~src:1 (alive ~rn:50 [ 0; 0; 0; 0 ]);
  inject engine net ~src:2 (alive ~rn:1 [ 0; 0; 0; 4 ]);
  check int_t "late round gossip merged" 4 (Omega.Node.susp_level node).(3)

(* -------------------------------------- suspicion counting (lines 13-18) *)

let test_quorum_increments_level_fig1 () =
  (* n=4, t=1 => alpha = 3 suspicions needed. *)
  let engine, net, node = solo Omega.Config.Fig1 in
  inject engine net ~src:1 (susp ~rn:5 [ 2 ]);
  inject engine net ~src:2 (susp ~rn:5 [ 2 ]);
  check int_t "below quorum" 0 (Omega.Node.susp_level node).(2);
  inject engine net ~src:3 (susp ~rn:5 [ 2 ]);
  check int_t "quorum reached" 1 (Omega.Node.susp_level node).(2);
  check int_t "one local increment" 1 (Omega.Node.local_increments node)

let test_different_rounds_do_not_pool () =
  let engine, net, node = solo Omega.Config.Fig1 in
  inject engine net ~src:1 (susp ~rn:5 [ 2 ]);
  inject engine net ~src:2 (susp ~rn:5 [ 2 ]);
  inject engine net ~src:3 (susp ~rn:6 [ 2 ]);
  check int_t "no pooling across rounds" 0 (Omega.Node.susp_level node).(2)

let test_multi_suspect_message () =
  let engine, net, node = solo Omega.Config.Fig1 in
  List.iter
    (fun src -> inject engine net ~src (susp ~rn:9 [ 1; 3 ]))
    [ 1; 2; 3 ];
  check int_t "suspect 1" 1 (Omega.Node.susp_level node).(1);
  check int_t "suspect 3" 1 (Omega.Node.susp_level node).(3);
  check int_t "not suspect 2" 0 (Omega.Node.susp_level node).(2)

(* ------------------------------------------- window condition (line [*]) *)

let quorum engine net ~rn k =
  List.iter (fun src -> inject engine net ~src (susp ~rn [ k ])) [ 1; 2; 3 ]

let test_window_allows_consecutive_rounds_fig2 () =
  let engine, net, node = solo Omega.Config.Fig2 in
  (* Level 0: window at rn=10 is {10} alone -> increments. *)
  quorum engine net ~rn:10 2;
  check int_t "first increment" 1 (Omega.Node.susp_level node).(2);
  (* Level 1: window at rn=11 is {10,11}; 10 already has a quorum. *)
  quorum engine net ~rn:11 2;
  check int_t "consecutive round increments" 2 (Omega.Node.susp_level node).(2);
  (* Level 2: rn=13 needs {11,12,13}; 12 is missing. *)
  quorum engine net ~rn:13 2;
  check int_t "gap at 12 blocks" 2 (Omega.Node.susp_level node).(2);
  quorum engine net ~rn:12 2;
  check int_t "filling 12 (window {10..12}) increments" 3
    (Omega.Node.susp_level node).(2)

let test_window_blocks_sparse_quorums_fig2 () =
  let engine, net, node = solo Omega.Config.Fig2 in
  quorum engine net ~rn:10 2;
  check int_t "level 1" 1 (Omega.Node.susp_level node).(2);
  (* Sparse quorums (every other round) never satisfy the window again. *)
  List.iter (fun rn -> quorum engine net ~rn 2) [ 12; 14; 16; 18; 20 ];
  check int_t "sparse quorums blocked at level 1" 1
    (Omega.Node.susp_level node).(2)

let test_fig1_has_no_window () =
  let engine, net, node = solo Omega.Config.Fig1 in
  List.iter (fun rn -> quorum engine net ~rn 2) [ 10; 12; 14; 16; 18 ];
  check int_t "fig1 counts every quorum round" 5
    (Omega.Node.susp_level node).(2)

let test_fg_window_widened_by_f () =
  (* [f] extends the window downward by f(rn): even the first increment
     (level 0) needs f+1 consecutive quorum rounds. *)
  let engine, net, node =
    solo (Omega.Config.Fig3_fg { f = (fun _ -> 1); g = (fun _ -> 0) })
  in
  quorum engine net ~rn:10 2;
  check int_t "single round no longer suffices" 0
    (Omega.Node.susp_level node).(2);
  quorum engine net ~rn:11 2;
  check int_t "two consecutive rounds increment" 1
    (Omega.Node.susp_level node).(2);
  (* Raise the other levels so line [**] (also active in Fig3_fg) does not
     block the next increment. *)
  inject engine net ~src:1 (alive ~rn:11 [ 1; 1; 0; 1 ]);
  (* Level 1: window at 13 is [13-1-1, 13] = {11,12,13}; 12 missing. *)
  quorum engine net ~rn:13 2;
  check int_t "gap blocks" 1 (Omega.Node.susp_level node).(2);
  quorum engine net ~rn:12 2;
  check int_t "window {10..12} filled" 2 (Omega.Node.susp_level node).(2)

(* ------------------------------------------ bounded condition (line [**]) *)

let test_bounded_blocks_non_minimal_fig3 () =
  let engine, net, node = solo Omega.Config.Fig3 in
  (* Raise levels of 1,2,3 via gossip; 0 stays minimal. *)
  inject engine net ~src:1 (alive ~rn:1 [ 0; 3; 3; 3 ]);
  quorum engine net ~rn:10 1;
  check int_t "non-minimal blocked" 3 (Omega.Node.susp_level node).(1);
  quorum engine net ~rn:11 0;
  check int_t "minimal increments" 1 (Omega.Node.susp_level node).(0)

let test_fig2_ignores_bounded_condition () =
  let engine, net, node = solo Omega.Config.Fig2 in
  inject engine net ~src:1 (alive ~rn:1 [ 0; 3; 3; 3 ]);
  (* Level 3 needs the window {7..10} full of quorums. *)
  List.iter (fun rn -> quorum engine net ~rn 1) [ 7; 8; 9; 10 ];
  check int_t "fig2 increments non-minimal entries" 4
    (Omega.Node.susp_level node).(1)

let prop_fig3_lattice_invariant =
  (* Lemma 8: under arbitrary lattice-valid gossip and arbitrary quorum
     patterns, a Fig3 node keeps max - min <= 1. *)
  QCheck.Test.make ~name:"fig3 lattice invariant (Lemma 8)" ~count:100
    QCheck.(
      list_of_size
        Gen.(1 -- 40)
        (pair (int_bound 30) (pair (int_bound 3) (int_bound 20))))
    (fun ops ->
      let engine, net, node = solo Omega.Config.Fig3 in
      List.iter
        (fun (base, (k, rn)) ->
          let rn = rn + 1 in
          if base mod 2 = 0 then begin
            (* Gossip a valid lattice array: entries in {base, base+1}. *)
            let sl =
              List.init 4 (fun i -> base + if (i + base) mod 2 = 0 then 1 else 0)
            in
            inject engine net ~src:1 (alive ~rn sl)
          end
          else quorum engine net ~rn k)
        ops;
      Omega.Node.lattice_invariant_holds node)

(* ----------------------------------------------- leader() (lines 19-21) *)

let test_leader_lexicographic () =
  let engine, net, node = solo Omega.Config.Fig1 in
  check int_t "all zero -> min id" 0 (Omega.Node.leader node);
  inject engine net ~src:1 (alive ~rn:1 [ 2; 1; 1; 3 ]);
  check int_t "min level, then min id" 1 (Omega.Node.leader node)

(* ------------------------------------------------------- closure rules *)

(* Cluster-level tests run through the shared algorithm interface
   (DESIGN.md §15) — the same surface the harness and the fault injector
   consume — so they pin the Iface contract, not Cluster internals. *)
let cluster ?(n = 4) ?(t = 1) ?(closure = Omega.Config.Conjunction)
    ?(oracle = instant) variant =
  let engine = Sim.Engine.create ~seed:2L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle oracle)
      engine ~n
  in
  let config = { (Omega.Config.default ~n ~t variant) with closure } in
  let i = Omega.Cluster.iface (Omega.Cluster.create config net) in
  Omega.Iface.start i;
  (engine, net, i)

let test_conjunction_rounds_advance () =
  let engine, _, c = cluster Omega.Config.Fig3 in
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check bool_t "receiving rounds advance" true
    (Omega.Iface.receiving_round c 0 > 10);
  check bool_t "sending rounds advance" true
    (Omega.Iface.sending_round c 0 > 100)

let test_timely_cluster_elects_min_id () =
  let engine, _, c = cluster Omega.Config.Fig3 in
  Sim.Engine.run_until engine (Sim.Time.of_sec 3);
  check (Alcotest.option int_t) "all-timely elects min id" (Some 0)
    (Omega.Iface.agreed_leader c);
  check int_t "no suspicions" 0 (Omega.Iface.max_susp_level_seen c 0)

let test_crashed_process_level_grows () =
  (* Lemma 1 / Lemma 3: a crashed process's suspicion level keeps growing at
     every correct process (Fig2: growth is unbounded). *)
  let engine, _, c = cluster Omega.Config.Fig2 in
  Omega.Iface.crash_at c 3 (Sim.Time.of_ms 500);
  Sim.Engine.run_until engine (Sim.Time.of_sec 3);
  let level_at p = Omega.Iface.susp_level_get c p 3 in
  check bool_t "crashed suspected" true (level_at 0 > 5);
  let mid = level_at 0 in
  Sim.Engine.run_until engine (Sim.Time.of_sec 6);
  check bool_t "keeps growing" true (level_at 0 > mid);
  check (Alcotest.option int_t) "leader avoids the crashed process" (Some 0)
    (Omega.Iface.agreed_leader c)

let test_fig3_crashed_level_bounded () =
  (* Theorem 4: with Fig3 even a crashed process's level stops at B+1. *)
  let engine, _, c = cluster Omega.Config.Fig3 in
  Omega.Iface.crash_at c 3 (Sim.Time.of_ms 500);
  Sim.Engine.run_until engine (Sim.Time.of_sec 3);
  let level_at_3s = Omega.Iface.susp_level_get c 0 3 in
  Sim.Engine.run_until engine (Sim.Time.of_sec 10);
  let level_at_10s = Omega.Iface.susp_level_get c 0 3 in
  check int_t "bounded (stopped growing)" level_at_3s level_at_10s;
  check bool_t "small" true (level_at_10s <= 2)

let test_count_only_advances_without_timer () =
  let engine, _, c =
    cluster ~closure:Omega.Config.Count_only Omega.Config.Fig1
  in
  Sim.Engine.run_until engine (Sim.Time.of_sec 1);
  check bool_t "count-only rounds advance" true
    (Omega.Iface.receiving_round c 0 > 10)

let test_timer_only_advances_without_messages () =
  (* With absurdly slow links, timer-only still closes rounds. *)
  let slow ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
    Net.Network.Deliver_after (Sim.Time.of_sec 3600)
  in
  let engine, _, c =
    cluster ~oracle:slow ~closure:Omega.Config.Timer_only Omega.Config.Fig1
  in
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check bool_t "timer-only rounds advance" true
    (Omega.Iface.receiving_round c 0 > 10)

let test_conjunction_blocks_without_messages () =
  (* The paper's closure waits for n-t ALIVEs: with dead links the round
     never closes. *)
  let slow ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
    Net.Network.Deliver_after (Sim.Time.of_sec 3600)
  in
  let engine, _, c = cluster ~oracle:slow Omega.Config.Fig1 in
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check int_t "round stuck at 1" 1 (Omega.Iface.receiving_round c 0)

let test_fig3_fg_inflates_timeout () =
  let g _rn = Sim.Time.of_ms 50 in
  let engine, _, c = cluster (Omega.Config.Fig3_fg { f = (fun _ -> 0); g }) in
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check bool_t "timeout includes g" true
    Sim.Time.(Omega.Iface.max_timeout_armed c 0 >= Sim.Time.of_ms 50)

(* ------------------------------------------------------------- plumbing *)

let test_wire_size () =
  check int_t "alive" 21 (Omega.Message.wire_size (alive ~rn:1 [ 0; 0; 0; 0 ]));
  check int_t "suspicion" 17 (Omega.Message.wire_size (susp ~rn:1 [ 1; 2 ]))

let test_message_round () =
  check int_t "alive round" 7 (Omega.Message.round (alive ~rn:7 [ 0 ]));
  check int_t "suspicion round" 9 (Omega.Message.round (susp ~rn:9 []));
  check bool_t "is_alive" true (Omega.Message.is_alive (alive ~rn:1 [ 0 ]));
  check bool_t "not is_alive" false (Omega.Message.is_alive (susp ~rn:1 []))

let test_config_validate () =
  let bad f =
    try
      Omega.Config.validate
        (f (Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig1));
      false
    with Invalid_argument _ -> true
  in
  check bool_t "n too small" true (bad (fun c -> { c with Omega.Config.n = 1 }));
  check bool_t "alpha zero" true (bad (fun c -> { c with Omega.Config.alpha = 0 }));
  check bool_t "alpha > n" true (bad (fun c -> { c with Omega.Config.alpha = 9 }));
  check bool_t "jitter >= 1" true
    (bad (fun c -> { c with Omega.Config.send_jitter = 1.0 }));
  check bool_t "default valid" false (bad Fun.id)

let test_variant_flags () =
  check bool_t "fig1 no window" false
    (Omega.Config.has_window_condition Omega.Config.Fig1);
  check bool_t "fig2 window" true
    (Omega.Config.has_window_condition Omega.Config.Fig2);
  check bool_t "fig2 not bounded" false
    (Omega.Config.has_bounded_condition Omega.Config.Fig2);
  check bool_t "fig3 bounded" true
    (Omega.Config.has_bounded_condition Omega.Config.Fig3);
  check Alcotest.string "names" "fig3_fg"
    (Omega.Config.variant_name
       (Omega.Config.Fig3_fg { f = (fun _ -> 0); g = (fun _ -> 0) }))

let test_cluster_agreed_leader_semantics () =
  let engine, net, c = cluster Omega.Config.Fig3 in
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check (Alcotest.option int_t) "agreed on 0" (Some 0)
    (Omega.Iface.agreed_leader c);
  (* Crash the leader: agreement on a crashed process does not count. *)
  Net.Network.crash net 0;
  check (Alcotest.option int_t) "crashed leader is no agreement" None
    (Omega.Iface.agreed_leader c);
  check (Alcotest.list (Alcotest.pair int_t int_t)) "leaders excludes crashed"
    [ (1, 0); (2, 0); (3, 0) ]
    (Omega.Iface.leaders c)

let test_cluster_size_mismatch_rejected () =
  let engine = Sim.Engine.create ~seed:1L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle instant)
      engine ~n:4
  in
  let raised =
    try
      ignore
        (Omega.Node.create (Omega.Config.default ~n:5 ~t:2 Omega.Config.Fig1)
           net ~me:0);
      false
    with Invalid_argument _ -> true
  in
  check bool_t "n mismatch rejected" true raised

let test_round_state_pruned () =
  let engine, _, c = cluster Omega.Config.Fig3 in
  Sim.Engine.run_until engine (Sim.Time.of_sec 5);
  (* Live round-indexed state = prune margin + the lag between sending and
     receiving rounds. In 5 sim-seconds ~500 rounds are sent; the live set
     must stay well below that (the paper's own per-round tables are
     unbounded; pruning keeps ours proportional to margin + lag). *)
  check bool_t "state pruned" true (Omega.Iface.round_state_cardinal c 0 < 450)

let test_round_memory_bounded_long_run () =
  (* The full-prefix collapse (DESIGN.md §16): under the default config the
     sending frontier outruns the receiving round without bound, so the
     receive buffer's LOGICAL window grows linearly with simulated time —
     but in a timely crash-free run every buffered round is received from
     all n and its bitset is reclaimed. 60 sim-s is long enough that the
     frontier gap reaches the thousands; physically retained entries must
     stay two orders of magnitude below it, flat in elapsed time. *)
  let engine = Sim.Engine.create ~seed:2L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle instant)
      engine ~n:4
  in
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  let cl = Omega.Cluster.create config net in
  Omega.Iface.start (Omega.Cluster.iface cl);
  (* Peak physically-retained entries over the first and second halves of
     the run: without the collapse the peak tracks the frontier gap and
     the second half's roughly doubles the first's; with it both sit at
     the same jitter-and-suspicion-window plateau. *)
  let peak lo hi =
    let m = ref 0 in
    for s = lo to hi do
      Sim.Engine.run_until engine (Sim.Time.of_sec s);
      for p = 0 to 3 do
        let r = Omega.Node.retained_round_entries (Omega.Cluster.node cl p) in
        if r > !m then m := r
      done
    done;
    !m
  in
  let first_half = peak 1 30 in
  let second_half = peak 31 60 in
  let logical = Omega.Node.round_state_cardinal (Omega.Cluster.node cl 0) in
  check bool_t "frontier gap grew into the thousands (test has teeth)" true
    (logical > 1000);
  check bool_t "retained entries flat across run halves" true
    (second_half <= first_half + 16);
  check bool_t "retained entries two orders below the logical window" true
    (second_half * 10 < logical)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "omega"
    [
      ( "gossip",
        [
          Alcotest.test_case "pointwise max" `Quick
            test_gossip_merge_pointwise_max;
          Alcotest.test_case "never decreases" `Quick test_gossip_never_decreases;
          Alcotest.test_case "late rounds still gossip" `Quick
            test_gossip_merged_even_for_late_rounds;
        ] );
      ( "suspicions",
        [
          Alcotest.test_case "quorum increments (fig1)" `Quick
            test_quorum_increments_level_fig1;
          Alcotest.test_case "rounds do not pool" `Quick
            test_different_rounds_do_not_pool;
          Alcotest.test_case "multi-suspect message" `Quick
            test_multi_suspect_message;
        ] );
      ( "window-condition",
        [
          Alcotest.test_case "consecutive rounds pass" `Quick
            test_window_allows_consecutive_rounds_fig2;
          Alcotest.test_case "sparse quorums blocked" `Quick
            test_window_blocks_sparse_quorums_fig2;
          Alcotest.test_case "fig1 unaffected" `Quick test_fig1_has_no_window;
          Alcotest.test_case "f widens the window" `Quick
            test_fg_window_widened_by_f;
        ] );
      ( "bounded-condition",
        [
          Alcotest.test_case "non-minimal blocked" `Quick
            test_bounded_blocks_non_minimal_fig3;
          Alcotest.test_case "fig2 unaffected" `Quick
            test_fig2_ignores_bounded_condition;
          qtest prop_fig3_lattice_invariant;
        ] );
      ( "leader",
        [ Alcotest.test_case "lexicographic" `Quick test_leader_lexicographic ]
      );
      ( "closure",
        [
          Alcotest.test_case "rounds advance" `Quick
            test_conjunction_rounds_advance;
          Alcotest.test_case "timely elects min id" `Quick
            test_timely_cluster_elects_min_id;
          Alcotest.test_case "crashed level grows (fig2)" `Quick
            test_crashed_process_level_grows;
          Alcotest.test_case "crashed level bounded (fig3)" `Quick
            test_fig3_crashed_level_bounded;
          Alcotest.test_case "count-only" `Quick
            test_count_only_advances_without_timer;
          Alcotest.test_case "timer-only" `Quick
            test_timer_only_advances_without_messages;
          Alcotest.test_case "conjunction blocks" `Quick
            test_conjunction_blocks_without_messages;
          Alcotest.test_case "fig3_fg timeout" `Quick
            test_fig3_fg_inflates_timeout;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "wire size" `Quick test_wire_size;
          Alcotest.test_case "message round" `Quick test_message_round;
          Alcotest.test_case "config validate" `Quick test_config_validate;
          Alcotest.test_case "variant flags" `Quick test_variant_flags;
          Alcotest.test_case "state pruned" `Quick test_round_state_pruned;
          Alcotest.test_case "60s memory flat" `Quick
            test_round_memory_bounded_long_run;
          Alcotest.test_case "cluster agreed-leader semantics" `Quick
            test_cluster_agreed_leader_semantics;
          Alcotest.test_case "size mismatch" `Quick
            test_cluster_size_mismatch_rejected;
        ] );
    ]
