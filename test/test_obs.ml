(* Tests for the observability layer: sinks, the ring buffer, the metrics
   aggregator, and — most importantly — the run digest as determinism
   oracle: same seed must give the same digest whatever the pool size. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let str_t = Alcotest.string
let sec = Sim.Time.of_sec
let us = Sim.Time.of_us

(* ------------------------------------------------------------ sinks *)

let test_null_sink () =
  check bool_t "is_null" true (Obs.Sink.is_null Obs.Sink.null);
  check bool_t "wants nothing" false
    (Obs.Sink.wants Obs.Sink.null Obs.Event.all);
  (* Emitting into the null sink is a no-op, not an error. *)
  Obs.Sink.emit Obs.Sink.null (Obs.Event.Fire { now = 0 });
  check bool_t "engine default is null" true
    (Obs.Sink.is_null (Sim.Engine.sink (Sim.Engine.create ~seed:1L ())))

let test_sink_masks () =
  let hits = ref 0 in
  let s = Obs.Sink.make ~mask:Obs.Event.c_net (fun _ -> incr hits) in
  check bool_t "wants net" true (Obs.Sink.wants s Obs.Event.c_net);
  check bool_t "not engine" false (Obs.Sink.wants s Obs.Event.c_engine);
  (* tee dispatches by event class: only matching sinks see the event. *)
  let engine_hits = ref 0 in
  let e = Obs.Sink.make ~mask:Obs.Event.c_engine (fun _ -> incr engine_hits) in
  let both = Obs.Sink.tee [ s; e ] in
  check bool_t "tee wants union" true
    (Obs.Sink.wants both Obs.Event.c_net
    && Obs.Sink.wants both Obs.Event.c_engine);
  Obs.Sink.emit both
    (Obs.Event.Send
       { now = 0; seq = 0; src = 0; dst = 1; kind = "x"; round = -1; bytes = 1 });
  Obs.Sink.emit both (Obs.Event.Fire { now = 0 });
  check int_t "net sink saw net event only" 1 !hits;
  check int_t "engine sink saw engine event only" 1 !engine_hits;
  check bool_t "tee of nulls collapses" true
    (Obs.Sink.is_null (Obs.Sink.tee [ Obs.Sink.null; Obs.Sink.null ]))

let test_ring_wraparound () =
  let ring = Obs.Ring.create ~capacity:4 () in
  let s = Obs.Ring.sink ring in
  for i = 1 to 10 do
    Obs.Sink.emit s (Obs.Event.Fire { now = i })
  done;
  check int_t "length capped" 4 (Obs.Ring.length ring);
  check int_t "total counts overwritten" 10 (Obs.Ring.total ring);
  check (Alcotest.list int_t) "last 4, oldest first" [ 7; 8; 9; 10 ]
    (List.map
       (function Obs.Event.Fire { now } -> now | _ -> -1)
       (Obs.Ring.contents ring));
  Obs.Ring.clear ring;
  check int_t "cleared" 0 (Obs.Ring.length ring)

(* ---------------------------------------------------------- metrics *)

type msg = Ping of int

let test_metrics_counts () =
  (* Hand-counted network run: 5 pings sent, 1 dropped (dst 2), so 4
     delivered, each with a 10us transfer delay. *)
  let engine = Sim.Engine.create ~seed:1L () in
  let oracle ~now:_ ~seq:_ ~src:_ ~dst _ =
    if dst = 2 then Net.Network.Drop else Net.Network.Deliver_after (us 10)
  in
  let classify (Ping _) = { Obs.Event.kind = "ping"; round = -1; bytes = 8 } in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_classify classify |> with_oracle oracle)
      engine ~n:3
  in
  let m = Obs.Metrics.create () in
  Sim.Engine.set_sink engine (Obs.Metrics.sink m);
  Net.Network.set_handler net 1 (fun ~src:_ _ -> ());
  Net.Network.set_handler net 2 (fun ~src:_ _ -> ());
  for i = 1 to 4 do
    Net.Network.send net ~src:0 ~dst:1 (Ping i)
  done;
  Net.Network.send net ~src:0 ~dst:2 (Ping 5);
  Sim.Engine.run_until engine (us 100);
  check (Alcotest.list str_t) "kinds" [ "ping" ] (Obs.Metrics.kinds m);
  check int_t "sent" 5 (Obs.Metrics.sent m ~kind:"ping");
  check int_t "sent bytes" 40 (Obs.Metrics.sent_bytes m ~kind:"ping");
  check int_t "delivered" 4 (Obs.Metrics.delivered m ~kind:"ping");
  check int_t "dropped" 1 (Obs.Metrics.dropped m ~kind:"ping");
  check int_t "total sent" 5 (Obs.Metrics.total_sent m);
  let delays = Obs.Metrics.delivery_delay_us m in
  check int_t "delay samples" 4 (Dstruct.Stats.count delays);
  check bool_t "delay mean 10us" true (Dstruct.Stats.mean delays = 10.)

(* ----------------------------------------------------------- digest *)

let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3

let env =
  Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })

let digest_spec =
  Harness.Run.Spec.(default |> with_horizon (sec 2) |> with_digest true)

let digest_of ~seed =
  let result = Harness.Run.run ~spec:digest_spec ~env ~seed () in
  Option.get result.Harness.Run.digest

let test_digest_deterministic () =
  check bool_t "same seed, same digest" true
    (Int64.equal (digest_of ~seed:7L) (digest_of ~seed:7L))

let test_digest_discriminates () =
  check bool_t "different seed, different digest" false
    (Int64.equal (digest_of ~seed:7L) (digest_of ~seed:8L))

let test_digest_jobs_invariant () =
  (* The determinism oracle behind the CI gate: fanning the same seeds over
     1 or 2 domains must produce identical digest lists. *)
  let seeds = [ 3L; 5L; 7L; 11L ] in
  let sweep pool =
    (Harness.Sweep.run ~pool ~spec:digest_spec ~seeds ~env_of:(fun _ -> env) ())
      .Harness.Sweep.digests
  in
  let sequential = sweep Parallel.Pool.sequential in
  let parallel = Parallel.Pool.with_pool ~jobs:2 sweep in
  check int_t "one digest per seed" 4 (List.length sequential);
  check bool_t "jobs=1 and jobs=2 agree" true
    (List.for_all2 Int64.equal sequential parallel);
  check bool_t "seeds discriminated" true
    (List.length (List.sort_uniq Int64.compare sequential) = 4)

let test_digest_pinned () =
  (* Regression pin: this exact configuration and seed produced this digest
     when the event stream was frozen. A change here means the simulation's
     event-by-event behavior changed — deliberate changes must update the
     pin (and EXPERIMENTS.md if tables moved). *)
  check str_t "pinned digest for seed 7" "d04e0b6bb1a89956"
    (Obs.Digest.to_hex (digest_of ~seed:7L))

let test_digest_scalar_matches_record () =
  (* One run, two digests under the same tee: the default [~digest:true]
     one is scalar-capable (Send/Deliver/Drop fold field-by-field, no event
     record built for it), the extra [?sink] one folds through [Digest.add]
     and therefore receives constructed events. The fast lane is only
     correct if both land on the pinned value. *)
  let record = Obs.Digest.create () in
  let result =
    Harness.Run.run
      ~spec:
        Harness.Run.Spec.(
          digest_spec
          |> with_sink (Obs.Sink.make ~mask:Obs.Event.all (Obs.Digest.add record)))
      ~env ~seed:7L ()
  in
  check str_t "scalar fast lane matches pin" "d04e0b6bb1a89956"
    (Obs.Digest.to_hex (Option.get result.Harness.Run.digest));
  check str_t "record path matches pin" "d04e0b6bb1a89956"
    (Obs.Digest.to_hex (Obs.Digest.value record));
  check bool_t "both folded the same number of events" true
    (Obs.Digest.events record > 0)

let test_metrics_on_run () =
  (* Metrics ride a full harness run without perturbing it: the same run
     with and without metrics yields the same digest, and the aggregator's
     totals match the network's own counters. *)
  let with_metrics =
    Harness.Run.run
      ~spec:Harness.Run.Spec.(digest_spec |> with_metrics true)
      ~env ~seed:7L ()
  in
  let m = Option.get with_metrics.Harness.Run.metrics in
  check bool_t "observation does not perturb" true
    (Int64.equal
       (Option.get with_metrics.Harness.Run.digest)
       (digest_of ~seed:7L));
  check int_t "metrics sent = net counter"
    with_metrics.Harness.Run.messages_sent
    (Obs.Metrics.total_sent m);
  check int_t "metrics delivered = net counter"
    with_metrics.Harness.Run.messages_delivered
    (Obs.Metrics.total_delivered m);
  check bool_t "rounds closed" true (Obs.Metrics.rounds_closed m > 0);
  check bool_t "timers fired" true (Obs.Metrics.timer_fires m > 0)

let () =
  Alcotest.run "obs"
    [
      ( "sink",
        [
          Alcotest.test_case "null" `Quick test_null_sink;
          Alcotest.test_case "masks and tee" `Quick test_sink_masks;
        ] );
      ("ring", [ Alcotest.test_case "wraparound" `Quick test_ring_wraparound ]);
      ( "metrics",
        [
          Alcotest.test_case "hand-counted net run" `Quick test_metrics_counts;
          Alcotest.test_case "full harness run" `Slow test_metrics_on_run;
        ] );
      ( "digest",
        [
          Alcotest.test_case "deterministic" `Slow test_digest_deterministic;
          Alcotest.test_case "discriminates seeds" `Slow
            test_digest_discriminates;
          Alcotest.test_case "pool-size invariant" `Slow
            test_digest_jobs_invariant;
          Alcotest.test_case "pinned regression" `Slow test_digest_pinned;
          Alcotest.test_case "scalar lane = record path" `Slow
            test_digest_scalar_matches_record;
        ] );
    ]
