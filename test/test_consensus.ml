(* Tests for the Omega-based consensus: unit behaviour of the ballot
   handlers, safety under adversarial oracles and delays (indulgence),
   liveness under a stable leader, and the atomic-broadcast layer. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let us = Sim.Time.of_us
let ms = Sim.Time.of_ms

let instant ~now:_ ~seq:_ ~src:_ ~dst:_ _ = Net.Network.Deliver_after (us 1)

(* A cluster with a FIXED (possibly bad) leader oracle per process. *)
let cluster ?(n = 5) ?(t = 2) ?(oracle = fun _p () -> 0)
    ?(net_oracle = instant) ?(seed = 9L) () =
  let engine = Sim.Engine.create ~seed () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle net_oracle)
      engine ~n
  in
  let c =
    Consensus.Single.create net ~oracle ~retry_every:(ms 30) ~crash_bound:t
  in
  Consensus.Single.start c;
  (engine, net, c)

(* ------------------------------------------------------------ liveness *)

let test_decides_with_stable_leader () =
  let engine, _, c = cluster () in
  for p = 0 to 4 do
    Consensus.Single.propose c p (10 + p)
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check (Alcotest.option int_t) "uniform decision" (Some 10)
    (Consensus.Single.uniform_decision c);
  check bool_t "decision time recorded" true
    (Consensus.Single.last_decision_time c <> None)

let test_decided_value_is_a_proposal () =
  let engine, _, c = cluster ~oracle:(fun _ () -> 3) () in
  for p = 0 to 4 do
    Consensus.Single.propose c p (100 + p)
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  match Consensus.Single.uniform_decision c with
  | Some v -> check bool_t "validity" true (v >= 100 && v <= 104)
  | None -> Alcotest.fail "no decision with a stable leader"

let test_leader_crash_failover () =
  (* The oracle switches from 0 to 1 at 500ms; 0 crashes then. *)
  let engine = Sim.Engine.create ~seed:9L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle instant)
      engine ~n:5
  in
  let current_leader = ref 0 in
  let c =
    Consensus.Single.create net
      ~oracle:(fun _p () -> !current_leader)
      ~retry_every:(ms 30) ~crash_bound:2
  in
  Consensus.Single.start c;
  (* Delay proposals so nothing decides before the crash. *)
  ignore
    (Sim.Engine.schedule_at engine (ms 600) (fun () ->
         for p = 0 to 4 do
           Consensus.Single.propose c p (20 + p)
         done));
  ignore
    (Sim.Engine.schedule_at engine (ms 500) (fun () ->
         Net.Network.crash net 0;
         current_leader := 1));
  Sim.Engine.run_until engine (Sim.Time.of_sec 3);
  check (Alcotest.option int_t) "decides after failover" (Some 21)
    (Consensus.Single.uniform_decision c)

let test_no_decision_without_proposals () =
  let engine, _, c = cluster () in
  Sim.Engine.run_until engine (Sim.Time.of_sec 1);
  check (Alcotest.option int_t) "nothing to decide" None
    (Consensus.Single.uniform_decision c)

let test_single_proposer_suffices () =
  let engine, _, c = cluster () in
  Consensus.Single.propose c 0 77;
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check (Alcotest.option int_t) "lone proposal decided" (Some 77)
    (Consensus.Single.uniform_decision c)

(* -------------------------------------------------------------- safety *)

(* Indulgence: whatever the oracle says (here: everyone believes THEY are
   the leader, the worst dueling case), at most one value is ever decided. *)
let test_safety_under_dueling_leaders () =
  let engine, net, c = cluster ~oracle:(fun p () -> p) () in
  for p = 0 to 4 do
    Consensus.Single.propose c p (50 + p)
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 5);
  let decided =
    List.filter_map (fun (_, d) -> d) (Consensus.Single.decisions c)
  in
  check bool_t "all decided values equal" true
    (match decided with
    | [] -> true
    | v :: rest -> List.for_all (( = ) v) rest);
  ignore net

let prop_consensus_safety =
  (* Random delays, random oracle outputs, a random minority crash set:
     agreement and validity always hold among decided processes. *)
  QCheck.Test.make ~name:"consensus agreement+validity under chaos" ~count:60
    QCheck.(triple small_int small_int (int_bound 4))
    (fun (seed, oracle_seed, crashed) ->
      let n = 5 and t = 2 in
      let engine = Sim.Engine.create ~seed:(Int64.of_int (seed + 1)) () in
      let delay_rng = Dstruct.Rng.create (Int64.of_int (seed + 100)) in
      let net_oracle ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
        Net.Network.Deliver_after (us (Dstruct.Rng.int delay_rng 50_000))
      in
      let net =
        Net.Network.of_spec
          Net.Spec.(default |> with_oracle net_oracle)
          engine ~n
      in
      let oracle_rng = Dstruct.Rng.create (Int64.of_int (oracle_seed + 1)) in
      let c =
        Consensus.Single.create net
          ~oracle:(fun _p () -> Dstruct.Rng.int oracle_rng n)
          ~retry_every:(ms 20) ~crash_bound:t
      in
      Consensus.Single.start c;
      for p = 0 to n - 1 do
        Consensus.Single.propose c p (1000 + p)
      done;
      (* Crash at most t processes at random times. *)
      let crash_rng = Dstruct.Rng.create (Int64.of_int (crashed + 7)) in
      let victims = Dstruct.Rng.sample crash_rng (min crashed t) [ 0; 1; 2; 3; 4 ] in
      List.iter
        (fun v ->
          ignore
            (Sim.Engine.schedule_at engine
               (us (Dstruct.Rng.int crash_rng 1_000_000))
               (fun () -> Net.Network.crash net v)))
        victims;
      Sim.Engine.run_until engine (Sim.Time.of_sec 3);
      let decided =
        List.filter_map (fun (_, d) -> d) (Consensus.Single.decisions c)
      in
      let agreement =
        match decided with
        | [] -> true
        | v :: rest -> List.for_all (( = ) v) rest
      in
      let validity = List.for_all (fun v -> v >= 1000 && v < 1000 + n) decided in
      agreement && validity)

let test_quorum_requires_majority () =
  let raised =
    try
      let engine = Sim.Engine.create ~seed:1L () in
      let net =
        Net.Network.of_spec
          Net.Spec.(default |> with_oracle instant)
          engine ~n:4
      in
      ignore
        (Consensus.Single.create net
           ~oracle:(fun _ () -> 0)
           ~retry_every:(ms 30) ~crash_bound:2);
      false
    with Invalid_argument _ -> true
  in
  check bool_t "t >= n/2 rejected" true raised

(* ------------------------------------------------------ atomic broadcast *)

let broadcast_cluster ?(n = 5) ?(t = 2) ?(leader = fun () -> 0) () =
  let engine = Sim.Engine.create ~seed:13L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle instant)
      engine ~n
  in
  let nodes =
    Array.init n (fun me ->
        Consensus.Broadcast.create net ~me ~oracle:leader
          ~retry_every:(ms 25) ~crash_bound:t ~equal:Int.equal)
  in
  Array.iter Consensus.Broadcast.start nodes;
  (engine, net, nodes)

let test_broadcast_total_order () =
  let engine, net, nodes = broadcast_cluster () in
  (* Commands submitted at different replicas, interleaved in time. *)
  List.iteri
    (fun i cmd ->
      ignore
        (Sim.Engine.schedule_at engine
           (ms (30 * i))
           (fun () -> Consensus.Broadcast.submit nodes.(cmd mod 5) cmd)))
    [ 11; 22; 33; 44; 55; 66; 77; 88 ];
  Sim.Engine.run_until engine (Sim.Time.of_sec 5);
  let sequences =
    List.map (fun p -> Consensus.Broadcast.delivered nodes.(p))
      (Net.Network.correct net)
  in
  let reference = List.hd sequences in
  check int_t "all commands delivered" 8 (List.length reference);
  check bool_t "identical sequences" true
    (List.for_all (( = ) reference) sequences);
  check bool_t "no duplicates" true
    (List.length (List.sort_uniq compare reference) = 8)

let test_broadcast_survives_leader_crash () =
  let engine = Sim.Engine.create ~seed:13L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle instant)
      engine ~n:5
  in
  let current = ref 0 in
  let nodes =
    Array.init 5 (fun me ->
        Consensus.Broadcast.create net ~me
          ~oracle:(fun () -> !current)
          ~retry_every:(ms 25) ~crash_bound:2 ~equal:Int.equal)
  in
  Array.iter Consensus.Broadcast.start nodes;
  List.iteri
    (fun i cmd ->
      ignore
        (Sim.Engine.schedule_at engine
           (ms (100 * i))
           (fun () -> Consensus.Broadcast.submit nodes.(1 + (i mod 3)) cmd)))
    [ 5; 6; 7; 8; 9; 10 ];
  ignore
    (Sim.Engine.schedule_at engine (ms 250) (fun () ->
         Net.Network.crash net 0;
         current := 2));
  Sim.Engine.run_until engine (Sim.Time.of_sec 6);
  let sequences =
    List.map (fun p -> Consensus.Broadcast.delivered nodes.(p))
      (Net.Network.correct net)
  in
  let reference = List.hd sequences in
  check int_t "all six delivered despite crash" 6 (List.length reference);
  check bool_t "identical sequences" true
    (List.for_all (( = ) reference) sequences)

let test_broadcast_dedups_resubmission () =
  let engine, net, nodes = broadcast_cluster () in
  Consensus.Broadcast.submit nodes.(1) 42;
  Consensus.Broadcast.submit nodes.(1) 42;
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  ignore net;
  check (Alcotest.list int_t) "delivered once" [ 42 ]
    (Consensus.Broadcast.delivered nodes.(0));
  check bool_t "instances decided" true
    (Consensus.Broadcast.instances_decided nodes.(0) >= 1)

(* ----------------------------------- acceptor state machine (mocked) *)

(* A mock transport recording outgoing messages lets us drive the ballot
   handlers directly and assert exact replies. *)
let mock_node ?(n = 5) ?(me = 0) () =
  let engine = Sim.Engine.create ~seed:1L () in
  let sent = ref [] in
  let transport =
    {
      Consensus.Node.engine;
      n;
      send = (fun ~dst m -> sent := (dst, m) :: !sent);
      halted = (fun () -> false);
    }
  in
  let node =
    Consensus.Node.create transport ~me
      ~leader_oracle:(fun () -> me)
      ~retry_every:(ms 50) ~crash_bound:2
  in
  (node, sent)

let test_prepare_promise_then_nack () =
  let node, sent = mock_node () in
  Consensus.Node.handle node ~src:3 (Consensus.Message.Prepare { ballot = 8 });
  (match !sent with
  | [ (3, Consensus.Message.Promise { ballot = 8; accepted = None }) ] -> ()
  | _ -> Alcotest.fail "expected a Promise(8, none) to 3");
  sent := [];
  (* A lower ballot must be refused with the promised number. *)
  Consensus.Node.handle node ~src:4 (Consensus.Message.Prepare { ballot = 5 });
  (match !sent with
  | [ (4, Consensus.Message.Nack { ballot = 5; promised = 8 }) ] -> ()
  | _ -> Alcotest.fail "expected Nack(5, promised=8) to 4")

let test_accept_records_and_reports () =
  let node, sent = mock_node () in
  Consensus.Node.handle node ~src:2 (Consensus.Message.Prepare { ballot = 8 });
  sent := [];
  Consensus.Node.handle node ~src:2
    (Consensus.Message.Accept { ballot = 8; value = 42 });
  (match !sent with
  | [ (2, Consensus.Message.Accepted { ballot = 8; value = 42 }) ] -> ()
  | _ -> Alcotest.fail "expected Accepted(8,42) to 2");
  sent := [];
  (* A later Prepare must report the accepted pair. *)
  Consensus.Node.handle node ~src:1 (Consensus.Message.Prepare { ballot = 20 });
  (match !sent with
  | [ (1, Consensus.Message.Promise { ballot = 20; accepted = Some (8, 42) }) ]
    -> ()
  | _ -> Alcotest.fail "expected Promise carrying (8,42)")

let test_stale_accept_nacked () =
  let node, sent = mock_node () in
  Consensus.Node.handle node ~src:2 (Consensus.Message.Prepare { ballot = 9 });
  sent := [];
  Consensus.Node.handle node ~src:3
    (Consensus.Message.Accept { ballot = 4; value = 7 });
  (match !sent with
  | [ (3, Consensus.Message.Nack { ballot = 4; promised = 9 }) ] -> ()
  | _ -> Alcotest.fail "expected Nack for a stale Accept")

let test_decide_adopted_and_relayed_once () =
  let node, sent = mock_node ~n:5 () in
  Consensus.Node.handle node ~src:4 (Consensus.Message.Decide { value = 99 });
  check (Alcotest.option int_t) "adopted" (Some 99)
    (Consensus.Node.decision node);
  let relays =
    List.length
      (List.filter
         (function _, Consensus.Message.Decide _ -> true | _ -> false)
         !sent)
  in
  check int_t "relayed to all (once)" 5 relays;
  sent := [];
  Consensus.Node.handle node ~src:3 (Consensus.Message.Decide { value = 99 });
  check int_t "no second relay" 0 (List.length !sent)

(* --------------------------------------------------------- unit details *)

let test_message_ballot_of () =
  check int_t "prepare" 7
    (Consensus.Message.ballot_of (Consensus.Message.Prepare { ballot = 7 }));
  check int_t "decide has none" (-1)
    (Consensus.Message.ballot_of (Consensus.Message.Decide { value = 3 }))

let test_ballots_started_counted () =
  let engine, _, c = cluster ~oracle:(fun _ () -> 2) () in
  Consensus.Single.propose c 2 9;
  Sim.Engine.run_until engine (Sim.Time.of_sec 1);
  check bool_t "leader started at least one ballot" true
    (Consensus.Node.ballots_started (Consensus.Single.node c 2) >= 1);
  check int_t "non-leader started none" 0
    (Consensus.Node.ballots_started (Consensus.Single.node c 3))

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "consensus"
    [
      ( "liveness",
        [
          Alcotest.test_case "stable leader decides" `Quick
            test_decides_with_stable_leader;
          Alcotest.test_case "validity" `Quick test_decided_value_is_a_proposal;
          Alcotest.test_case "leader crash failover" `Quick
            test_leader_crash_failover;
          Alcotest.test_case "no proposals, no decision" `Quick
            test_no_decision_without_proposals;
          Alcotest.test_case "single proposer" `Quick test_single_proposer_suffices;
        ] );
      ( "safety",
        [
          Alcotest.test_case "dueling leaders" `Quick
            test_safety_under_dueling_leaders;
          Alcotest.test_case "majority required" `Quick
            test_quorum_requires_majority;
          qtest prop_consensus_safety;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "total order" `Quick test_broadcast_total_order;
          Alcotest.test_case "leader crash" `Quick
            test_broadcast_survives_leader_crash;
          Alcotest.test_case "dedup" `Quick test_broadcast_dedups_resubmission;
        ] );
      ( "acceptor",
        [
          Alcotest.test_case "promise then nack" `Quick
            test_prepare_promise_then_nack;
          Alcotest.test_case "accept records" `Quick
            test_accept_records_and_reports;
          Alcotest.test_case "stale accept nacked" `Quick
            test_stale_accept_nacked;
          Alcotest.test_case "decide relayed once" `Quick
            test_decide_adopted_and_relayed_once;
        ] );
      ( "unit",
        [
          Alcotest.test_case "ballot_of" `Quick test_message_ballot_of;
          Alcotest.test_case "ballots counted" `Quick test_ballots_started_counted;
        ] );
    ]
