(* Tests for the harness: the stability judgment (a pure function with
   subtle cases), the table renderer, and the multi-seed sweep. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

module Stability = Harness.Stability

(* Build samples: one per 100ms, rounds advancing [round_rate] per sample,
   agreed leader given by [leader_at sample_index]. *)
let samples ~count ~round_rate ~leader_at =
  List.init count (fun i ->
      {
        Stability.time = ms (100 * (i + 1));
        round = round_rate * (i + 1);
        agreed = leader_at i;
      })

let judge ?(horizon = sec 30) ?(min_window = sec 6) samples =
  Stability.judge ~horizon ~min_window samples

let test_stable_run () =
  (* Constant leader from sample 50 of 300; plenty of rounds and time. *)
  let s =
    samples ~count:300 ~round_rate:5 ~leader_at:(fun i ->
        if i < 50 then Some (i mod 3) else Some 7)
  in
  let v = judge s in
  check (Alcotest.option Alcotest.int) "leader" (Some 7)
    v.Stability.final_leader;
  check (Alcotest.option Alcotest.int) "suffix starts at sample 51"
    (Some (Sim.Time.to_us (ms 5100)))
    (Option.map Sim.Time.to_us v.Stability.stabilized_at)

let test_never_agreed () =
  let s = samples ~count:100 ~round_rate:5 ~leader_at:(fun _ -> None) in
  let v = judge s in
  check bool_t "no leader" true (v.Stability.final_leader = None);
  check bool_t "not stabilized" true (v.Stability.stabilized_at = None)

let test_anarchy_at_end () =
  let s =
    samples ~count:100 ~round_rate:5 ~leader_at:(fun i ->
        if i < 95 then Some 1 else None)
  in
  check bool_t "ends in anarchy" true
    ((judge s).Stability.stabilized_at = None)

let test_short_suffix_rejected () =
  (* Constant only for the last 20 of 300 samples: fails the round quota. *)
  let s =
    samples ~count:300 ~round_rate:5 ~leader_at:(fun i ->
        if i < 280 then Some (i mod 5) else Some 2)
  in
  let v = judge s in
  check bool_t "leader reported" true (v.Stability.final_leader = Some 2);
  check bool_t "not stabilized" true (v.Stability.stabilized_at = None)

let test_slow_rounds_reject_time_only_suffix () =
  (* The quadratic-slow-down trap: the suffix covers lots of TIME (20 of 60
     samples) but almost no ROUNDS (rounds barely advance at the end). *)
  let s =
    List.init 60 (fun i ->
        {
          Stability.time = ms (500 * (i + 1));
          round = (if i < 40 then 20 * i else 800 + (i - 40));
          agreed = (if i < 40 then Some (i mod 4) else Some 0);
        })
  in
  let v = judge ~horizon:(sec 30) ~min_window:(sec 5) s in
  check bool_t "rejected by round quota" true
    (v.Stability.stabilized_at = None)

let test_interruption_resets_suffix () =
  (* One dissent in the middle of an otherwise stable tail. *)
  let s =
    samples ~count:300 ~round_rate:5 ~leader_at:(fun i ->
        if i = 250 then Some 3 else Some 7)
  in
  let v = judge s in
  (* Suffix restarts at 251: 49 samples * 5 rounds = 245 rounds < quota
     (1500/3). *)
  check bool_t "not stabilized" true (v.Stability.stabilized_at = None)

let test_empty_samples () =
  let v = judge [] in
  check bool_t "empty" true
    (v.Stability.final_leader = None && v.Stability.stabilized_at = None)

(* ------------------------------------------------------------- Table *)

let test_table_cells () =
  check Alcotest.string "ms" "12.5ms" (Harness.Table.ms 12.49);
  check Alcotest.string "nan" "-" (Harness.Table.ms Float.nan);
  check Alcotest.string "yes" "yes" (Harness.Table.yesno true);
  check Alcotest.string "int" "42" (Harness.Table.intc 42)

(* ------------------------------------------------------------- Sweep *)

let test_sweep_aggregates () =
  let n = 5 and t = 2 in
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  let agg =
    Harness.Sweep.run
      ~spec:
        Harness.Run.Spec.(
          default |> with_horizon (sec 15) |> with_crashes [ (0, sec 3) ])
      ~seeds:[ 1L; 2L; 3L ]
      ~env_of:(fun seed ->
        Scenarios.Env.make ~scenario_seed:seed config
          (Scenarios.Scenario.Rotating_star { center = 3 }))
      ()
  in
  check Alcotest.int "three runs" 3 agg.Harness.Sweep.runs;
  check Alcotest.int "all stabilized" 3 agg.Harness.Sweep.stabilized;
  check Alcotest.int "all elected the center" 3 agg.Harness.Sweep.elected_center;
  check Alcotest.int "no violations" 0 agg.Harness.Sweep.violations;
  check Alcotest.string "cell" "3/3" (Harness.Sweep.stabilized_cell agg);
  check bool_t "latency cell present" true
    (Harness.Sweep.latency_cell agg <> "-")

let () =
  Alcotest.run "harness"
    [
      ( "stability",
        [
          Alcotest.test_case "stable run" `Quick test_stable_run;
          Alcotest.test_case "never agreed" `Quick test_never_agreed;
          Alcotest.test_case "anarchy at end" `Quick test_anarchy_at_end;
          Alcotest.test_case "short suffix rejected" `Quick
            test_short_suffix_rejected;
          Alcotest.test_case "slow rounds trap" `Quick
            test_slow_rounds_reject_time_only_suffix;
          Alcotest.test_case "interruption resets" `Quick
            test_interruption_resets_suffix;
          Alcotest.test_case "empty" `Quick test_empty_samples;
        ] );
      ("table", [ Alcotest.test_case "cells" `Quick test_table_cells ]);
      ("sweep", [ Alcotest.test_case "aggregates" `Slow test_sweep_aggregates ]);
    ]
