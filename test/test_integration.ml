(* Full-stack integration tests: the paper's headline claims as executable
   assertions (reduced-size versions of experiments E1, E2, E3, E6, E7, E8),
   with assumption compliance verified on every trace. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

module Scenario = Scenarios.Scenario

let run ?(n = 8) ?(t = 3) ?(horizon = sec 30) ?(crashes = [ (0, sec 5) ])
    ?(wire_stats = false) ?config_tweak variant regime =
  let config = Omega.Config.default ~n ~t variant in
  let config = match config_tweak with Some f -> f config | None -> config in
  let env = Scenarios.Env.make config regime in
  let spec =
    Harness.Run.Spec.(
      default |> with_horizon horizon |> with_crashes crashes
      |> with_wire_stats wire_stats)
  in
  Harness.Run.run ~spec ~env ~seed:7L ()

let stabilized result = result.Harness.Run.stabilized_at <> None

let no_violations result =
  match result.Harness.Run.checker with
  | Some report -> List.length report.Scenarios.Checker.violations = 0
  | None -> true

(* Theorem 1: Figure 1 elects the center under the rotating star, despite a
   crash. *)
let test_fig1_rotating_star () =
  let result = run Omega.Config.Fig1 (Scenario.Rotating_star { center = 6 }) in
  check bool_t "stabilized" true (stabilized result);
  check (Alcotest.option int_t) "elected the center" (Some 6)
    result.Harness.Run.final_leader;
  check bool_t "assumption held" true (no_violations result)

(* Theorem 2 boundary: Figure 1 does NOT stabilize when the star is only
   intermittent... *)
let test_fig1_fails_intermittent () =
  let result =
    run Omega.Config.Fig1 (Scenario.Intermittent_star { center = 6; d = 8 })
  in
  check bool_t "no stable leader" false (stabilized result)

(* ...but Figure 2 does. *)
let test_fig2_intermittent () =
  let result =
    run Omega.Config.Fig2 (Scenario.Intermittent_star { center = 6; d = 8 })
  in
  check bool_t "stabilized" true (stabilized result);
  check (Alcotest.option int_t) "center" (Some 6)
    result.Harness.Run.final_leader;
  check bool_t "assumption held" true (no_violations result)

(* ...and Figure 3 does too, with every variable bounded (Theorem 4 +
   Lemma 8). Smaller D so convergence fits a short horizon. *)
let test_fig3_intermittent_bounded () =
  let result =
    run ~horizon:(sec 60) Omega.Config.Fig3
      (Scenario.Intermittent_star { center = 6; d = 4 })
  in
  check bool_t "stabilized" true (stabilized result);
  check (Alcotest.option int_t) "center" (Some 6)
    result.Harness.Run.final_leader;
  check bool_t "susp levels bounded" true (result.Harness.Run.max_susp_level <= 12);
  check bool_t "timeouts bounded" true
    Sim.Time.(result.Harness.Run.max_timeout <= ms 40);
  check int_t "lattice invariant never violated" 0
    result.Harness.Run.lattice_violations

(* Figure 2 under the same run has unbounded growth (contrast for E3). *)
let test_fig2_unbounded_contrast () =
  let fig2 =
    run ~horizon:(sec 60) Omega.Config.Fig2
      (Scenario.Intermittent_star { center = 6; d = 4 })
  in
  let fig3 =
    run ~horizon:(sec 60) Omega.Config.Fig3
      (Scenario.Intermittent_star { center = 6; d = 4 })
  in
  check bool_t "fig2 levels far exceed fig3's" true
    (fig2.Harness.Run.max_susp_level > 4 * fig3.Harness.Run.max_susp_level)

(* Nothing stabilizes under chaos (with a crash so a frozen leader cannot
   satisfy Omega by accident). *)
let test_chaos_defeats_everything () =
  List.iter
    (fun variant ->
      (* Long horizon: under chaos the leader flap period grows with the
         square root of the round count, so short runs can end inside one
         victim block. *)
      let result = run ~horizon:(sec 60) variant Scenario.Chaos in
      check bool_t
        (Omega.Config.variant_name variant ^ " does not stabilize under chaos")
        false (stabilized result))
    [ Omega.Config.Fig1; Omega.Config.Fig3 ]

(* Prior-work regimes are special cases of A: figures 2-3 stabilize under
   all of them (paper section 3). *)
let test_a_contains_prior_assumptions () =
  List.iter
    (fun regime ->
      let result = run Omega.Config.Fig3 regime in
      check bool_t
        (Scenario.regime_name regime ^ " handled by fig3")
        true (stabilized result);
      check bool_t
        (Scenario.regime_name regime ^ " compliant")
        true (no_violations result))
    [
      Scenario.T_source { center = 6 };
      Scenario.Moving_source { center = 6 };
      Scenario.Message_pattern { center = 6 };
      Scenario.Combined { center = 6 };
    ]

(* Section 7: growing (quadratic) delays defeat plain Figure 3 but not the
   g-aware variant. Parameters as in experiment E7 (see Suite.e7). *)
let test_growing_delays_need_g () =
  let regime = Scenario.Growing_star { center = 3; d = 2; g_step = ms 5 } in
  let tweak c =
    {
      c with
      Omega.Config.initial_timeout = ms 8;
      send_jitter = 0.02;
      timeout_unit = Sim.Time.of_us 50;
    }
  in
  let params = Scenario.default_params ~n:5 ~t:2 ~beta:(ms 10) in
  let scen = Scenario.create params regime ~seed:42L in
  let g = Scenario.g_function scen in
  let plain =
    run ~n:5 ~t:2 ~crashes:[] ~horizon:(sec 90) ~config_tweak:tweak
      Omega.Config.Fig3 regime
  in
  let aware =
    run ~n:5 ~t:2 ~crashes:[] ~horizon:(sec 90) ~config_tweak:tweak
      (Omega.Config.Fig3_fg { f = (fun _ -> 0); g })
      regime
  in
  check bool_t "g-aware elects the center" true
    (stabilized aware && aware.Harness.Run.final_leader = Some 3);
  check bool_t "g-unaware does not elect the center" true
    (not (stabilized plain) || plain.Harness.Run.final_leader <> Some 3)

(* Section 7, f side: growing gaps between good rounds defeat plain
   Figure 3 but not the f-aware variant (E7b). *)
let test_growing_gaps_need_f () =
  let regime = Scenario.Growing_gaps { center = 6; d = 4; f_step = 8 } in
  let params = Scenario.default_params ~n:8 ~t:3 ~beta:(ms 10) in
  let scen = Scenario.create params regime ~seed:42L in
  let f = Scenario.f_function scen in
  let plain = run ~horizon:(sec 45) Omega.Config.Fig3 regime in
  let aware =
    run ~horizon:(sec 45)
      (Omega.Config.Fig3_fg { f; g = (fun _ -> Sim.Time.zero) })
      regime
  in
  check bool_t "f-aware elects the center" true
    (stabilized aware && aware.Harness.Run.final_leader = Some 6);
  check bool_t "f-unaware does not elect the center" true
    (not (stabilized plain) || plain.Harness.Run.final_leader <> Some 6);
  check bool_t "both runs assumption-compliant" true
    (no_violations plain && no_violations aware)

(* Section 1.1: crash of the elected leader, re-election under a failover
   star (E8). *)
let test_reelection_after_leader_crash () =
  (* Crash detection lags by the send/receive round drift: the crashed
     center pre-sent ~1000 rounds of ALIVEs, so give the run room. *)
  let crash_time = sec 10 in
  let result =
    run ~horizon:(sec 75)
      ~crashes:[ (2, crash_time) ]
      Omega.Config.Fig3
      (Scenario.Failover { first = 2; second = 6; switch = 1000 })
  in
  check bool_t "stabilized on the new center" true
    (stabilized result && result.Harness.Run.final_leader = Some 6);
  (match result.Harness.Run.stabilized_at with
  | Some at -> check bool_t "re-elected after the crash" true Sim.Time.(at > crash_time)
  | None -> Alcotest.fail "expected stabilization");
  check bool_t "assumption held across the switch" true (no_violations result)

(* Theorem 5 end-to-end: consensus over the real Figure-3 oracle under an
   intermittent star, leader crash included. *)
let test_consensus_over_real_omega () =
  let n = 8 and t = 3 in
  let engine = Sim.Engine.create ~seed:11L () in
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  let params = Scenario.default_params ~n ~t ~beta:(ms 10) in
  let scenario =
    Scenario.create params
      (Scenario.Intermittent_star { center = 6; d = 4 })
      ~seed:42L
  in
  let omega_net =
    Net.Network.of_spec
      Net.Spec.(
        default
        |> with_oracle
             (Scenario.oracle scenario ~round_of:Scenario.round_of_omega))
      engine ~n
  in
  let omega = Omega.Cluster.create config omega_net in
  let cons_net =
    Net.Network.of_spec
      Net.Spec.(
        default
        |> with_oracle (Scenario.oracle scenario ~round_of:(fun _ -> None)))
      engine ~n
  in
  let cons =
    Consensus.Single.create cons_net
      ~oracle:(fun p () -> Omega.Node.leader (Omega.Cluster.node omega p))
      ~retry_every:(ms 50) ~crash_bound:t
  in
  Omega.Cluster.start omega;
  Consensus.Single.start cons;
  for p = 0 to n - 1 do
    Consensus.Single.propose cons p (300 + p)
  done;
  Omega.Cluster.crash_at omega 0 (ms 400);
  ignore
    (Sim.Engine.schedule_at engine (ms 400) (fun () ->
         Net.Network.crash cons_net 0));
  Sim.Engine.run_until engine (sec 30);
  match Consensus.Single.uniform_decision cons with
  | Some v -> check bool_t "validity" true (v >= 300 && v < 300 + n)
  | None -> Alcotest.fail "consensus did not terminate under A + majority"

(* Determinism across the whole stack: identical seeds give identical
   outcomes. *)
let test_full_stack_deterministic () =
  let go () =
    let r = run Omega.Config.Fig3 (Scenario.Rotating_star { center = 6 }) in
    ( r.Harness.Run.final_leader,
      r.Harness.Run.messages_sent,
      r.Harness.Run.stabilized_at,
      r.Harness.Run.max_susp_level )
  in
  check bool_t "bit-identical reruns" true (go () = go ())

(* The harness's own sanity: message accounting is consistent. *)
let test_harness_accounting () =
  let result =
    run ~wire_stats:true Omega.Config.Fig3 (Scenario.Rotating_star { center = 6 })
  in
  check bool_t "delivered <= sent" true
    (result.Harness.Run.messages_delivered <= result.Harness.Run.messages_sent);
  check bool_t "bytes counted" true
    (result.Harness.Run.alive_bytes > 0
    && result.Harness.Run.suspicion_bytes > 0);
  check bool_t "rounds progressed" true (result.Harness.Run.min_sending_round > 500)

let () =
  Alcotest.run "integration"
    [
      ( "paper-claims",
        [
          Alcotest.test_case "T1: fig1 under rotating star" `Slow
            test_fig1_rotating_star;
          Alcotest.test_case "T2 boundary: fig1 fails intermittent" `Slow
            test_fig1_fails_intermittent;
          Alcotest.test_case "T2: fig2 under intermittent star" `Slow
            test_fig2_intermittent;
          Alcotest.test_case "T4+L8: fig3 bounded" `Slow
            test_fig3_intermittent_bounded;
          Alcotest.test_case "T4 contrast: fig2 unbounded" `Slow
            test_fig2_unbounded_contrast;
          Alcotest.test_case "chaos defeats all" `Slow
            test_chaos_defeats_everything;
          Alcotest.test_case "S3: A contains prior assumptions" `Slow
            test_a_contains_prior_assumptions;
          Alcotest.test_case "S7: growing delays need g" `Slow
            test_growing_delays_need_g;
          Alcotest.test_case "S7: growing gaps need f" `Slow
            test_growing_gaps_need_f;
          Alcotest.test_case "S1.1: re-election after crash" `Slow
            test_reelection_after_leader_crash;
          Alcotest.test_case "T5: consensus over real omega" `Slow
            test_consensus_over_real_omega;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "determinism" `Slow test_full_stack_deterministic;
          Alcotest.test_case "accounting" `Slow test_harness_accounting;
        ] );
    ]
