(* Tests for deterministic intra-run parallelism (DESIGN.md §18): sharded
   conservative-window execution must be observationally invisible. The
   digest (an FNV fold over the complete event stream) and the whole
   result record must be identical for intra_domains 1/2/4, on both
   scheduler backends, for every flavour of run the driver parallelizes —
   plain gossip, the relay tier, a faulted plan, a routed topology — and
   the plan-free gossip stream must still be the exact pinned digest the
   sequential engine produces. The qcheck property at the bottom is the
   window-safety certificate: no scenario oracle can return a delay below
   [Scenario.lookahead_us], so nothing sent inside a window [t, t+λ) can
   arrive inside it. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let str_t = Alcotest.string
let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3

let env =
  Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })

let relay_env =
  let config = Omega.Config.default ~n:8 ~t:3 Omega.Config.Fig3 in
  Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 6 })

let busy_plan =
  Fault.Plan.(
    empty
    |> partition ~at:(ms 500) ~heal_at:(ms 900) [ [ 2 ] ]
    |> crash 0 ~at:(ms 600)
    |> recover 0 ~at:(ms 1200)
    |> dup_burst ~at:(ms 1400) ~until:(ms 1500) ~extra:(ms 1))

let base =
  Harness.Run.Spec.(default |> with_horizon (sec 2) |> with_digest true)

(* Everything deterministic in a [result]: drop the two aggregate options
   (metrics is off in these specs; the checker report is itself computed
   from the stream the digest already pins). *)
let fingerprint (r : Harness.Run.result) =
  ( Option.get r.Harness.Run.digest,
    ( r.Harness.Run.stabilized_at,
      r.Harness.Run.final_leader,
      r.Harness.Run.messages_sent,
      r.Harness.Run.messages_delivered,
      r.Harness.Run.max_susp_level,
      r.Harness.Run.min_sending_round ),
    ( r.Harness.Run.re_elections,
      r.Harness.Run.leadership_epochs,
      r.Harness.Run.max_round_state,
      r.Harness.Run.recoveries,
      List.length r.Harness.Run.samples ) )

let run ~spec ~env ~intra ~seed =
  Harness.Run.run
    ~spec:(Harness.Run.Spec.with_intra_domains intra spec)
    ~env ~seed ()

(* The workhorse: the full fingerprint — digest first — must coincide for
   intra 1/2/4 on both backends, and intra 1 must equal the plain spec
   (the sequential path, bit for bit). *)
let assert_invariant ?(seed = 7L) ~name spec env =
  List.iter
    (fun sched ->
      let spec = Harness.Run.Spec.with_sched sched spec in
      let seq = fingerprint (Harness.Run.run ~spec ~env ~seed ()) in
      List.iter
        (fun intra ->
          let par = fingerprint (run ~spec ~env ~intra ~seed) in
          check bool_t
            (Printf.sprintf "%s: intra=%d matches sequential (%s)" name intra
               (match sched with `Wheel -> "wheel" | `Heap -> "heap"))
            true (par = seq))
        [ 1; 2; 4 ])
    [ `Wheel; `Heap ]

let test_gossip () = assert_invariant ~name:"gossip" base env

let test_gossip_pin () =
  (* Stronger than self-consistency: the parallel run must reproduce the
     digest pinned by test_fault/test_obs for the sequential engine. *)
  List.iter
    (fun intra ->
      check str_t
        (Printf.sprintf "intra=%d reproduces the plan-free pin" intra)
        "d04e0b6bb1a89956"
        (Obs.Digest.to_hex
           (Option.get (run ~spec:base ~env ~intra ~seed:7L).Harness.Run.digest)))
    [ 2; 4 ]

let test_relay () =
  assert_invariant ~name:"relay"
    Harness.Run.Spec.(base |> with_algo `Relay)
    relay_env

let test_faulted () =
  assert_invariant ~name:"faulted"
    Harness.Run.Spec.(base |> with_plan busy_plan)
    env

let test_crashes () =
  assert_invariant ~name:"crashes"
    Harness.Run.Spec.(base |> with_crashes [ (0, ms 400) ])
    env

let test_routed () =
  assert_invariant ~name:"routed"
    Harness.Run.Spec.(
      base
      |> with_topology Net.Topology.Ring
      |> with_link_channel
           (Net.Topology.Eventually_timely
              { gst = ms 500; bound = Sim.Time.of_sec 2 }))
    env

let test_seed_spread () =
  (* Different seeds must still differ under parallel execution (the
     shards really run the seed, not some collapsed schedule). *)
  let d seed = Option.get (run ~spec:base ~env ~intra:2 ~seed).Harness.Run.digest in
  check int_t "three seeds, three digests" 3
    (List.length (List.sort_uniq Int64.compare [ d 3L; d 7L; d 11L ]))

let test_start_refuses_intra () =
  check bool_t "Run.start refuses intra_domains > 1" true
    (try
       ignore
         (Harness.Run.start
            ~spec:(Harness.Run.Spec.with_intra_domains 2 base)
            ~env ~seed:7L ());
       false
     with Invalid_argument _ -> true);
  check bool_t "with_intra_domains rejects 0" true
    (try
       ignore (Harness.Run.Spec.with_intra_domains 0 base);
       false
     with Invalid_argument _ -> true)

let test_lossy_falls_back () =
  (* The legacy lossy wrapper draws in global send order; the driver must
     detect it and take the sequential path — same digest as intra=1. *)
  let lossy_env =
    Scenarios.Env.make ~lossy:(0.01, 2) config
      (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let d intra =
    Option.get (run ~spec:base ~env:lossy_env ~intra ~seed:7L).Harness.Run.digest
  in
  check bool_t "lossy env: intra=4 = sequential" true (Int64.equal (d 1) (d 4))

(* ------------------------------------------------ lookahead safety *)

(* Window certificate: over every regime family and adversarial knob the
   scenarios expose, no oracle delay may undercut [lookahead_us] — a
   cross-shard message sent at s arrives at or after s + λ, hence at or
   after the end of any window that could still be executing s. *)
let lookahead_safety =
  QCheck.Test.make ~count:200 ~name:"oracle delays never undercut lookahead"
    QCheck.(
      quad (int_range 4 9) (int_range 0 3) small_nat (int_range 0 5000))
    (fun (n, t_minus, rn_seed, now_ms) ->
      let n = max 4 n in
      let t = max 1 (min ((n - 1) / 2) (1 + t_minus)) in
      let center = n - 2 in
      let regimes =
        [
          Scenarios.Scenario.Full_timely;
          Scenarios.Scenario.Chaos;
          Scenarios.Scenario.Rotating_star { center };
          Scenarios.Scenario.Intermittent_star { center; d = 4 };
          Scenarios.Scenario.T_source { center };
          Scenarios.Scenario.Moving_source { center };
        ]
      in
      List.for_all
        (fun regime ->
          let params =
            Scenarios.Scenario.default_params ~n ~t ~beta:(ms 10)
          in
          let scenario =
            Scenarios.Scenario.create params regime
              ~seed:(Int64.of_int (rn_seed + 1))
          in
          let lo = Scenarios.Scenario.lookahead_us scenario in
          let now = ms now_ms in
          let ok ~rn ~at ~src ~dst =
            Scenarios.Scenario.oracle_us scenario
              ~round_of:(fun (m : int) -> m)
              ~now ~seq:rn_seed ~at ~src ~dst rn
            >= lo
          in
          lo > 0
          && List.for_all
               (fun rn ->
                 List.for_all
                   (fun src ->
                     List.for_all
                       (fun dst ->
                         ok ~rn ~at:src ~src ~dst
                         && ok ~rn ~at:dst ~src ~dst)
                       [ 0; center; n - 1 ])
                   [ 0; 1; center ])
               [ -1; 1; rn_seed + 1 ])
        regimes)

let () =
  Alcotest.run "intra"
    [
      ( "invariance",
        [
          Alcotest.test_case "gossip" `Quick test_gossip;
          Alcotest.test_case "gossip matches the pin" `Quick test_gossip_pin;
          Alcotest.test_case "relay" `Quick test_relay;
          Alcotest.test_case "faulted plan" `Quick test_faulted;
          Alcotest.test_case "scheduled crashes" `Quick test_crashes;
          Alcotest.test_case "routed topology" `Quick test_routed;
          Alcotest.test_case "seeds discriminate" `Quick test_seed_spread;
        ] );
      ( "guards",
        [
          Alcotest.test_case "start refuses intra" `Quick
            test_start_refuses_intra;
          Alcotest.test_case "lossy env falls back" `Quick
            test_lossy_falls_back;
        ] );
      ( "lookahead",
        [ QCheck_alcotest.to_alcotest lookahead_safety ] );
    ]
