(* Cross-stack property tests: eventual leadership over randomly drawn
   A-compliant schedules, assumption-compliance of every such run, arrival
   bound monotonicity, and total-order broadcast under random workloads. *)

let ms = Sim.Time.of_ms
let sec = Sim.Time.of_sec

module Scenario = Scenarios.Scenario

let qtest = QCheck_alcotest.to_alcotest

(* Eventual leadership: for any seed and gap bound D, Figure 2 elects the
   center of a randomly drawn intermittent rotating star, and the checker
   confirms the assumption held. *)
let prop_eventual_leadership =
  QCheck.Test.make ~name:"fig2 elects the center of any intermittent star"
    ~count:6
    QCheck.(pair (int_range 1 6) (int_range 1 1000))
    (fun (d, seed) ->
      let n = 8 and t = 3 in
      let config = Omega.Config.default ~n ~t Omega.Config.Fig2 in
      let env =
        Scenarios.Env.make
          ~scenario_seed:(Int64.of_int seed)
          config
          (Scenario.Intermittent_star { center = 6; d })
      in
      let result =
        Harness.Run.run
          ~spec:
            Harness.Run.Spec.(
              default |> with_horizon (sec 25)
              |> with_crashes [ (0, sec 4) ])
          ~env
          ~seed:(Int64.of_int (seed * 31))
          ()
      in
      let ok_leader =
        result.Harness.Run.stabilized_at <> None
        && result.Harness.Run.final_leader = Some 6
      in
      let ok_checker =
        match result.Harness.Run.checker with
        | Some report -> report.Scenarios.Checker.violations = []
        | None -> false
      in
      ok_leader && ok_checker)

(* Figure 3's lattice invariant across random full-stack runs (Lemma 8 at
   system scale, complementing the message-soup unit property). *)
let prop_lattice_full_stack =
  QCheck.Test.make ~name:"fig3 lattice invariant on random full runs" ~count:5
    QCheck.(int_range 1 1000)
    (fun seed ->
      let n = 6 and t = 2 in
      let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
      let env =
        Scenarios.Env.make
          ~scenario_seed:(Int64.of_int seed)
          config
          (Scenario.Rotating_star { center = 4 })
      in
      let result =
        Harness.Run.run
          ~spec:
            Harness.Run.Spec.(
              default |> with_horizon (sec 12)
              |> with_crashes [ (0, sec 3) ])
          ~env
          ~seed:(Int64.of_int (seed * 17))
          ()
      in
      result.Harness.Run.lattice_violations = 0)

(* The arrival bound used to pick the checker horizon must be monotone in
   the round number for every regime (the binary search relies on it). *)
let prop_arrival_bound_monotone =
  QCheck.Test.make ~name:"arrival bound monotone in rn" ~count:50
    QCheck.(pair (int_range 0 8) (int_range 1 2000))
    (fun (which, rn) ->
      let n = 8 and t = 3 in
      let regime =
        match which with
        | 0 -> Scenario.Full_timely
        | 1 -> Scenario.T_source { center = 6 }
        | 2 -> Scenario.Moving_source { center = 6 }
        | 3 -> Scenario.Message_pattern { center = 6 }
        | 4 -> Scenario.Combined { center = 6 }
        | 5 -> Scenario.Rotating_star { center = 6 }
        | 6 -> Scenario.Intermittent_star { center = 6; d = 5 }
        | 7 -> Scenario.Growing_star { center = 6; d = 5; g_step = ms 2 }
        | _ -> Scenario.Chaos
      in
      let s =
        Scenario.create (Scenario.default_params ~n ~t ~beta:(ms 10)) regime
          ~seed:3L
      in
      Sim.Time.(Scenario.arrival_bound s rn <= Scenario.arrival_bound s (rn + 1)))

(* ... and monotone in the hop count: a routed topology stretches the
   bound by its diameter (DESIGN.md §17), never shrinks it. *)
let prop_arrival_bound_monotone_hops =
  QCheck.Test.make ~name:"arrival bound monotone in hops" ~count:50
    QCheck.(triple (int_range 0 8) (int_range 1 2000) (int_range 1 8))
    (fun (which, rn, hops) ->
      let n = 8 and t = 3 in
      let regime =
        match which with
        | 0 -> Scenario.Full_timely
        | 1 -> Scenario.T_source { center = 6 }
        | 2 -> Scenario.Moving_source { center = 6 }
        | 3 -> Scenario.Message_pattern { center = 6 }
        | 4 -> Scenario.Combined { center = 6 }
        | 5 -> Scenario.Rotating_star { center = 6 }
        | 6 -> Scenario.Intermittent_star { center = 6; d = 5 }
        | 7 -> Scenario.Growing_star { center = 6; d = 5; g_step = ms 2 }
        | _ -> Scenario.Chaos
      in
      let s =
        Scenario.create (Scenario.default_params ~n ~t ~beta:(ms 10)) regime
          ~seed:3L
      in
      Sim.Time.(
        Scenario.arrival_bound ~hops s rn
        <= Scenario.arrival_bound ~hops:(hops + 1) s rn)
      && Scenario.arrival_bound ~hops:1 s rn = Scenario.arrival_bound s rn)

(* Atomic broadcast delivers identical sequences under random workloads
   (random submitters, random submission times), with a mid-run crash. *)
let prop_broadcast_total_order =
  QCheck.Test.make ~name:"broadcast total order under random workloads"
    ~count:8
    QCheck.(pair (int_range 1 1000) (list_of_size Gen.(1 -- 12) (int_bound 4)))
    (fun (seed, submitters) ->
      let n = 5 and t = 2 in
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) () in
      let oracle ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
        Net.Network.Deliver_after (Sim.Time.of_us 500)
      in
      let net =
        Net.Network.of_spec
          Net.Spec.(default |> with_oracle oracle)
          engine ~n
      in
      let current = ref 1 in
      let nodes =
        Array.init n (fun me ->
            Consensus.Broadcast.create net ~me
              ~oracle:(fun () -> !current)
              ~retry_every:(ms 25) ~crash_bound:t ~equal:Int.equal)
      in
      Array.iter Consensus.Broadcast.start nodes;
      List.iteri
        (fun i submitter ->
          (* Submitters are correct processes only: a command submitted at a
             process that crashes before forwarding it may rightly be lost
             (uniform validity covers correct submitters). *)
          let submitter = 1 + (submitter mod 4) in
          ignore
            (Sim.Engine.schedule_at engine
               (ms (37 * i))
               (fun () ->
                 Consensus.Broadcast.submit nodes.(submitter) (500 + i))))
        submitters;
      ignore
        (Sim.Engine.schedule_at engine (ms 150) (fun () ->
             Net.Network.crash net 0;
             current := 2));
      Sim.Engine.run_until engine (sec 8);
      let sequences =
        List.map
          (fun p -> Consensus.Broadcast.delivered nodes.(p))
          (Net.Network.correct net)
      in
      match sequences with
      | [] -> false
      | first :: rest ->
          List.for_all (( = ) first) rest
          && List.length first = List.length submitters
          && List.sort_uniq compare first = List.sort compare first)

(* Retransmission layer: exactly-once delivery for any loss rate and any
   payload count. *)
let prop_retransmit_exactly_once =
  QCheck.Test.make ~name:"retransmit delivers exactly once for any loss"
    ~count:25
    QCheck.(triple (int_range 1 1000) (int_range 0 8) (int_range 1 60))
    (fun (seed, loss_tenths, count) ->
      let loss = float_of_int loss_tenths /. 10. in
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) () in
      let rng = Dstruct.Rng.split (Sim.Engine.rng engine) in
      let base ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
        Net.Network.Deliver_after (Sim.Time.of_us 300)
      in
      let oracle = Net.Lossy.wrap ~loss ~burst:15 ~rng ~n:2 base in
      let layer =
        Net.Retransmit.create engine ~n:2 ~oracle ~resend_every:(ms 4)
      in
      Net.Retransmit.start layer;
      let received = ref [] in
      Net.Retransmit.set_handler layer 1 (fun ~src:_ m ->
          received := m :: !received);
      for i = 1 to count do
        Net.Retransmit.send layer ~src:0 ~dst:1 i
      done;
      Sim.Engine.run_until engine (sec 20);
      List.rev !received = List.init count (fun i -> i + 1))

let () =
  Alcotest.run "properties"
    [
      ( "system",
        [
          qtest prop_eventual_leadership;
          qtest prop_lattice_full_stack;
          qtest prop_arrival_bound_monotone;
          qtest prop_arrival_bound_monotone_hops;
          qtest prop_broadcast_total_order;
          qtest prop_retransmit_exactly_once;
        ] );
    ]
