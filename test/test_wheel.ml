(* Differential tests for the timing-wheel scheduler: the wheel and the
   binary heap implement one contract (nondecreasing key order, FIFO among
   equal keys), so any workload must drain identically from both. The
   random workloads respect the wheel's monotonicity precondition (pushed
   keys >= last popped key) because that is the regime the engine
   guarantees; the engine-level tests then check the two backends through
   [Sim.Engine] itself, cancels and all. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let new_wheel () = Dstruct.Wheel.create ~dummy:(-1, -1) ()

let new_heap () =
  Dstruct.Pqueue.create ~compare:(fun (a, _) (b, _) -> Int.compare a b)

(* ------------------------------------------------------------ unit tests *)

let test_basics () =
  let w = new_wheel () in
  check bool_t "fresh is empty" true (Dstruct.Wheel.is_empty w);
  check int_t "fresh cursor" 0 (Dstruct.Wheel.cursor w);
  List.iter
    (fun (k, id) -> Dstruct.Wheel.push w ~key:k (k, id))
    [ (5, 0); (1, 1); (70_000, 2); (1, 3); (300, 4) ];
  check int_t "length" 5 (Dstruct.Wheel.length w);
  check int_t "min key" 1 (Dstruct.Wheel.min_key_exn w);
  let drained = List.init 5 (fun _ -> Dstruct.Wheel.pop_exn w) in
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "sorted drain, FIFO ties"
    [ (1, 1); (1, 3); (5, 0); (300, 4); (70_000, 2) ]
    drained;
  check bool_t "empty again" true (Dstruct.Wheel.is_empty w);
  check int_t "cursor at last pop" 70_000 (Dstruct.Wheel.cursor w)

let test_push_below_cursor_raises () =
  let w = new_wheel () in
  Dstruct.Wheel.push w ~key:10 (10, 0);
  ignore (Dstruct.Wheel.pop_exn w);
  Alcotest.check_raises "push below cursor"
    (Invalid_argument "Wheel.push: key 3 below cursor 10") (fun () ->
      Dstruct.Wheel.push w ~key:3 (3, 0))

let test_empty_raises () =
  let w = new_wheel () in
  Alcotest.check_raises "pop on empty" (Invalid_argument "Wheel: empty wheel")
    (fun () -> ignore (Dstruct.Wheel.pop_exn w))

(* The engine peeks an event beyond its run limit and leaves it queued; a
   later push below that peeked key (but at/above the cursor) must still be
   accepted and pop first. This pins that [peek]/[min_key] never cascade or
   advance the cursor. *)
let test_peek_does_not_advance () =
  let w = new_wheel () in
  Dstruct.Wheel.push w ~key:1_000_000 (1_000_000, 0);
  check int_t "peek far key" 1_000_000 (Dstruct.Wheel.min_key_exn w);
  check int_t "cursor still 0" 0 (Dstruct.Wheel.cursor w);
  Dstruct.Wheel.push w ~key:3 (3, 1);
  check
    (Alcotest.pair int_t int_t)
    "near key pops first" (3, 1) (Dstruct.Wheel.pop_exn w);
  check
    (Alcotest.pair int_t int_t)
    "far key follows" (1_000_000, 0) (Dstruct.Wheel.pop_exn w)

(* -------------------------------------------- differential vs binary heap *)

(* One random workload: interleaved pushes and pops, keys issued at a
   random offset above the wheel cursor so both structures see a legal
   monotone schedule. [burst] biases offsets toward 0 and repeats keys, so
   same-key FIFO ordering is exercised hard. Every pop is compared. *)
let run_differential ~seed ~ops ~spread ~burst () =
  let rng = Dstruct.Rng.create seed in
  let w = new_wheel () and q = new_heap () in
  let uid = ref 0 in
  let last_key = ref 0 in
  for _ = 1 to ops do
    let do_push =
      Dstruct.Wheel.is_empty w || Dstruct.Rng.chance rng 0.55
    in
    if do_push then begin
      let key =
        if burst && Dstruct.Rng.chance rng 0.5 then !last_key
        else Dstruct.Wheel.cursor w + Dstruct.Rng.int rng spread
      in
      let key = max key (Dstruct.Wheel.cursor w) in
      last_key := key;
      let v = (key, !uid) in
      incr uid;
      Dstruct.Wheel.push w ~key v;
      Dstruct.Pqueue.push q v
    end
    else begin
      let vw = Dstruct.Wheel.pop_exn w in
      let vq = Dstruct.Pqueue.pop_exn q in
      if vw <> vq then
        Alcotest.failf "divergence at uid %d: wheel (%d,%d) heap (%d,%d)"
          !uid (fst vw) (snd vw) (fst vq) (snd vq)
    end;
    if Dstruct.Wheel.length w <> Dstruct.Pqueue.length q then
      Alcotest.failf "length divergence: wheel %d heap %d"
        (Dstruct.Wheel.length w) (Dstruct.Pqueue.length q)
  done;
  (* Drain the remainder: the tail orders must agree too. *)
  while not (Dstruct.Wheel.is_empty w) do
    let vw = Dstruct.Wheel.pop_exn w in
    let vq = Dstruct.Pqueue.pop_exn q in
    check (Alcotest.pair int_t int_t) "drain order" vq vw
  done;
  check bool_t "heap drained too" true (Dstruct.Pqueue.is_empty q)

let test_differential_spread () =
  List.iter
    (fun seed -> run_differential ~seed ~ops:20_000 ~spread:5_000 ~burst:false ())
    [ 1L; 2L; 3L; 1234L ]

(* Wide spread crosses wheel levels (keys land several radix-256 digits
   apart), exercising cascades. *)
let test_differential_wide () =
  List.iter
    (fun seed ->
      run_differential ~seed ~ops:10_000 ~spread:10_000_000 ~burst:false ())
    [ 7L; 99L; 4242L ]

let test_differential_bursts () =
  List.iter
    (fun seed -> run_differential ~seed ~ops:20_000 ~spread:64 ~burst:true ())
    [ 5L; 6L; 777L ]

(* --------------------------------------------- engine-level differential *)

(* Drive two engines — one per backend — through one pre-generated random
   program of schedules and cancels, and require identical fire order and
   identical [pending]/[executed] counters at every phase. Cancels cover
   both the pre-run and the mid-run (an event cancelling a later event)
   paths. *)
let run_engine_differential ~seed () =
  let rng = Dstruct.Rng.create seed in
  let n_events = 400 in
  let program =
    List.init n_events (fun i ->
        let delay = Dstruct.Rng.int rng 50_000 (* us *) in
        let cancels =
          if i >= 10 && Dstruct.Rng.chance rng 0.15 then
            Some (Dstruct.Rng.int rng i)
          else None
        in
        (i, delay, cancels))
  in
  let run queue =
    let engine = Sim.Engine.create ~queue ~seed:11L () in
    let log = ref [] in
    let handles = Array.make n_events None in
    List.iter
      (fun (i, delay, cancels) ->
        let h =
          Sim.Engine.schedule_after engine (Sim.Time.of_us delay) (fun () ->
              log := i :: !log;
              match cancels with
              | Some j -> (
                  match handles.(j) with
                  | Some hj -> Sim.Engine.cancel engine hj
                  | None -> ())
              | None -> ())
        in
        handles.(i) <- Some h)
      program;
    (* Pre-run cancels: every 17th event dies before the clock moves. *)
    List.iter
      (fun (i, _, _) ->
        if i mod 17 = 0 then
          match handles.(i) with
          | Some h -> Sim.Engine.cancel engine h
          | None -> ())
      program;
    let pending_before = Sim.Engine.pending engine in
    Sim.Engine.run_until engine (Sim.Time.of_us 25_000);
    let mid = (List.rev !log, Sim.Engine.pending engine) in
    Sim.Engine.run_until engine (Sim.Time.of_us 60_000);
    ( pending_before,
      mid,
      List.rev !log,
      Sim.Engine.pending engine,
      Sim.Engine.executed engine )
  in
  let bh, (mid_h, midp_h), fh, ph, xh = run `Heap in
  let bw, (mid_w, midp_w), fw, pw, xw = run `Wheel in
  check int_t "pending before run agrees" bh bw;
  check (Alcotest.list int_t) "fire order agrees at mid-run" mid_h mid_w;
  check int_t "pending agrees at mid-run" midp_h midp_w;
  check (Alcotest.list int_t) "final fire order agrees" fh fw;
  check int_t "final pending agrees" ph pw;
  check int_t "executed agrees" xh xw

let test_engine_differential () =
  List.iter (fun seed -> run_engine_differential ~seed ()) [ 21L; 22L; 23L ]

(* ------------------------------------------------------ allocation gates *)

let minor_words_of f =
  let before = Gc.minor_words () in
  f ();
  int_of_float (Gc.minor_words () -. before)

(* Steady-state wheel traffic must reuse its freelist: after a warm-up that
   sizes the pool, a push/pop-balanced loop allocates nothing. *)
let test_wheel_steady_state_alloc_free () =
  let w = Dstruct.Wheel.create ~dummy:0 () in
  for i = 0 to 63 do
    Dstruct.Wheel.push w ~key:i i
  done;
  let words =
    minor_words_of (fun () ->
        for i = 64 to 100_063 do
          ignore (Dstruct.Wheel.drop_exn w);
          Dstruct.Wheel.push w ~key:i i
        done)
  in
  check bool_t
    (Printf.sprintf "100k wheel push/pop cycles allocated %d minor words"
       words)
    true (words < 1_000)

(* The n-scaling budget: one simulated second at n=32 under the default
   wheel+pools stack. Like test_rng's n=4 budget, the bound is ~1.4x the
   measured value — a breach means per-message allocation crept back into
   the scaled path (wheel cells, flights, or round cells). *)
let test_n32_run_budget () =
  let config = Omega.Config.default ~n:32 ~t:8 Omega.Config.Fig1 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_check false |> with_horizon (Sim.Time.of_sec 1))
  in
  let run () = ignore (Harness.Run.run ~spec ~env ~seed:7L ()) in
  run () (* warm-up: first run pays one-time lazy setup *);
  let words = minor_words_of run in
  check bool_t
    (Printf.sprintf
       "null-sink 1s n=32 run allocated %d minor words (budget 2600000)" words)
    true
    (words < 2_600_000)

let () =
  Alcotest.run "wheel"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "push below cursor raises" `Quick
            test_push_below_cursor_raises;
          Alcotest.test_case "empty pop raises" `Quick test_empty_raises;
          Alcotest.test_case "peek does not advance cursor" `Quick
            test_peek_does_not_advance;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random schedules match heap" `Quick
            test_differential_spread;
          Alcotest.test_case "wide keys cross levels" `Quick
            test_differential_wide;
          Alcotest.test_case "same-time bursts keep FIFO" `Quick
            test_differential_bursts;
          Alcotest.test_case "engine backends agree" `Quick
            test_engine_differential;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "steady state is allocation-free" `Quick
            test_wheel_steady_state_alloc_free;
          Alcotest.test_case "n=32 run budget" `Slow test_n32_run_budget;
        ] );
    ]
