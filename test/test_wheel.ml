(* Differential tests for the timing-wheel scheduler: the wheel and the
   binary heap implement one contract (nondecreasing key order, FIFO among
   equal keys), so any workload must drain identically from both. The
   random workloads respect the wheel's monotonicity precondition (pushed
   keys >= last popped key) because that is the regime the engine
   guarantees; the engine-level tests then check the two backends through
   [Sim.Engine] itself, cancels and all. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let new_wheel () = Dstruct.Wheel.create ~dummy:(-1, -1) ()

let new_heap () =
  Dstruct.Pqueue.create ~compare:(fun (a, _) (b, _) -> Int.compare a b)

(* ------------------------------------------------------------ unit tests *)

let test_basics () =
  let w = new_wheel () in
  check bool_t "fresh is empty" true (Dstruct.Wheel.is_empty w);
  check int_t "fresh cursor" 0 (Dstruct.Wheel.cursor w);
  List.iter
    (fun (k, id) -> Dstruct.Wheel.push w ~key:k (k, id))
    [ (5, 0); (1, 1); (70_000, 2); (1, 3); (300, 4) ];
  check int_t "length" 5 (Dstruct.Wheel.length w);
  check int_t "min key" 1 (Dstruct.Wheel.min_key_exn w);
  let drained = List.init 5 (fun _ -> Dstruct.Wheel.pop_exn w) in
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "sorted drain, FIFO ties"
    [ (1, 1); (1, 3); (5, 0); (300, 4); (70_000, 2) ]
    drained;
  check bool_t "empty again" true (Dstruct.Wheel.is_empty w);
  check int_t "cursor at last pop" 70_000 (Dstruct.Wheel.cursor w)

let test_push_below_cursor_raises () =
  let w = new_wheel () in
  Dstruct.Wheel.push w ~key:10 (10, 0);
  ignore (Dstruct.Wheel.pop_exn w);
  Alcotest.check_raises "push below cursor"
    (Invalid_argument "Wheel.push: key 3 below cursor 10") (fun () ->
      Dstruct.Wheel.push w ~key:3 (3, 0))

let test_empty_raises () =
  let w = new_wheel () in
  Alcotest.check_raises "pop on empty" (Invalid_argument "Wheel: empty wheel")
    (fun () -> ignore (Dstruct.Wheel.pop_exn w))

(* The engine peeks an event beyond its run limit and leaves it queued; a
   later push below that peeked key (but at/above the cursor) must still be
   accepted and pop first. This pins that [peek]/[min_key] never cascade or
   advance the cursor. *)
let test_peek_does_not_advance () =
  let w = new_wheel () in
  Dstruct.Wheel.push w ~key:1_000_000 (1_000_000, 0);
  check int_t "peek far key" 1_000_000 (Dstruct.Wheel.min_key_exn w);
  check int_t "cursor still 0" 0 (Dstruct.Wheel.cursor w);
  Dstruct.Wheel.push w ~key:3 (3, 1);
  check
    (Alcotest.pair int_t int_t)
    "near key pops first" (3, 1) (Dstruct.Wheel.pop_exn w);
  check
    (Alcotest.pair int_t int_t)
    "far key follows" (1_000_000, 0) (Dstruct.Wheel.pop_exn w)

(* ------------------------------------------------------- batch insertion *)

(* Staged cells are invisible until commit; a commit makes the wheel
   identical to individual pushes, FIFO included. *)
let test_stage_commit_basics () =
  let w = new_wheel () in
  Dstruct.Wheel.push w ~key:5 (5, 0);
  Dstruct.Wheel.stage w ~key:3 (3, 1);
  Dstruct.Wheel.stage w ~key:5 (5, 2);
  Dstruct.Wheel.stage w ~key:3 (3, 3);
  check int_t "staged cells not counted" 1 (Dstruct.Wheel.length w);
  Alcotest.check_raises "pop with staged cells raises"
    (Invalid_argument "Wheel: staged cells pending commit") (fun () ->
      ignore (Dstruct.Wheel.pop_exn w));
  Dstruct.Wheel.commit w;
  check int_t "committed length" 4 (Dstruct.Wheel.length w);
  let drained = List.init 4 (fun _ -> Dstruct.Wheel.pop_exn w) in
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "stage order = push order, FIFO ties with earlier push"
    [ (3, 1); (3, 3); (5, 0); (5, 2) ]
    drained;
  (* Empty commit is a no-op. *)
  Dstruct.Wheel.commit w;
  check bool_t "empty after drain" true (Dstruct.Wheel.is_empty w)

let test_stage_below_cursor_raises () =
  let w = new_wheel () in
  Dstruct.Wheel.push w ~key:10 (10, 0);
  ignore (Dstruct.Wheel.pop_exn w);
  Alcotest.check_raises "stage below cursor"
    (Invalid_argument "Wheel.stage: key 3 below cursor 10") (fun () ->
      Dstruct.Wheel.stage w ~key:3 (3, 0))

(* Differential with batched inserts: the wheel receives its pushes in
   stage/commit batches (like a broadcast fan-out), the heap one by one;
   the drains must still agree element for element. Batch sizes and key
   spreads vary so batches cross buckets and levels, and repeat keys so
   same-bucket runs of length > 1 take the spliced path. *)
let run_batch_differential ~seed ~rounds ~spread () =
  let rng = Dstruct.Rng.create seed in
  let w = new_wheel () and q = new_heap () in
  let uid = ref 0 in
  for _ = 1 to rounds do
    let batch = 1 + Dstruct.Rng.int rng 24 in
    let base = Dstruct.Wheel.cursor w in
    let last = ref base in
    for _ = 1 to batch do
      let key =
        if Dstruct.Rng.chance rng 0.4 then !last
        else base + Dstruct.Rng.int rng spread
      in
      last := key;
      let v = (key, !uid) in
      incr uid;
      Dstruct.Wheel.stage w ~key v;
      Dstruct.Pqueue.push q v
    done;
    Dstruct.Wheel.commit w;
    (* Drain about half, so later batches land on a moved cursor. *)
    let pops = Dstruct.Wheel.length w / 2 in
    for _ = 1 to pops do
      let vw = Dstruct.Wheel.pop_exn w in
      let vq = Dstruct.Pqueue.pop_exn q in
      if vw <> vq then
        Alcotest.failf "batch divergence: wheel (%d,%d) heap (%d,%d)"
          (fst vw) (snd vw) (fst vq) (snd vq)
    done
  done;
  while not (Dstruct.Wheel.is_empty w) do
    check
      (Alcotest.pair int_t int_t)
      "batch drain order" (Dstruct.Pqueue.pop_exn q) (Dstruct.Wheel.pop_exn w)
  done;
  check bool_t "heap drained too" true (Dstruct.Pqueue.is_empty q)

let test_batch_differential () =
  List.iter
    (fun (seed, spread) -> run_batch_differential ~seed ~rounds:800 ~spread ())
    [ (31L, 64); (32L, 5_000); (33L, 10_000_000) ]

(* -------------------------------------------- differential vs binary heap *)

(* One random workload: interleaved pushes and pops, keys issued at a
   random offset above the wheel cursor so both structures see a legal
   monotone schedule. [burst] biases offsets toward 0 and repeats keys, so
   same-key FIFO ordering is exercised hard. Every pop is compared. *)
let run_differential ~seed ~ops ~spread ~burst () =
  let rng = Dstruct.Rng.create seed in
  let w = new_wheel () and q = new_heap () in
  let uid = ref 0 in
  let last_key = ref 0 in
  for _ = 1 to ops do
    let do_push =
      Dstruct.Wheel.is_empty w || Dstruct.Rng.chance rng 0.55
    in
    if do_push then begin
      let key =
        if burst && Dstruct.Rng.chance rng 0.5 then !last_key
        else Dstruct.Wheel.cursor w + Dstruct.Rng.int rng spread
      in
      let key = max key (Dstruct.Wheel.cursor w) in
      last_key := key;
      let v = (key, !uid) in
      incr uid;
      Dstruct.Wheel.push w ~key v;
      Dstruct.Pqueue.push q v
    end
    else begin
      let vw = Dstruct.Wheel.pop_exn w in
      let vq = Dstruct.Pqueue.pop_exn q in
      if vw <> vq then
        Alcotest.failf "divergence at uid %d: wheel (%d,%d) heap (%d,%d)"
          !uid (fst vw) (snd vw) (fst vq) (snd vq)
    end;
    if Dstruct.Wheel.length w <> Dstruct.Pqueue.length q then
      Alcotest.failf "length divergence: wheel %d heap %d"
        (Dstruct.Wheel.length w) (Dstruct.Pqueue.length q)
  done;
  (* Drain the remainder: the tail orders must agree too. *)
  while not (Dstruct.Wheel.is_empty w) do
    let vw = Dstruct.Wheel.pop_exn w in
    let vq = Dstruct.Pqueue.pop_exn q in
    check (Alcotest.pair int_t int_t) "drain order" vq vw
  done;
  check bool_t "heap drained too" true (Dstruct.Pqueue.is_empty q)

let test_differential_spread () =
  List.iter
    (fun seed -> run_differential ~seed ~ops:20_000 ~spread:5_000 ~burst:false ())
    [ 1L; 2L; 3L; 1234L ]

(* Wide spread crosses wheel levels (keys land several radix-256 digits
   apart), exercising cascades. *)
let test_differential_wide () =
  List.iter
    (fun seed ->
      run_differential ~seed ~ops:10_000 ~spread:10_000_000 ~burst:false ())
    [ 7L; 99L; 4242L ]

let test_differential_bursts () =
  List.iter
    (fun seed -> run_differential ~seed ~ops:20_000 ~spread:64 ~burst:true ())
    [ 5L; 6L; 777L ]

(* --------------------------------------------- engine-level differential *)

(* Drive two engines — one per backend — through one pre-generated random
   program of schedules and cancels, and require identical fire order and
   identical [pending]/[executed] counters at every phase. Cancels cover
   both the pre-run and the mid-run (an event cancelling a later event)
   paths. *)
let run_engine_differential ~seed () =
  let rng = Dstruct.Rng.create seed in
  let n_events = 400 in
  let program =
    List.init n_events (fun i ->
        let delay = Dstruct.Rng.int rng 50_000 (* us *) in
        let cancels =
          if i >= 10 && Dstruct.Rng.chance rng 0.15 then
            Some (Dstruct.Rng.int rng i)
          else None
        in
        (i, delay, cancels))
  in
  let run queue =
    let engine = Sim.Engine.create ~queue ~seed:11L () in
    let log = ref [] in
    let handles = Array.make n_events None in
    List.iter
      (fun (i, delay, cancels) ->
        let h =
          Sim.Engine.schedule_after engine (Sim.Time.of_us delay) (fun () ->
              log := i :: !log;
              match cancels with
              | Some j -> (
                  match handles.(j) with
                  | Some hj -> Sim.Engine.cancel engine hj
                  | None -> ())
              | None -> ())
        in
        handles.(i) <- Some h)
      program;
    (* Pre-run cancels: every 17th event dies before the clock moves. *)
    List.iter
      (fun (i, _, _) ->
        if i mod 17 = 0 then
          match handles.(i) with
          | Some h -> Sim.Engine.cancel engine h
          | None -> ())
      program;
    let pending_before = Sim.Engine.pending engine in
    Sim.Engine.run_until engine (Sim.Time.of_us 25_000);
    let mid = (List.rev !log, Sim.Engine.pending engine) in
    Sim.Engine.run_until engine (Sim.Time.of_us 60_000);
    ( pending_before,
      mid,
      List.rev !log,
      Sim.Engine.pending engine,
      Sim.Engine.executed engine )
  in
  let bh, (mid_h, midp_h), fh, ph, xh = run `Heap in
  let bw, (mid_w, midp_w), fw, pw, xw = run `Wheel in
  check int_t "pending before run agrees" bh bw;
  check (Alcotest.list int_t) "fire order agrees at mid-run" mid_h mid_w;
  check int_t "pending agrees at mid-run" midp_h midp_w;
  check (Alcotest.list int_t) "final fire order agrees" fh fw;
  check int_t "final pending agrees" ph pw;
  check int_t "executed agrees" xh xw

let test_engine_differential () =
  List.iter (fun seed -> run_engine_differential ~seed ()) [ 21L; 22L; 23L ]

(* ------------------------------------------------------ allocation gates *)

let minor_words_of f =
  let before = Gc.minor_words () in
  f ();
  int_of_float (Gc.minor_words () -. before)

(* Steady-state wheel traffic must reuse its freelist: after a warm-up that
   sizes the pool, a push/pop-balanced loop allocates nothing. *)
let test_wheel_steady_state_alloc_free () =
  let w = Dstruct.Wheel.create ~dummy:0 () in
  for i = 0 to 63 do
    Dstruct.Wheel.push w ~key:i i
  done;
  let words =
    minor_words_of (fun () ->
        for i = 64 to 100_063 do
          ignore (Dstruct.Wheel.drop_exn w);
          Dstruct.Wheel.push w ~key:i i
        done)
  in
  check bool_t
    (Printf.sprintf "100k wheel push/pop cycles allocated %d minor words"
       words)
    true (words < 1_000)

(* The large-cluster differential (DESIGN.md §14): the same n=256 slice of
   simulation, digested event by event, under the wheel+pools stack and the
   heap/no-pool reference — the batched broadcast fan-out (staged wheel
   splices) must leave the event stream bit-identical to the heap's
   push-per-destination. The horizon is short: at n=256 even 100 simulated
   milliseconds is ~1M messages through both backends. *)
let test_n256_backend_digest_differential () =
  let n = 256 in
  let config = Omega.Config.default ~n ~t:((n - 1) / 2) Omega.Config.Fig1 in
  let env =
    Scenarios.Env.make config
      (Scenarios.Scenario.Rotating_star { center = n - 2 })
  in
  let digest_of sched flight_pool =
    let spec =
      Harness.Run.Spec.(
        default |> with_check false |> with_digest true |> with_sched sched
        |> with_flight_pool flight_pool
        |> with_horizon (Sim.Time.of_ms 100))
    in
    let result = Harness.Run.run ~spec ~env ~seed:7L () in
    Option.get result.Harness.Run.digest
  in
  check (Alcotest.of_pp (fun fmt d -> Format.fprintf fmt "%Lx" d))
    "wheel+pools and heap/no-pool digests agree at n=256"
    (digest_of `Heap false) (digest_of `Wheel true)

(* The n-scaling budget: one simulated second at n=32 under the default
   wheel+pools stack. Like test_rng's n=4 budget, the bound is ~1.4x the
   measured value — a breach means per-message allocation crept back into
   the scaled path (wheel cells, flights, or round cells). *)
let test_n32_run_budget () =
  let config = Omega.Config.default ~n:32 ~t:8 Omega.Config.Fig1 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_check false |> with_horizon (Sim.Time.of_sec 1))
  in
  let run () = ignore (Harness.Run.run ~spec ~env ~seed:7L ()) in
  run () (* warm-up: first run pays one-time lazy setup *);
  let words = minor_words_of run in
  check bool_t
    (Printf.sprintf
       "null-sink 1s n=32 run allocated %d minor words (budget 2600000)" words)
    true
    (words < 2_600_000)

(* Same gate at the large-cluster tier: 300 simulated milliseconds at
   n=256 (~2.9M messages). The per-message budget is tighter than n=32's —
   per-round costs (payload copies, round cells, suspicion lists) amortize
   over more messages at large n, so regressions of the per-message path
   stand out more sharply here. *)
let test_n256_run_budget () =
  let n = 256 in
  let config = Omega.Config.default ~n ~t:((n - 1) / 2) Omega.Config.Fig1 in
  let env =
    Scenarios.Env.make config
      (Scenarios.Scenario.Rotating_star { center = n - 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_check false |> with_horizon (Sim.Time.of_ms 300))
  in
  let run () = ignore (Harness.Run.run ~spec ~env ~seed:7L ()) in
  run ();
  let words = minor_words_of run in
  check bool_t
    (Printf.sprintf
       "null-sink 300ms n=256 run allocated %d minor words (budget 12000000)"
       words)
    true
    (words < 12_000_000)

(* ALIVE-payload interning (DESIGN.md §14): under a full-timely regime no
   suspicion level ever rises past the anarchy prefix, so every sender's
   payload stays clean and is re-broadcast as the same array object round
   after round — no per-round [Array.copy], and receivers skip the merge by
   physical equality. Steady-state per-round allocation for the whole
   64-process cluster must then be O(n) words (timer handles, round-table
   cells), nowhere near the ~n*(n+2) words per round that per-broadcast
   payload copies would cost (~4200 at n=64). The anarchy prefix *does*
   copy (levels rise every round there), so the steady state is isolated
   by differencing a 2 s run against a 1 s run — both pay the identical
   prefix, and the difference is 100 stabilized rounds. Measured ~58
   words/node/round; budget 90*n per round. *)
let test_payload_interning_budget () =
  let n = 64 in
  let config = Omega.Config.default ~n ~t:((n - 1) / 2) Omega.Config.Fig1 in
  let env = Scenarios.Env.make config Scenarios.Scenario.Full_timely in
  let run horizon_ms () =
    let spec =
      Harness.Run.Spec.(
        default |> with_check false
        |> with_horizon (Sim.Time.of_ms horizon_ms))
    in
    ignore (Harness.Run.run ~spec ~env ~seed:7L ())
  in
  run 1_000 ();
  let words_1s = minor_words_of (run 1_000) in
  let words_2s = minor_words_of (run 2_000) in
  (* 100 rounds of 10ms in the second simulated second. *)
  let words_per_round = (words_2s - words_1s) / 100 in
  check bool_t
    (Printf.sprintf
       "full-timely steady-state n=64 allocated %d minor words/round \
        (budget 90*n)"
       words_per_round)
    true
    (words_per_round < 90 * n)

let () =
  Alcotest.run "wheel"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "push below cursor raises" `Quick
            test_push_below_cursor_raises;
          Alcotest.test_case "empty pop raises" `Quick test_empty_raises;
          Alcotest.test_case "peek does not advance cursor" `Quick
            test_peek_does_not_advance;
          Alcotest.test_case "stage/commit equals pushes" `Quick
            test_stage_commit_basics;
          Alcotest.test_case "stage below cursor raises" `Quick
            test_stage_below_cursor_raises;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random schedules match heap" `Quick
            test_differential_spread;
          Alcotest.test_case "wide keys cross levels" `Quick
            test_differential_wide;
          Alcotest.test_case "same-time bursts keep FIFO" `Quick
            test_differential_bursts;
          Alcotest.test_case "batched inserts match heap" `Quick
            test_batch_differential;
          Alcotest.test_case "engine backends agree" `Quick
            test_engine_differential;
          Alcotest.test_case "n=256 backend digests agree" `Slow
            test_n256_backend_digest_differential;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "steady state is allocation-free" `Quick
            test_wheel_steady_state_alloc_free;
          Alcotest.test_case "n=32 run budget" `Slow test_n32_run_budget;
          Alcotest.test_case "n=256 run budget" `Slow test_n256_run_budget;
          Alcotest.test_case "payload interning budget" `Slow
            test_payload_interning_budget;
        ] );
    ]
