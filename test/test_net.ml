(* Tests for the simulated network: delivery, delay oracle, crash and drop
   semantics, tracing, counters. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let us = Sim.Time.of_us

type msg = Ping of int

let constant_delay d ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
  Net.Network.Deliver_after (us d)

let make ?(n = 3) ?(oracle = constant_delay 10) () =
  let engine = Sim.Engine.create ~seed:1L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle oracle)
      engine ~n
  in
  (engine, net)

let inbox net p =
  let log = ref [] in
  Net.Network.set_handler net p (fun ~src msg -> log := (src, msg) :: !log);
  log

let test_delivery_with_delay () =
  let engine, net = make () in
  let inbox1 = inbox net 1 in
  Net.Network.send net ~src:0 ~dst:1 (Ping 7);
  Sim.Engine.run_until engine (us 9);
  check int_t "not yet delivered" 0 (List.length !inbox1);
  Sim.Engine.run_until engine (us 10);
  check (Alcotest.list (Alcotest.pair int_t bool_t)) "delivered"
    [ (0, true) ]
    (List.map (fun (src, Ping v) -> (src, v = 7)) !inbox1)

let test_broadcast_excludes_self () =
  let engine, net = make ~n:4 () in
  let inboxes = List.init 4 (fun p -> inbox net p) in
  Net.Network.broadcast net ~src:2 (Ping 1);
  Sim.Engine.run_until engine (us 100);
  let counts = List.map (fun box -> List.length !box) inboxes in
  check (Alcotest.list int_t) "everyone but the sender" [ 1; 1; 0; 1 ] counts

let test_non_fifo_delays () =
  (* A later message with a shorter delay overtakes: links are not FIFO. *)
  let oracle ~now:_ ~seq ~src:_ ~dst:_ _ =
    Net.Network.Deliver_after (if seq = 0 then us 50 else us 5)
  in
  let engine, net = make ~oracle () in
  let box = inbox net 1 in
  Net.Network.send net ~src:0 ~dst:1 (Ping 1);
  Net.Network.send net ~src:0 ~dst:1 (Ping 2);
  Sim.Engine.run_until engine (us 100);
  check (Alcotest.list int_t) "overtaking" [ 2; 1 ]
    (List.map (fun (_, Ping v) -> v) (List.rev !box))

let test_crash_stops_sending_and_receiving () =
  let engine, net = make () in
  let box1 = inbox net 1 in
  let box2 = inbox net 2 in
  Net.Network.send net ~src:0 ~dst:1 (Ping 1);
  Net.Network.crash net 1;
  (* In-flight message to the crashed process is consumed silently. *)
  Net.Network.send net ~src:1 ~dst:2 (Ping 2);
  (* crashed: no-op *)
  Sim.Engine.run_until engine (us 100);
  check int_t "crashed receives nothing" 0 (List.length !box1);
  check int_t "crashed sends nothing" 0 (List.length !box2);
  check bool_t "is_crashed" true (Net.Network.is_crashed net 1);
  check (Alcotest.list int_t) "correct excludes crashed" [ 0; 2 ]
    (Net.Network.correct net)

let test_drop () =
  let oracle ~now:_ ~seq:_ ~src:_ ~dst ~(msg : msg) =
    ignore msg;
    if dst = 1 then Net.Network.Drop else Net.Network.Deliver_after (us 1)
  in
  let oracle ~now ~seq ~src ~dst msg = oracle ~now ~seq ~src ~dst ~msg in
  let engine, net = make ~oracle () in
  let box1 = inbox net 1 in
  let box2 = inbox net 2 in
  Net.Network.send net ~src:0 ~dst:1 (Ping 1);
  Net.Network.send net ~src:0 ~dst:2 (Ping 2);
  Sim.Engine.run_until engine (us 10);
  check int_t "dropped" 0 (List.length !box1);
  check int_t "other delivered" 1 (List.length !box2);
  check int_t "dropped counter" 1 (Net.Network.dropped_count net);
  check int_t "sent counter" 2 (Net.Network.sent_count net);
  check int_t "delivered counter" 1 (Net.Network.delivered_count net)

let test_counters () =
  let engine, net = make () in
  ignore (inbox net 1);
  for _ = 1 to 5 do
    Net.Network.send net ~src:0 ~dst:1 (Ping 0)
  done;
  Sim.Engine.run_until engine (us 100);
  check int_t "sent" 5 (Net.Network.sent_count net);
  check int_t "delivered" 5 (Net.Network.delivered_count net);
  check int_t "dropped" 0 (Net.Network.dropped_count net)

let test_tracer_events () =
  (* The network emits typed Obs events through the engine's sink. *)
  let engine, net = make () in
  ignore (inbox net 1);
  let sent = ref 0 and delivered = ref 0 in
  Sim.Engine.set_sink engine
    (Obs.Sink.make ~mask:Obs.Event.c_net (function
      | Obs.Event.Send _ -> incr sent
      | Obs.Event.Deliver { now; sent_at; _ } ->
          incr delivered;
          check int_t "delay recorded" 10 (now - sent_at)
      | _ -> ()));
  Net.Network.send net ~src:0 ~dst:1 (Ping 1);
  Sim.Engine.run_until engine (us 100);
  check int_t "sent traced" 1 !sent;
  check int_t "delivered traced" 1 !delivered

let test_self_send () =
  let engine, net = make () in
  let box0 = inbox net 0 in
  Net.Network.send net ~src:0 ~dst:0 (Ping 9);
  Sim.Engine.run_until engine (us 100);
  check (Alcotest.list int_t) "self delivery" [ 0 ]
    (List.map fst !box0)

let test_bad_args () =
  let _, net = make () in
  Alcotest.check_raises "send bad pid"
    (Invalid_argument "Network.send: pid 9 out of range") (fun () ->
      Net.Network.send net ~src:0 ~dst:9 (Ping 0));
  let raised =
    try
      let engine = Sim.Engine.create ~seed:1L () in
      ignore
        (Net.Network.of_spec
           Net.Spec.(default |> with_oracle (constant_delay 1))
           engine ~n:0);
      false
    with Invalid_argument _ -> true
  in
  check bool_t "n=0 rejected" true raised

let test_negative_delay_rejected () =
  let oracle ~now:_ ~seq:_ ~src:_ ~dst:_ _ = Net.Network.Deliver_after (us (-1)) in
  let _, net = make ~oracle () in
  let raised =
    try
      Net.Network.send net ~src:0 ~dst:1 (Ping 0);
      false
    with Invalid_argument _ -> true
  in
  check bool_t "negative delay rejected" true raised

let prop_reliable_no_loss =
  (* Every message sent between non-crashed processes is delivered exactly
     once (reliability), for any delays. *)
  QCheck.Test.make ~name:"network is reliable (no loss, no duplication)"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (int_bound 500))
    (fun delays ->
      let engine = Sim.Engine.create ~seed:3L () in
      let remaining = ref delays in
      let oracle ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
        match !remaining with
        | d :: rest ->
            remaining := rest;
            Net.Network.Deliver_after (us d)
        | [] -> Net.Network.Deliver_after (us 0)
      in
      let net =
        Net.Network.of_spec
          Net.Spec.(default |> with_oracle oracle)
          engine ~n:2
      in
      let received = ref 0 in
      Net.Network.set_handler net 1 (fun ~src:_ _ -> incr received);
      List.iteri (fun i _ -> Net.Network.send net ~src:0 ~dst:1 (Ping i)) delays;
      Sim.Engine.run_until engine (us 1000);
      !received = List.length delays)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "net"
    [
      ( "network",
        [
          Alcotest.test_case "delivery with delay" `Quick test_delivery_with_delay;
          Alcotest.test_case "broadcast excludes self" `Quick
            test_broadcast_excludes_self;
          Alcotest.test_case "non-fifo" `Quick test_non_fifo_delays;
          Alcotest.test_case "crash semantics" `Quick
            test_crash_stops_sending_and_receiving;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "tracer" `Quick test_tracer_events;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          qtest prop_reliable_no_loss;
        ] );
    ]
