(* Unit and property tests for the dstruct substrate. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* ------------------------------------------------------------- Pqueue *)

let test_pqueue_basic () =
  let q = Dstruct.Pqueue.create ~compare:Int.compare in
  check bool_t "empty" true (Dstruct.Pqueue.is_empty q);
  check (Alcotest.option int_t) "peek empty" None (Dstruct.Pqueue.peek q);
  check (Alcotest.option int_t) "pop empty" None (Dstruct.Pqueue.pop q);
  List.iter (Dstruct.Pqueue.push q) [ 5; 1; 4; 1; 3 ];
  check int_t "length" 5 (Dstruct.Pqueue.length q);
  check (Alcotest.option int_t) "peek min" (Some 1) (Dstruct.Pqueue.peek q);
  check int_t "peek does not remove" 5 (Dstruct.Pqueue.length q);
  let drained = List.init 5 (fun _ -> Dstruct.Pqueue.pop_exn q) in
  check (Alcotest.list int_t) "sorted drain" [ 1; 1; 3; 4; 5 ] drained;
  check bool_t "empty again" true (Dstruct.Pqueue.is_empty q)

let test_pqueue_pop_exn_empty () =
  let q = Dstruct.Pqueue.create ~compare:Int.compare in
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Pqueue.pop_exn: empty heap") (fun () ->
      ignore (Dstruct.Pqueue.pop_exn q))

let test_pqueue_fifo_ties () =
  (* Equal priorities must pop in insertion order (the engine's determinism
     depends on it). *)
  let q = Dstruct.Pqueue.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Dstruct.Pqueue.push q) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let order = List.init 4 (fun _ -> snd (Dstruct.Pqueue.pop_exn q)) in
  check (Alcotest.list Alcotest.string) "fifo ties" [ "z"; "a"; "b"; "c" ] order

let test_pqueue_to_sorted_list_preserves () =
  let q = Dstruct.Pqueue.create ~compare:Int.compare in
  List.iter (Dstruct.Pqueue.push q) [ 3; 1; 2 ];
  check (Alcotest.list int_t) "sorted view" [ 1; 2; 3 ]
    (Dstruct.Pqueue.to_sorted_list q);
  check int_t "unchanged" 3 (Dstruct.Pqueue.length q);
  check (Alcotest.option int_t) "still peeks min" (Some 1)
    (Dstruct.Pqueue.peek q)

let test_pqueue_clear () =
  let q = Dstruct.Pqueue.create ~compare:Int.compare in
  List.iter (Dstruct.Pqueue.push q) [ 3; 1; 2 ];
  Dstruct.Pqueue.clear q;
  check bool_t "cleared" true (Dstruct.Pqueue.is_empty q);
  Dstruct.Pqueue.push q 9;
  check (Alcotest.option int_t) "usable after clear" (Some 9)
    (Dstruct.Pqueue.pop q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains any list sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let q = Dstruct.Pqueue.create ~compare:Int.compare in
      List.iter (Dstruct.Pqueue.push q) xs;
      Dstruct.Pqueue.to_sorted_list q = List.sort Int.compare xs)

let prop_pqueue_interleaved =
  (* Model check: interleaved pushes and pops against a sorted-list model. *)
  QCheck.Test.make ~name:"pqueue matches sorted-list model under mixed ops"
    ~count:200
    QCheck.(list (option int))
    (fun ops ->
      let q = Dstruct.Pqueue.create ~compare:Int.compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Dstruct.Pqueue.push q x;
              model := List.sort Int.compare (x :: !model);
              true
          | None -> (
              match (Dstruct.Pqueue.pop q, !model) with
              | None, [] -> true
              | Some v, m :: rest ->
                  model := rest;
                  v = m
              | _ -> false))
        ops)

(* ---------------------------------------------------------------- Rng *)

let test_rng_deterministic () =
  let a = Dstruct.Rng.create 42L and b = Dstruct.Rng.create 42L in
  for _ = 1 to 100 do
    check bool_t "same stream" true (Dstruct.Rng.bits64 a = Dstruct.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Dstruct.Rng.create 1L and b = Dstruct.Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Dstruct.Rng.bits64 a = Dstruct.Rng.bits64 b then incr same
  done;
  check bool_t "different seeds diverge" true (!same < 4)

let test_rng_split_independent () =
  let root = Dstruct.Rng.create 7L in
  let a = Dstruct.Rng.split root in
  let b = Dstruct.Rng.split root in
  (* Draws from a must not affect b. *)
  let b_copy = Dstruct.Rng.copy b in
  for _ = 1 to 10 do
    ignore (Dstruct.Rng.bits64 a)
  done;
  for _ = 1 to 10 do
    check bool_t "b unaffected by a" true
      (Dstruct.Rng.bits64 b = Dstruct.Rng.bits64 b_copy)
  done

let test_rng_bad_args () =
  let rng = Dstruct.Rng.create 1L in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dstruct.Rng.int rng 0));
  Alcotest.check_raises "int_in inverted" (Invalid_argument "Rng.int_in: lo > hi")
    (fun () -> ignore (Dstruct.Rng.int_in rng 3 2));
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Dstruct.Rng.pick rng []))

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int stays in range" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Dstruct.Rng.create (Int64.of_int seed) in
      let v = Dstruct.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng int_in stays inclusive" ~count:500
    QCheck.(triple small_int (int_bound 100) (int_bound 100))
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Dstruct.Rng.create (Int64.of_int seed) in
      let v = Dstruct.Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let prop_rng_sample =
  QCheck.Test.make ~name:"rng sample is a k-subset" ~count:300
    QCheck.(pair small_int (list_of_size Gen.(1 -- 20) small_int))
    (fun (seed, xs) ->
      let xs = List.mapi (fun i x -> (i, x)) xs in
      let rng = Dstruct.Rng.create (Int64.of_int seed) in
      let k = Dstruct.Rng.int rng (List.length xs + 1) in
      let s = Dstruct.Rng.sample rng k xs in
      List.length s = k
      && List.for_all (fun x -> List.mem x xs) s
      && List.length (List.sort_uniq compare s) = k)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"rng shuffle is a permutation" ~count:300
    QCheck.(pair small_int (list int))
    (fun (seed, xs) ->
      let rng = Dstruct.Rng.create (Int64.of_int seed) in
      List.sort compare (Dstruct.Rng.shuffle rng xs) = List.sort compare xs)

let test_rng_chance_extremes () =
  let rng = Dstruct.Rng.create 3L in
  for _ = 1 to 20 do
    check bool_t "p=0 never" false (Dstruct.Rng.chance rng 0.);
    check bool_t "p=1 always" true (Dstruct.Rng.chance rng 1.)
  done

let test_rng_exponential_positive () =
  let rng = Dstruct.Rng.create 3L in
  for _ = 1 to 100 do
    check bool_t "exp >= 0" true (Dstruct.Rng.exponential rng ~mean:5. >= 0.)
  done

(* ------------------------------------------------------------- Rounds *)

let test_rounds_basic () =
  let r = Dstruct.Rounds.create () in
  check int_t "floor 0" 0 (Dstruct.Rounds.floor r);
  check (Alcotest.option int_t) "absent" None (Dstruct.Rounds.find r 5);
  let v = Dstruct.Rounds.find_or_add r 5 ~default:(fun () -> 42) in
  check int_t "default" 42 v;
  check (Alcotest.option int_t) "present" (Some 42) (Dstruct.Rounds.find r 5);
  Dstruct.Rounds.set r 5 7;
  check (Alcotest.option int_t) "set" (Some 7) (Dstruct.Rounds.find r 5);
  check int_t "cardinal" 1 (Dstruct.Rounds.cardinal r);
  check (Alcotest.option int_t) "max_round" (Some 5)
    (Dstruct.Rounds.max_round r)

let test_rounds_prune () =
  let r = Dstruct.Rounds.create () in
  for rn = 1 to 10 do
    Dstruct.Rounds.set r rn rn
  done;
  Dstruct.Rounds.prune_below r 6;
  check int_t "floor raised" 6 (Dstruct.Rounds.floor r);
  check int_t "pruned" 5 (Dstruct.Rounds.cardinal r);
  check (Alcotest.option int_t) "below floor reads None" None
    (Dstruct.Rounds.find r 3);
  check (Alcotest.option int_t) "above floor kept" (Some 8)
    (Dstruct.Rounds.find r 8);
  (* Prune never lowers the floor. *)
  Dstruct.Rounds.prune_below r 2;
  check int_t "floor monotone" 6 (Dstruct.Rounds.floor r)

let test_rounds_no_resurrection () =
  let r = Dstruct.Rounds.create () in
  Dstruct.Rounds.set r 4 1;
  Dstruct.Rounds.prune_below r 5;
  Alcotest.check_raises "find_or_add below floor"
    (Invalid_argument "Rounds.find_or_add: round 4 below floor 5") (fun () ->
      ignore (Dstruct.Rounds.find_or_add r 4 ~default:(fun () -> 0)));
  Alcotest.check_raises "set below floor"
    (Invalid_argument "Rounds.set: round 4 below floor 5") (fun () ->
      Dstruct.Rounds.set r 4 0)

let prop_rounds_model =
  (* Model check against a Map, with interleaved set/prune. *)
  QCheck.Test.make ~name:"rounds matches map model" ~count:200
    QCheck.(list (pair (int_bound 50) (option (int_bound 50))))
    (fun ops ->
      let module M = Map.Make (Int) in
      let r = Dstruct.Rounds.create () in
      let model = ref M.empty in
      let floor = ref 0 in
      List.for_all
        (fun (rn, op) ->
          match op with
          | Some v when rn >= !floor ->
              Dstruct.Rounds.set r rn v;
              model := M.add rn v !model;
              true
          | Some _ -> true (* skip writes below floor *)
          | None ->
              Dstruct.Rounds.prune_below r rn;
              if rn > !floor then begin
                floor := rn;
                model := M.filter (fun k _ -> k >= rn) !model
              end;
              M.for_all (fun k v -> Dstruct.Rounds.find r k = Some v) !model
              && Dstruct.Rounds.cardinal r = M.cardinal !model)
        ops)

(* ------------------------------------------------------------- Bitset *)

let test_bitset_basic () =
  let s = Dstruct.Bitset.create 10 in
  check int_t "empty cardinal" 0 (Dstruct.Bitset.cardinal s);
  Dstruct.Bitset.add s 3;
  Dstruct.Bitset.add s 7;
  Dstruct.Bitset.add s 3;
  check int_t "cardinal dedups" 2 (Dstruct.Bitset.cardinal s);
  check bool_t "mem 3" true (Dstruct.Bitset.mem s 3);
  check bool_t "not mem 4" false (Dstruct.Bitset.mem s 4);
  Dstruct.Bitset.remove s 3;
  check bool_t "removed" false (Dstruct.Bitset.mem s 3);
  Dstruct.Bitset.remove s 3;
  check int_t "remove idempotent" 1 (Dstruct.Bitset.cardinal s);
  check (Alcotest.list int_t) "to_list" [ 7 ] (Dstruct.Bitset.to_list s)

let test_bitset_complement () =
  let s = Dstruct.Bitset.of_list ~capacity:5 [ 0; 2; 4 ] in
  check (Alcotest.list int_t) "complement" [ 1; 3 ]
    (Dstruct.Bitset.to_list (Dstruct.Bitset.complement s))

let test_bitset_bounds () =
  let s = Dstruct.Bitset.create 4 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset.add: 4 out of range [0,4)") (fun () ->
      Dstruct.Bitset.add s 4);
  Alcotest.check_raises "mem negative"
    (Invalid_argument "Bitset.mem: -1 out of range [0,4)") (fun () ->
      ignore (Dstruct.Bitset.mem s (-1)))

let test_bitset_copy_clear () =
  let s = Dstruct.Bitset.of_list ~capacity:8 [ 1; 5 ] in
  let c = Dstruct.Bitset.copy s in
  Dstruct.Bitset.add s 2;
  check bool_t "copy isolated" false (Dstruct.Bitset.mem c 2);
  check bool_t "equal self" true (Dstruct.Bitset.equal c c);
  check bool_t "not equal after change" false (Dstruct.Bitset.equal s c);
  Dstruct.Bitset.clear s;
  check int_t "clear" 0 (Dstruct.Bitset.cardinal s);
  check bool_t "clear removes" false (Dstruct.Bitset.mem s 1)

let test_bitset_scans () =
  (* Members straddling word boundaries: ids in three different 32-bit
     words, including both edges of a word. *)
  let members = [ 0; 1; 31; 32; 63; 64; 70 ] in
  let s = Dstruct.Bitset.of_list ~capacity:71 members in
  let seen = ref [] in
  Dstruct.Bitset.iter_set s (fun i -> seen := i :: !seen);
  check (Alcotest.list int_t) "iter_set ascending" members (List.rev !seen);
  check (Alcotest.list int_t) "fold_set ascending" members
    (List.rev (Dstruct.Bitset.fold_set s ~init:[] ~f:(fun acc i -> i :: acc)));
  check int_t "first_set" 0 (Dstruct.Bitset.first_set s);
  Dstruct.Bitset.remove s 0;
  Dstruct.Bitset.remove s 1;
  Dstruct.Bitset.remove s 31;
  check int_t "first_set skips empty word" 32 (Dstruct.Bitset.first_set s);
  check int_t "first_set empty" (-1)
    (Dstruct.Bitset.first_set (Dstruct.Bitset.create 40))

let test_bitset_unset_scans () =
  let capacity = 67 in
  let members = [ 2; 31; 32; 64; 66 ] in
  let s = Dstruct.Bitset.of_list ~capacity members in
  let expected =
    List.filter (fun i -> not (List.mem i members)) (List.init capacity Fun.id)
  in
  let seen = ref [] in
  Dstruct.Bitset.iter_unset s (fun i -> seen := i :: !seen);
  check (Alcotest.list int_t) "iter_unset ascending" expected (List.rev !seen);
  check (Alcotest.list int_t) "fold_unset ascending" expected
    (List.rev (Dstruct.Bitset.fold_unset s ~init:[] ~f:(fun acc i -> i :: acc)));
  (* The tail bits beyond capacity must never leak in: a full set has no
     unset ids even when capacity is not a multiple of 32. *)
  let full = Dstruct.Bitset.of_list ~capacity:33 (List.init 33 Fun.id) in
  Dstruct.Bitset.iter_unset full (fun i ->
      Alcotest.failf "iter_unset leaked %d on a full set" i);
  check (Alcotest.list int_t) "complement of full is empty" []
    (Dstruct.Bitset.to_list (Dstruct.Bitset.complement full))

let prop_bitset_scan_model =
  QCheck.Test.make ~name:"bitset scans match to_list" ~count:300
    QCheck.(list (int_bound 49))
    (fun ids ->
      let b = Dstruct.Bitset.of_list ~capacity:50 ids in
      let set_scan =
        List.rev (Dstruct.Bitset.fold_set b ~init:[] ~f:(fun acc i -> i :: acc))
      in
      let unset_scan =
        List.rev
          (Dstruct.Bitset.fold_unset b ~init:[] ~f:(fun acc i -> i :: acc))
      in
      let members = Dstruct.Bitset.to_list b in
      set_scan = members
      && unset_scan
         = List.filter (fun i -> not (List.mem i members)) (List.init 50 Fun.id)
      && Dstruct.Bitset.first_set b
         = (match members with [] -> -1 | hd :: _ -> hd))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset matches Set model" ~count:300
    QCheck.(list (pair bool (int_bound 31)))
    (fun ops ->
      let module S = Set.Make (Int) in
      let b = Dstruct.Bitset.create 32 in
      let model =
        List.fold_left
          (fun model (add, i) ->
            if add then begin
              Dstruct.Bitset.add b i;
              S.add i model
            end
            else begin
              Dstruct.Bitset.remove b i;
              S.remove i model
            end)
          S.empty ops
      in
      Dstruct.Bitset.to_list b = S.elements model
      && Dstruct.Bitset.cardinal b = S.cardinal model)

(* -------------------------------------------------------------- Stats *)

let test_stats_known () =
  let s = Dstruct.Stats.create () in
  List.iter (Dstruct.Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check int_t "count" 8 (Dstruct.Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Dstruct.Stats.mean s);
  check (Alcotest.float 1e-9) "min" 2.0 (Dstruct.Stats.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Dstruct.Stats.max s);
  (* Sample stddev of this classic series: sqrt(32/7). *)
  check (Alcotest.float 1e-9) "stddev" (sqrt (32. /. 7.)) (Dstruct.Stats.stddev s);
  check (Alcotest.float 1e-9) "median" 4.5 (Dstruct.Stats.median s);
  check (Alcotest.float 1e-9) "p0=min" 2.0 (Dstruct.Stats.percentile s 0.);
  check (Alcotest.float 1e-9) "p100=max" 9.0 (Dstruct.Stats.percentile s 100.)

let test_stats_empty () =
  let s = Dstruct.Stats.create () in
  check bool_t "is_empty" true (Dstruct.Stats.is_empty s);
  check (Alcotest.float 0.) "stddev 0 below 2 samples" 0.
    (Dstruct.Stats.stddev s);
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Stats.percentile: empty series") (fun () ->
      ignore (Dstruct.Stats.percentile s 50.))

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"stats mean within min..max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let s = Dstruct.Stats.create () in
      List.iter (Dstruct.Stats.add s) xs;
      Dstruct.Stats.mean s >= Dstruct.Stats.min s -. 1e-9
      && Dstruct.Stats.mean s <= Dstruct.Stats.max s +. 1e-9)

let prop_stats_percentile_monotone =
  QCheck.Test.make ~name:"stats percentile monotone in p" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 40) (float_bound_inclusive 100.))
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let s = Dstruct.Stats.create () in
      List.iter (Dstruct.Stats.add s) xs;
      Dstruct.Stats.percentile s lo <= Dstruct.Stats.percentile s hi +. 1e-9)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dstruct"
    [
      ( "pqueue",
        [
          Alcotest.test_case "basic" `Quick test_pqueue_basic;
          Alcotest.test_case "pop_exn empty" `Quick test_pqueue_pop_exn_empty;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "sorted view" `Quick
            test_pqueue_to_sorted_list_preserves;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          qtest prop_pqueue_sorts;
          qtest prop_pqueue_interleaved;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bad args" `Quick test_rng_bad_args;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "exponential positive" `Quick
            test_rng_exponential_positive;
          qtest prop_rng_int_range;
          qtest prop_rng_int_in_range;
          qtest prop_rng_sample;
          qtest prop_rng_shuffle_permutes;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "basic" `Quick test_rounds_basic;
          Alcotest.test_case "prune" `Quick test_rounds_prune;
          Alcotest.test_case "no resurrection" `Quick test_rounds_no_resurrection;
          qtest prop_rounds_model;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "complement" `Quick test_bitset_complement;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "copy/clear" `Quick test_bitset_copy_clear;
          Alcotest.test_case "set scans" `Quick test_bitset_scans;
          Alcotest.test_case "unset scans" `Quick test_bitset_unset_scans;
          qtest prop_bitset_scan_model;
          qtest prop_bitset_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          qtest prop_stats_mean_bounds;
          qtest prop_stats_percentile_monotone;
        ] );
    ]
