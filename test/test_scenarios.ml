(* Tests for the assumption regimes: plan determinism, witness shape (Q
   sets, S gaps), delay-policy guarantees, and end-to-end checker
   compliance on real runs. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

module Scenario = Scenarios.Scenario
module Checker = Scenarios.Checker

let params ?(n = 8) ?(t = 3) () =
  Scenario.default_params ~n ~t ~beta:(Sim.Time.of_ms 10)

let make ?(seed = 42L) ?(n = 8) ?(t = 3) regime =
  Scenario.create (params ~n ~t ()) regime ~seed

(* ---------------------------------------------------------- plan shape *)

let test_deterministic_plans () =
  let a = make (Scenario.Rotating_star { center = 6 }) in
  let b = make (Scenario.Rotating_star { center = 6 }) in
  for rn = 1 to 200 do
    check bool_t "same plan" true (Scenario.q_set a rn = Scenario.q_set b rn)
  done

let test_seed_changes_plans () =
  let a = make ~seed:1L (Scenario.Rotating_star { center = 6 }) in
  let b = make ~seed:2L (Scenario.Rotating_star { center = 6 }) in
  let differs = ref false in
  for rn = 30 to 130 do
    if Scenario.q_set a rn <> Scenario.q_set b rn then differs := true
  done;
  check bool_t "plans differ across seeds" true !differs

let test_q_set_shape () =
  let s = make (Scenario.Rotating_star { center = 6 }) in
  for rn = 30 to 100 do
    let q = Scenario.q_set s rn in
    check int_t "size t" 3 (List.length q);
    check bool_t "center not a point" true (not (List.mem_assoc 6 q));
    check bool_t "no duplicates" true
      (List.length (List.sort_uniq compare (List.map fst q)) = 3)
  done

let test_q_rotates () =
  let s = make (Scenario.Rotating_star { center = 6 }) in
  let sets =
    List.init 50 (fun i ->
        List.sort compare (List.map fst (Scenario.q_set s (30 + i))))
  in
  check bool_t "Q varies across rounds" true
    (List.length (List.sort_uniq compare sets) > 1)

let test_fixed_q_regimes () =
  List.iter
    (fun regime ->
      let s = make regime in
      let q0 = Scenario.q_set s 30 in
      for rn = 31 to 120 do
        check bool_t "Q fixed" true (Scenario.q_set s rn = q0)
      done)
    [
      Scenario.T_source { center = 6 };
      Scenario.Message_pattern { center = 6 };
      Scenario.Combined { center = 6 };
    ]

let test_modes_per_regime () =
  let all_modes regime =
    let s = make regime in
    List.concat_map
      (fun rn -> List.map snd (Scenario.q_set s rn))
      (List.init 80 (fun i -> 30 + i))
  in
  check bool_t "t-source all timely" true
    (List.for_all
       (( = ) Scenario.Timely)
       (all_modes (Scenario.T_source { center = 6 })));
  check bool_t "moving source all timely" true
    (List.for_all
       (( = ) Scenario.Timely)
       (all_modes (Scenario.Moving_source { center = 6 })));
  check bool_t "message pattern all winning" true
    (List.for_all
       (( = ) Scenario.Winning)
       (all_modes (Scenario.Message_pattern { center = 6 })));
  let rotating = all_modes (Scenario.Rotating_star { center = 6 }) in
  check bool_t "rotating star mixes modes" true
    (List.mem Scenario.Timely rotating && List.mem Scenario.Winning rotating)

let test_no_plan_before_rn0 () =
  let s = make (Scenario.Rotating_star { center = 6 }) in
  let p = Scenario.params s in
  for rn = 1 to p.Scenario.rn0 - 1 do
    check bool_t "not in S before rn0" false (Scenario.in_s s rn);
    check int_t "no Q before rn0" 0 (List.length (Scenario.q_set s rn))
  done

let test_intermittent_gaps_bounded () =
  let d = 8 in
  let s = make (Scenario.Intermittent_star { center = 6; d }) in
  let last = ref None in
  let max_gap = ref 0 in
  let in_s_count = ref 0 in
  for rn = 20 to 2000 do
    if Scenario.in_s s rn then begin
      incr in_s_count;
      (match !last with
      | Some prev -> if rn - prev > !max_gap then max_gap := rn - prev
      | None -> ());
      last := Some rn
    end
  done;
  check bool_t "S is infinite-ish" true (!in_s_count > 100);
  check bool_t "gaps bounded by D" true (!max_gap <= d);
  check bool_t "actually intermittent" true (!in_s_count < 1900)

let test_full_timely_and_chaos_have_no_star () =
  check bool_t "full timely no center" true
    (Scenario.center (make Scenario.Full_timely) = None);
  check bool_t "chaos no center" true
    (Scenario.center (make Scenario.Chaos) = None);
  let chaos = make Scenario.Chaos in
  check int_t "chaos never in S" 0
    (List.length
       (List.filter (fun rn -> Scenario.in_s chaos rn)
          (List.init 100 (fun i -> i + 1))))

let test_failover_switches_center () =
  let s = make (Scenario.Failover { first = 2; second = 6; switch = 100 }) in
  check (Alcotest.option int_t) "initial center" (Some 2) (Scenario.center s);
  check (Alcotest.option int_t) "before switch" (Some 2)
    (Scenario.center_at s 99);
  check (Alcotest.option int_t) "after switch" (Some 6)
    (Scenario.center_at s 100);
  check bool_t "pre-switch Q avoids 2" true
    (not (List.mem_assoc 2 (Scenario.q_set s 50)));
  check bool_t "post-switch Q avoids 6" true
    (not (List.mem_assoc 6 (Scenario.q_set s 150)))

let test_create_validation () =
  let bad f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check bool_t "center out of range" true
    (bad (fun () -> make (Scenario.T_source { center = 9 })));
  check bool_t "equal failover centers" true
    (bad (fun () ->
         make (Scenario.Failover { first = 1; second = 1; switch = 100 })));
  check bool_t "switch before rn0" true
    (bad (fun () ->
         make (Scenario.Failover { first = 1; second = 2; switch = 5 })));
  check bool_t "t out of range" true
    (bad (fun () ->
         Scenario.create (params ~n:4 ~t:4 ()) Scenario.Chaos ~seed:1L))

let test_growing_gaps_regime () =
  let s = make (Scenario.Growing_gaps { center = 6; d = 4; f_step = 8 }) in
  (* Gaps respect the per-round bound and actually grow. *)
  let last = ref 19 and max_gap = ref 0 and ok = ref true in
  for rn = 20 to 3000 do
    if Scenario.in_s s rn then begin
      let gap = rn - !last in
      if gap > !max_gap then max_gap := gap;
      if gap > 4 + (8 * (!last / 256)) then ok := false;
      last := rn
    end
  done;
  check bool_t "gaps within the announced bound" true !ok;
  check bool_t "gaps actually grow past any fixed D" true (!max_gap > 12);
  check int_t "f matches the bound shape" (4 + 8)
    (Scenario.f_function s 256);
  check int_t "f is 0 for plain regimes" 0
    (Scenario.f_function (make (Scenario.Intermittent_star { center = 6; d = 4 })) 999)

let test_g_function () =
  let step = Sim.Time.of_ms 1 in
  let s = make (Scenario.Growing_star { center = 6; d = 4; g_step = step }) in
  check int_t "g starts at 0" 0 (Sim.Time.to_us (Scenario.g_function s 1));
  check bool_t "g grows" true
    Sim.Time.(Scenario.g_function s 800 > Scenario.g_function s 80);
  let plain = make (Scenario.Rotating_star { center = 6 }) in
  check int_t "plain regimes have g = 0" 0
    (Sim.Time.to_us (Scenario.g_function plain 1000))

(* ------------------------------------------------------ delay policies *)

let delay_of s ~rn ~src ~dst ~now =
  let oracle = Scenario.oracle s ~round_of:(fun rn -> Some rn) in
  match oracle ~now:(Sim.Time.of_us now) ~seq:0 ~src ~dst rn with
  | Net.Network.Deliver_after d -> Sim.Time.to_us d
  | Net.Network.Drop -> Alcotest.fail "scenario oracles never drop"

let test_timely_points_within_delta () =
  let s = make (Scenario.T_source { center = 6 }) in
  let p = Scenario.params s in
  let delta = Sim.Time.to_us p.Scenario.delta in
  for rn = 30 to 80 do
    List.iter
      (fun (q, _) ->
        let d = delay_of s ~rn ~src:6 ~dst:q ~now:(rn * 10_000) in
        check bool_t "timely <= delta" true (d <= delta))
      (Scenario.q_set s rn)
  done

let test_winning_center_beats_competitors () =
  let s = make (Scenario.Message_pattern { center = 6 }) in
  for rn = 30 to 60 do
    List.iter
      (fun (q, _) ->
        let now = rn * 9_000 in
        let center_arrival = now + delay_of s ~rn ~src:6 ~dst:q ~now in
        List.iter
          (fun src ->
            if src <> 6 && src <> q then begin
              let a = now + delay_of s ~rn ~src ~dst:q ~now in
              check bool_t "competitor arrives after the center" true
                (a > center_arrival)
            end)
          (List.init 8 Fun.id))
      (Scenario.q_set s rn)
  done

let test_winning_center_not_timely () =
  (* The message-pattern center's delay grows with rn: time-free, not
     timely. *)
  let s = make (Scenario.Message_pattern { center = 6 }) in
  let q = fst (List.hd (Scenario.q_set s 40)) in
  let early = delay_of s ~rn:40 ~src:6 ~dst:q ~now:(40 * 10_000) in
  let q' = fst (List.hd (Scenario.q_set s 4000)) in
  let late = delay_of s ~rn:4000 ~src:6 ~dst:q' ~now:(4000 * 10_000) in
  check bool_t "delay grows without bound" true (late > (2 * early) + 100_000)

let test_victim_looks_crashed () =
  (* Under chaos some process's ALIVE is delayed beyond any horizon. *)
  let s = make Scenario.Chaos in
  let p = Scenario.params s in
  let huge = Sim.Time.to_us p.Scenario.victim_delay in
  let found = ref false in
  for rn = 30 to 60 do
    for src = 0 to 7 do
      let d = delay_of s ~rn ~src ~dst:((src + 1) mod 8) ~now:(rn * 10_000) in
      if d >= huge then found := true
    done
  done;
  check bool_t "a victim exists" true !found

let test_self_messages_fast () =
  let s = make Scenario.Chaos in
  let p = Scenario.params s in
  check int_t "self link min delay"
    (Sim.Time.to_us p.Scenario.min_delay)
    (delay_of s ~rn:50 ~src:3 ~dst:3 ~now:500_000)

(* ------------------------------------- end-to-end checker compliance *)

let run_and_check regime variant =
  let n = 8 and t = 3 in
  let config = Omega.Config.default ~n ~t variant in
  let env = Scenarios.Env.make config regime in
  Harness.Run.run
    ~spec:
      Harness.Run.Spec.(
        default
        |> with_horizon (Sim.Time.of_sec 15)
        |> with_crashes [ (0, Sim.Time.of_sec 4) ])
    ~env ~seed:7L ()

let test_checker_no_violations_star_regimes () =
  List.iter
    (fun regime ->
      let result = run_and_check regime Omega.Config.Fig3 in
      match result.Harness.Run.checker with
      | Some report ->
          check int_t
            (Scenario.regime_name regime ^ " violations")
            0
            (List.length report.Checker.violations);
          check bool_t
            (Scenario.regime_name regime ^ " checked some rounds")
            true
            (report.Checker.rounds_checked > 50)
      | None -> Alcotest.fail "expected a checker report")
    [
      Scenario.T_source { center = 6 };
      Scenario.Moving_source { center = 6 };
      Scenario.Message_pattern { center = 6 };
      Scenario.Combined { center = 6 };
      Scenario.Rotating_star { center = 6 };
      Scenario.Intermittent_star { center = 6; d = 8 };
    ]

let test_checker_detects_violations () =
  (* Feed the checker a trace that deliberately breaks the promise: claim a
     rotating star but deliver everything with chaos delays. *)
  let star = make (Scenario.Rotating_star { center = 6 }) in
  let chaos = make Scenario.Chaos in
  let engine = Sim.Engine.create ~seed:3L () in
  let net =
    Net.Network.of_spec
      Net.Spec.(
        default
        |> with_classify Omega.Message.info
        |> with_oracle
             (Scenario.oracle chaos ~round_of:Scenario.round_of_omega))
      engine ~n:8
  in
  let checker = Checker.create star in
  Sim.Engine.set_sink engine (Checker.sink checker);
  let config = Omega.Config.default ~n:8 ~t:3 Omega.Config.Fig3 in
  let cluster = Omega.Cluster.create config net in
  Omega.Cluster.start cluster;
  Sim.Engine.run_until engine (Sim.Time.of_sec 15);
  let report =
    Checker.verify checker ~upto_round:400 ~crashed:(fun _ -> false)
  in
  check bool_t "violations found" true
    (List.length report.Checker.violations > 0)

let test_describe_strings () =
  let has_sub sub str =
    let n = String.length sub and m = String.length str in
    let rec scan i = i + n <= m && (String.sub str i n = sub || scan (i + 1)) in
    scan 0
  in
  check bool_t "intermittent describe" true
    (has_sub "intermittent-star"
       (Scenario.describe (make (Scenario.Intermittent_star { center = 6; d = 4 }))));
  check bool_t "failover describe" true
    (has_sub "2->6"
       (Scenario.describe
          (make (Scenario.Failover { first = 2; second = 6; switch = 100 }))));
  check bool_t "chaos describe" true
    (has_sub "chaos" (Scenario.describe (make Scenario.Chaos)))

let test_round_of_omega () =
  check (Alcotest.option int_t) "alive tagged" (Some 9)
    (Scenario.round_of_omega
       (Omega.Message.Alive { rn = 9; susp_level = [| 0 |] }));
  check (Alcotest.option int_t) "suspicion untagged" None
    (Scenario.round_of_omega
       (Omega.Message.Suspicion { rn = 9; suspects = [] }))

let qtest = QCheck_alcotest.to_alcotest

let prop_intermittent_gaps =
  QCheck.Test.make ~name:"intermittent S gaps bounded for any D/seed" ~count:40
    QCheck.(pair (int_range 1 20) small_int)
    (fun (d, seed) ->
      let s =
        make
          ~seed:(Int64.of_int (seed + 1))
          (Scenario.Intermittent_star { center = 6; d })
      in
      let ok = ref true in
      let last = ref 19 in
      (* rn0 - 1: the first S round must be within D of rn0. *)
      for rn = 20 to 800 do
        if Scenario.in_s s rn then begin
          if rn - !last > d then ok := false;
          last := rn
        end
      done;
      !ok && 800 - !last <= d)

let () =
  Alcotest.run "scenarios"
    [
      ( "plans",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic_plans;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_plans;
          Alcotest.test_case "Q shape" `Quick test_q_set_shape;
          Alcotest.test_case "Q rotates" `Quick test_q_rotates;
          Alcotest.test_case "fixed-Q regimes" `Quick test_fixed_q_regimes;
          Alcotest.test_case "modes per regime" `Quick test_modes_per_regime;
          Alcotest.test_case "nothing before rn0" `Quick test_no_plan_before_rn0;
          Alcotest.test_case "intermittent gaps" `Quick
            test_intermittent_gaps_bounded;
          Alcotest.test_case "no star for symmetric regimes" `Quick
            test_full_timely_and_chaos_have_no_star;
          Alcotest.test_case "failover center switch" `Quick
            test_failover_switches_center;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "g function" `Quick test_g_function;
          Alcotest.test_case "growing gaps" `Quick test_growing_gaps_regime;
          Alcotest.test_case "describe" `Quick test_describe_strings;
          Alcotest.test_case "round_of_omega" `Quick test_round_of_omega;
          qtest prop_intermittent_gaps;
        ] );
      ( "delays",
        [
          Alcotest.test_case "timely within delta" `Quick
            test_timely_points_within_delta;
          Alcotest.test_case "winning order" `Quick
            test_winning_center_beats_competitors;
          Alcotest.test_case "winning not timely" `Quick
            test_winning_center_not_timely;
          Alcotest.test_case "victims look crashed" `Quick
            test_victim_looks_crashed;
          Alcotest.test_case "self messages fast" `Quick test_self_messages_fast;
        ] );
      ( "checker",
        [
          Alcotest.test_case "star regimes comply" `Slow
            test_checker_no_violations_star_regimes;
          Alcotest.test_case "detects violations" `Quick
            test_checker_detects_violations;
        ] );
    ]
