(* Tests for snapshot/restore (DESIGN.md §16): a run cut by a mid-run
   snapshot and continued from the restored copy must be bit-identical —
   same digest, same aggregate results — to the uninterrupted run, for
   both schedulers, both algorithms and faulted plans; and snapshotting
   must never perturb the run it copies. Also the failure modes: a staged
   broadcast batch, an unregistered packed function, and a trace sink all
   refuse to snapshot with a clean error and leave the live run usable. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let str_t = Alcotest.string
let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

let digest_hex result =
  Obs.Digest.to_hex (Option.get result.Harness.Run.digest)

(* Straight run vs: the same run advanced to [cut], snapshotted, restored,
   and finished — and the snapshotted original finished too (snapshot must
   not perturb it). All three must agree exactly. *)
let differential ~msg ~spec ~env ~seed ~cut =
  let straight = Harness.Run.run ~spec ~env ~seed () in
  let live = Harness.Run.start ~spec ~env ~seed () in
  Harness.Run.advance live ~until:cut;
  let bytes = Harness.Run.snapshot live in
  let restored = Harness.Run.finish (Harness.Run.restore bytes) in
  let original = Harness.Run.finish live in
  let agree label a b =
    check str_t (msg ^ ": " ^ label ^ " digest") (digest_hex a) (digest_hex b);
    check int_t
      (msg ^ ": " ^ label ^ " messages")
      a.Harness.Run.messages_sent b.Harness.Run.messages_sent;
    check (Alcotest.option int_t)
      (msg ^ ": " ^ label ^ " leader")
      a.Harness.Run.final_leader b.Harness.Run.final_leader;
    check int_t
      (msg ^ ": " ^ label ^ " samples")
      (List.length a.Harness.Run.samples)
      (List.length b.Harness.Run.samples)
  in
  agree "restored continuation" straight restored;
  agree "snapshotted original" straight original

(* ------------------------------------------------------- the matrix *)

let matrix_env ~n variant =
  let t = (n - 1) / 2 in
  let config = Omega.Config.default ~n ~t variant in
  Scenarios.Env.make config
    (Scenarios.Scenario.Rotating_star { center = n - 2 })

let relay_env ~n =
  let t = (n - 1) / 2 in
  let config =
    {
      (Omega.Config.default ~n ~t Omega.Config.Fig3) with
      Omega.Config.initial_timeout = ms 10;
    }
  in
  Scenarios.Env.make config
    (Scenarios.Scenario.Rotating_star { center = n - 2 })

let test_matrix () =
  List.iter
    (fun sched ->
      let sname = match sched with `Wheel -> "wheel" | `Heap -> "heap" in
      List.iter
        (fun n ->
          (* n=8 gets a 1 sim-s horizon; n=64 is ~50x the traffic, so a
             shorter slice keeps the suite's wall clock in budget while
             still snapshotting tens of thousands of pending flights. *)
          let horizon = if n = 8 then sec 1 else ms 400 in
          let cut = Sim.Time.of_us (Sim.Time.to_us horizon * 2 / 5) in
          let spec =
            Harness.Run.Spec.(
              default |> with_horizon horizon |> with_digest true
              |> with_check false |> with_sched sched)
          in
          List.iter
            (fun variant ->
              differential
                ~msg:(Printf.sprintf "n=%d %s fig" n sname)
                ~spec ~env:(matrix_env ~n variant) ~seed:7L ~cut)
            [ Omega.Config.Fig1; Omega.Config.Fig3 ];
          differential
            ~msg:(Printf.sprintf "n=%d %s relay" n sname)
            ~spec:Harness.Run.Spec.(spec |> with_algo `Relay)
            ~env:(relay_env ~n) ~seed:7L ~cut)
        [ 8; 64 ])
    [ `Wheel; `Heap ]

let test_faulted () =
  (* test_fault's busy plan — a partition over the center, a crash with
     recovery, a duplication burst — with the snapshot cut inside the
     partition window, while the injector's heal/recover events are still
     pending. *)
  let busy_plan =
    Fault.Plan.(
      empty
      |> partition ~at:(ms 500) ~heal_at:(ms 900) [ [ 2 ] ]
      |> crash 0 ~at:(ms 600)
      |> recover 0 ~at:(ms 1200)
      |> dup_burst ~at:(ms 1400) ~until:(ms 1500) ~extra:(ms 1))
  in
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  List.iter
    (fun sched ->
      let sname = match sched with `Wheel -> "wheel" | `Heap -> "heap" in
      differential
        ~msg:("faulted " ^ sname)
        ~spec:
          Harness.Run.Spec.(
            default |> with_horizon (sec 2) |> with_digest true
            |> with_plan busy_plan |> with_sched sched)
        ~env ~seed:7L ~cut:(ms 700))
    [ `Wheel; `Heap ]

(* ------------------------------------------------------- pinned runs *)

(* The acceptance contract: snapshot -> restore -> continue reproduces the
   exact repo-pinned digests, not merely self-consistent ones. Configs are
   verbatim from test_obs / test_fault / test_omega_lean. *)

let restored_digest ~spec ~env ~cut =
  let live = Harness.Run.start ~spec ~env ~seed:7L () in
  Harness.Run.advance live ~until:cut;
  let restored = Harness.Run.restore (Harness.Run.snapshot live) in
  digest_hex (Harness.Run.finish restored)

let test_pinned_plain () =
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(default |> with_horizon (sec 2) |> with_digest true)
  in
  check str_t "plain pin through a snapshot" "d04e0b6bb1a89956"
    (restored_digest ~spec ~env ~cut:(ms 800))

let test_pinned_faulted () =
  let busy_plan =
    Fault.Plan.(
      empty
      |> partition ~at:(ms 500) ~heal_at:(ms 900) [ [ 2 ] ]
      |> crash 0 ~at:(ms 600)
      |> recover 0 ~at:(ms 1200)
      |> dup_burst ~at:(ms 1400) ~until:(ms 1500) ~extra:(ms 1))
  in
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_horizon (sec 2) |> with_digest true
      |> with_plan busy_plan)
  in
  check str_t "faulted pin through a snapshot" "6974643acde923c2"
    (restored_digest ~spec ~env ~cut:(ms 800))

let test_pinned_relay () =
  let config =
    {
      (Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3) with
      Omega.Config.initial_timeout = ms 10;
    }
  in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_check false |> with_algo `Relay
      |> with_horizon (sec 2) |> with_digest true)
  in
  check str_t "relay pin through a snapshot" "dc1babe982945dd5"
    (restored_digest ~spec ~env ~cut:(ms 800))

(* ------------------------------------------------------- file round trip *)

let test_file_round_trip () =
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(default |> with_horizon (sec 2) |> with_digest true)
  in
  let live = Harness.Run.start ~spec ~env ~seed:7L () in
  Harness.Run.advance live ~until:(ms 800);
  let bytes = Harness.Run.snapshot live in
  let path = Filename.temp_file "snapshot" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let read = Bytes.create len in
      really_input ic read 0 len;
      close_in ic;
      check int_t "length round-trips" (Bytes.length bytes) len;
      let restored = Harness.Run.restore read in
      check str_t "digest through the file" "d04e0b6bb1a89956"
        (digest_hex (Harness.Run.finish restored)))

(* ----------------------------------------------------------- refusals *)

let test_pending_batch_raises () =
  let engine = Sim.Engine.create ~seed:1L () in
  Sim.Engine.batch_call_after engine (ms 1) ignore 0;
  (match Sim.Engine.snapshot engine 0 with
  | (_ : Bytes.t) -> Alcotest.fail "snapshot accepted a pending batch"
  | exception Invalid_argument _ -> ());
  (* The engine is untouched: committing and running still works. *)
  Sim.Engine.batch_commit engine;
  Sim.Engine.run_until engine (ms 2);
  check int_t "batched event still fires" 1 (Sim.Engine.executed engine)

let test_unregistered_fn_raises () =
  let engine = Sim.Engine.create ~seed:1L () in
  let hits = ref 0 in
  (* A dynamic closure as the packed fn: no Checkpoint id, so the snapshot
     must refuse — and the protect must leave the live engine runnable. *)
  Sim.Engine.call_after engine (ms 1) (fun k -> hits := !hits + k) 2;
  (match Sim.Engine.snapshot engine 0 with
  | (_ : Bytes.t) -> Alcotest.fail "snapshot accepted an unregistered fn"
  | exception Invalid_argument _ -> ());
  Sim.Engine.run_until engine (ms 2);
  check int_t "event still fires after refused snapshot" 2 !hits

let test_trace_sink_raises () =
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_horizon (sec 1)
      |> with_sink (Obs.Sink.make ~mask:Obs.Event.all (fun _ -> ())))
  in
  let live = Harness.Run.start ~spec ~env ~seed:7L () in
  Harness.Run.advance live ~until:(ms 100);
  check bool_t "external sink refused" true
    (match Harness.Run.snapshot live with
    | (_ : Bytes.t) -> false
    | exception Invalid_argument _ -> true);
  (* Still finishes normally. *)
  let result = Harness.Run.finish live in
  check bool_t "run completes" true (result.Harness.Run.messages_sent > 0)

let () =
  Alcotest.run "snapshot"
    [
      ( "differential",
        [
          Alcotest.test_case "n x algo x sched matrix" `Quick test_matrix;
          Alcotest.test_case "faulted plan" `Quick test_faulted;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "plain pin" `Quick test_pinned_plain;
          Alcotest.test_case "faulted pin" `Quick test_pinned_faulted;
          Alcotest.test_case "relay pin" `Quick test_pinned_relay;
        ] );
      ( "file",
        [ Alcotest.test_case "marshal round trip" `Quick test_file_round_trip ] );
      ( "refusals",
        [
          Alcotest.test_case "pending batch" `Quick test_pending_batch_raises;
          Alcotest.test_case "unregistered fn" `Quick
            test_unregistered_fn_raises;
          Alcotest.test_case "trace sink" `Quick test_trace_sink_raises;
        ] );
    ]
