(* The RNG contract behind every experiment: the unboxed limb
   implementation must produce the exact 64-bit splitmix64 stream of the
   original boxed-Int64 rendering (pinned in rng_golden.ml, captured before
   the rewrite), and the hot draws must not allocate — the minor-words
   budgets here are what keeps "zero-allocation hot path" true over time. *)

let check = Alcotest.check
let int_t = Alcotest.int
let int64_t = Alcotest.int64

(* ------------------------------------------------------- golden vectors *)

let test_golden_bits64 () =
  Array.iteri
    (fun s seed ->
      let rng = Dstruct.Rng.create seed in
      Array.iteri
        (fun i expect ->
          check int64_t
            (Printf.sprintf "bits64 seed[%d] draw %d" s i)
            expect (Dstruct.Rng.bits64 rng))
        Rng_golden.bits64.(s))
    Rng_golden.seeds

let test_golden_int () =
  Array.iteri
    (fun s seed ->
      let rng = Dstruct.Rng.create seed in
      Array.iteri
        (fun i expect ->
          check int_t
            (Printf.sprintf "int seed[%d] draw %d" s i)
            expect
            (Dstruct.Rng.int rng Rng_golden.int_bound))
        Rng_golden.ints.(s))
    Rng_golden.seeds

let test_golden_float () =
  Array.iteri
    (fun s seed ->
      let rng = Dstruct.Rng.create seed in
      Array.iteri
        (fun i expect ->
          check int64_t
            (Printf.sprintf "float seed[%d] draw %d" s i)
            expect
            (Int64.bits_of_float (Dstruct.Rng.float rng 1.0)))
        Rng_golden.float_bits.(s))
    Rng_golden.seeds

(* The vectors also pin the derived draws through the same stream. *)
let test_golden_derived () =
  let a = Dstruct.Rng.create 42L and b = Dstruct.Rng.create 42L in
  for i = 1 to 500 do
    check Alcotest.bool
      (Printf.sprintf "bool agrees with bits64 at %d" i)
      (Int64.logand (Dstruct.Rng.bits64 a) 1L = 1L)
      (Dstruct.Rng.bool b)
  done;
  let a = Dstruct.Rng.create 7L and b = Dstruct.Rng.create 7L in
  let split_a = Dstruct.Rng.split a and split_b = Dstruct.Rng.split b in
  check int64_t "split derives the drawn state"
    (Dstruct.Rng.bits64 split_a)
    (Dstruct.Rng.bits64 split_b)

(* --------------------------------------------------- allocation budgets *)

let minor_words_of f =
  let before = Gc.minor_words () in
  f ();
  int_of_float (Gc.minor_words () -. before)

let test_draws_do_not_allocate () =
  (* Warm up so one-time setup (alcotest machinery, etc.) is excluded. *)
  let rng = Dstruct.Rng.create 7L in
  let acc = ref 0 in
  ignore (Dstruct.Rng.int rng 1000);
  let words =
    minor_words_of (fun () ->
        for _ = 1 to 100_000 do
          acc := !acc + Dstruct.Rng.int rng 1000
        done)
  in
  ignore !acc;
  (* The boxed implementation cost ~600k words here; the limb one costs 0.
     Leave headroom for instrumentation noise, not for regressions. *)
  check Alcotest.bool
    (Printf.sprintf "100k int draws allocated %d minor words (budget 1000)"
       words)
    true (words < 1_000);
  let flip = ref false in
  let words =
    minor_words_of (fun () ->
        for _ = 1 to 100_000 do
          flip := Dstruct.Rng.chance rng 0.3 <> !flip
        done)
  in
  ignore !flip;
  check Alcotest.bool
    (Printf.sprintf "100k chance draws allocated %d minor words (budget 1000)"
       words)
    true (words < 1_000)

(* The end-to-end claim: a whole simulation on the null-sink path stays
   within a fixed minor-heap budget. The run is deterministic (fixed seed,
   no wall clock), so its allocation is too; the budget is ~1.4x the value
   measured after the slimming pass (~223k words for this run, down from
   ~330k before it — and the remainder is almost all per-message flight and
   event cells, not per-draw or per-lookup boxes). A breach means someone
   put allocation back on the per-event path — see DESIGN.md §11 before
   raising the number. *)
let test_null_sink_run_budget () =
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_check false |> with_horizon (Sim.Time.of_sec 2))
  in
  let run () = ignore (Harness.Run.run ~spec ~env ~seed:7L ()) in
  run () (* warm-up: first run pays one-time lazy setup *);
  let words = minor_words_of run in
  check Alcotest.bool
    (Printf.sprintf
       "null-sink 2s n=4 run allocated %d minor words (budget 320000)" words)
    true
    (words < 320_000)

let () =
  Alcotest.run "rng"
    [
      ( "golden",
        [
          Alcotest.test_case "bits64 vectors" `Quick test_golden_bits64;
          Alcotest.test_case "int vectors" `Quick test_golden_int;
          Alcotest.test_case "float vectors" `Quick test_golden_float;
          Alcotest.test_case "derived draws" `Quick test_golden_derived;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "draws are allocation-free" `Quick
            test_draws_do_not_allocate;
          Alcotest.test_case "null-sink run budget" `Slow
            test_null_sink_run_budget;
        ] );
    ]
