(* Tests for the communication-efficient relay variant (DESIGN.md §15):
   election under timely and star regimes through the shared interface,
   the O(n) packets-per-round contract, accusation-driven re-election
   after a leader crash, and the determinism contract (pinned digest,
   pool-size invariance) every algorithm behind Run.Spec.algo owes. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let str_t = Alcotest.string
let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

(* The tight config of the fault/e12 experiments: receiving-side state
   tracks wall time, so relay staleness and monitor periods are prompt. *)
let tight_config ~n ~t =
  {
    (Omega.Config.default ~n ~t Omega.Config.Fig3) with
    Omega.Config.initial_timeout = ms 10;
  }

(* The e12 adversary: 8-round victim blocks beat the relay's staleness
   slack (6 + level), so the star discriminates instead of every process
   stabilizing trivially. *)
let star_params ~n ~t =
  {
    (Scenarios.Scenario.default_params ~n ~t ~beta:(ms 10)) with
    Scenarios.Scenario.rn0 = 2;
    victim_block0 = 8;
    victim_block_step = 0;
  }

(* Full_timely still runs the victim rotation for rounds below [rn0]
   (startup anarchy, default 20 rounds): the gossip family forgets it, but
   the relay tier's max-merged levels are permanent, so "timely" tests set
   [rn0 = 1] — timely from the first tagged round. *)
let timely_env ~n ~t =
  let params =
    {
      (Scenarios.Scenario.default_params ~n ~t ~beta:(ms 10)) with
      Scenarios.Scenario.rn0 = 1;
    }
  in
  Scenarios.Env.make ~params (tight_config ~n ~t)
    Scenarios.Scenario.Full_timely

let relay_spec =
  Harness.Run.Spec.(
    default |> with_check false |> with_algo `Relay)

(* ----------------------------------------------------------- elections *)

let test_timely_elects_min_id () =
  let env = timely_env ~n:8 ~t:3 in
  let result =
    Harness.Run.run
      ~spec:Harness.Run.Spec.(relay_spec |> with_horizon (sec 3))
      ~env ~seed:7L ()
  in
  check (Alcotest.option int_t) "all-timely elects min id" (Some 0)
    result.Harness.Run.final_leader;
  check int_t "nobody suspected" 0 result.Harness.Run.max_susp_level

let test_rotating_star_elects_center () =
  let n = 8 and t = 3 and center = 6 in
  let env =
    Scenarios.Env.make
      ~params:(star_params ~n ~t)
      (tight_config ~n ~t)
      (Scenarios.Scenario.Rotating_star { center })
  in
  let result =
    Harness.Run.run
      ~spec:
        Harness.Run.Spec.(
          relay_spec |> with_horizon (sec 4) |> with_min_stable (sec 1))
      ~env ~seed:7L ()
  in
  check (Alcotest.option int_t) "star elects the center" (Some center)
    result.Harness.Run.final_leader;
  check bool_t "stabilized" true
    (Option.is_some result.Harness.Run.stabilized_at)

let test_leader_crash_reelection () =
  (* Only the monitors can report a dead relay: the crash silences its
     AGGREGATEs, the miss budget runs out, ACCUSEs raise its level past
     everyone else's, and leadership moves to the next process. *)
  let env = timely_env ~n:8 ~t:3 in
  let result =
    Harness.Run.run
      ~spec:
        Harness.Run.Spec.(
          relay_spec |> with_horizon (sec 4)
          |> with_min_stable (sec 1)
          |> with_crashes [ (0, sec 1) ])
      ~env ~seed:7L ()
  in
  check (Alcotest.option int_t) "accusations re-elect the next id" (Some 1)
    result.Harness.Run.final_leader;
  check bool_t "stabilized after the crash" true
    (match result.Harness.Run.stabilized_at with
    | Some at -> Sim.Time.(at > sec 1)
    | None -> false)

(* ------------------------------------------------- message complexity *)

let test_packets_per_round_linear () =
  (* The O(n) contract, the variant's reason to exist: per heartbeat round
     the steady state is one HEARTBEAT per non-relay plus one n-fan-out
     AGGREGATE, ~2n sends. Assert a hard c*n bound with c = 3 (covers
     startup and monitor traffic) at two sizes; the gossip family is
     ~1.5 n^2 under the same oracle, two orders of magnitude above the
     bound at n = 64. *)
  List.iter
    (fun n ->
      let t = (n - 1) / 2 in
      let env = timely_env ~n ~t in
      let result =
        Harness.Run.run
          ~spec:Harness.Run.Spec.(relay_spec |> with_horizon (sec 2))
          ~env ~seed:7L ()
      in
      let rounds = max 1 result.Harness.Run.min_sending_round in
      let per_round = result.Harness.Run.messages_sent / rounds in
      check bool_t
        (Printf.sprintf "n=%d: %d msgs/round <= 3n" n per_round)
        true
        (per_round <= 3 * n))
    [ 16; 64 ]

(* --------------------------------------------------------- determinism *)

let digest_env =
  Scenarios.Env.make
    (tight_config ~n:4 ~t:1)
    (Scenarios.Scenario.Rotating_star { center = 2 })

let digest_spec =
  Harness.Run.Spec.(relay_spec |> with_horizon (sec 2) |> with_digest true)

let test_digest_pinned () =
  (* Same contract as the gossip family's pins (test_obs/test_fault): the
     relay tier's event stream for a fixed seed is part of the repo's
     determinism oracle. A change means the algorithm sends, delivers or
     suspects differently — deliberate changes must update the pin. *)
  let digest_of seed =
    let result = Harness.Run.run ~spec:digest_spec ~env:digest_env ~seed () in
    Obs.Digest.to_hex (Option.get result.Harness.Run.digest)
  in
  check str_t "pinned relay digest for seed 7" "dc1babe982945dd5"
    (digest_of 7L);
  check bool_t "seeds discriminated" false
    (String.equal (digest_of 7L) (digest_of 8L))

let test_digest_jobs_invariant () =
  let seeds = [ 3L; 5L; 7L; 11L ] in
  let sweep pool =
    (Harness.Sweep.run ~pool ~spec:digest_spec ~seeds
       ~env_of:(fun _ -> digest_env)
       ())
      .Harness.Sweep.digests
  in
  let sequential = sweep Parallel.Pool.sequential in
  check int_t "one digest per seed" 4 (List.length sequential);
  List.iter
    (fun jobs ->
      let parallel = Parallel.Pool.with_pool ~jobs sweep in
      check bool_t
        (Printf.sprintf "jobs=1 and jobs=%d agree" jobs)
        true
        (List.for_all2 Int64.equal sequential parallel))
    [ 2; 4 ]

let () =
  Alcotest.run "omega_lean"
    [
      ( "elections",
        [
          Alcotest.test_case "timely elects min id" `Quick
            test_timely_elects_min_id;
          Alcotest.test_case "rotating star elects center" `Quick
            test_rotating_star_elects_center;
          Alcotest.test_case "leader crash re-election" `Quick
            test_leader_crash_reelection;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "packets/round <= 3n" `Quick
            test_packets_per_round_linear;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pinned digest" `Quick test_digest_pinned;
          Alcotest.test_case "jobs invariance" `Quick
            test_digest_jobs_invariant;
        ] );
    ]
