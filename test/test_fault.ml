(* Tests for the fault-injection subsystem: plan validation, determinism of
   faulted runs (pinned digest, pool-size invariance), crash–recovery
   re-election, the adaptive adversary, and — most importantly — that an
   empty plan leaves the event stream exactly as it was before the fault
   API existed (the PR 3 digest pin). *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let str_t = Alcotest.string
let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

(* ------------------------------------------------------ plan validation *)

let rejected f = try ignore (f ()); false with Invalid_argument _ -> true

let test_plan_validation () =
  let v plan = Fault.Plan.validate ~n:4 plan in
  check bool_t "pid out of range" true
    (rejected (fun () -> v Fault.Plan.(empty |> crash 4 ~at:(sec 1))));
  check bool_t "heal before form" true
    (rejected (fun () ->
         v Fault.Plan.(empty |> partition ~at:(sec 2) ~heal_at:(sec 1) [ [ 0 ] ])));
  check bool_t "pid in two groups" true
    (rejected (fun () ->
         v
           Fault.Plan.(
             empty |> partition ~at:(sec 1) ~heal_at:(sec 2) [ [ 0; 1 ]; [ 1 ] ])));
  check bool_t "recover without crash" true
    (rejected (fun () -> v Fault.Plan.(empty |> recover 1 ~at:(sec 1))));
  check bool_t "double crash" true
    (rejected (fun () ->
         v Fault.Plan.(empty |> crash 1 ~at:(sec 1) |> crash 1 ~at:(sec 2))));
  check bool_t "crash/recover/crash is fine" false
    (rejected (fun () ->
         v
           Fault.Plan.(
             empty |> crash 1 ~at:(sec 1) |> recover 1 ~at:(sec 2)
             |> crash 1 ~at:(sec 3))));
  check bool_t "dup burst with negative extra" true
    (rejected (fun () ->
         v
           Fault.Plan.(
             empty
             |> dup_burst ~at:(sec 1) ~until:(sec 2)
                  ~extra:(Sim.Time.of_us (-1)))))

let test_outage_windows () =
  let plan =
    Fault.Plan.(
      empty
      |> partition ~at:(sec 1) ~heal_at:(sec 2) [ [ 0 ] ]
      |> crash 1 ~at:(sec 3)
      |> recover 1 ~at:(sec 4)
      |> crash 2 ~at:(sec 5) (* permanent: not an outage window *))
  in
  check int_t "two windows" 2 (List.length (Fault.Plan.outage_windows plan));
  check int_t "downtime within horizon is clipped"
    (Sim.Time.to_us (ms 500))
    (Sim.Time.to_us
       (Fault.Plan.partition_downtime ~horizon:(ms 1500) plan))

(* --------------------------------------------- determinism under faults *)

let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3

let env =
  Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })

(* One of everything: a partition over the center, a crash with recovery,
   and a duplication burst, all inside the 2 sim-s horizon. *)
let busy_plan =
  Fault.Plan.(
    empty
    |> partition ~at:(ms 500) ~heal_at:(ms 900) [ [ 2 ] ]
    |> crash 0 ~at:(ms 600)
    |> recover 0 ~at:(ms 1200)
    |> dup_burst ~at:(ms 1400) ~until:(ms 1500) ~extra:(ms 1))

let spec_with plan =
  Harness.Run.Spec.(
    default |> with_horizon (sec 2) |> with_digest true |> with_plan plan)

let digest_of ~plan ~seed =
  let result = Harness.Run.run ~spec:(spec_with plan) ~env ~seed () in
  Option.get result.Harness.Run.digest

let test_plan_free_matches_pr3_pin () =
  (* The empty plan must not add, remove or reorder a single event: this is
     the exact digest test_obs pinned before the fault API existed. *)
  check str_t "empty plan = pre-fault-API stream" "d04e0b6bb1a89956"
    (Obs.Digest.to_hex (digest_of ~plan:Fault.Plan.empty ~seed:7L))

let test_faulted_digest_deterministic () =
  check bool_t "same (seed, plan), same digest" true
    (Int64.equal (digest_of ~plan:busy_plan ~seed:7L)
       (digest_of ~plan:busy_plan ~seed:7L));
  check bool_t "the plan changes the stream" false
    (Int64.equal (digest_of ~plan:busy_plan ~seed:7L)
       (digest_of ~plan:Fault.Plan.empty ~seed:7L))

let test_faulted_digest_pinned () =
  (* Faulted regression pin, same contract as the plan-free one: a change
     means fault actions fire at different times or alter the simulation —
     deliberate changes must update the pin. *)
  check str_t "pinned faulted digest for seed 7" "6974643acde923c2"
    (Obs.Digest.to_hex (digest_of ~plan:busy_plan ~seed:7L))

let test_faulted_digest_jobs_invariant () =
  (* The determinism oracle, now with every fault action live: fanning the
     same seeds over 1, 2 or 4 domains must produce identical digests. *)
  let seeds = [ 3L; 5L; 7L; 11L ] in
  let sweep pool =
    (Harness.Sweep.run ~pool ~spec:(spec_with busy_plan) ~seeds
       ~env_of:(fun _ -> env)
       ())
      .Harness.Sweep.digests
  in
  let sequential = sweep Parallel.Pool.sequential in
  check int_t "one digest per seed" 4 (List.length sequential);
  List.iter
    (fun jobs ->
      let parallel = Parallel.Pool.with_pool ~jobs sweep in
      check bool_t
        (Printf.sprintf "jobs=1 and jobs=%d agree" jobs)
        true
        (List.for_all2 Int64.equal sequential parallel))
    [ 2; 4 ];
  check bool_t "seeds discriminated" true
    (List.length (List.sort_uniq Int64.compare sequential) = 4)

(* ----------------------------------------- partition and re-election *)

(* Default config closes receiving rounds at half the sending rate, so the
   receiving side lags the tags by an ever-growing buffer and a fault's
   effect on elections surfaces only when the lagging rounds reach the
   cut-window tags — seconds after the wall-clock fault, stretched by the
   skew (DESIGN.md §12). The fault scenarios pin [initial_timeout] to
   [beta] so receiving rounds track sending rounds and the echo is prompt:
   the run then visibly loses agreement near the fault and recovers within
   an affordable horizon. *)
let fault_config ~n ~t =
  {
    (Omega.Config.default ~n ~t Omega.Config.Fig3) with
    Omega.Config.initial_timeout = Sim.Time.of_ms 10;
  }

let test_partition_heals_and_reelects () =
  (* Isolate the star's center for 4 s mid-run: agreement must be lost (its
     ALIVEs stop arriving) and must come back after the heal, with the
     center elected again — the run stabilizes despite the fault. *)
  let n = 8 and t = 3 and center = 6 in
  let env =
    Scenarios.Env.make (fault_config ~n ~t)
      (Scenarios.Scenario.Rotating_star { center })
  in
  let plan =
    Fault.Plan.(
      empty |> partition ~at:(sec 8) ~heal_at:(sec 12) [ [ center ] ])
  in
  let result =
    Harness.Run.run
      ~spec:
        Harness.Run.Spec.(
          default |> with_horizon (sec 40) |> with_plan plan)
      ~env ~seed:7L ()
  in
  check bool_t "stabilized after the heal" true
    (match result.Harness.Run.stabilized_at with
    | Some at -> Sim.Time.(at > sec 12)
    | None -> false);
  check (Alcotest.option int_t) "the center again" (Some center)
    result.Harness.Run.final_leader;
  check bool_t "agreement was interrupted" true
    (result.Harness.Run.leadership_epochs >= 2);
  check int_t "downtime accounted" (Sim.Time.to_us (sec 4))
    (Sim.Time.to_us result.Harness.Run.partition_downtime);
  check int_t "no assumption violations (outage rounds masked)" 0
    (match result.Harness.Run.checker with
    | Some r -> List.length r.Scenarios.Checker.violations
    | None -> -1);
  check bool_t "some rounds were masked" true
    (match result.Harness.Run.checker with
    | Some r -> r.Scenarios.Checker.rounds_masked > 0
    | None -> false)

(* -------------------------------------- crash–recovery re-election *)

let test_crash_recovery_reelection () =
  (* Failover regime: the star centers on [first] until round [switch],
     then on [second]. The plan crashes [first] (the elected leader) right
     at the switch and recovers it 4 s later: the survivors must re-elect
     [second], and the recovered process — rejoining with its persisted
     susp_level and catching up to the live round — must agree. *)
  let n = 8 and t = 3 and first = 2 and second = 6 in
  let crash_time = sec 8 in
  let switch = Sim.Time.to_us crash_time / Sim.Time.to_us (ms 10) in
  let env =
    Scenarios.Env.make (fault_config ~n ~t)
      (Scenarios.Scenario.Failover { first; second; switch })
  in
  let plan =
    Fault.Plan.(
      empty |> crash first ~at:crash_time
      |> recover first ~at:(sec 12))
  in
  let result =
    Harness.Run.run
      ~spec:
        Harness.Run.Spec.(
          default |> with_horizon (sec 30) |> with_plan plan)
      ~env ~seed:7L ()
  in
  check bool_t "stabilized after the recovery" true
    (match result.Harness.Run.stabilized_at with
    | Some at -> Sim.Time.(at > sec 8)
    | None -> false);
  check (Alcotest.option int_t) "re-elected the second center" (Some second)
    result.Harness.Run.final_leader;
  check int_t "one recovery applied" 1 result.Harness.Run.recoveries;
  check bool_t "leadership changed hands" true
    (result.Harness.Run.re_elections >= 1)

(* ------------------------------------------------ adaptive adversary *)

let test_adaptive_chases_but_star_center_survives () =
  (* Under a rotating star the adaptive adversary may chase transient
     leaders, but the chase ends at the center: its star links are
     protected by the assumption, so victimizing it cannot raise its
     suspicion levels at the points, and it stays elected. *)
  let n = 8 and t = 3 and center = 6 in
  let env =
    Scenarios.Env.make (fault_config ~n ~t)
      (Scenarios.Scenario.Rotating_star { center })
  in
  let result =
    Harness.Run.run
      ~spec:
        Harness.Run.Spec.(
          default |> with_horizon (sec 25)
          |> with_plan Fault.Plan.(empty |> adaptive ~from:(sec 2)))
      ~env ~seed:7L ()
  in
  check bool_t "still stabilizes" true
    (result.Harness.Run.stabilized_at <> None);
  check (Alcotest.option int_t) "on the center" (Some center)
    result.Harness.Run.final_leader;
  check bool_t "the adversary did move" true
    (result.Harness.Run.adversary_moves >= 1)

let test_adaptive_chaos_never_stabilizes () =
  (* Under Chaos nothing is protected: every leader the processes agree on
     becomes the next victim, so agreement can never last. The tight config
     matters here beyond promptness: [Scenario.victim_delay_us] grows with
     the round tag at [beta] per round, so under the default config — whose
     receiving rounds close at roughly half the tag rate — the delayed
     ALIVEs eventually arrive *before* the laggard receivers close those
     rounds, quietly disarming the adversary late in the run. *)
  let n = 5 and t = 2 in
  let env = Scenarios.Env.make (fault_config ~n ~t) Scenarios.Scenario.Chaos in
  let result =
    Harness.Run.run
      ~spec:
        Harness.Run.Spec.(
          default |> with_horizon (sec 20)
          |> with_plan Fault.Plan.(empty |> adaptive ~from:(sec 1)))
      ~env ~seed:7L ()
  in
  check bool_t "never stabilizes" true
    (result.Harness.Run.stabilized_at = None)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "outage windows" `Quick test_outage_windows;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "empty plan = PR3 pin" `Quick
            test_plan_free_matches_pr3_pin;
          Alcotest.test_case "faulted run deterministic" `Quick
            test_faulted_digest_deterministic;
          Alcotest.test_case "faulted pinned regression" `Quick
            test_faulted_digest_pinned;
          Alcotest.test_case "pool-size invariant" `Quick
            test_faulted_digest_jobs_invariant;
        ] );
      ( "faults",
        [
          Alcotest.test_case "partition heals, center re-elected" `Quick
            test_partition_heals_and_reelects;
          Alcotest.test_case "crash-recovery re-election" `Quick
            test_crash_recovery_reelection;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "star center survives the chase" `Quick
            test_adaptive_chases_but_star_center_survives;
          Alcotest.test_case "chaos never stabilizes" `Quick
            test_adaptive_chaos_never_stabilizes;
        ] );
    ]
