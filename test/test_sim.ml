(* Tests for the discrete-event engine: virtual time, event ordering,
   cancellation, timers, determinism. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let us = Sim.Time.of_us

(* ---------------------------------------------------------------- Time *)

let test_time_arithmetic () =
  check int_t "ms" 2_000 (Sim.Time.to_us (Sim.Time.of_ms 2));
  check int_t "sec" 3_000_000 (Sim.Time.to_us (Sim.Time.of_sec 3));
  check int_t "add" 5 (Sim.Time.add (us 2) (us 3));
  check int_t "sub" 4 (Sim.Time.sub (us 7) (us 3));
  check bool_t "lt" true Sim.Time.(us 1 < us 2);
  check bool_t "ge" true Sim.Time.(us 2 >= us 2);
  check int_t "max" 9 (Sim.Time.max (us 9) (us 4));
  check int_t "min" 4 (Sim.Time.min (us 9) (us 4));
  check (Alcotest.float 1e-9) "to_ms_float" 1.5
    (Sim.Time.to_ms_float (us 1_500))

let test_time_pp () =
  let render t = Format.asprintf "%a" Sim.Time.pp t in
  check Alcotest.string "us" "123us" (render (us 123));
  check Alcotest.string "ms" "5ms" (render (Sim.Time.of_ms 5));
  check Alcotest.string "s" "2s" (render (Sim.Time.of_sec 2))

(* -------------------------------------------------------------- Engine *)

let test_engine_ordering () =
  let engine = Sim.Engine.create ~seed:1L () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.Engine.schedule_at engine (us 30) (note "c"));
  ignore (Sim.Engine.schedule_at engine (us 10) (note "a"));
  ignore (Sim.Engine.schedule_at engine (us 20) (note "b"));
  Sim.Engine.run_until engine (us 100);
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  check int_t "clock at limit" 100 (Sim.Engine.now engine);
  check int_t "executed" 3 (Sim.Engine.executed engine)

let test_engine_fifo_same_time () =
  let engine = Sim.Engine.create ~seed:1L () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore
      (Sim.Engine.schedule_at engine (us 10) (fun () -> log := i :: !log))
  done;
  Sim.Engine.run_until engine (us 10);
  check (Alcotest.list int_t) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let engine = Sim.Engine.create ~seed:1L () in
  let fired = ref false in
  let h = Sim.Engine.schedule_at engine (us 10) (fun () -> fired := true) in
  check bool_t "not cancelled yet" false (Sim.Engine.is_cancelled h);
  Sim.Engine.cancel engine h;
  check bool_t "cancelled" true (Sim.Engine.is_cancelled h);
  Sim.Engine.run_until engine (us 100);
  check bool_t "cancelled event did not fire" false !fired;
  check int_t "executed none" 0 (Sim.Engine.executed engine)

let test_engine_schedule_in_past_raises () =
  let engine = Sim.Engine.create ~seed:1L () in
  ignore (Sim.Engine.schedule_at engine (us 50) ignore);
  Sim.Engine.run_until engine (us 100);
  let raised =
    try
      ignore (Sim.Engine.schedule_at engine (us 10) ignore);
      false
    with Invalid_argument _ -> true
  in
  check bool_t "past scheduling rejected" true raised

let test_engine_nested_scheduling () =
  (* An event scheduling another event at the same instant runs it in the
     same run_until call. *)
  let engine = Sim.Engine.create ~seed:1L () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule_at engine (us 10) (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.Engine.schedule_after engine (us 0) (fun () ->
                log := "inner" :: !log))));
  Sim.Engine.run_until engine (us 10);
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ]
    (List.rev !log)

let test_engine_run_until_idle () =
  let engine = Sim.Engine.create ~seed:1L () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 0 then ignore (Sim.Engine.schedule_after engine (us 5) (chain (n - 1)))
  in
  ignore (Sim.Engine.schedule_at engine (us 1) (chain 9));
  check Alcotest.string "idle" "idle"
    (match Sim.Engine.run_until_idle engine with
    | `Idle -> "idle"
    | `Limit -> "limit");
  check int_t "all ran" 10 !count;
  (* With a limit lower than the next event. *)
  ignore (Sim.Engine.schedule_after engine (us 100) ignore);
  check Alcotest.string "limit" "limit"
    (match Sim.Engine.run_until_idle ~limit:(Sim.Engine.now engine) engine with
    | `Idle -> "idle"
    | `Limit -> "limit")

let test_engine_pending () =
  let engine = Sim.Engine.create ~seed:1L () in
  let h1 = Sim.Engine.schedule_at engine (us 10) ignore in
  ignore (Sim.Engine.schedule_at engine (us 20) ignore);
  check int_t "two pending" 2 (Sim.Engine.pending engine);
  Sim.Engine.cancel engine h1;
  check int_t "one pending after cancel" 1 (Sim.Engine.pending engine)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are reproducible" ~count:50
    QCheck.(list_of_size Gen.(1 -- 30) (int_bound 1000))
    (fun delays ->
      let trace seed =
        let engine = Sim.Engine.create ~seed () in
        let log = ref [] in
        List.iteri
          (fun i d ->
            ignore
              (Sim.Engine.schedule_at engine (us d) (fun () ->
                   log := (i, Sim.Engine.now engine) :: !log)))
          delays;
        Sim.Engine.run_until engine (us 2000);
        !log
      in
      trace 5L = trace 5L)

(* --------------------------------------------------------------- Timer *)

let test_timer_fires () =
  let engine = Sim.Engine.create ~seed:1L () in
  let fired = ref 0 in
  let timer = Sim.Timer.create engine ~on_expire:(fun () -> incr fired) in
  check bool_t "initially unexpired" false (Sim.Timer.has_expired timer);
  Sim.Timer.set timer (us 10);
  check bool_t "armed" true (Sim.Timer.is_armed timer);
  Sim.Engine.run_until engine (us 10);
  check int_t "fired once" 1 !fired;
  check bool_t "expired flag" true (Sim.Timer.has_expired timer);
  check bool_t "no longer armed" false (Sim.Timer.is_armed timer)

let test_timer_reset_cancels_previous () =
  let engine = Sim.Engine.create ~seed:1L () in
  let fired = ref 0 in
  let timer = Sim.Timer.create engine ~on_expire:(fun () -> incr fired) in
  Sim.Timer.set timer (us 10);
  Sim.Engine.run_until engine (us 5);
  Sim.Timer.set timer (us 10);
  (* old deadline at t=10 must not fire *)
  Sim.Engine.run_until engine (us 12);
  check int_t "not fired yet" 0 !fired;
  Sim.Engine.run_until engine (us 15);
  check int_t "fired at new deadline" 1 !fired

let test_timer_set_clears_expired () =
  let engine = Sim.Engine.create ~seed:1L () in
  let timer = Sim.Timer.create engine ~on_expire:ignore in
  Sim.Timer.set timer (us 5);
  Sim.Engine.run_until engine (us 5);
  check bool_t "expired" true (Sim.Timer.has_expired timer);
  Sim.Timer.set timer (us 5);
  check bool_t "re-arming clears expired" false (Sim.Timer.has_expired timer)

let test_timer_cancel () =
  let engine = Sim.Engine.create ~seed:1L () in
  let fired = ref 0 in
  let timer = Sim.Timer.create engine ~on_expire:(fun () -> incr fired) in
  Sim.Timer.set timer (us 10);
  Sim.Timer.cancel timer;
  Sim.Engine.run_until engine (us 20);
  check int_t "cancelled timer silent" 0 !fired;
  check bool_t "not expired" false (Sim.Timer.has_expired timer)

let test_timer_zero_duration () =
  let engine = Sim.Engine.create ~seed:1L () in
  let fired = ref 0 in
  let timer = Sim.Timer.create engine ~on_expire:(fun () -> incr fired) in
  Sim.Timer.set timer (us 0);
  check int_t "not fired synchronously" 0 !fired;
  Sim.Engine.run_until engine (us 0);
  check int_t "fired as event" 1 !fired

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "pp" `Quick test_time_pp;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past raises" `Quick
            test_engine_schedule_in_past_raises;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "run_until_idle" `Quick test_engine_run_until_idle;
          Alcotest.test_case "pending" `Quick test_engine_pending;
          qtest prop_engine_deterministic;
        ] );
      ( "timer",
        [
          Alcotest.test_case "fires" `Quick test_timer_fires;
          Alcotest.test_case "reset cancels previous" `Quick
            test_timer_reset_cancels_previous;
          Alcotest.test_case "set clears expired" `Quick
            test_timer_set_clears_expired;
          Alcotest.test_case "cancel" `Quick test_timer_cancel;
          Alcotest.test_case "zero duration" `Quick test_timer_zero_duration;
        ] );
    ]
