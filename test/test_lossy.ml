(* Tests for the fair-lossy link model and the footnote-2 reliability
   construction (ack + piggyback retransmission), including consensus
   running over fair-lossy links through the transport-generic node. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let us = Sim.Time.of_us
let ms = Sim.Time.of_ms

let flat d ~now:_ ~seq:_ ~src:_ ~dst:_ _ = Net.Network.Deliver_after (us d)

(* ------------------------------------------------------------- Lossy *)

let test_lossy_drops_and_delivers () =
  let engine = Sim.Engine.create ~seed:1L () in
  let rng = Dstruct.Rng.create 5L in
  let oracle = Net.Lossy.wrap ~loss:0.5 ~burst:10 ~rng ~n:2 (flat 10) in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle oracle)
      engine ~n:2
  in
  let received = ref 0 in
  Net.Network.set_handler net 1 (fun ~src:_ _ -> incr received);
  for i = 1 to 1000 do
    Net.Network.send net ~src:0 ~dst:1 i
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 1);
  check bool_t "some dropped" true (!received < 1000);
  check bool_t "many delivered" true (!received > 300);
  check int_t "counters consistent" 1000
    (Net.Network.delivered_count net + Net.Network.dropped_count net)

let test_lossy_burst_bound () =
  (* With loss = 0.95 and burst = 3, at least every 4th message on a link
     gets through. *)
  let engine = Sim.Engine.create ~seed:1L () in
  let rng = Dstruct.Rng.create 5L in
  let oracle = Net.Lossy.wrap ~loss:0.95 ~burst:3 ~rng ~n:2 (flat 10) in
  let net =
    Net.Network.of_spec
      Net.Spec.(default |> with_oracle oracle)
      engine ~n:2
  in
  let received = ref 0 in
  Net.Network.set_handler net 1 (fun ~src:_ _ -> incr received);
  for i = 1 to 400 do
    Net.Network.send net ~src:0 ~dst:1 i
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 1);
  check bool_t "fairness floor" true (!received >= 100)

let test_lossy_validation () =
  let rng = Dstruct.Rng.create 1L in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool_t "loss = 1 rejected" true
    (bad (fun () -> Net.Lossy.wrap ~loss:1.0 ~burst:1 ~rng ~n:2 (flat 1)));
  check bool_t "burst = 0 rejected" true
    (bad (fun () -> Net.Lossy.wrap ~loss:0.1 ~burst:0 ~rng ~n:2 (flat 1)))

(* --------------------------------------------------------- Retransmit *)

let make_reliable ?(n = 3) ?(loss = 0.5) ?(seed = 3L) () =
  let engine = Sim.Engine.create ~seed () in
  let rng = Dstruct.Rng.split (Sim.Engine.rng engine) in
  let oracle = Net.Lossy.wrap ~loss ~burst:20 ~rng ~n (flat 500) in
  let layer = Net.Retransmit.create engine ~n ~oracle ~resend_every:(ms 5) in
  Net.Retransmit.start layer;
  (engine, layer)

let test_retransmit_exactly_once_in_order () =
  let engine, layer = make_reliable () in
  let received = ref [] in
  Net.Retransmit.set_handler layer 1 (fun ~src m ->
      if src = 0 then received := m :: !received);
  for i = 1 to 200 do
    Net.Retransmit.send layer ~src:0 ~dst:1 i
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 10);
  check (Alcotest.list int_t) "every payload exactly once, in order"
    (List.init 200 (fun i -> i + 1))
    (List.rev !received);
  check int_t "queues drained" 0 (Net.Retransmit.backlog layer)

let test_retransmit_bidirectional () =
  let engine, layer = make_reliable () in
  let got = Array.make 3 0 in
  for p = 0 to 2 do
    Net.Retransmit.set_handler layer p (fun ~src:_ _ -> got.(p) <- got.(p) + 1)
  done;
  for i = 1 to 50 do
    Net.Retransmit.send layer ~src:0 ~dst:1 i;
    Net.Retransmit.send layer ~src:1 ~dst:0 (100 + i);
    Net.Retransmit.send layer ~src:2 ~dst:0 (200 + i)
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 10);
  check int_t "p0 received both flows" 100 got.(0);
  check int_t "p1 received" 50 got.(1)

let test_retransmit_heavy_loss () =
  let engine, layer = make_reliable ~loss:0.9 () in
  let received = ref 0 in
  Net.Retransmit.set_handler layer 2 (fun ~src:_ _ -> incr received);
  for i = 1 to 50 do
    Net.Retransmit.send layer ~src:0 ~dst:2 i
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 30);
  check int_t "all delivered despite 90% loss" 50 !received;
  (* The piggyback batches the whole queue per envelope, so one surviving
     envelope can deliver everything: overhead stays modest even at 90%
     loss, but some extra wire traffic (acks + resends) must exist. *)
  check bool_t "needed retransmissions" true
    (Net.Retransmit.wire_sends layer > 55)

let test_retransmit_crash_halts () =
  let engine, layer = make_reliable () in
  let received = ref 0 in
  Net.Retransmit.set_handler layer 1 (fun ~src:_ _ -> incr received);
  Net.Retransmit.crash layer 0;
  Net.Retransmit.send layer ~src:0 ~dst:1 7;
  Sim.Engine.run_until engine (Sim.Time.of_sec 2);
  check int_t "crashed process sends nothing" 0 !received

let test_retransmit_no_loss_low_overhead () =
  (* Without loss, the layer should not retransmit much: acked payloads
     leave the queues promptly. *)
  let engine = Sim.Engine.create ~seed:3L () in
  let layer =
    Net.Retransmit.create engine ~n:2 ~oracle:(flat 100) ~resend_every:(ms 5)
  in
  Net.Retransmit.start layer;
  Net.Retransmit.set_handler layer 1 (fun ~src:_ _ -> ());
  for i = 1 to 100 do
    Net.Retransmit.send layer ~src:0 ~dst:1 i
  done;
  Sim.Engine.run_until engine (Sim.Time.of_sec 5);
  check int_t "delivered" 100 (Net.Retransmit.delivered layer);
  (* 100 data sends + acks + a few retransmissions while acks are in
     flight. *)
  check bool_t "bounded overhead" true (Net.Retransmit.wire_sends layer < 450)

let test_retransmit_partition_bounds_queue () =
  (* Regression for the unbounded-backlog bug: during a 10-sim-s partition
     the sender keeps producing payloads, and before the [max_pending]
     bound its per-link queue (and the piggyback envelope size) grew
     without limit. Now the newest payload is refused once the queue is
     full — dropping the oldest instead would wedge the receiver's
     in-order cursor forever — and traffic resumes after the heal. *)
  let engine = Sim.Engine.create ~seed:3L () in
  let layer =
    Net.Retransmit.create engine ~max_pending:64 ~n:2 ~oracle:(flat 100)
      ~resend_every:(ms 5)
  in
  Net.Retransmit.start layer;
  let received = ref 0 and last = ref 0 and in_order = ref true in
  Net.Retransmit.set_handler layer 1 (fun ~src:_ m ->
      incr received;
      if m <= !last then in_order := false;
      last := m);
  Net.Retransmit.set_partition layer (Some [| 0; 1 |]);
  ignore
    (Sim.Engine.schedule_at engine (Sim.Time.of_sec 10) (fun () ->
         Net.Retransmit.set_partition layer None));
  (* One payload per 10 ms for 20 sim-s: 1000 into the partition, 1000
     after the heal. *)
  let rec feed i () =
    Net.Retransmit.send layer ~src:0 ~dst:1 i;
    if i < 2000 then ignore (Sim.Engine.schedule_after engine (ms 10) (feed (i + 1)))
  in
  feed 1 ();
  Sim.Engine.run_until engine (Sim.Time.of_sec 30);
  let shed = Net.Retransmit.shed layer in
  check bool_t "the bound shed most of the partition's payloads" true
    (shed > 800);
  check int_t "every accepted payload delivered after the heal"
    (2000 - shed) !received;
  check bool_t "delivered in submission order" true !in_order;
  check int_t "queues drained" 0 (Net.Retransmit.backlog layer)

(* ---------------------------- omega over fair-lossy links (footnote 2) *)

let test_omega_over_lossy_links () =
  (* The paper's base model assumes reliable links and notes that fair-lossy
     links + acknowledgment/piggybacking suffice. Run Figure 3 over exactly
     that stack: 40% loss, retransmission layer, otherwise timely delays.
     With every link recovered-timely, the minimum id must be elected, and a
     crashed process must be suspected. *)
  let n = 4 and t = 1 in
  let engine = Sim.Engine.create ~seed:31L () in
  let rng = Dstruct.Rng.split (Sim.Engine.rng engine) in
  let base ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
    Net.Network.Deliver_after (us 400)
  in
  let oracle = Net.Lossy.wrap ~loss:0.4 ~burst:10 ~rng ~n base in
  let layer = Net.Retransmit.create engine ~n ~oracle ~resend_every:(ms 4) in
  Net.Retransmit.start layer;
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  let crashed = Array.make n false in
  let nodes =
    Array.init n (fun me ->
        let transport =
          {
            Omega.Node.engine;
            n;
            send =
              (fun ~dst m ->
                if not crashed.(me) then
                  Net.Retransmit.send layer ~src:me ~dst m);
            halted = (fun () -> crashed.(me));
          }
        in
        Omega.Node.create_with_transport config transport ~me)
  in
  Array.iteri
    (fun me node ->
      Net.Retransmit.set_handler layer me (fun ~src m ->
          Omega.Node.handle node ~src m))
    nodes;
  Array.iter Omega.Node.start nodes;
  ignore
    (Sim.Engine.schedule_at engine (Sim.Time.of_sec 2) (fun () ->
         crashed.(3) <- true;
         Net.Retransmit.crash layer 3));
  Sim.Engine.run_until engine (Sim.Time.of_sec 8);
  let leaders =
    List.map (fun p -> Omega.Node.leader nodes.(p)) [ 0; 1; 2 ]
  in
  check (Alcotest.list int_t) "all correct elect min id over lossy links"
    [ 0; 0; 0 ] leaders;
  check bool_t "crashed process suspected" true
    ((Omega.Node.susp_level nodes.(0)).(3) >= 1)

(* -------------------------------- consensus over fair-lossy links *)

let test_consensus_over_lossy_links () =
  let n = 5 and t = 2 in
  let engine = Sim.Engine.create ~seed:21L () in
  let rng = Dstruct.Rng.split (Sim.Engine.rng engine) in
  let oracle = Net.Lossy.wrap ~loss:0.4 ~burst:10 ~rng ~n (flat 800) in
  let layer = Net.Retransmit.create engine ~n ~oracle ~resend_every:(ms 10) in
  Net.Retransmit.start layer;
  let nodes =
    Array.init n (fun me ->
        let transport =
          {
            Consensus.Node.engine;
            n;
            send = (fun ~dst m -> Net.Retransmit.send layer ~src:me ~dst m);
            halted = (fun () -> Net.Retransmit.is_crashed layer me);
          }
        in
        Consensus.Node.create transport ~me
          ~leader_oracle:(fun () -> 1)
          ~retry_every:(ms 50) ~crash_bound:t)
  in
  Array.iteri
    (fun me node ->
      Net.Retransmit.set_handler layer me (fun ~src m ->
          Consensus.Node.handle node ~src m))
    nodes;
  Array.iter Consensus.Node.start nodes;
  Array.iteri (fun i node -> Consensus.Node.propose node (70 + i)) nodes;
  Sim.Engine.run_until engine (Sim.Time.of_sec 20);
  let decisions =
    Array.to_list (Array.map Consensus.Node.decision nodes)
    |> List.filter_map Fun.id
  in
  check int_t "everyone decided" n (List.length decisions);
  check bool_t "agreement" true
    (match decisions with [] -> false | v :: r -> List.for_all (( = ) v) r)

let () =
  Alcotest.run "lossy"
    [
      ( "lossy-links",
        [
          Alcotest.test_case "drops and delivers" `Quick
            test_lossy_drops_and_delivers;
          Alcotest.test_case "burst bound" `Quick test_lossy_burst_bound;
          Alcotest.test_case "validation" `Quick test_lossy_validation;
        ] );
      ( "retransmit",
        [
          Alcotest.test_case "exactly once, in order" `Quick
            test_retransmit_exactly_once_in_order;
          Alcotest.test_case "bidirectional" `Quick test_retransmit_bidirectional;
          Alcotest.test_case "heavy loss" `Quick test_retransmit_heavy_loss;
          Alcotest.test_case "crash halts" `Quick test_retransmit_crash_halts;
          Alcotest.test_case "low overhead without loss" `Quick
            test_retransmit_no_loss_low_overhead;
          Alcotest.test_case "partition bounds the pending queue" `Quick
            test_retransmit_partition_bounds_queue;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "omega over fair-lossy links" `Quick
            test_omega_over_lossy_links;
          Alcotest.test_case "consensus over fair-lossy links" `Quick
            test_consensus_over_lossy_links;
        ] );
    ]
