(* Tests for topologies and per-edge channel classes (DESIGN.md §17):
   deterministic routing tables, channel-class semantics (fair-lossy coin,
   eventually-timely clamp), topology-aware faults, and the digest
   contracts of the routed path — the legacy pin through the Spec builder,
   wheel-vs-heap equality on a routed run, and snapshot/restore on a
   routed run. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let str_t = Alcotest.string
let us = Sim.Time.of_us
let ms = Sim.Time.of_ms
let sec = Sim.Time.of_sec

type msg = Ping of int

let constant_delay d ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
  Net.Network.Deliver_after (us d)

(* ---------------------------------------------------------- routing *)

let kinds ~n =
  [
    Net.Topology.Complete;
    Net.Topology.Ring;
    Net.Topology.Grid;
    Net.Topology.Random_geometric { radius = 0.35 };
    Net.Topology.Fat_tree { rack = 4 };
    Net.Topology.Wan_of_lans { lan = 4 };
  ]
  |> List.map (fun k -> (Net.Topology.kind_to_string k, k, n))

let test_build_deterministic () =
  (* Same kind, same RNG seed: identical next-hop tables. Only the random
     geometric graph draws from the stream at all. *)
  List.iter
    (fun (name, kind, n) ->
      let build seed =
        Net.Topology.build kind ~n ~rng:(Dstruct.Rng.create seed)
      in
      let a = build 42L and b = build 42L in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then
            check int_t
              (Printf.sprintf "%s next_hop %d->%d" name src dst)
              (Net.Topology.next_hop a ~src ~dst)
              (Net.Topology.next_hop b ~src ~dst)
        done
      done)
    (kinds ~n:16)

let test_routes_reach () =
  (* Following next_hop from any src reaches dst in exactly [dist] steps,
     and no pair exceeds the diameter. *)
  List.iter
    (fun (name, kind, n) ->
      let t = Net.Topology.build kind ~n ~rng:(Dstruct.Rng.create 9L) in
      check bool_t (name ^ " connected") true (Net.Topology.connected t);
      let max_dist = ref 0 in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let d = Net.Topology.dist t ~src ~dst in
            if d > !max_dist then max_dist := d;
            let steps = ref 0 and at = ref src in
            while !at <> dst && !steps <= n do
              at := Net.Topology.next_hop t ~src:!at ~dst;
              incr steps
            done;
            check int_t
              (Printf.sprintf "%s walk %d->%d" name src dst)
              d !steps
          end
        done
      done;
      check int_t (name ^ " diameter = max dist") !max_dist
        (Net.Topology.diameter t))
    (kinds ~n:16)

let test_groups () =
  let t =
    Net.Topology.build
      (Net.Topology.Fat_tree { rack = 4 })
      ~n:10
      ~rng:(Dstruct.Rng.create 0L)
  in
  check int_t "10 pids in racks of 4: 3 racks" 3 (Net.Topology.group_count t);
  check int_t "pid 5 in rack 1" 1 (Net.Topology.group_of t 5);
  let ring = Net.Topology.build Net.Topology.Ring ~n:6 ~rng:(Dstruct.Rng.create 0L) in
  check int_t "ring has no racks" 0 (Net.Topology.group_count ring);
  check int_t "no group id" (-1) (Net.Topology.group_of ring 3)

(* ------------------------------------------------------ channel classes *)

let routed_net ?(n = 2) ?(seed = 5L) ~channels ~oracle () =
  let engine = Sim.Engine.create ~seed () in
  let net =
    Net.Spec.default
    |> Net.Spec.with_oracle oracle
    |> Net.Spec.with_channels channels
    |> fun spec -> Net.Network.of_spec spec engine ~n
  in
  (engine, net)

let test_fair_lossy_rate () =
  (* A complete graph whose only edge is Fair_lossy 0.25: over many sends
     the delivered fraction converges on 0.75. The coin comes from the
     network's own stream, so the exact count is seed-deterministic. *)
  let engine, net =
    routed_net
      ~channels:(fun ~src:_ ~dst:_ -> Net.Topology.Fair_lossy 0.25)
      ~oracle:(constant_delay 10) ()
  in
  Net.Network.set_handler net 1 (fun ~src:_ _ -> ());
  let sends = 4000 in
  for i = 1 to sends do
    Net.Network.send net ~src:0 ~dst:1 (Ping i)
  done;
  Sim.Engine.run_until engine (ms 1);
  let delivered = Net.Network.delivered_count net in
  check int_t "sent counter" sends (Net.Network.sent_count net);
  check int_t "dropped + delivered = sent" sends
    (delivered + Net.Network.dropped_count net);
  let rate = float_of_int delivered /. float_of_int sends in
  check bool_t
    (Printf.sprintf "survival rate %.3f within 0.75 +/- 0.03" rate)
    true
    (rate > 0.72 && rate < 0.78)

let test_eventually_timely_clamp () =
  (* The oracle says 200us on every hop; the channel promises 50us after
     gst = 1ms. Before gst the promise is inert; after it the delay is
     clamped to the bound. *)
  let gst = ms 1 and bound = us 50 in
  let engine, net =
    routed_net
      ~channels:(fun ~src:_ ~dst:_ ->
        Net.Topology.Eventually_timely { gst; bound })
      ~oracle:(constant_delay 200) ()
  in
  let arrivals = ref [] in
  Net.Network.set_handler net 1 (fun ~src:_ (Ping i) ->
      arrivals := (i, Sim.Time.to_us (Sim.Engine.now engine)) :: !arrivals);
  Net.Network.send net ~src:0 ~dst:1 (Ping 1);
  ignore
    (Sim.Engine.schedule_at engine gst (fun () ->
         Net.Network.send net ~src:0 ~dst:1 (Ping 2)));
  Sim.Engine.run_until engine (ms 2);
  let arrival i = List.assoc i !arrivals in
  check int_t "before gst: the oracle's full 200us" 200 (arrival 1);
  check int_t "after gst: clamped to the 50us bound"
    (Sim.Time.to_us gst + 50)
    (arrival 2)

(* ----------------------------------------------------- topology faults *)

let ring_net ~n =
  let engine = Sim.Engine.create ~seed:3L () in
  let net =
    Net.Spec.default
    |> Net.Spec.with_oracle (constant_delay 10)
    |> Net.Spec.with_topology Net.Topology.Ring
    |> fun spec -> Net.Network.of_spec spec engine ~n
  in
  (engine, net)

let test_edge_cut_and_heal () =
  let engine, net = ring_net ~n:4 in
  let box = ref 0 in
  Net.Network.set_handler net 1 (fun ~src:_ _ -> incr box);
  Net.Network.send net ~src:0 ~dst:1 (Ping 1);
  Sim.Engine.run_until engine (us 100);
  check int_t "edge up: delivered" 1 !box;
  Net.Network.set_edge_cut net ~a:0 ~b:1 true;
  Net.Network.send net ~src:0 ~dst:1 (Ping 2);
  Sim.Engine.run_until engine (us 200);
  check int_t "edge cut: dropped" 1 !box;
  check int_t "drop counted" 1 (Net.Network.dropped_count net);
  Net.Network.set_edge_cut net ~a:0 ~b:1 false;
  Net.Network.send net ~src:0 ~dst:1 (Ping 3);
  Sim.Engine.run_until engine (us 300);
  check int_t "healed: delivered again" 2 !box

let test_edge_degrade () =
  let engine, net = ring_net ~n:4 in
  let arrivals = ref [] in
  Net.Network.set_handler net 1 (fun ~src:_ (Ping i) ->
      arrivals := (i, Sim.Time.to_us (Sim.Engine.now engine)) :: !arrivals);
  Net.Network.send net ~src:0 ~dst:1 (Ping 1);
  Sim.Engine.run_until engine (us 50);
  Net.Network.set_edge_degrade net ~a:0 ~b:1 ~extra_us:500;
  ignore
    (Sim.Engine.schedule_at engine (us 100) (fun () ->
         Net.Network.send net ~src:0 ~dst:1 (Ping 2)));
  Sim.Engine.run_until engine (ms 1);
  check int_t "clean hop: 10us" 10 (List.assoc 1 !arrivals);
  check int_t "degraded hop: 10us + 500us extra" 610 (List.assoc 2 !arrivals)

let test_rack_cut () =
  let engine = Sim.Engine.create ~seed:3L () in
  let net =
    Net.Spec.default
    |> Net.Spec.with_oracle (constant_delay 10)
    |> Net.Spec.with_topology (Net.Topology.Fat_tree { rack = 4 })
    |> fun spec -> Net.Network.of_spec spec engine ~n:8
  in
  let hits = Array.make 8 0 in
  for p = 0 to 7 do
    Net.Network.set_handler net p (fun ~src:_ _ -> hits.(p) <- hits.(p) + 1)
  done;
  Net.Network.set_rack_cut net ~rack:0 true;
  Net.Network.send net ~src:0 ~dst:4 (Ping 1);
  (* cross-rack: cut *)
  Net.Network.send net ~src:4 ~dst:5 (Ping 2);
  (* inside the other rack: unaffected *)
  Net.Network.send net ~src:1 ~dst:2 (Ping 3);
  (* inside the cut rack: unaffected *)
  Sim.Engine.run_until engine (us 200);
  check int_t "cross-rack dropped" 0 hits.(4);
  check int_t "intra-rack (other) delivered" 1 hits.(5);
  check int_t "intra-rack (isolated) delivered" 1 hits.(2);
  Net.Network.set_rack_cut net ~rack:0 false;
  Net.Network.send net ~src:0 ~dst:4 (Ping 4);
  Sim.Engine.run_until engine (us 400);
  check int_t "healed rack reachable" 1 hits.(4);
  let _, ring = ring_net ~n:4 in
  check bool_t "rackless topology refuses" true
    (match Net.Network.set_rack_cut ring ~rack:0 true with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------ digests *)

let fixture_env () =
  let config = Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3 in
  Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })

let digest_hex result =
  Obs.Digest.to_hex (Option.get result.Harness.Run.digest)

let test_spec_path_keeps_pin () =
  (* The digest fixture from test_obs, with the topology and channel set
     explicitly through the Spec builder: the complete reliable default
     must take the legacy direct-dispatch path bit for bit. *)
  let spec =
    Harness.Run.Spec.(
      default |> with_horizon (sec 2) |> with_digest true
      |> with_topology Net.Topology.Complete
      |> with_link_channel Net.Topology.Reliable)
  in
  let result = Harness.Run.run ~spec ~env:(fixture_env ()) ~seed:7L () in
  check str_t "explicit Complete/Reliable keeps the pin" "d04e0b6bb1a89956"
    (digest_hex result)

let test_spec_path_keeps_faulted_pin () =
  (* test_fault's busy-plan pin, through the explicit Spec path. *)
  let busy_plan =
    Fault.Plan.(
      empty
      |> partition ~at:(ms 500) ~heal_at:(ms 900) [ [ 2 ] ]
      |> crash 0 ~at:(ms 600)
      |> recover 0 ~at:(ms 1200)
      |> dup_burst ~at:(ms 1400) ~until:(ms 1500) ~extra:(ms 1))
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_horizon (sec 2) |> with_digest true
      |> with_plan busy_plan
      |> with_topology Net.Topology.Complete
      |> with_link_channel Net.Topology.Reliable)
  in
  let result = Harness.Run.run ~spec ~env:(fixture_env ()) ~seed:7L () in
  check str_t "faulted pin through the Spec path" "6974643acde923c2"
    (digest_hex result)

let test_spec_path_keeps_relay_pin () =
  (* test_omega_lean's pin, through the explicit Spec path (hop_slack is
     zero on the complete graph, so the relay stream is untouched). *)
  let config =
    {
      (Omega.Config.default ~n:4 ~t:1 Omega.Config.Fig3) with
      Omega.Config.initial_timeout = ms 10;
    }
  in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_check false |> with_algo `Relay
      |> with_horizon (sec 2) |> with_digest true
      |> with_topology Net.Topology.Complete
      |> with_link_channel Net.Topology.Reliable)
  in
  let result = Harness.Run.run ~spec ~env ~seed:7L () in
  check str_t "relay pin through the Spec path" "dc1babe982945dd5"
    (digest_hex result)

let ring_env () =
  let config = Omega.Config.default ~n:6 ~t:2 Omega.Config.Fig3 in
  Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center = 4 })

let ring_spec sched =
  Harness.Run.Spec.(
    default |> with_horizon (sec 1) |> with_digest true |> with_check false
    |> with_topology Net.Topology.Ring |> with_sched sched)

let test_routed_wheel_heap_agree () =
  let wheel = Harness.Run.run ~spec:(ring_spec `Wheel) ~env:(ring_env ()) ~seed:7L () in
  let heap = Harness.Run.run ~spec:(ring_spec `Heap) ~env:(ring_env ()) ~seed:7L () in
  check str_t "routed run: wheel and heap streams agree" (digest_hex wheel)
    (digest_hex heap);
  check str_t "routed ring digest pinned" "18c64c0ae9271f56" (digest_hex wheel)

let test_routed_deterministic () =
  let once () =
    digest_hex (Harness.Run.run ~spec:(ring_spec `Wheel) ~env:(ring_env ()) ~seed:11L ())
  in
  check str_t "routed run: same seed, same digest" (once ()) (once ())

let test_routed_snapshot_restore () =
  (* Snapshot mid-run on a routed topology (pending multi-hop flights in
     the pool), restore, continue: same digest as the straight run. *)
  let straight =
    Harness.Run.run ~spec:(ring_spec `Wheel) ~env:(ring_env ()) ~seed:7L ()
  in
  let live = Harness.Run.start ~spec:(ring_spec `Wheel) ~env:(ring_env ()) ~seed:7L () in
  Harness.Run.advance live ~until:(ms 400);
  let restored = Harness.Run.restore (Harness.Run.snapshot live) in
  check str_t "routed snapshot -> restore -> continue"
    (digest_hex straight)
    (digest_hex (Harness.Run.finish restored))

let test_edge_fault_plan () =
  (* A topology-aware fault plan is deterministic and observable: cutting
     a ring edge for part of the run shifts the digest, identically on
     every execution. *)
  let plan =
    Fault.Plan.(empty |> cut_edge ~a:4 ~b:5 ~at:(ms 200) ~heal_at:(ms 600) ())
  in
  let spec plan =
    match plan with
    | None -> ring_spec `Wheel
    | Some p -> Harness.Run.Spec.(ring_spec `Wheel |> with_plan p)
  in
  let run p = digest_hex (Harness.Run.run ~spec:(spec p) ~env:(ring_env ()) ~seed:7L ()) in
  check str_t "faulted routed run deterministic" (run (Some plan))
    (run (Some plan));
  check bool_t "edge cut perturbs the stream" false
    (String.equal (run (Some plan)) (run None))

let () =
  Alcotest.run "topology"
    [
      ( "routing",
        [
          Alcotest.test_case "build deterministic" `Quick
            test_build_deterministic;
          Alcotest.test_case "routes reach in dist hops" `Quick
            test_routes_reach;
          Alcotest.test_case "rack grouping" `Quick test_groups;
        ] );
      ( "channels",
        [
          Alcotest.test_case "fair-lossy rate" `Quick test_fair_lossy_rate;
          Alcotest.test_case "eventually-timely clamp" `Quick
            test_eventually_timely_clamp;
        ] );
      ( "faults",
        [
          Alcotest.test_case "edge cut and heal" `Quick test_edge_cut_and_heal;
          Alcotest.test_case "edge degrade" `Quick test_edge_degrade;
          Alcotest.test_case "rack cut" `Quick test_rack_cut;
          Alcotest.test_case "edge fault plan" `Quick test_edge_fault_plan;
        ] );
      ( "digests",
        [
          Alcotest.test_case "spec path keeps the pin" `Quick
            test_spec_path_keeps_pin;
          Alcotest.test_case "spec path keeps the faulted pin" `Quick
            test_spec_path_keeps_faulted_pin;
          Alcotest.test_case "spec path keeps the relay pin" `Quick
            test_spec_path_keeps_relay_pin;
          Alcotest.test_case "wheel vs heap on routed run" `Quick
            test_routed_wheel_heap_agree;
          Alcotest.test_case "routed determinism" `Quick
            test_routed_deterministic;
          Alcotest.test_case "routed snapshot restore" `Quick
            test_routed_snapshot_restore;
        ] );
    ]
