(* Bechamel benchmarks: one Test.make per experiment table (E1..E8, reduced
   workloads — the full tables come from bin/experiments.exe), plus
   micro-benchmarks of the substrate operations the simulator's throughput
   depends on.

   [--json PATH] additionally dumps every estimate (ns/run and minor words
   allocated/run) as machine-readable JSON, so successive PRs can diff
   performance (see BENCH_pr1.json for the first snapshot). *)

open Bechamel
open Toolkit

(* Run one complete small simulation: n processes, rotating star, given
   horizon; returns the message count so the work cannot be optimized out.
   [sched]/[flight_pool] select the scheduler backend and flight pooling,
   so the n-scaling rows can A/B the wheel+pools stack against the
   heap/no-pool reference in the same build. *)
let sim_run ?(digest = false) ?(sched = `Wheel) ?(flight_pool = true)
    ?(algo = `Gossip) ?(topology = Net.Topology.Complete) ?(intra = 1) ~variant
    ~n ~horizon_ms () =
  let t = (n - 1) / 2 in
  let config = Omega.Config.default ~n ~t variant in
  let env =
    Scenarios.Env.make config
      (Scenarios.Scenario.Rotating_star { center = n - 2 })
  in
  let spec =
    Harness.Run.Spec.(
      default |> with_check false |> with_digest digest
      |> with_sched sched |> with_flight_pool flight_pool |> with_algo algo
      |> with_topology topology
      |> with_intra_domains intra
      |> with_horizon (Sim.Time.of_ms horizon_ms))
  in
  let result = Harness.Run.run ~spec ~env ~seed:7L () in
  result.Harness.Run.messages_sent

(* Silence the tables while timing the experiment functions. *)
let muted f () =
  let dev_null = open_out "/dev/null" in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel dev_null) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      close_out dev_null)
    f

(* e11 is excluded: the n-scaling sweep takes tens of seconds even under
   [--quick] (it exists to measure wall-clock, not to be benchmarked), and
   its n-scaling rows are covered directly by the micro:sim-1s-n* tests. *)
let experiment_tests =
  List.filter_map
    (fun (id, _doc, f) ->
      if id = "e11" then None
      else
        Some
          (Test.make ~name:("table:" ^ id)
             (Staged.stage
                (muted (fun () ->
                     f ~pool:Parallel.Pool.sequential ~quick:true
                       ~obs:Experiments.Suite.no_obs)))))
    Experiments.Suite.all

(* A mid-flight n=64 run for the snapshot/restore rows: built once, lazily
   (the fixture itself takes ~half a simulated second of work). *)
let snapshot_fixture =
  lazy
    (let n = 64 in
     let t = (n - 1) / 2 in
     let config = Omega.Config.default ~n ~t Omega.Config.Fig1 in
     let env =
       Scenarios.Env.make config
         (Scenarios.Scenario.Rotating_star { center = n - 2 })
     in
     let spec =
       Harness.Run.Spec.(
         default |> with_check false |> with_horizon (Sim.Time.of_sec 2))
     in
     let live = Harness.Run.start ~spec ~env ~seed:7L () in
     Harness.Run.advance live ~until:(Sim.Time.of_ms 500);
     live)

let snapshot_bytes = lazy (Harness.Run.snapshot (Lazy.force snapshot_fixture))

let micro_tests =
  [
    Test.make ~name:"micro:engine-10k-events"
      (Staged.stage (fun () ->
           let engine = Sim.Engine.create ~seed:1L () in
           for i = 1 to 10_000 do
             ignore (Sim.Engine.schedule_after engine (Sim.Time.of_us i) ignore)
           done;
           Sim.Engine.run_until engine (Sim.Time.of_sec 1)));
    Test.make ~name:"micro:rng-100k"
      (Staged.stage (fun () ->
           let rng = Dstruct.Rng.create 7L in
           let acc = ref 0 in
           for _ = 1 to 100_000 do
             acc := !acc + Dstruct.Rng.int rng 1000
           done;
           ignore !acc));
    Test.make ~name:"micro:sim-1s-n4-fig3"
      (Staged.stage (fun () ->
           ignore (sim_run ~variant:Omega.Config.Fig3 ~n:4 ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n8-fig1"
      (Staged.stage (fun () ->
           ignore (sim_run ~variant:Omega.Config.Fig1 ~n:8 ~horizon_ms:1000 ())));
    (* Same simulation with the digest sink live on every event — the price
       of full observability, vs the null-sink row above. *)
    Test.make ~name:"micro:sim-1s-n8-fig1+digest"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~digest:true ~variant:Omega.Config.Fig1 ~n:8
                ~horizon_ms:1000 ())));
    (* The n-scaling tier (DESIGN.md §13): identical runs under the default
       wheel+pools stack and the heap/no-pool reference. The -heap-nopool
       rows are the A/B baseline the ISSUE's ≥25% clock / ≥50% alloc
       improvement is measured against — same build, same seed, same event
       stream. *)
    Test.make ~name:"micro:sim-1s-n32-fig1"
      (Staged.stage (fun () ->
           ignore (sim_run ~variant:Omega.Config.Fig1 ~n:32 ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n64-fig1"
      (Staged.stage (fun () ->
           ignore (sim_run ~variant:Omega.Config.Fig1 ~n:64 ~horizon_ms:1000 ())));
    (* Intra-run parallelism off (DESIGN.md §18): with_intra_domains 1 must
       take the sequential path through the one added dispatch branch —
       this row pins, under the strict-alloc gate, that a build carrying
       the sharded driver costs the plain run nothing. *)
    Test.make ~name:"micro:sim-1s-n64-fig1-intra1"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~intra:1 ~variant:Omega.Config.Fig1 ~n:64
                ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n64-fig1-heap-nopool"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~sched:`Heap ~flight_pool:false ~variant:Omega.Config.Fig1
                ~n:64 ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n128-fig1"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~variant:Omega.Config.Fig1 ~n:128 ~horizon_ms:1000 ())));
    (* The communication-efficient relay tier (DESIGN.md §15): same oracle
       and seed as the fig rows, O(n) messages per round instead of n². Its
       hot path shares the allocation-free contract, so these rows sit
       under the strict-alloc gate like every micro: bench. *)
    Test.make ~name:"micro:sim-1s-n8-relay"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~algo:`Relay ~variant:Omega.Config.Fig3 ~n:8
                ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n64-relay"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~algo:`Relay ~variant:Omega.Config.Fig3 ~n:64
                ~horizon_ms:1000 ())));
    (* Routed topologies (DESIGN.md §17): the same n=64 second over a ring
       (diameter 32 — every send relays through ~16 pooled hops) and a
       fat-tree (diameter 3). The routed path shares the one-pooled-cell-
       per-hop allocation-free contract, so both sit under the strict-alloc
       gate. *)
    Test.make ~name:"micro:sim-1s-n64-ring"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~topology:Net.Topology.Ring ~variant:Omega.Config.Fig1
                ~n:64 ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n64-fattree"
      (Staged.stage (fun () ->
           ignore
             (sim_run
                ~topology:(Net.Topology.Fat_tree { rack = 4 })
                ~variant:Omega.Config.Fig1 ~n:64 ~horizon_ms:1000 ())));
    (* Snapshot/restore (DESIGN.md §16): marshal a mid-flight n=64 run and
       rebuild it. Both allocate by design (Marshal) — the contract is that
       the *null* path (no snapshot taken) stays allocation-free, which the
       sim-1s rows above pin; these rows track the checkpoint cost itself.
       Marshal output is deterministic for a fixed state, so the alloc
       estimate is stable under the strict-alloc gate. *)
    Test.make ~name:"micro:engine-snapshot-n64"
      (Staged.stage (fun () ->
           ignore (Harness.Run.snapshot (Lazy.force snapshot_fixture))));
    Test.make ~name:"micro:engine-restore-n64"
      (Staged.stage (fun () ->
           ignore (Harness.Run.restore (Lazy.force snapshot_bytes))));
  ]

(* The large-cluster tier (DESIGN.md §14): one simulated second at n = 256
   and n = 512. A single run is tens of wall-clock seconds, so like the
   macro tables they get the minimal-iteration config — the point of the
   rows is n-scaling and PR-over-PR drift, not microsecond resolution. *)
let large_micro_tests =
  [
    Test.make ~name:"micro:sim-1s-n256-fig1"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~variant:Omega.Config.Fig1 ~n:256 ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n512-fig1"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~variant:Omega.Config.Fig1 ~n:512 ~horizon_ms:1000 ())));
    (* The relay variant at gossip-prohibitive scale: n = 256 in one
       simulated second is ~0.4M messages for the gossip family but only
       ~5k for the relay tier — the O(n) headline as wall-clock. *)
    Test.make ~name:"micro:sim-1s-n256-relay"
      (Staged.stage (fun () ->
           ignore
             (sim_run ~algo:`Relay ~variant:Omega.Config.Fig3 ~n:256
                ~horizon_ms:1000 ())));
  ]

(* micro:pqueue-push-pop-1k and micro:engine-pending-1k wobbled ±30%
   between identical builds under the 2s quota (CHANGES.md, PR 3), drowning
   bench_diff's clock warnings; they get a longer quota and more samples. *)
let noisy_micro_tests =
  [
    Test.make ~name:"micro:engine-pending-1k"
      (Staged.stage (fun () ->
           (* [pending] amid a half-cancelled queue: O(1) counter reads,
              previously a sort of the whole queue per call. *)
           let engine = Sim.Engine.create ~seed:1L () in
           let handles =
             Array.init 1_000 (fun i ->
                 Sim.Engine.schedule_after engine (Sim.Time.of_us (i + 1)) ignore)
           in
           Array.iteri
             (fun i h -> if i mod 2 = 0 then Sim.Engine.cancel engine h)
             handles;
           let acc = ref 0 in
           for _ = 1 to 1_000 do
             acc := !acc + Sim.Engine.pending engine
           done;
           ignore !acc));
    Test.make ~name:"micro:pqueue-push-pop-1k"
      (Staged.stage (fun () ->
           let q = Dstruct.Pqueue.create ~compare:Int.compare in
           for i = 1_000 downto 1 do
             Dstruct.Pqueue.push q i
           done;
           while not (Dstruct.Pqueue.is_empty q) do
             ignore (Dstruct.Pqueue.pop q)
           done));
  ]

(* One result row: the OLS estimate per measure, keyed by the measure's
   label ("monotonic-clock" in ns/run, "minor-allocated" in words/run). *)
type row = { name : string; estimates : (string * float option) list }

let benchmark ~cfg tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  List.map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let estimates =
        List.map
          (fun instance ->
            let per_name = Analyze.all ols instance raw in
            let est = ref None in
            Hashtbl.iter
              (fun _key o ->
                match Analyze.OLS.estimates o with
                | Some [ e ] -> est := Some e
                | Some _ | None -> ())
              per_name;
            (Measure.label instance, !est))
          instances
      in
      { name = Test.name test; estimates })
    tests

let micro_cfg =
  Benchmark.cfg ~limit:50 ~stabilize:false ~quota:(Time.second 2.0) ()

(* Longer quota + more samples for the noisy rows: micro-second-scale
   bodies need many more iterations before OLS converges (see
   [noisy_micro_tests]). *)
let noisy_cfg =
  Benchmark.cfg ~limit:500 ~stabilize:true ~quota:(Time.second 5.0) ()

(* Each macro "run" is an entire (reduced) experiment: several simulations
   adding up to seconds of wall time — a couple of runs per table suffices. *)
let macro_cfg =
  Benchmark.cfg ~limit:2 ~stabilize:false ~quota:(Time.second 0.1) ()

let pretty_ns est =
  if est >= 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
  else if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
  else if est >= 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
  else Printf.sprintf "%.0f ns" est

let pretty_words est =
  if est >= 1e6 then Printf.sprintf "%.2f Mw" (est /. 1e6)
  else if est >= 1e3 then Printf.sprintf "%.1f kw" (est /. 1e3)
  else Printf.sprintf "%.0f w" est

let report rows =
  Printf.printf "%-28s %14s %14s\n" "benchmark" "time/run" "minor/run";
  Printf.printf "%s\n" (String.make 59 '-');
  List.iter
    (fun { name; estimates } ->
      let cell pretty label =
        match List.assoc_opt label estimates with
        | Some (Some est) -> pretty est
        | Some None | None -> "?"
      in
      Printf.printf "%-28s %14s %14s\n" name
        (cell pretty_ns "monotonic-clock")
        (cell pretty_words "minor-allocated"))
    rows;
  flush stdout

(* Minimal JSON writer — the values are benchmark names (plain ASCII) and
   floats, so only the basic string escapes matter. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_dump path rows =
  let oc = open_out path in
  output_string oc "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i { name; estimates } ->
      output_string oc (Printf.sprintf "    {\"name\": \"%s\"" (json_escape name));
      List.iter
        (fun (label, est) ->
          match est with
          | Some est ->
              output_string oc
                (Printf.sprintf ", \"%s\": %.3f" (json_escape label) est)
          | None ->
              output_string oc
                (Printf.sprintf ", \"%s\": null" (json_escape label)))
        estimates;
      output_string oc
        (if i = List.length rows - 1 then "}\n" else "},\n"))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nWrote %d estimates to %s\n" (List.length rows) path

let json_path () =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let () =
  print_endline "== micro benchmarks (substrate + simulator throughput) ==";
  let micro =
    benchmark ~cfg:micro_cfg micro_tests
    @ benchmark ~cfg:macro_cfg large_micro_tests
    @ benchmark ~cfg:noisy_cfg noisy_micro_tests
  in
  report micro;
  print_endline "";
  print_endline
    "== macro benchmarks: one Test.make per experiment table (reduced size) ==";
  let macro = benchmark ~cfg:macro_cfg experiment_tests in
  report macro;
  (match json_path () with
  | Some path -> json_dump path (micro @ macro)
  | None -> ());
  print_endline "";
  print_endline
    "Full experiment tables: dune exec bin/experiments.exe (see EXPERIMENTS.md)."
