lib/sim/time.ml: Format Int Stdlib
