lib/sim/engine.ml: Dstruct Format List Time
