lib/sim/engine.mli: Dstruct Time
