lib/sim/timer.ml: Engine Option
