lib/sim/timer.mli: Engine Time
