(** Restartable one-shot timer, the "local clock that can accurately measure
    time intervals" of the paper's process model.

    A timer is either unarmed, armed (will call [on_expire] at a future
    time), or expired (fired and not re-armed). The leader algorithms test
    "timer has expired" as a persistent condition, which [has_expired]
    models. *)

type t

val create : Engine.t -> on_expire:(unit -> unit) -> t

(** [set t d] (re)arms the timer to fire after duration [d], cancelling any
    previous arming and clearing the expired flag. [d] may be zero, in which
    case the timer fires as a separate immediate event. *)
val set : t -> Time.t -> unit

(** [cancel t] disarms without marking expired. *)
val cancel : t -> unit

val is_armed : t -> bool

(** True from the moment the timer fires until the next [set]. *)
val has_expired : t -> bool
