type t = int

let zero = 0
let of_us us = us
let of_ms ms = ms * 1_000
let of_sec s = s * 1_000_000
let to_us t = t
let to_ms_float t = float_of_int t /. 1_000.
let add = ( + )
let sub = ( - )
let compare = Int.compare
let ( <= ) = Stdlib.( <= )
let ( < ) = Stdlib.( < )
let ( >= ) = Stdlib.( >= )
let ( > ) = Stdlib.( > )
let max = Stdlib.max
let min = Stdlib.min

let pp ppf t =
  if t mod 1_000_000 = 0 then Format.fprintf ppf "%ds" (t / 1_000_000)
  else if t mod 1_000 = 0 then Format.fprintf ppf "%dms" (t / 1_000)
  else Format.fprintf ppf "%dus" t
