(** Virtual time for the discrete-event simulator.

    Time is an integer number of microseconds. The paper's global clock is a
    fictional device used only in specifications; here it is the simulator
    clock, still invisible to the simulated processes (they may only measure
    intervals with local timers, as the model requires). *)

type t = int

val zero : t
val of_us : int -> t
val of_ms : int -> t
val of_sec : int -> t
val to_us : t -> int
val to_ms_float : t -> float
val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
