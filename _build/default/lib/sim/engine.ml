type handle = { mutable cancelled : bool }

type event = { time : Time.t; action : unit -> unit; h : handle }

type t = {
  queue : event Dstruct.Pqueue.t;
  rng : Dstruct.Rng.t;
  mutable now : Time.t;
  mutable executed : int;
  mutable live : int;  (* scheduled and not cancelled *)
}

let compare_event (a : event) (b : event) = Time.compare a.time b.time

let create ~seed () =
  {
    queue = Dstruct.Pqueue.create ~compare:compare_event;
    rng = Dstruct.Rng.create seed;
    now = Time.zero;
    executed = 0;
    live = 0;
  }

let now t = t.now
let rng t = t.rng

let schedule_at t time action =
  if Time.(time < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp
         time Time.pp t.now);
  let h = { cancelled = false } in
  Dstruct.Pqueue.push t.queue { time; action; h };
  t.live <- t.live + 1;
  h

let schedule_after t delay action =
  schedule_at t (Time.add t.now delay) action

let cancel h = h.cancelled <- true
let is_cancelled h = h.cancelled

let pending t =
  (* [live] over-counts by the cancelled-but-still-queued events, so count
     precisely; the queue is small in practice and this is a debug query. *)
  ignore t.live;
  List.length
    (List.filter
       (fun e -> not e.h.cancelled)
       (Dstruct.Pqueue.to_sorted_list t.queue))

let executed t = t.executed

let step t =
  match Dstruct.Pqueue.pop t.queue with
  | None -> false
  | Some e ->
      t.live <- t.live - 1;
      if not e.h.cancelled then begin
        assert (Time.(e.time >= t.now));
        t.now <- e.time;
        t.executed <- t.executed + 1;
        e.action ()
      end;
      true

let run_until t limit =
  let rec loop () =
    match Dstruct.Pqueue.peek t.queue with
    | Some e when Time.(e.time <= limit) ->
        ignore (step t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- Time.max t.now limit

let run_until_idle ?limit t =
  let rec loop () =
    match Dstruct.Pqueue.peek t.queue with
    | None -> `Idle
    | Some e -> (
        match limit with
        | Some l when Time.(e.time > l) ->
            t.now <- Time.max t.now l;
            `Limit
        | Some _ | None ->
            ignore (step t);
            loop ())
  in
  loop ()
