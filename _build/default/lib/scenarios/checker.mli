(** Trace checker: verifies that a finished run actually satisfied the
    assumption the scenario promised.

    Register {!tracer} on the network before the run; afterwards {!verify}
    replays the witness: for every round [s ∈ S] up to a horizon and every
    point [q ∈ Q(s)], property A2 must hold — [q] crashed, or the center's
    ALIVE(s) was received by [q] within [δ + g s] of its sending, or among
    the first [n − t] ALIVE(s) messages [q] received.

    This closes the loop on experiment honesty: E1/E2/E7's "the assumption
    held" is a checked fact about the trace, not a property we hope the
    delay oracle implements. *)

type pid = int

type violation = {
  rn : int;
  q : pid;
  detail : string;  (** human-readable reason A2 failed at (rn, q) *)
}

type report = {
  rounds_checked : int;  (** rounds of S in the verified window *)
  points_checked : int;  (** (rn, q) pairs examined *)
  points_timely : int;  (** satisfied via A2(2) *)
  points_winning : int;  (** satisfied via A2(3) but not A2(2) *)
  points_crashed : int;  (** satisfied via A2(1) *)
  points_skipped : int;  (** not judgeable (round incomplete at horizon) *)
  violations : violation list;
}

val pp_report : Format.formatter -> report -> unit

type 'm t

val create : Scenario.t -> round_of:('m -> int option) -> 'm t

(** Feed to {!Net.Network.set_tracer}. *)
val tracer : 'm t -> 'm Net.Network.trace_event -> unit

(** [verify t ~upto_round ~crashed] checks every [s ∈ S] with
    [rn0 <= s <= upto_round]. [crashed q] must say whether [q] crashed
    during the run. *)
val verify : 'm t -> upto_round:int -> crashed:(pid -> bool) -> report
