lib/scenarios/scenario.mli: Net Omega Sim
