lib/scenarios/checker.ml: Format Hashtbl List Net Option Printf Scenario Sim
