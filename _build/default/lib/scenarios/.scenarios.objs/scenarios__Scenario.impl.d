lib/scenarios/scenario.ml: Array Dstruct Fun Hashtbl List Net Omega Option Printf Sim
