lib/scenarios/checker.mli: Format Net Scenario
