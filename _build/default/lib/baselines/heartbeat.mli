(** Classic per-link timeout leader election (the style of the earliest Ω
    implementations, e.g. Larrea-Fernández-Arévalo [LFA00]).

    Every process heartbeats every [beta]; every receiver keeps an adaptive
    per-sender deadline and a suspected set; [leader () = min id not
    suspected]. No suspicion exchange, no quorum: each process trusts its own
    timers — which is why the algorithm needs (roughly) the leader's output
    links to be eventually timely at {e every} receiver, a far stronger
    assumption than the paper's A. *)

type pid = int

type msg = Heartbeat of { epoch : int }

(** [round_of] for the scenario oracle: heartbeats are the assumption-
    constrained, round-tagged messages. *)
val round_of : msg -> int option

type t

type cluster

(** [create_cluster net ~beta ~initial_timeout] builds one node per process
    of [net]. *)
val create_cluster :
  msg Net.Network.t ->
  beta:Sim.Time.t ->
  initial_timeout:Sim.Time.t ->
  cluster

val start : cluster -> unit
val leader : cluster -> pid -> pid

(** All correct processes agree on one correct leader? *)
val agreed_leader : cluster -> pid option

(** Slowest correct process's heartbeat epoch (round analogue). *)
val min_epoch : cluster -> int

(** Suspected set of process [p] (observer for tests). *)
val suspected : cluster -> pid -> pid list
