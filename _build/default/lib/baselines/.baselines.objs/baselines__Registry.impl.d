lib/baselines/registry.ml: Heartbeat List Net Omega Scenarios Sim
