lib/baselines/heartbeat.mli: Net Sim
