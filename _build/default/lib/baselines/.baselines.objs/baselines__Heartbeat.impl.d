lib/baselines/heartbeat.ml: Array Dstruct List Net Sim
