lib/baselines/registry.mli: Scenarios Sim
