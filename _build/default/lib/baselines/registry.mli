(** Uniform driver interface over every leader algorithm in the repository,
    for head-to-head comparison under every assumption regime (experiment
    E4).

    Each algorithm instance builds its own network (with the scenario's delay
    oracle applied to its own message type) on a shared engine. *)

type pid = int

type instance = {
  start : unit -> unit;
  crash_at : pid -> Sim.Time.t -> unit;
  agreed_leader : unit -> pid option;
      (** all correct processes output one correct leader? *)
  min_round : unit -> int;
      (** slowest correct process's round/epoch — the stability clock *)
}

type algo = {
  name : string;
  describe : string;
  make : Sim.Engine.t -> Scenarios.Scenario.t -> instance;
}

(** The paper's three algorithms. *)
val fig1 : algo

val fig2 : algo
val fig3 : algo

(** Single-mechanism baselines (DESIGN.md §5): pure timeout detector
    (t-source family) and pure order detector (message pattern, MMR03). *)
val timer_only : algo

val count_only : algo

(** Classic per-link heartbeat detector (no suspicion exchange). *)
val heartbeat : algo

(** All of the above, in comparison order. *)
val all : algo list

val by_name : string -> algo option
