type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny vs 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k xs =
  if k < 0 || k > List.length xs then invalid_arg "Rng.sample: bad k";
  let shuffled = shuffle t xs in
  List.filteri (fun i _ -> i < k) shuffled
