(** Deterministic pseudo-random number generator (splitmix64).

    The simulator must be fully reproducible from a seed, including across
    independent sub-streams (one per process, one per link), so we use
    splitmix64 with an explicit [split] operation instead of the global
    [Stdlib.Random] state. *)

type t

(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)
val create : int64 -> t

(** [split t] derives an independent generator from [t], advancing [t]. *)
val split : t -> t

(** [copy t] duplicates the exact current state of [t]. *)
val copy : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [0, bound). Requires [bound > 0.]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to [0,1]). *)
val chance : t -> float -> bool

(** [exponential t ~mean] samples an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [pick t xs] is a uniformly chosen element of the non-empty list [xs]. *)
val pick : t -> 'a list -> 'a

(** [shuffle t xs] is a uniform permutation of [xs]. *)
val shuffle : t -> 'a list -> 'a list

(** [sample t k xs] is a uniform [k]-subset of [xs] (in shuffled order).
    Requires [k <= List.length xs]. *)
val sample : t -> int -> 'a list -> 'a list
