(** Online sample statistics for experiment harnesses.

    Keeps all samples (experiments are small: thousands of points) so exact
    percentiles are available, plus Welford running mean/variance so summary
    queries are O(1). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool
val mean : t -> float

(** Sample (unbiased) standard deviation; [0.] with fewer than two samples. *)
val stddev : t -> float

val min : t -> float
val max : t -> float

(** [percentile t p] with [p] in [0,100], by linear interpolation between
    closest ranks. Raises [Invalid_argument] on an empty series or [p] out of
    range. *)
val percentile : t -> float -> float

val median : t -> float

(** [summary ppf t] prints "n=… mean=… sd=… min=… p50=… p99=… max=…". *)
val summary : Format.formatter -> t -> unit
