type 'a t = { table : (int, 'a) Hashtbl.t; mutable floor : int }

let create () = { table = Hashtbl.create 64; floor = 0 }
let floor t = t.floor
let cardinal t = Hashtbl.length t.table

let check_live t rn ~op =
  if rn < t.floor then
    invalid_arg
      (Printf.sprintf "Rounds.%s: round %d below floor %d" op rn t.floor)

let find t rn = if rn < t.floor then None else Hashtbl.find_opt t.table rn

let find_or_add t rn ~default =
  check_live t rn ~op:"find_or_add";
  match Hashtbl.find_opt t.table rn with
  | Some v -> v
  | None ->
      let v = default () in
      Hashtbl.add t.table rn v;
      v

let set t rn v =
  check_live t rn ~op:"set";
  Hashtbl.replace t.table rn v

let prune_below t bound =
  if bound > t.floor then begin
    (* Collect first: removing during [iter] is unspecified for Hashtbl. *)
    let dead = ref [] in
    Hashtbl.iter (fun rn _ -> if rn < bound then dead := rn :: !dead) t.table;
    List.iter (Hashtbl.remove t.table) !dead;
    t.floor <- bound
  end

let iter t f = Hashtbl.iter f t.table

let max_round t =
  Hashtbl.fold
    (fun rn _ acc ->
      match acc with Some m when m >= rn -> acc | _ -> Some rn)
    t.table None
