(** Fixed-capacity set of small non-negative integers (process ids).

    Used for [rec_from] sets and [suspects] fields of SUSPICION messages:
    dense, O(1) membership, cheap cardinality, value-style copies. *)

type t

(** [create capacity] is the empty set over [0 .. capacity-1]. *)
val create : int -> t

val capacity : t -> int
val cardinal : t -> int
val mem : t -> int -> bool

(** [add t i] inserts [i]; no-op if already present. Raises on out-of-range. *)
val add : t -> int -> unit

(** [remove t i] deletes [i]; no-op if absent. Raises on out-of-range. *)
val remove : t -> int -> unit

val is_empty : t -> bool

(** [clear t] removes every member. *)
val clear : t -> unit

val copy : t -> t

(** [complement t] is the set of ids in [0 .. capacity-1] not in [t]. *)
val complement : t -> t

(** Ascending list of members. *)
val to_list : t -> int list

val of_list : capacity:int -> int list -> t
val iter : (int -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
