type t = {
  mutable samples : float array;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations, for Welford *)
  mutable min : float;
  mutable max : float;
  mutable sorted : float array option;  (* cache, invalidated by add *)
}

let create () =
  {
    samples = [||];
    n = 0;
    mean = 0.;
    m2 = 0.;
    min = infinity;
    max = neg_infinity;
    sorted = None;
  }

let add t x =
  if t.n = Array.length t.samples then begin
    let capacity = Stdlib.max 16 (2 * Array.length t.samples) in
    let bigger = Array.make capacity 0. in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.sorted <- None

let count t = t.n
let is_empty t = t.n = 0
let mean t = t.mean

let stddev t =
  if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

let min t = t.min
let max t = t.max

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub t.samples 0 t.n in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty series";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let a = sorted t in
  let rank = p /. 100. *. float_of_int (t.n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then a.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1. -. w) *. a.(lo)) +. (w *. a.(hi))
  end

let median t = percentile t 50.

let summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf
      "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f" t.n t.mean
      (stddev t) t.min (median t) (percentile t 99.) t.max
