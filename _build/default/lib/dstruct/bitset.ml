type t = { bits : Bytes.t; capacity : int; mutable cardinal : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { bits = Bytes.make ((capacity + 7) / 8) '\000'; capacity; cardinal = 0 }

let capacity t = t.capacity
let cardinal t = t.cardinal

let check t i ~op =
  if i < 0 || i >= t.capacity then
    invalid_arg
      (Printf.sprintf "Bitset.%s: %d out of range [0,%d)" op i t.capacity)

let mem t i =
  check t i ~op:"mem";
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let add t i =
  check t i ~op:"add";
  let byte = Char.code (Bytes.get t.bits (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  if byte land mask = 0 then begin
    Bytes.set t.bits (i / 8) (Char.chr (byte lor mask));
    t.cardinal <- t.cardinal + 1
  end

let remove t i =
  check t i ~op:"remove";
  let byte = Char.code (Bytes.get t.bits (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  if byte land mask <> 0 then begin
    Bytes.set t.bits (i / 8) (Char.chr (byte land lnot mask));
    t.cardinal <- t.cardinal - 1
  end

let is_empty t = t.cardinal = 0

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.cardinal <- 0

let copy t =
  { bits = Bytes.copy t.bits; capacity = t.capacity; cardinal = t.cardinal }

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let complement t =
  let c = create t.capacity in
  for i = 0 to t.capacity - 1 do
    if not (mem t i) then add c i
  done;
  c

let to_list t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list ~capacity members =
  let t = create capacity in
  List.iter (add t) members;
  t

let equal a b =
  a.capacity = b.capacity && a.cardinal = b.cardinal
  && Bytes.equal a.bits b.bits

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)
