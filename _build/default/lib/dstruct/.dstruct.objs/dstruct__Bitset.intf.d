lib/dstruct/bitset.mli: Format
