lib/dstruct/rng.mli:
