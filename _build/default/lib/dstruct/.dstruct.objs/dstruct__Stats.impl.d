lib/dstruct/stats.ml: Array Float Format Stdlib
