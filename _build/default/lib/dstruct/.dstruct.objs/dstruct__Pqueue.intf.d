lib/dstruct/pqueue.mli:
