lib/dstruct/bitset.ml: Bytes Char Format List Printf
