lib/dstruct/stats.mli: Format
