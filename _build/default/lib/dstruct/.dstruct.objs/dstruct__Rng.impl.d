lib/dstruct/rng.ml: Array Int64 List
