lib/dstruct/rounds.mli:
