lib/dstruct/rounds.ml: Hashtbl List Printf
