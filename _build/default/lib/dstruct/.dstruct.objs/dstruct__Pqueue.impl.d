lib/dstruct/pqueue.ml: Array List
