(** Plain-text table rendering for experiment output. *)

(** [print ~title ~header rows] renders an aligned ASCII table to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** Cell helpers. *)
val ms : float -> string
(** "123.4ms", or "-" for nan (never stabilized). *)

val yesno : bool -> string
val intc : int -> string
