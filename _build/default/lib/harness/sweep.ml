type aggregate = {
  runs : int;
  stabilized : int;
  stabilization_ms : Dstruct.Stats.t;
  elected_center : int;
  messages : Dstruct.Stats.t;
  max_susp_level : Dstruct.Stats.t;
  violations : int;
}

let run ?horizon ?crashes ?check ~seeds ~config ~scenario_of () =
  let agg =
    {
      runs = 0;
      stabilized = 0;
      stabilization_ms = Dstruct.Stats.create ();
      elected_center = 0;
      messages = Dstruct.Stats.create ();
      max_susp_level = Dstruct.Stats.create ();
      violations = 0;
    }
  in
  List.fold_left
    (fun agg seed ->
      let scenario = scenario_of seed in
      let result = Run.run ?horizon ?crashes ?check ~config ~scenario ~seed () in
      let stabilized = Option.is_some result.Run.stabilized_at in
      if stabilized then
        Dstruct.Stats.add agg.stabilization_ms (Run.stabilization_ms result);
      Dstruct.Stats.add agg.messages (float_of_int result.Run.messages_sent);
      Dstruct.Stats.add agg.max_susp_level
        (float_of_int result.Run.max_susp_level);
      let center = Scenarios.Scenario.center_at scenario max_int in
      {
        agg with
        runs = agg.runs + 1;
        stabilized = (agg.stabilized + if stabilized then 1 else 0);
        elected_center =
          (agg.elected_center
          + if stabilized && result.Run.final_leader = center then 1 else 0);
        violations =
          (agg.violations
          +
          match result.Run.checker with
          | Some report -> List.length report.Scenarios.Checker.violations
          | None -> 0);
      })
    agg seeds

let stabilized_cell agg = Printf.sprintf "%d/%d" agg.stabilized agg.runs

let latency_cell agg =
  if Dstruct.Stats.is_empty agg.stabilization_ms then "-"
  else
    Printf.sprintf "%.0f±%.0fms"
      (Dstruct.Stats.mean agg.stabilization_ms)
      (Dstruct.Stats.stddev agg.stabilization_ms)
