lib/harness/sweep.mli: Dstruct Omega Scenarios Sim
