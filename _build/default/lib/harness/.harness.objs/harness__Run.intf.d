lib/harness/run.mli: Format Omega Scenarios Sim
