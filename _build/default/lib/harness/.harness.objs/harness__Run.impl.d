lib/harness/run.ml: Float Format List Net Omega Option Scenarios Sim Stability
