lib/harness/sweep.ml: Dstruct List Option Printf Run Scenarios
