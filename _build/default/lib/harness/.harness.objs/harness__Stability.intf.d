lib/harness/stability.mli: Sim
