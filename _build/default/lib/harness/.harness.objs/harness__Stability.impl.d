lib/harness/stability.ml: List Sim
