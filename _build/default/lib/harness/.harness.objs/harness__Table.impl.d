lib/harness/table.ml: Array Float List Printf String
