lib/harness/table.mli:
