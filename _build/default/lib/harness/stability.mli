(** Deciding whether a sampled run stabilized — the judgment shared by
    {!Run} and the comparison driver, extracted as a pure function so the
    tricky cases (quadratic slow-down, one-block lulls) are unit-testable.

    A run counts as stabilized when its samples end in a suffix with one
    constant agreed leader that spans
    - at least a third of all receiving rounds (and at least [min_rounds]):
      an unbounded-timeout algorithm outside its assumption slows down
      quadratically, so its ever-rarer leader changes would look stable on
      any fixed {e time} window — rounds are the honest clock; and
    - at least [min_window] of wall time before the horizon: guards against
      sampling artifacts at the very end of a run. *)

type sample = { time : Sim.Time.t; round : int; agreed : int option }

type verdict = {
  stabilized_at : Sim.Time.t option;
      (** start of the qualifying suffix, if any *)
  final_leader : int option;  (** agreed leader at the horizon, if any *)
}

(** [judge ~horizon ~min_window ?min_rounds samples] — [samples] in
    chronological order. [min_rounds] defaults to 40. *)
val judge :
  horizon:Sim.Time.t ->
  min_window:Sim.Time.t ->
  ?min_rounds:int ->
  sample list ->
  verdict
