let widths header rows =
  let all = header :: rows in
  let columns = List.length header in
  let w = Array.make columns 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < columns && String.length cell > w.(i) then
            w.(i) <- String.length cell)
        row)
    all;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let print_row w row =
  let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
  print_string "| ";
  print_string (String.concat " | " cells);
  print_endline " |"

let rule w =
  let dashes = Array.to_list (Array.map (fun n -> String.make n '-') w) in
  print_string "+-";
  print_string (String.concat "-+-" dashes);
  print_endline "-+"

let print ~title ~header rows =
  print_newline ();
  print_endline ("== " ^ title ^ " ==");
  let w = widths header rows in
  rule w;
  print_row w header;
  rule w;
  List.iter (print_row w) rows;
  rule w

let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.1fms" v
let yesno b = if b then "yes" else "no"
let intc = string_of_int
