type sample = { time : Sim.Time.t; round : int; agreed : int option }

type verdict = {
  stabilized_at : Sim.Time.t option;
  final_leader : int option;
}

let judge ~horizon ~min_window ?(min_rounds = 40) samples =
  match List.rev samples with
  | [] -> { stabilized_at = None; final_leader = None }
  | last :: _ as rev -> (
      match last.agreed with
      | None -> { stabilized_at = None; final_leader = None }
      | Some leader ->
          let rec walk start = function
            | s :: rest when s.agreed = Some leader -> walk s rest
            | _ -> start
          in
          let start = walk last rev in
          let round_quota = max min_rounds (last.round / 3) in
          if
            last.round - start.round >= round_quota
            && Sim.Time.(Sim.Time.sub horizon start.time >= min_window)
          then { stabilized_at = Some start.time; final_leader = Some leader }
          else { stabilized_at = None; final_leader = Some leader })
