type pid = int

type 'v t = { nodes : 'v Node.t array; net : 'v Message.t Net.Network.t }

let create net ~oracle ~retry_every ~crash_bound =
  let n = Net.Network.n net in
  let nodes =
    Array.init n (fun me ->
        Node.create
          (Node.network_transport net ~me)
          ~me ~leader_oracle:(oracle me) ~retry_every ~crash_bound)
  in
  Array.iteri
    (fun me node ->
      Net.Network.set_handler net me (fun ~src msg -> Node.handle node ~src msg))
    nodes;
  { nodes; net }

let start t = Array.iter Node.start t.nodes
let propose t p v = Node.propose t.nodes.(p) v
let node t p = t.nodes.(p)

let decisions t =
  List.map
    (fun p -> (p, Node.decision t.nodes.(p)))
    (Net.Network.correct t.net)

let uniform_decision t =
  match decisions t with
  | [] -> None
  | (_, first) :: rest ->
      if
        Option.is_some first
        && List.for_all (fun (_, d) -> d = first) rest
      then first
      else None

let last_decision_time t =
  let correct = Net.Network.correct t.net in
  let times = List.filter_map (fun p -> Node.decided_at t.nodes.(p)) correct in
  if List.length times = List.length correct && times <> [] then
    Some (List.fold_left Sim.Time.max Sim.Time.zero times)
  else None
