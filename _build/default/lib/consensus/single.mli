(** Convenience wiring of one consensus instance per process over a
    dedicated network — used by tests, examples and experiment E6. *)

type pid = int

type 'v t

(** [create net ~oracle ~retry_every ~crash_bound] builds one node per
    process; [oracle p] is process [p]'s leader closure (typically
    [fun () -> Omega.Node.leader omega_p]). *)
val create :
  'v Message.t Net.Network.t ->
  oracle:(pid -> unit -> pid) ->
  retry_every:Sim.Time.t ->
  crash_bound:int ->
  'v t

val start : 'v t -> unit
val propose : 'v t -> pid -> 'v -> unit
val node : 'v t -> pid -> 'v Node.t

(** Decisions of all non-crashed processes. *)
val decisions : 'v t -> (pid * 'v option) list

(** True when every non-crashed process has decided the same value. *)
val uniform_decision : 'v t -> 'v option

(** Latest local decision time among correct processes (the consensus
    latency), if all have decided. *)
val last_decision_time : 'v t -> Sim.Time.t option
