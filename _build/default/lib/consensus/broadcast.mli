(** Atomic broadcast (uniform total-order broadcast) from repeated consensus
    — the classical reduction the paper cites ([CT96], [Lamport98]): commands
    are sequenced by a series of consensus instances on command batches, and
    delivered in instance order.

    Structure per process: submitted commands are forwarded to the current
    leader (re-forwarded while undelivered, so leader changes are harmless);
    a leader proposes its pending batch to the lowest undecided instance;
    decided instances are delivered strictly in order, de-duplicating
    commands already delivered by an earlier instance.

    Properties (checked by the test suite): validity (a command submitted by
    a correct process is eventually delivered once Ω stabilizes), uniform
    agreement and total order (all correct processes deliver the same
    sequence), integrity (no duplication, no creation). *)

type pid = int

(** Commands must be comparable for de-duplication. *)
type 'v msg

type 'v t

(** One process of the broadcast service. As with {!Single}, [oracle] is the
    per-process leader closure, [crash_bound] the crash bound [t < n/2]. *)
val create :
  'v msg Net.Network.t ->
  me:pid ->
  oracle:(unit -> pid) ->
  retry_every:Sim.Time.t ->
  crash_bound:int ->
  equal:('v -> 'v -> bool) ->
  'v t

val start : 'v t -> unit

(** Submit a command for total-order delivery. *)
val submit : 'v t -> 'v -> unit

(** Commands delivered so far, in delivery order. *)
val delivered : 'v t -> 'v list

(** Number of consensus instances decided locally. *)
val instances_decided : 'v t -> int
