type pid = int

type 'v t =
  | Prepare of { ballot : int }
  | Promise of { ballot : int; accepted : (int * 'v) option }
  | Accept of { ballot : int; value : 'v }
  | Accepted of { ballot : int; value : 'v }
  | Nack of { ballot : int; promised : int }
  | Decide of { value : 'v }

let ballot_of = function
  | Prepare { ballot }
  | Promise { ballot; _ }
  | Accept { ballot; _ }
  | Accepted { ballot; _ }
  | Nack { ballot; _ } -> ballot
  | Decide _ -> -1

let pp pp_v ppf = function
  | Prepare { ballot } -> Format.fprintf ppf "PREPARE(%d)" ballot
  | Promise { ballot; accepted = None } ->
      Format.fprintf ppf "PROMISE(%d, none)" ballot
  | Promise { ballot; accepted = Some (b, v) } ->
      Format.fprintf ppf "PROMISE(%d, %d:%a)" ballot b pp_v v
  | Accept { ballot; value } ->
      Format.fprintf ppf "ACCEPT(%d, %a)" ballot pp_v value
  | Accepted { ballot; value } ->
      Format.fprintf ppf "ACCEPTED(%d, %a)" ballot pp_v value
  | Nack { ballot; promised } ->
      Format.fprintf ppf "NACK(%d, promised=%d)" ballot promised
  | Decide { value } -> Format.fprintf ppf "DECIDE(%a)" pp_v value
