(** One process of the Ω-based indulgent consensus (Theorem 5 of the paper:
    Ω + majority of correct processes ⇒ consensus).

    The protocol is a single-decree ballot protocol in the Paxos family,
    matching the leader-based indulgent consensus structure of [GR04, MR01,
    Lamport98] cited by the paper:

    - {b Safety} (agreement + validity) holds {e whatever} the leader oracle
      does — ballots and promise/accept quorums of size [n - t] with
      [t < n/2] guarantee any two deciding quorums intersect.
    - {b Liveness} needs Ω: a retry timer fires periodically; a process whose
      oracle says it is the leader and that sees no progress claims a fresh,
      higher ballot. Once Ω stabilizes on one correct leader, that leader is
      eventually the only proposer and its ballot decides.

    The leader oracle is injected as a closure, so any Ω implementation in
    this repository (Figures 1-3, the baselines) can drive consensus. *)

type pid = int

(** How a node reaches its peers. Decoupled from {!Net.Network} so that a
    multi-instance sequencer ({!Broadcast}) can tag and demultiplex the
    messages of many consensus instances over one network. *)
type 'v transport = {
  engine : Sim.Engine.t;
  n : int;
  send : dst:pid -> 'v Message.t -> unit;
  halted : unit -> bool;  (** has this process crashed? *)
}

(** [network_transport net ~me] is the direct single-instance transport. *)
val network_transport :
  'v Message.t Net.Network.t -> me:pid -> 'v transport

type 'v t

(** [create transport ~me ~leader_oracle ~retry_every ~crash_bound]
    allocates the node. The caller must route incoming messages to
    {!handle}. Requires [crash_bound < n/2]. *)
val create :
  'v transport ->
  me:pid ->
  leader_oracle:(unit -> pid) ->
  retry_every:Sim.Time.t ->
  crash_bound:int ->
  'v t

(** Deliver an incoming message to this node. *)
val handle : 'v t -> src:pid -> 'v Message.t -> unit

(** Start the retry task. *)
val start : 'v t -> unit

(** [propose t v] submits this process's initial value. May be called once;
    later calls are ignored. *)
val propose : 'v t -> 'v -> unit

(** The decided value, once decided. *)
val decision : 'v t -> 'v option

(** Time of local decision. *)
val decided_at : 'v t -> Sim.Time.t option

(** Number of ballots this node started (cost observer). *)
val ballots_started : 'v t -> int
