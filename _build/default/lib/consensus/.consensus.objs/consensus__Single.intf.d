lib/consensus/single.mli: Message Net Node Sim
