lib/consensus/single.ml: Array List Message Net Node Option Sim
