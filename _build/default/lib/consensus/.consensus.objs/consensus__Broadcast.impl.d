lib/consensus/broadcast.ml: Dstruct Hashtbl List Message Net Node Option Sim
