lib/consensus/message.ml: Format
