lib/consensus/node.ml: Dstruct Message Net Option Sim
