lib/consensus/node.mli: Message Net Sim
