lib/consensus/broadcast.mli: Net Sim
