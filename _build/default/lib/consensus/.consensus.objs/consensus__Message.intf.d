lib/consensus/message.mli: Format
