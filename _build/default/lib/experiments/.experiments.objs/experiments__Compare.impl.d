lib/experiments/compare.ml: Baselines Float Harness List Scenarios Sim
