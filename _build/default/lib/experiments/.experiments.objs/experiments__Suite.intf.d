lib/experiments/suite.mli:
