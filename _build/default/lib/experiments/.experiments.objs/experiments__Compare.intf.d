lib/experiments/compare.mli: Baselines Scenarios Sim
