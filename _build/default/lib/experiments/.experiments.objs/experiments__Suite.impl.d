lib/experiments/suite.ml: Array Baselines Compare Consensus Float Format Fun Harness Int Int64 List Net Omega Option Printf Scenarios Sim
