(** Head-to-head runner: drive any {!Baselines.Registry.algo} under a
    scenario and measure round-based stabilization (experiment E4). *)

type outcome = {
  stabilized_ms : float;  (** [nan] if the run never stabilized *)
  final_leader : int option;  (** agreed leader at the horizon *)
  elected_center : bool;  (** final leader = the scenario's (last) center *)
}

val run :
  Baselines.Registry.algo ->
  scenario:Scenarios.Scenario.t ->
  seed:int64 ->
  horizon:Sim.Time.t ->
  crashes:(int * Sim.Time.t) list ->
  outcome
