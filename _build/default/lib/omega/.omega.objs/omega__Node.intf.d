lib/omega/node.mli: Config Message Net Sim
