lib/omega/cluster.mli: Config Message Net Node Sim
