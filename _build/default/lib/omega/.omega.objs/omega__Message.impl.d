lib/omega/message.ml: Array Format List
