lib/omega/node.ml: Array Config Dstruct List Message Net Sim
