lib/omega/config.mli: Sim
