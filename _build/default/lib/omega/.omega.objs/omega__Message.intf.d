lib/omega/message.mli: Format
