lib/omega/cluster.ml: Array List Message Net Node Sim
