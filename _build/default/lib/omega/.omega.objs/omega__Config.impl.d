lib/omega/config.ml: Sim
