(** Static configuration of a leader-algorithm node. *)

(** Which of the paper's algorithms to run. *)
type variant =
  | Fig1
      (** Figure 1: correct in [AS[A']] (eventual rotating t-star on {e every}
          round from some point on). *)
  | Fig2
      (** Figure 2: adds the window condition (line [*]); correct in [AS[A]]
          (intermittent rotating t-star). *)
  | Fig3
      (** Figure 3: adds the boundedness condition (line [**]); correct in
          [AS[A]] and keeps every variable except round numbers bounded. *)
  | Fig3_fg of { f : int -> int; g : int -> Sim.Time.t }
      (** Section 7: the [A_{f,g}] generalization of Figure 3. [f] widens the
          window-condition interval for round [rn] by [f rn]; [g rn] is added
          to the timeout armed for receiving round [rn]. Both functions are
          known to the processes, as the paper requires. *)

val variant_name : variant -> string

(** When does a receiving round close (line 8)? The paper's algorithms use
    the conjunction; the single-sided rules are the baseline detectors the
    paper's assumption decomposes into (§3 "particular system models"):
    timer-only is the mechanism of the (moving) t-source family [ADFT04,
    HMSZ06], count-only the time-free message-pattern mechanism [MMR03]. *)
type closure_rule =
  | Conjunction  (** timer expired AND >= alpha ALIVEs received (the paper) *)
  | Timer_only  (** timer expired (pure timeout detector) *)
  | Count_only  (** >= alpha ALIVEs received (pure order detector) *)

(** Does the variant include Figure 2's line [*]? *)
val has_window_condition : variant -> bool

(** Does the variant include Figure 3's line [**]? *)
val has_bounded_condition : variant -> bool

(** Window widening [f] (0 for Figures 1-3). *)
val f_of : variant -> int -> int

(** Timeout inflation [g] (0 for Figures 1-3). *)
val g_of : variant -> int -> Sim.Time.t

type t = {
  n : int;  (** number of processes *)
  alpha : int;
      (** quorum [n - t]: ALIVE count to close a round, SUSPICION count to
          raise a level. The paper notes (footnote 5) [t] is never used
          directly — any lower bound on the number of correct processes
          works. *)
  beta : Sim.Time.t;
      (** max period between two ALIVE broadcasts of one process *)
  send_jitter : float;
      (** fraction of [beta]: actual period drawn uniformly from
          [[beta*(1-jitter), beta]] — "repeat regularly" only bounds the gap *)
  timeout_unit : Sim.Time.t;
      (** scale factor turning the dimensionless [max susp_level] of line 11
          into a duration (DESIGN.md §2) *)
  initial_timeout : Sim.Time.t;  (** timer value armed at init *)
  variant : variant;
  closure : closure_rule;
  prune_margin : int;
      (** extra rounds of [suspicions]/[rec_from] history retained beyond
          what any rule can read, so late messages still find their round *)
}

(** [default ~n ~t variant] is a sound configuration: [alpha = n - t],
    [beta] = 10ms, 20% jitter, [timeout_unit] = 500µs, [initial_timeout] =
    20ms, margin 128. *)
val default : n:int -> t:int -> variant -> t

val validate : t -> unit
