type variant =
  | Fig1
  | Fig2
  | Fig3
  | Fig3_fg of { f : int -> int; g : int -> Sim.Time.t }

let variant_name = function
  | Fig1 -> "fig1"
  | Fig2 -> "fig2"
  | Fig3 -> "fig3"
  | Fig3_fg _ -> "fig3_fg"

let has_window_condition = function
  | Fig1 -> false
  | Fig2 | Fig3 | Fig3_fg _ -> true

let has_bounded_condition = function
  | Fig1 | Fig2 -> false
  | Fig3 | Fig3_fg _ -> true

let f_of = function Fig1 | Fig2 | Fig3 -> fun _ -> 0 | Fig3_fg { f; _ } -> f

let g_of = function
  | Fig1 | Fig2 | Fig3 -> fun _ -> Sim.Time.zero
  | Fig3_fg { g; _ } -> g

type closure_rule = Conjunction | Timer_only | Count_only

type t = {
  n : int;
  alpha : int;
  beta : Sim.Time.t;
  send_jitter : float;
  timeout_unit : Sim.Time.t;
  initial_timeout : Sim.Time.t;
  variant : variant;
  closure : closure_rule;
  prune_margin : int;
}

let default ~n ~t variant =
  {
    n;
    alpha = n - t;
    beta = Sim.Time.of_ms 10;
    send_jitter = 0.2;
    timeout_unit = Sim.Time.of_us 500;
    initial_timeout = Sim.Time.of_ms 20;
    variant;
    closure = Conjunction;
    prune_margin = 128;
  }

let validate t =
  if t.n < 2 then invalid_arg "Config: n must be at least 2";
  if t.alpha < 1 || t.alpha > t.n then
    invalid_arg "Config: alpha must be in [1, n]";
  if Sim.Time.(t.beta <= Sim.Time.zero) then
    invalid_arg "Config: beta must be positive";
  if t.send_jitter < 0. || t.send_jitter >= 1. then
    invalid_arg "Config: send_jitter must be in [0, 1)";
  if t.prune_margin < 1 then invalid_arg "Config: prune_margin must be >= 1"
