let wrap ~loss ~burst ~rng ~n oracle =
  if loss < 0. || loss >= 1. then invalid_arg "Lossy.wrap: loss must be in [0,1)";
  if burst < 1 then invalid_arg "Lossy.wrap: burst must be >= 1";
  let consecutive = Array.make (n * n) 0 in
  fun ~now ~seq ~src ~dst msg ->
    let link = (src * n) + dst in
    if consecutive.(link) < burst && Dstruct.Rng.chance rng loss then begin
      consecutive.(link) <- consecutive.(link) + 1;
      Network.Drop
    end
    else begin
      consecutive.(link) <- 0;
      oracle ~now ~seq ~src ~dst msg
    end
