lib/net/lossy.ml: Array Dstruct Network
