lib/net/retransmit.mli: Network Sim
