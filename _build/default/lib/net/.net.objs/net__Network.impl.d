lib/net/network.ml: Array Printf Sim
