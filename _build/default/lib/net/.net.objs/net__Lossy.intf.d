lib/net/lossy.mli: Dstruct Network
