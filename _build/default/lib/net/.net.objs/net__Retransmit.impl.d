lib/net/retransmit.ml: Array Dstruct List Network Queue Sim
