lib/net/network.mli: Sim
