(** Fair-lossy link behaviour, as an oracle combinator.

    The paper's base model assumes reliable links but notes (§1.3, footnote
    2) that fair-lossy links suffice given acknowledgment + piggybacking —
    the construction implemented by {!Retransmit}. A fair-lossy link may
    drop messages but delivers infinitely many of an infinite sequence;
    here fairness is deterministic: at most [burst] consecutive losses per
    directed link, with each message independently lost with probability
    [loss] otherwise. *)

(** [wrap ~loss ~burst ~rng oracle] drops messages (before consulting
    [oracle]) with probability [loss], but never more than [burst] in a row
    on one directed link. [loss] in [0,1); [burst >= 1]. *)
val wrap :
  loss:float ->
  burst:int ->
  rng:Dstruct.Rng.t ->
  n:int ->
  'm Network.delay_oracle ->
  'm Network.delay_oracle
