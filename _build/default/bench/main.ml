(* Bechamel benchmarks: one Test.make per experiment table (E1..E8, reduced
   workloads — the full tables come from bin/experiments.exe), plus
   micro-benchmarks of the substrate operations the simulator's throughput
   depends on. *)

open Bechamel
open Toolkit

(* Run one complete small simulation: n processes, rotating star, given
   horizon; returns the message count so the work cannot be optimized out. *)
let sim_run ~variant ~n ~horizon_ms () =
  let t = (n - 1) / 2 in
  let config = Omega.Config.default ~n ~t variant in
  let params =
    Scenarios.Scenario.default_params ~n ~t ~beta:config.Omega.Config.beta
  in
  let scenario =
    Scenarios.Scenario.create params
      (Scenarios.Scenario.Rotating_star { center = n - 2 })
      ~seed:42L
  in
  let result =
    Harness.Run.run ~check:false
      ~horizon:(Sim.Time.of_ms horizon_ms)
      ~config ~scenario ~seed:7L ()
  in
  result.Harness.Run.messages_sent

(* Silence the tables while timing the experiment functions. *)
let muted f () =
  let dev_null = open_out "/dev/null" in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel dev_null) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      close_out dev_null)
    f

let experiment_tests =
  List.map
    (fun (id, _doc, f) ->
      Test.make ~name:("table:" ^ id)
        (Staged.stage (muted (fun () -> f ~quick:true))))
    Experiments.Suite.all

let micro_tests =
  [
    Test.make ~name:"micro:engine-10k-events"
      (Staged.stage (fun () ->
           let engine = Sim.Engine.create ~seed:1L () in
           for i = 1 to 10_000 do
             ignore (Sim.Engine.schedule_after engine (Sim.Time.of_us i) ignore)
           done;
           Sim.Engine.run_until engine (Sim.Time.of_sec 1)));
    Test.make ~name:"micro:pqueue-push-pop-1k"
      (Staged.stage (fun () ->
           let q = Dstruct.Pqueue.create ~compare:Int.compare in
           for i = 1_000 downto 1 do
             Dstruct.Pqueue.push q i
           done;
           while not (Dstruct.Pqueue.is_empty q) do
             ignore (Dstruct.Pqueue.pop q)
           done));
    Test.make ~name:"micro:rng-100k"
      (Staged.stage (fun () ->
           let rng = Dstruct.Rng.create 7L in
           let acc = ref 0 in
           for _ = 1 to 100_000 do
             acc := !acc + Dstruct.Rng.int rng 1000
           done;
           ignore !acc));
    Test.make ~name:"micro:sim-1s-n4-fig3"
      (Staged.stage (fun () ->
           ignore (sim_run ~variant:Omega.Config.Fig3 ~n:4 ~horizon_ms:1000 ())));
    Test.make ~name:"micro:sim-1s-n8-fig1"
      (Staged.stage (fun () ->
           ignore (sim_run ~variant:Omega.Config.Fig1 ~n:8 ~horizon_ms:1000 ())));
  ]

let benchmark ~cfg tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  List.map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let estimates = Analyze.all ols Instance.monotonic_clock results in
      (Test.name test, estimates))
    tests

let micro_cfg =
  Benchmark.cfg ~limit:50 ~stabilize:false ~quota:(Time.second 2.0) ()

(* Each macro "run" is an entire (reduced) experiment: several simulations
   adding up to seconds of wall time — a couple of runs per table suffices. *)
let macro_cfg =
  Benchmark.cfg ~limit:2 ~stabilize:false ~quota:(Time.second 0.1) ()

let report results =
  Printf.printf "%-28s %14s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 44 '-');
  List.iter
    (fun (name, estimates) ->
      Hashtbl.iter
        (fun _key ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              let pretty =
                if est >= 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
                else if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                else if est >= 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                else Printf.sprintf "%.0f ns" est
              in
              Printf.printf "%-28s %14s\n" name pretty
          | Some _ | None -> Printf.printf "%-28s %14s\n" name "?")
        estimates)
    results;
  flush stdout

let () =
  print_endline "== micro benchmarks (substrate + simulator throughput) ==";
  report (benchmark ~cfg:micro_cfg micro_tests);
  print_endline "";
  print_endline
    "== macro benchmarks: one Test.make per experiment table (reduced size) ==";
  report (benchmark ~cfg:macro_cfg experiment_tests);
  print_endline "";
  print_endline
    "Full experiment tables: dune exec bin/experiments.exe (see EXPERIMENTS.md)."
