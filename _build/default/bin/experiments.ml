(* Command-line driver for the experiment suite (EXPERIMENTS.md).

   Usage:
     experiments               run every experiment (full size)
     experiments --quick       run every experiment (reduced size)
     experiments e2 e4         run selected experiments
     experiments --list        list experiments *)

let list_term =
  Cmdliner.Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let quick_term =
  Cmdliner.Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Run reduced-size versions (shorter horizons, fewer points).")

let ids_term =
  Cmdliner.Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiment ids to run (e1..e8). Default: all.")

let run list quick ids =
  if list then begin
    List.iter
      (fun (id, doc, _) -> Printf.printf "%-4s %s\n" id doc)
      Experiments.Suite.all;
    `Ok ()
  end
  else begin
    let selected =
      match ids with
      | [] -> Experiments.Suite.all
      | ids ->
          List.filter (fun (id, _, _) -> List.mem id ids) Experiments.Suite.all
    in
    match (selected, ids) with
    | [], _ :: _ ->
        `Error (false, "unknown experiment id; try --list")
    | selected, _ ->
        List.iter (fun (_, _, f) -> f ~quick) selected;
        `Ok ()
  end

let cmd =
  let doc =
    "Reproduce the evaluation of 'From an intermittent rotating star to a \
     leader' (Fernandez & Raynal)."
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "experiments" ~doc)
    Cmdliner.Term.(ret (const run $ list_term $ quick_term $ ids_term))

let () = exit (Cmdliner.Cmd.eval cmd)
