examples/replicated_log.ml: Array Consensus Format List Net Omega Scenarios Sim
