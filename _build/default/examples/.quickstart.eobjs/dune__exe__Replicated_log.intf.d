examples/replicated_log.mli:
