examples/lossy_network.mli:
