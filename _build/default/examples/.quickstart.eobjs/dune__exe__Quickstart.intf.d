examples/quickstart.mli:
