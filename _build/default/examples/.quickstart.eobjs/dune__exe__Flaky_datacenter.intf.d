examples/flaky_datacenter.mli:
