examples/custom_oracle.mli:
