examples/custom_oracle.ml: Dstruct Format List Net Omega Printf Sim String
