examples/flaky_datacenter.ml: Format List Net Omega Scenarios Sim
