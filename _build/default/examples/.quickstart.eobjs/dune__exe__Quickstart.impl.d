examples/quickstart.ml: Format List Net Omega Printf Scenarios Sim String
