examples/lossy_network.ml: Array Dstruct Format Fun List Net Omega Printf Sim String
