test/test_lossy.ml: Alcotest Array Consensus Dstruct Fun List Net Omega Sim
