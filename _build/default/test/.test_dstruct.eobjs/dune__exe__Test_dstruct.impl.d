test/test_dstruct.ml: Alcotest Dstruct Float Gen Int Int64 List Map QCheck QCheck_alcotest Set
