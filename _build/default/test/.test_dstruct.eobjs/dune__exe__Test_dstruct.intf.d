test/test_dstruct.mli:
