test/test_lossy.mli:
