test/test_properties.ml: Alcotest Array Consensus Dstruct Gen Harness Int Int64 List Net Omega QCheck QCheck_alcotest Scenarios Sim
