test/test_baselines.ml: Alcotest Baselines List Net Scenarios Sim
