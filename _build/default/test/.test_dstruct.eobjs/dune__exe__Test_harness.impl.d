test/test_harness.ml: Alcotest Float Harness List Omega Option Scenarios Sim
