test/test_sim.ml: Alcotest Format Gen List QCheck QCheck_alcotest Sim
