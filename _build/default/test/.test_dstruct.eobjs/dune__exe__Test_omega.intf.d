test/test_omega.mli:
