test/test_omega.ml: Alcotest Array Fun Gen List Net Omega QCheck QCheck_alcotest Sim
