test/test_net.ml: Alcotest Gen List Net QCheck QCheck_alcotest Sim
