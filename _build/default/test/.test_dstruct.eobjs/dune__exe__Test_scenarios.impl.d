test/test_scenarios.ml: Alcotest Fun Harness Int64 List Net Omega QCheck QCheck_alcotest Scenarios Sim String
