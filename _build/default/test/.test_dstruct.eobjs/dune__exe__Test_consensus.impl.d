test/test_consensus.ml: Alcotest Array Consensus Dstruct Int Int64 List Net QCheck QCheck_alcotest Sim
