test/test_integration.ml: Alcotest Consensus Harness List Net Omega Scenarios Sim
