(* The intermittent star as a story: a small cluster whose only
   well-connected machine gets good network windows just periodically.

   Machine 4 sits in a rack whose uplink is congested except for short,
   recurring quiet windows — exactly an intermittent rotating t-star
   centered at 4. Every other machine suffers rolling maintenance blackouts
   (the rotating victims). We run Figure 1 (which would need good windows in
   EVERY round) against Figure 3 (which needs them only every D rounds),
   print each algorithm's leader timeline, and show that only Figure 3
   settles, while keeping all its counters bounded.

     dune exec examples/flaky_datacenter.exe *)

let run variant label =
  let n = 6 and t = 2 and center = 4 and d = 8 in
  let engine = Sim.Engine.create ~seed:21L () in
  let config = Omega.Config.default ~n ~t variant in
  let env =
    Scenarios.Env.make ~scenario_seed:33L config
      (Scenarios.Scenario.Intermittent_star { center; d })
  in
  let _scenario, net = Scenarios.Env.build env engine in
  let cluster = Omega.Cluster.create config net in
  Omega.Cluster.start cluster;
  Format.printf "@.--- %s ---@." label;
  Format.printf "leader timeline (one sample per 2s):@.  ";
  let changes = ref 0 and last = ref (-1) in
  let rec sample () =
    let now = Sim.Engine.now engine in
    let mark =
      match Omega.Cluster.agreed_leader cluster with
      | Some l ->
          if l <> !last && !last >= 0 then incr changes;
          last := l;
          string_of_int l
      | None ->
          if !last >= -1 then last := -2;
          "?"
    in
    Format.printf "%s " mark;
    if Sim.Time.(now < Sim.Time.of_sec 60) then
      ignore (Sim.Engine.schedule_after engine (Sim.Time.of_sec 2) sample)
  in
  ignore (Sim.Engine.schedule_after engine (Sim.Time.of_sec 2) sample);
  Sim.Engine.run_until engine (Sim.Time.of_sec 60);
  Format.printf "@.";
  let max_susp =
    List.fold_left
      (fun acc p ->
        max acc (Omega.Node.max_susp_level_seen (Omega.Cluster.node cluster p)))
      0 (Net.Network.correct net)
  in
  let max_timeout =
    List.fold_left
      (fun acc p ->
        Sim.Time.max acc
          (Omega.Node.max_timeout_armed (Omega.Cluster.node cluster p)))
      Sim.Time.zero (Net.Network.correct net)
  in
  Format.printf
    "final leader: %s | max suspicion level: %d | largest timeout: %a@."
    (match Omega.Cluster.agreed_leader cluster with
    | Some l -> string_of_int l
    | None -> "none")
    max_susp Sim.Time.pp max_timeout

let () =
  Format.printf
    "A 6-machine cluster. Machine 4's uplink is only periodically good \
     (every <=8 rounds); the others have rolling blackouts.@.";
  run Omega.Config.Fig1 "Figure 1 (needs good windows every round: flaps)";
  run Omega.Config.Fig3
    "Figure 3 (needs good windows every D rounds: settles on 4, bounded \
     counters)"
