(* Quickstart: elect an eventual leader among 5 simulated processes.

   We build a discrete-event engine, a network whose delays satisfy the
   paper's intermittent rotating t-star assumption (centered at process 3),
   run the Figure 3 algorithm, and watch the leader() outputs converge.

     dune exec examples/quickstart.exe *)

let () =
  let n = 5 and t = 2 in
  (* 1. The virtual world: a deterministic discrete-event engine. *)
  let engine = Sim.Engine.create ~seed:1L () in

  (* 2. A validated environment: process 3 is the center of an intermittent
     rotating t-star (gaps of at most 6 rounds between covered rounds);
     everything else is adversarially asynchronous. [Env.make] checks the
     config/params consistency once; [build] wires scenario + network. *)
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  let env =
    Scenarios.Env.make ~scenario_seed:2L config
      (Scenarios.Scenario.Intermittent_star { center = 3; d = 6 })
  in
  let _scenario, net = Scenarios.Env.build env engine in

  (* 3. One Figure-3 node per process; crash process 0 after 4 seconds. *)
  let cluster = Omega.Cluster.create config net in
  Omega.Cluster.crash_at cluster 0 (Sim.Time.of_sec 4);
  Omega.Cluster.start cluster;

  (* 4. Sample the oracle outputs once per simulated second. *)
  let rec sample () =
    let now = Sim.Engine.now engine in
    let outputs =
      String.concat " "
        (List.map
           (fun (p, l) -> Printf.sprintf "p%d->%d" p l)
           (Omega.Cluster.leaders cluster))
    in
    let agreed =
      match Omega.Cluster.agreed_leader cluster with
      | Some l -> Printf.sprintf "agreed on %d" l
      | None -> "no agreement yet"
    in
    Format.printf "t=%a %s  (%s)@." Sim.Time.pp now outputs agreed;
    if Sim.Time.(now < Sim.Time.of_sec 30) then
      ignore (Sim.Engine.schedule_after engine (Sim.Time.of_sec 1) sample)
  in
  ignore (Sim.Engine.schedule_after engine (Sim.Time.of_sec 1) sample);

  (* 5. Run 30 simulated seconds. *)
  Sim.Engine.run_until engine (Sim.Time.of_sec 30);
  match Omega.Cluster.agreed_leader cluster with
  | Some l ->
      Format.printf "final leader: %d (the star's center is 3)@." l
  | None -> Format.printf "no stable leader - unexpected under A@."
