(* State-machine replication on top of the elected leader (the workload the
   paper's introduction motivates: Omega is the weakest detector for
   consensus, and consensus gives atomic broadcast).

   Seven replicas run a replicated bank-account log. Clients submit
   operations at three different replicas; the atomic-broadcast layer
   (repeated Omega-based consensus) sequences them identically everywhere,
   even though the initial leader crashes mid-run.

     dune exec examples/replicated_log.exe *)

type op = Deposit of int | Withdraw of int

let op_names = [| "alice"; "bob"; "carol" |]

let pp_op ppf = function
  | Deposit cents -> Format.fprintf ppf "deposit %d" cents
  | Withdraw cents -> Format.fprintf ppf "withdraw %d" cents

let apply balance = function
  | Deposit cents -> balance + cents
  | Withdraw cents -> balance - cents

let () =
  let n = 7 and t = 3 in
  let engine = Sim.Engine.create ~seed:5L () in
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  let params =
    Scenarios.Scenario.default_params ~n ~t ~beta:config.Omega.Config.beta
  in
  let scenario =
    Scenarios.Scenario.create params
      (Scenarios.Scenario.Intermittent_star { center = 5; d = 4 })
      ~seed:9L
  in

  (* Omega runs on its own channel; the replication traffic on another. *)
  let net_for oracle =
    Net.Spec.(default |> with_oracle oracle) |> fun spec ->
    Net.Network.of_spec spec engine ~n
  in
  let omega_net =
    net_for
      (Scenarios.Scenario.oracle scenario
         ~round_of:Scenarios.Scenario.round_of_omega)
  in
  let omega = Omega.Cluster.create config omega_net in
  let log_net =
    net_for (Scenarios.Scenario.oracle scenario ~round_of:(fun _ -> None))
  in
  let replicas =
    Array.init n (fun me ->
        Consensus.Broadcast.create log_net ~me
          ~oracle:(fun () -> Omega.Node.leader (Omega.Cluster.node omega me))
          ~retry_every:(Sim.Time.of_ms 50) ~crash_bound:t ~equal:( = ))
  in
  Omega.Cluster.start omega;
  Array.iter Consensus.Broadcast.start replicas;

  (* Clients: 12 operations submitted at replicas 1, 2, 3 over 3 seconds. *)
  let ops =
    [
      Deposit 100; Deposit 250; Withdraw 30; Deposit 75; Withdraw 120;
      Deposit 10; Withdraw 5; Deposit 300; Withdraw 80; Deposit 60;
      Withdraw 40; Deposit 20;
    ]
  in
  List.iteri
    (fun i op ->
      let client = i mod 3 in
      let replica = 1 + client in
      ignore
        (Sim.Engine.schedule_at engine
           (Sim.Time.of_ms (250 * i))
           (fun () ->
             Format.printf "t=%a %s submits '%a' at replica %d@."
               Sim.Time.pp
               (Sim.Engine.now engine)
               op_names.(client) pp_op op replica;
             Consensus.Broadcast.submit replicas.(replica) (i, op))))
    ops;

  (* Crash replica 0 (often an early leader) at 1.5s. *)
  ignore
    (Sim.Engine.schedule_at engine (Sim.Time.of_ms 1500) (fun () ->
         Format.printf "t=%a *** replica 0 crashes ***@." Sim.Time.pp
           (Sim.Engine.now engine);
         Net.Network.crash omega_net 0;
         Net.Network.crash log_net 0));

  Sim.Engine.run_until engine (Sim.Time.of_sec 60);

  (* Every correct replica must have the same log and the same balance. *)
  let correct = Net.Network.correct log_net in
  let logs =
    List.map (fun p -> (p, Consensus.Broadcast.delivered replicas.(p))) correct
  in
  let reference = match logs with [] -> [] | (_, l) :: _ -> l in
  Format.printf "@.replicated log (%d entries), as delivered by replica %d:@."
    (List.length reference)
    (List.hd correct);
  List.iteri
    (fun pos (i, op) -> Format.printf "  %2d. [cmd %2d] %a@." pos i pp_op op)
    reference;
  let balance = List.fold_left (fun b (_, op) -> apply b op) 0 reference in
  Format.printf "final balance: %d cents@." balance;
  let agree = List.for_all (fun (_, l) -> l = reference) logs in
  Format.printf "all %d correct replicas agree on the log: %b@."
    (List.length correct) agree;
  if (not agree) || List.length reference <> List.length ops then exit 1
