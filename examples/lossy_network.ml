(* Leader election over fair-lossy links (the paper's footnote 2).

   The base model assumes reliable links, but the paper notes fair-lossy
   links suffice: acknowledge and piggyback unacknowledged messages. This
   example runs Figure 3 over a network whose every edge is a
   [Fair_lossy 0.4] channel — each envelope survives a hop with
   probability 0.6, decided by a coin the network draws from its own
   engine-seeded stream (DESIGN.md §17) — through the Retransmit layer
   that implements exactly that construction, and shows the election
   still working, including detection of a crash. (The older burst-lossy
   variant of this example lives on as {!Net.Lossy.wrap}, which composes
   with any oracle.)

     dune exec examples/lossy_network.exe *)

let () =
  let n = 5 and t = 2 in
  let engine = Sim.Engine.create ~seed:8L () in
  let rng = Dstruct.Rng.split (Sim.Engine.rng engine) in

  (* Delays of 0.5-2ms; the 40% loss is the channel class's business. *)
  let base ~now:_ ~seq:_ ~src:_ ~dst:_ _ =
    Net.Network.Deliver_after (Sim.Time.of_us (500 + Dstruct.Rng.int rng 1500))
  in
  let channels ~src:_ ~dst:_ = Net.Topology.Fair_lossy 0.4 in
  let layer =
    Net.Retransmit.create ~channels engine ~n ~oracle:base
      ~resend_every:(Sim.Time.of_ms 5)
  in
  Net.Retransmit.start layer;

  (* Figure 3 over the reliable channels the layer provides. *)
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  let crashed = Array.make n false in
  let nodes =
    Array.init n (fun me ->
        Omega.Node.create_with_transport config
          {
            Omega.Node.engine;
            n;
            send =
              (fun ~dst m ->
                if not crashed.(me) then Net.Retransmit.send layer ~src:me ~dst m);
            halted = (fun () -> crashed.(me));
          }
          ~me)
  in
  Array.iteri
    (fun me node ->
      Net.Retransmit.set_handler layer me (fun ~src m ->
          Omega.Node.handle node ~src m))
    nodes;
  Array.iter Omega.Node.start nodes;

  ignore
    (Sim.Engine.schedule_at engine (Sim.Time.of_sec 3) (fun () ->
         Format.printf "t=3s    *** process 0 (the leader) crashes ***@.";
         crashed.(0) <- true;
         Net.Retransmit.crash layer 0));

  let rec sample () =
    let now = Sim.Engine.now engine in
    let correct = List.filter (fun p -> not crashed.(p)) (List.init n Fun.id) in
    Format.printf "t=%a leaders: %s@." Sim.Time.pp now
      (String.concat " "
         (List.map
            (fun p -> Printf.sprintf "p%d->%d" p (Omega.Node.leader nodes.(p)))
            correct));
    if Sim.Time.(now < Sim.Time.of_sec 10) then
      ignore (Sim.Engine.schedule_after engine (Sim.Time.of_sec 1) sample)
  in
  ignore (Sim.Engine.schedule_after engine (Sim.Time.of_sec 1) sample);

  Sim.Engine.run_until engine (Sim.Time.of_sec 10);
  Format.printf
    "wire envelopes: %d (of which retransmissions and acks), payloads \
     delivered: %d, outstanding backlog: %d, shed by the pending bound: %d@."
    (Net.Retransmit.wire_sends layer)
    (Net.Retransmit.delivered layer)
    (Net.Retransmit.backlog layer)
    (Net.Retransmit.shed layer);
  let leaders =
    List.filter_map
      (fun p -> if crashed.(p) then None else Some (Omega.Node.leader nodes.(p)))
      (List.init n Fun.id)
  in
  match leaders with
  | l :: rest when List.for_all (( = ) l) rest && not crashed.(l) ->
      Format.printf "stable leader over a 40%%-lossy network: %d@." l
  | _ -> Format.printf "no agreement - unexpected@."
