(* Plugging a hand-written delay oracle into the public API.

   The scenario library covers the paper's assumption families, but the
   network accepts any delay oracle. Here we model a concrete topology:
   three sites (A: processes 0-2, B: 3-5, C: 6-7). Intra-site links are
   fast; inter-site links are slow and jittery; and each site's border
   router blacks out for two seconds out of every ten (staggered), delaying
   all egress — so every machine looks crashed to the other sites now and
   then. Process 1 (site A) rides a premium low-latency path that bypasses
   the border router — making it, de facto, an eventual t-source, so
   Figure 3 elects it without any scenario machinery.

     dune exec examples/custom_oracle.exe *)

let site = function
  | 0 | 1 | 2 -> `A
  | 3 | 4 | 5 -> `B
  | _ -> `C

let () =
  let n = 8 and t = 3 in
  let engine = Sim.Engine.create ~seed:3L () in
  let rng = Dstruct.Rng.split (Sim.Engine.rng engine) in
  let us = Sim.Time.of_us in
  let oracle ~now ~seq:_ ~src ~dst _msg =
    let base =
      if src = dst then 50
      else if src = 1 then 300 (* premium path: always sub-millisecond *)
      else if site src = site dst then 200 + Dstruct.Rng.int rng 800
      else 3_000 + Dstruct.Rng.int rng 25_000
    in
    let hiccup =
      (* Border-router blackout: 2s of every 10s, staggered per site; all
         egress except process 1's premium path is held up. *)
      let phase =
        match site src with `A -> 0 | `B -> 3_300_000 | `C -> 6_600_000
      in
      if
        src <> dst && src <> 1
        && (Sim.Time.to_us now + phase) mod 10_000_000 < 2_000_000
      then 2_000_000 + Dstruct.Rng.int rng 1_000_000
      else 0
    in
    Net.Network.Deliver_after (us (base + hiccup))
  in
  let net =
    Net.Spec.(default |> with_oracle oracle) |> fun spec ->
    Net.Network.of_spec spec engine ~n
  in
  let config = Omega.Config.default ~n ~t Omega.Config.Fig3 in
  let cluster = Omega.Cluster.create config net in
  Omega.Cluster.start cluster;
  Sim.Engine.run_until engine (Sim.Time.of_sec 20);
  Format.printf "leaders after 20s: %s@."
    (String.concat " "
       (List.map
          (fun (p, l) -> Printf.sprintf "p%d->%d" p l)
          (Omega.Cluster.leaders cluster)));
  match Omega.Cluster.agreed_leader cluster with
  | Some 1 -> Format.printf "elected the premium-path process 1, as expected@."
  | Some l -> Format.printf "elected %d@." l
  | None -> Format.printf "no agreement (unexpected for this topology)@."
