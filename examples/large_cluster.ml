(* A 64-process cluster under an intermittent rotating star and a lossy
   network — the scale the timing-wheel scheduler and pooled message
   flights exist for (DESIGN.md 13).

   The star's center is only guaranteed timely *intermittently* (at star
   rounds at most D apart), 10% of all messages are dropped in bursts, and
   the adversary victimizes a rotating process the whole time; Figure 2
   still elects the center. One simulated minute at n=64 is several
   million messages, which is why this example prints the throughput
   numbers next to the leader timeline.

     dune exec examples/large_cluster.exe *)

let () =
  let n = 64 in
  let t = (n - 1) / 2 in
  let center = n - 2 in

  (* Tight config (receiving rounds track sending rounds), star from round
     2, and fixed 8-round victim blocks. The block length is the point:
     Figure 2's window condition caps a process's suspicion level at the
     length of its longest consecutive victim stretch, so 8-round victims
     cap near 8 while the center — victimized only in the <= D-1 = 3-round
     gaps between star rounds — caps near 4 and wins. (Growing blocks, the
     discriminating adversary of E2, need a full rotation of ever-longer
     blocks over n-1 = 63 victims: minutes of simulated time at this n.) *)
  let config =
    {
      (Omega.Config.default ~n ~t Omega.Config.Fig2) with
      Omega.Config.initial_timeout = Sim.Time.of_ms 10;
    }
  in
  let params =
    {
      (Scenarios.Scenario.default_params ~n ~t ~beta:(Sim.Time.of_ms 10)) with
      Scenarios.Scenario.rn0 = 2;
      victim_block0 = 8;
      victim_block_step = 0;
    }
  in
  let env =
    Scenarios.Env.make ~params
      ~lossy:(0.1, 8) (* 10% loss, bursts of up to 8 per link *)
      config
      (Scenarios.Scenario.Intermittent_star { center; d = 4 })
  in

  (* The rotation completes (and the center takes over) just before 10s;
     the stability judge wants the stable suffix to cover the final third
     of the rounds, hence the 16s horizon. *)
  let horizon = Sim.Time.of_sec 16 in
  let spec =
    Harness.Run.Spec.(
      default |> with_horizon horizon
      |> with_min_stable (Sim.Time.of_sec 1)
      |> with_check false)
  in
  Format.printf "n=%d t=%d, intermittent star on p%d (D=4), 10%% loss@." n t
    center;
  let result = Harness.Run.run ~spec ~env ~seed:5L () in

  (* Leader timeline: one line per second of simulated time, from the
     run's samples (every 100ms; printing each would drown the point). *)
  List.iter
    (fun (s : Harness.Run.sample) ->
      if Sim.Time.to_us s.Harness.Run.time mod 1_000_000 = 0 then
        Format.printf "t=%a round %-5d %s@." Sim.Time.pp s.Harness.Run.time
          s.Harness.Run.round
          (match s.Harness.Run.agreed with
          | Some l when l = center -> Printf.sprintf "leader: %d (the center)" l
          | Some l -> Printf.sprintf "leader: %d" l
          | None -> "no agreement yet"))
    result.Harness.Run.samples;

  let rounds = max 1 result.Harness.Run.min_sending_round in
  Format.printf "messages: %d sent, %d delivered (%d/round at n=%d)@."
    result.Harness.Run.messages_sent result.Harness.Run.messages_delivered
    (result.Harness.Run.messages_sent / rounds)
    n;
  match result.Harness.Run.stabilized_at with
  | Some at when result.Harness.Run.final_leader = Some center ->
      Format.printf "stable on the center since t=%a@." Sim.Time.pp at
  | Some at ->
      Format.printf "stable since t=%a (not the center - unexpected)@."
        Sim.Time.pp at
  | None -> Format.printf "no stabilization - unexpected@."
