(* Programmable fault injection: the declarative Plan -> Spec -> Run API.

   One validated environment (a rotating t-star centered at process 6),
   one fault plan applied to it three ways:

   - a partition that isolates the center for 4 seconds, then heals;
   - a crash of the center with a later recovery (the node rejoins with
     its persisted suspicion levels and re-enters the current round);
   - an adaptive adversary that re-targets its victim blocks at whichever
     leader the processes agree on — and still loses, because the star's
     protected links are out of its reach.

     dune exec examples/fault_injection.exe *)

let sec = Sim.Time.of_sec

let describe label result =
  let open Harness.Run in
  Format.printf
    "%-24s leader=%s stabilized=%s re-elections=%d epochs=%d moves=%d \
     downtime=%a@."
    label
    (match result.final_leader with Some l -> string_of_int l | None -> "-")
    (match result.stabilized_at with
    | Some t -> Format.asprintf "%a" Sim.Time.pp t
    | None -> "never")
    result.re_elections result.leadership_epochs result.adversary_moves
    Sim.Time.pp result.partition_downtime

let () =
  let n = 8 and t = 3 and center = 6 in
  (* [initial_timeout = beta] keeps receiving rounds tracking sending
     rounds, so a fault's effect on elections shows up promptly instead of
     echoing seconds later through the receive-side round buffer
     (DESIGN.md §12). *)
  let config =
    {
      (Omega.Config.default ~n ~t Omega.Config.Fig3) with
      Omega.Config.initial_timeout = Sim.Time.of_ms 10;
    }
  in
  let env =
    Scenarios.Env.make config (Scenarios.Scenario.Rotating_star { center })
  in
  let run ~label plan =
    let spec =
      Harness.Run.Spec.(
        default |> with_horizon (sec 40) |> with_plan plan)
    in
    describe label (Harness.Run.run ~spec ~env ~seed:7L ())
  in
  Format.printf
    "n=%d t=%d rotating star centered at %d, fig3, horizon 40s@.@." n t center;

  run ~label:"no faults" Fault.Plan.empty;

  (* Cut the center off for 4s: the survivors churn (the adversary still
     victimizes all of them), and after the heal the center wins again. *)
  run ~label:"partition center 8s-12s"
    Fault.Plan.(
      empty |> partition ~at:(sec 8) ~heal_at:(sec 12) [ [ center ] ]);

  (* Crash and recover: the recovered node keeps its suspicion levels (the
     paper's stable storage assumption) and catches up to the live round. *)
  run ~label:"crash 8s, recover 12s"
    Fault.Plan.(empty |> crash center ~at:(sec 8) |> recover center ~at:(sec 12));

  (* The adaptive adversary chases the agreed leader with victim blocks.
     The chase ends at the center: its star links are protected by the
     assumption, so its suspicion levels freeze and it stays elected. *)
  run ~label:"adaptive adversary"
    Fault.Plan.(empty |> adaptive ~from:(sec 2))
