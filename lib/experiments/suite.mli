(** The experiment suite of DESIGN.md §6 / EXPERIMENTS.md.

    Each function runs one experiment and prints its table(s) to stdout.
    [quick] shrinks parameters (fewer points, shorter horizons) for smoke
    runs and the Bechamel benches; the full versions are what EXPERIMENTS.md
    records.

    [pool] fans the independent simulation runs behind each table out
    across domains ({!Parallel.Pool}); rows are assembled in submission
    order and printed only after the join, so the printed tables are
    byte-identical for every pool size — all experiments remain
    deterministic: same build, same output. Pass
    {!Parallel.Pool.sequential} for the single-domain path.

    [obs] is the session's observability (bin/experiments.exe [--trace] /
    [--metrics] flags): with [no_obs] every run keeps the null sink and the
    tables are byte-identical to the pre-observability output; with
    [metrics = true] each Run.run-backed table gains a digest column (the
    per-run {!Obs.Digest} — the determinism oracle); with [trace = Some j]
    every run streams its typed events into [j] as JSONL, prefixed by a
    note naming the run. E4 and E6 build their own stacks and ignore
    [obs]. *)

(** Farm mode (DESIGN.md §16). Every table row is a costed cell with a
    globally increasing id in declaration order; the id is the cell's
    identity across shard/merge. [Local] executes everything; [Shard]
    executes only the cells with [id mod count = index - 1] and records
    their rows (the tables themselves render into whatever channel
    {!Harness.Table.set_out} points at — bin/experiments.exe nulls it);
    [Merge] executes nothing and pulls every row from the loaded shard
    files by id, replaying the rendering byte-identically. *)
type farm_mode =
  | Local
  | Shard of {
      index : int;  (** 1-based *)
      count : int;
      recorded : (int * string list) list ref;
    }
  | Merge of (int, string list) Hashtbl.t

type farm = { mode : farm_mode; mutable next_cell : int }

val local_farm : unit -> farm

type obs = {
  trace : Obs.Jsonl.t option;
      (** stream every run's events here; requires a sequential pool *)
  metrics : bool;  (** per-run metrics + digest column *)
  sched : [ `Heap | `Wheel ];
      (** scheduler backend for every Run.run-backed row
          (bin/experiments.exe [--sched]); both backends print
          byte-identical tables — the CI determinism gate diffs them *)
  checkpoint : (string * Sim.Time.t) option;
      (** [(dir, every)]: advance each run in [every]-sized simulated-time
          slices, persisting a resumable snapshot into [dir] between
          slices and resuming from it on restart. Observationally
          invisible — the tables stay byte-identical. Ignored while
          tracing (a run holding a JSONL sink cannot snapshot). *)
  farm : farm;
  topology : Net.Topology.kind option;
      (** session-wide network-graph override (bin/experiments.exe
          [--topology]): applied to every run that kept the default
          [Complete] topology; rows that pick their own (E13) are
          untouched. Routed tables differ from the default ones but stay
          deterministic and [--jobs]-invariant. *)
  intra : int;
      (** bin/experiments.exe [--intra-jobs]: conservative-window shards
          inside each run (DESIGN.md §18), orthogonal to the between-runs
          pool. Tables are byte-identical for every value. *)
}

(** No tracing, no metrics, local farm: the zero-cost default. *)
val no_obs : obs

(** The shard file written by [--shard i/k --shard-out FILE] and read
    back by bin/merge_tables.exe. *)
module Shard : sig
  type file = {
    shard_magic : string;
    index : int;
    count : int;
    ids : string list;  (** selected experiment ids, {!all} order *)
    quick : bool;
    metrics : bool;
    sched : string;  (** ["wheel"] or ["heap"] *)
    topology : string;  (** [--topology] override kind name; ["-"] = none *)
    cells : (int * string list) list;
  }

  val save :
    path:string ->
    index:int ->
    count:int ->
    ids:string list ->
    quick:bool ->
    metrics:bool ->
    sched:string ->
    topology:string ->
    cells:(int * string list) list ->
    unit

  (** Raises [Failure] if [path] is not a shard file. *)
  val load : string -> file
end

(** E1 — Theorem 1: stabilization of Figures 1-3 under the rotating t-star
    (A'), across system sizes, with crashes. *)
val e1 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** E2 — Theorem 2: the intermittent star (A) with gap bound D: Figure 1
    fails, Figures 2-3 elect the center; latency vs D. *)
val e2 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** E3 — Theorem 4 / Lemma 8: bounded variables. Figure 2 vs Figure 3 on
    suspicion levels, timeout values and the lattice invariant. *)
val e3 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** E4 — §3 containment: every algorithm under every assumption regime. *)
val e4 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** E5 — §1.3/§8 cost: message counts, wire bytes, state growth vs n. *)
val e5 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** E6 — Theorem 5: consensus and atomic broadcast over the elected
    leader. *)
val e6 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** E7 — §7: growing timeliness bounds; Figure 3 vs its A_{f,g} variant. *)
val e7 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** E8 — §1.1 good/bad periods: crash the elected center (failover star),
    measure re-election latency. *)
val e8 : pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit

(** All experiments in order. *)
val all :
  (string * string * (pool:Parallel.Pool.t -> quick:bool -> obs:obs -> unit))
  list
