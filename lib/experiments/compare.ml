type outcome = {
  stabilized_ms : float;
  final_leader : int option;
  elected_center : bool;
}

type sample = { time : Sim.Time.t; round : int; agreed : int option }

let run (algo : Baselines.Registry.algo) ~scenario ~seed ~horizon ~crashes =
  let engine = Sim.Engine.create ~seed () in
  let instance = algo.Baselines.Registry.make engine scenario in
  List.iter
    (fun (p, time) -> instance.Baselines.Registry.crash_at p time)
    crashes;
  let samples = ref [] in
  let sample_every = Sim.Time.of_ms 100 in
  let rec sampler () =
    samples :=
      {
        time = Sim.Engine.now engine;
        round = instance.Baselines.Registry.min_round ();
        agreed = instance.Baselines.Registry.agreed_leader ();
      }
      :: !samples;
    if Sim.Time.(Sim.Engine.now engine < horizon) then
      Sim.Engine.call_after engine sample_every sampler ()
  in
  instance.Baselines.Registry.start ();
  Sim.Engine.call_after engine sample_every sampler ();
  Sim.Engine.run_until engine horizon;
  let verdict =
    Harness.Stability.judge ~horizon
      ~min_window:(Sim.Time.of_us (Sim.Time.to_us horizon / 5))
      (List.rev_map
         (fun s ->
           {
             Harness.Stability.time = s.time;
             round = s.round;
             agreed = s.agreed;
           })
         !samples)
  in
  let stabilized = verdict.Harness.Stability.stabilized_at in
  let final_leader = verdict.Harness.Stability.final_leader in
  let last_center =
    (* The center that A protects at the end of the run (failover switches). *)
    Scenarios.Scenario.center_at scenario max_int
  in
  {
    stabilized_ms =
      (match stabilized with
      | Some time -> Sim.Time.to_ms_float time
      | None -> Float.nan);
    final_leader;
    elected_center =
      (match (stabilized, final_leader, last_center) with
      | Some _, Some l, Some c -> l = c
      | _ -> false);
  }
