module Scenario = Scenarios.Scenario
module Run = Harness.Run
module Table = Harness.Table

let sec = Sim.Time.of_sec
let ms = Sim.Time.of_ms

let scenario ~n ~t ?(tweak = Fun.id) regime =
  let params = tweak (Scenario.default_params ~n ~t ~beta:(ms 10)) in
  Scenario.create params regime ~seed:42L

let config ~n ~t variant = Omega.Config.default ~n ~t variant

(* Fault experiments (e9/e10) run with [initial_timeout = beta] so receiving
   rounds track sending rounds. Under the default config the receive side
   lags the tags by an ever-growing buffer, so a fault's effect on elections
   surfaces seconds after the wall-clock event and stretched by the skew —
   and, for the adversary, victim delays that grow with the round tag
   eventually land *before* the laggard receivers close those rounds,
   quietly disarming the victimization late in a run (DESIGN.md §12). *)
let fault_config ~n ~t variant =
  {
    (config ~n ~t variant) with
    Omega.Config.initial_timeout = Sim.Time.of_ms 10;
  }

(* Env.make's default params equal [Scenario.default_params ~n ~t ~beta]
   derived from the config, i.e. exactly what the [scenario] helper builds
   — scenario seed 42L is Env's default too. *)
let env ~n ~t ?scenario_seed variant regime =
  Scenarios.Env.make ?scenario_seed (config ~n ~t variant) regime

let violations result =
  match result.Run.checker with
  | Some report -> List.length report.Scenarios.Checker.violations
  | None -> 0

let leader_cell result =
  match result.Run.final_leader with
  | Some l -> string_of_int l
  | None -> "-"

let stab_cell result = Table.ms (Run.stabilization_ms result)

(* The farm (DESIGN.md §16): every table row (or cell) is a [cell] — a
   label, a cost estimate, and a thunk owning its whole simulation stack.
   Cells are numbered globally in declaration order across the session's
   selected experiments; the number is the cell's identity for sharding
   and merging, so a merge replaying the same selection re-derives the
   same numbering. *)
type cell = { label : string; cost : float; exec : unit -> string list }

type farm_mode =
  | Local
  | Shard of {
      index : int;  (* 1-based *)
      count : int;
      recorded : (int * string list) list ref;
    }
  | Merge of (int, string list) Hashtbl.t

type farm = { mode : farm_mode; mutable next_cell : int }

let local_farm () = { mode = Local; next_cell = 0 }

(* Session-wide observability, set by bin/experiments.exe flags. With
   [no_obs] every run takes the zero-cost null-sink path and the tables are
   byte-identical to what they print without this layer. *)
type obs = {
  trace : Obs.Jsonl.t option;
  metrics : bool;
  sched : [ `Heap | `Wheel ];
  checkpoint : (string * Sim.Time.t) option;
  farm : farm;
  topology : Net.Topology.kind option;
      (* session-wide graph override (--topology): applied to every run
         that did not pick a topology itself (E13's rows keep theirs) *)
  intra : int;
      (* --intra-jobs: conservative-window shards inside each run
         (DESIGN.md §18); the tables are byte-identical for every value *)
}

let no_obs =
  {
    trace = None;
    metrics = false;
    sched = `Wheel;
    checkpoint = None;
    farm = local_farm ();
    topology = None;
    intra = 1;
  }

(* ------------------------------------------------- on-disk checkpoints *)

(* One row's resumable state: a versioned header naming the row plus the
   engine snapshot (DESIGN.md §16). The header is validated on resume — a
   mismatching label or seed means the file belongs to some other sweep
   and the row restarts from scratch; so does any unreadable or
   stale-binary file ([Marshal.Closures] snapshots only load in the
   binary that wrote them). A checkpoint is never worth failing a run
   over. *)
type ckpt_file = {
  ck_version : int;
  ck_label : string;
  ck_seed : int64;
  ck_bytes : Bytes.t;
}

let ckpt_version = 1

let ckpt_sanitize label =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.') as c -> c | _ -> '_')
    label

let ckpt_read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> (Marshal.from_channel ic : ckpt_file))

let checkpointed_run ~dir ~every ~label ~spec ~env ~seed =
  let path = Filename.concat dir (ckpt_sanitize label ^ ".ckpt") in
  let fresh () = Run.start ~spec ~env ~seed () in
  let live =
    if not (Sys.file_exists path) then fresh ()
    else
      match ckpt_read path with
      | { ck_version = v; ck_label; ck_seed; ck_bytes }
        when v = ckpt_version && ck_label = label && ck_seed = seed -> (
          try Run.restore ck_bytes
          with _ ->
            Printf.eprintf "checkpoint %s: snapshot from another binary, restarting row\n%!" path;
            fresh ())
      | _ ->
          Printf.eprintf "checkpoint %s: header mismatch, restarting row\n%!" path;
          fresh ()
      | exception _ ->
          Printf.eprintf "checkpoint %s: unreadable, restarting row\n%!" path;
          fresh ()
  in
  let write () =
    (* Atomic: a kill mid-write must leave either the previous checkpoint
       or the new one, never a torn file. *)
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Marshal.to_channel oc
      { ck_version = ckpt_version; ck_label = label; ck_seed = seed;
        ck_bytes = Run.snapshot live }
      [];
    close_out oc;
    Sys.rename tmp path
  in
  let rec slices () =
    let now = Run.now live in
    if Sim.Time.(now < Run.horizon live) then begin
      Run.advance live ~until:(Sim.Time.add now every);
      if Sim.Time.(Run.now live < Run.horizon live) then write ();
      slices ()
    end
  in
  slices ();
  let result = Run.finish live in
  if Sys.file_exists path then Sys.remove path;
  result

(* Run.run with the session's observability attached: [metrics] also turns
   the digest on (the table grows a digest column), [trace] prepends a
   note naming the run so the JSONL stream is self-describing. Tracing
   requires a sequential pool — the writer is shared across runs — which
   bin/experiments.exe enforces by forcing [--jobs 1]. [checkpoint]
   advances the run in simulated-time slices, persisting a resumable
   snapshot between slices (slicing is observationally invisible, so the
   result is bit-identical to the uninterrupted run); tracing disables it
   (a run holding an out-channel sink cannot snapshot). *)
let obs_run ~obs ~label ?(spec = Run.Spec.default) ~env ~seed () =
  (match obs.trace with Some j -> Obs.Jsonl.note j label | None -> ());
  let spec =
    {
      spec with
      Run.Spec.metrics = obs.metrics;
      digest = obs.metrics;
      sched = obs.sched;
      intra_domains = obs.intra;
    }
  in
  let spec =
    match obs.topology with
    | Some k when spec.Run.Spec.topology = Net.Topology.Complete ->
        Run.Spec.with_topology k spec
    | _ -> spec
  in
  let spec =
    match obs.trace with
    | Some j -> Run.Spec.with_sink (Obs.Jsonl.sink j) spec
    | None -> spec
  in
  match obs.checkpoint with
  | Some (dir, every) when Option.is_none obs.trace ->
      checkpointed_run ~dir ~every ~label ~spec ~env ~seed
  | _ -> Run.run ~spec ~env ~seed ()

let obs_header obs header =
  if obs.metrics then header @ [ "digest" ] else header

let obs_cells obs result cells =
  if obs.metrics then
    cells
    @ [
        (match result.Run.digest with
        | Some d -> Obs.Digest.to_hex d
        | None -> "-");
      ]
  else cells

(* Cost model feeding the LPT schedule: simulated work scales with the
   horizon times the per-second traffic — Θ(n²) messages for the gossip
   family, ~3n for the relay tier — doubled when the assumption checker
   rides along (it processes every event again). Only the ordering
   matters, not the unit. *)
let cost_of ?(algo = `Gossip) ?(check = true) ?(stacks = 1) ~n horizon =
  let traffic =
    match algo with
    | `Gossip -> float_of_int (n * n)
    | `Relay -> float_of_int (3 * n)
  in
  Sim.Time.to_ms_float horizon /. 1000.
  *. traffic
  *. float_of_int stacks
  *. (if check then 2. else 1.)

let lpt_disabled () = Option.is_some (Sys.getenv_opt "OMEGA_NO_LPT")

(* Evaluate the cells on the pool. Execution order is longest-processing-
   time-first (by the cost estimate; OMEGA_NO_LPT reverts to declaration
   order for A/B): the pool's workers pull tasks in submission order, so
   submitting the expensive rows first stops a 40-second E7 row from
   becoming the tail of the whole sweep. Results are mapped back to
   declaration order before anything renders, so stdout (hence the
   byte-identity of the tables) is independent of both the pool size and
   the schedule. Per-cell wall clock goes to stderr — machine time is
   nondeterministic.

   Under [Shard i/k] only cells with [id mod k = i - 1] execute (the
   interleaving balances each table's heavy tail across shards); the rows
   are recorded for the shard file and the returned placeholders render
   into the void (bin/experiments.exe nulls the table channel). Under
   [Merge] nothing executes: rows come from the loaded shard files by
   cell id, and the replayed rendering is byte-identical to the unsharded
   run. *)
let on ~obs pool cells =
  let cells = Array.of_list cells in
  let farm = obs.farm in
  let base = farm.next_cell in
  farm.next_cell <- base + Array.length cells;
  match farm.mode with
  | Merge table ->
      Array.to_list
        (Array.mapi
           (fun i c ->
             match Hashtbl.find_opt table (base + i) with
             | Some rows -> rows
             | None ->
                 failwith
                   (Printf.sprintf
                      "merge: cell %d (%s) missing — incomplete shard set?"
                      (base + i) c.label))
           cells)
  | Local | Shard _ ->
      let mine =
        match farm.mode with
        | Shard { index; count; _ } -> fun i -> (base + i) mod count = index - 1
        | Local | Merge _ -> fun _ -> true
      in
      let order =
        let ids = ref [] in
        for i = Array.length cells - 1 downto 0 do
          if mine i then ids := i :: !ids
        done;
        let order = Array.of_list !ids in
        if not (lpt_disabled ()) then
          Array.sort
            (fun a b ->
              match Float.compare cells.(b).cost cells.(a).cost with
              | 0 -> Int.compare a b
              | c -> c)
            order;
        order
      in
      let timed =
        Parallel.Pool.run pool
          (Array.map
             (fun i () ->
               let t0 = Unix.gettimeofday () in
               let rows = cells.(i).exec () in
               (i, rows, Unix.gettimeofday () -. t0))
             order)
      in
      let results = Array.make (Array.length cells) None in
      Array.iter (fun (i, rows, w) -> results.(i) <- Some (rows, w)) timed;
      Array.iteri
        (fun i slot ->
          match slot with
          | Some (rows, w) -> (
              prerr_endline (Table.wall cells.(i).label w);
              match farm.mode with
              | Shard { recorded; _ } ->
                  recorded := (base + i, rows) :: !recorded
              | Local | Merge _ -> ())
          | None -> ())
        results;
      Array.to_list
        (Array.map (function Some (rows, _) -> rows | None -> []) results)

(* The shard file: which slice of which sweep, plus the recorded rows.
   bin/merge_tables.exe validates that the headers agree pairwise and
   cover 1..count before replaying. *)
module Shard = struct
  let magic = "omega-experiment-shard-v2"

  type file = {
    shard_magic : string;
    index : int;
    count : int;
    ids : string list;  (* selected experiment ids, Suite.all order *)
    quick : bool;
    metrics : bool;
    sched : string;  (* "wheel" | "heap" *)
    topology : string;  (* --topology override kind name; "-" = none *)
    cells : (int * string list) list;
  }

  let save ~path ~index ~count ~ids ~quick ~metrics ~sched ~topology ~cells =
    let oc = open_out_bin path in
    Marshal.to_channel oc
      {
        shard_magic = magic;
        index;
        count;
        ids;
        quick;
        metrics;
        sched;
        topology;
        cells;
      }
      [];
    close_out oc

  let load path =
    let ic = open_in_bin path in
    let f =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> (Marshal.from_channel ic : file))
    in
    if f.shard_magic <> magic then
      failwith (path ^ ": not an experiment shard file");
    f
end

(* ------------------------------------------------------------------ E1 *)

let e1 ~pool ~quick ~obs =
  let ns = if quick then [ 4; 8 ] else [ 4; 8; 16; 32 ] in
  let variants =
    [ Omega.Config.Fig1; Omega.Config.Fig2; Omega.Config.Fig3 ]
  in
  let rows =
    on ~obs pool
    @@ List.concat_map
         (fun n ->
           let t = (n - 1) / 2 in
           let center = n - 2 in
           (* The adversary victimizes the n-1 non-center processes in
              rotation; a full cycle (hence convergence) scales with n. *)
           let horizon = if quick then sec 12 else sec (30 + (4 * n)) in
           let crashes =
             List.init (max 1 (t / 2)) (fun i -> (i, sec (3 * (i + 1))))
           in
           List.map
             (fun variant ->
               let label =
                 Printf.sprintf "e1 n=%d %s" n
                   (Omega.Config.variant_name variant)
               in
               {
                 label;
                 cost = cost_of ~n horizon;
                 exec =
                   (fun () ->
                     let result =
                       obs_run ~obs ~label
                         ~spec:
                           Run.Spec.(
                             default |> with_horizon horizon
                             |> with_crashes crashes)
                         ~env:
                           (env ~n ~t variant
                              (Scenario.Rotating_star { center }))
                         ~seed:7L ()
                     in
                     obs_cells obs result
                       [
                         Table.intc n;
                         Table.intc t;
                         Omega.Config.variant_name variant;
                         stab_cell result;
                         leader_cell result;
                         Table.yesno (result.Run.final_leader = Some center);
                         Table.intc result.Run.messages_sent;
                         Table.intc (violations result);
                       ]);
               })
             variants)
         ns
  in
  Table.print
    ~title:
      "E1: stabilization under the rotating t-star (A'), crashes of t/2 \
       processes [Theorem 1]"
    ~header:
      (obs_header obs
         [ "n"; "t"; "algo"; "stabilized"; "leader"; "=center"; "msgs"; "viol" ])
    rows

(* ------------------------------------------------------------------ E2 *)

let e2 ~pool ~quick ~obs =
  let n = 8 and t = 3 and center = 6 in
  let ds = if quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
  let crashes = [ (0, sec 5) ] in
  let rows =
    on ~obs pool
    @@ List.concat_map
         (fun d ->
           List.map
             (fun variant ->
               let horizon =
                 match variant with
                 | Omega.Config.Fig3 ->
                     if quick then ms (20_000 + (d * d * 250))
                     else ms (30_000 + (d * d * 800))
                 | _ -> if quick then sec 20 else sec 60
               in
               let label =
                 Printf.sprintf "e2 D=%d %s" d
                   (Omega.Config.variant_name variant)
               in
               {
                 label;
                 cost = cost_of ~n horizon;
                 exec =
                   (fun () ->
                     let result =
                       obs_run ~obs ~label
                         ~spec:
                           Run.Spec.(
                             default |> with_horizon horizon
                             |> with_crashes crashes)
                         ~env:
                           (env ~n ~t variant
                              (Scenario.Intermittent_star { center; d }))
                         ~seed:7L ()
                     in
                     obs_cells obs result
                       [
                         Table.intc d;
                         Omega.Config.variant_name variant;
                         Format.asprintf "%a" Sim.Time.pp horizon;
                         stab_cell result;
                         leader_cell result;
                         Table.yesno (result.Run.final_leader = Some center);
                         Table.intc result.Run.max_susp_level;
                         Table.intc (violations result);
                       ]);
               })
             [ Omega.Config.Fig1; Omega.Config.Fig2; Omega.Config.Fig3 ])
         ds
  in
  Table.print
    ~title:
      "E2: intermittent rotating t-star with gap bound D (n=8, t=3, crash \
       p0@5s) [Theorem 2: fig1 needs A', fig2/fig3 elect the center]"
    ~header:
      (obs_header obs
         [
           "D"; "algo"; "horizon"; "stabilized"; "leader"; "=center";
           "max_susp"; "viol";
         ])
    rows

(* ------------------------------------------------------------------ E3 *)

let e3 ~pool ~quick ~obs =
  let n = 8 and t = 3 and center = 6 in
  let horizon = if quick then sec 20 else sec 90 in
  let crashes = [ (0, sec 5) ] in
  let cases =
    [
      (Omega.Config.Fig2, Scenario.Intermittent_star { center; d = 8 });
      (Omega.Config.Fig3, Scenario.Intermittent_star { center; d = 8 });
      (Omega.Config.Fig2, Scenario.Chaos);
      (Omega.Config.Fig3, Scenario.Chaos);
    ]
  in
  let rows =
    on ~obs pool
    @@ List.map
         (fun (variant, regime) ->
           let label =
             Printf.sprintf "e3 %s %s"
               (Omega.Config.variant_name variant)
               (Scenario.regime_name regime)
           in
           {
             label;
             cost = cost_of ~n horizon;
             exec =
               (fun () ->
                 let result =
                   obs_run ~obs ~label
                     ~spec:
                       Run.Spec.(
                         default |> with_horizon horizon
                         |> with_crashes crashes)
                     ~env:(env ~n ~t variant regime) ~seed:7L ()
                 in
                 obs_cells obs result
                   [
                     Omega.Config.variant_name variant;
                     Scenario.regime_name regime;
                     Table.intc result.Run.max_susp_level;
                     Format.asprintf "%a" Sim.Time.pp result.Run.max_timeout;
                     Table.intc result.Run.lattice_violations;
                     Table.intc result.Run.max_round_state;
                     stab_cell result;
                   ]);
           })
         cases
  in
  Table.print
    ~title:
      "E3: variable boundedness, crash p0@5s (n=8, t=3) [Theorem 4: fig3 \
       bounds susp levels and timeouts; Lemma 8: max-min<=1 never violated]"
    ~header:
      (obs_header obs
         [
           "algo"; "regime"; "max_susp"; "max_timeout"; "lattice_viol";
           "round_state"; "stabilized";
         ])
    rows

(* ------------------------------------------------------------------ E4 *)

(* E4 compares against baseline oracles through Compare.run (its own minimal
   stack) — no Run.run underneath, so the obs layer has nothing to attach
   to; the matrix stays observability-free (its cells still ride the farm
   for LPT and sharding). *)
let e4 ~pool ~quick ~obs =
  let n = 8 and t = 3 and center = 6 in
  let horizon = if quick then sec 12 else sec 45 in
  let crashes = [ (0, sec 10) ] in
  let regimes =
    [
      Scenario.Full_timely;
      Scenario.T_source { center };
      Scenario.Moving_source { center };
      Scenario.Message_pattern { center };
      Scenario.Combined { center };
      Scenario.Rotating_star { center };
      Scenario.Intermittent_star { center; d = 8 };
      Scenario.Chaos;
    ]
  in
  let algos = Baselines.Registry.all in
  (* One thunk per (regime, algo) cell — the finest-grained table, so the
     pool can overlap all |regimes| x |algos| simulations. *)
  let cells =
    List.map (function [ s ] -> s | _ -> "-")
    @@ on ~obs pool
    @@ List.concat_map
         (fun regime ->
           List.map
             (fun algo ->
               let label =
                 Printf.sprintf "e4 %s %s"
                   (Scenario.regime_name regime)
                   algo.Baselines.Registry.name
               in
               {
                 label;
                 cost = cost_of ~n horizon;
                 exec =
                   (fun () ->
                     let outcome =
                       Compare.run algo
                         ~scenario:(scenario ~n ~t regime)
                         ~seed:7L ~horizon ~crashes
                     in
                     [
                       (if Float.is_nan outcome.Compare.stabilized_ms then "-"
                        else
                          Printf.sprintf "%.1fs%s"
                            (outcome.Compare.stabilized_ms /. 1000.)
                            (if outcome.Compare.elected_center then "*"
                             else ""));
                     ]);
               })
             algos)
         regimes
  in
  let width = List.length algos in
  let rec chunk = function
    | [] -> []
    | cells ->
        let row = List.filteri (fun i _ -> i < width) cells in
        let rest = List.filteri (fun i _ -> i >= width) cells in
        row :: chunk rest
  in
  let rows =
    List.map2
      (fun regime cells -> Scenario.regime_name regime :: cells)
      regimes (chunk cells)
  in
  Table.print
    ~title:
      "E4: which algorithm stabilizes under which assumption (n=8, t=3, \
       crash p0@10s; cell = stabilization time, * = elected the center, - = \
       anarchy) [paper section 3]"
    ~header:("regime" :: List.map (fun a -> a.Baselines.Registry.name) algos)
    rows

(* ------------------------------------------------------------------ E5 *)

let e5 ~pool ~quick ~obs =
  let ns = if quick then [ 4; 8 ] else [ 4; 8; 16; 32 ] in
  let horizon = if quick then sec 10 else sec 20 in
  let rows =
    on ~obs pool
    @@ List.concat_map
         (fun n ->
           let t = (n - 1) / 2 in
           let center = n - 2 in
           List.map
             (fun (crash_label, crashes) ->
               let label = Printf.sprintf "e5 n=%d crash=%s" n crash_label in
               {
                 label;
                 cost = cost_of ~n horizon;
                 exec =
                   (fun () ->
                     let result =
                       obs_run ~obs ~label
                         ~spec:
                           Run.Spec.(
                             default |> with_horizon horizon
                             |> with_crashes crashes
                             |> with_wire_stats true)
                         ~env:
                           (env ~n ~t Omega.Config.Fig3
                              (Scenario.Rotating_star { center }))
                         ~seed:7L ()
                     in
                     let seconds = Sim.Time.to_ms_float horizon /. 1000. in
                     let per_proc_per_sec =
                       float_of_int result.Run.messages_sent
                       /. seconds /. float_of_int n
                     in
                     let alive_avg =
                       (* ALIVE dominates the count: n-1 ALIVEs + n
                          SUSPICIONs per round per process; report measured
                          mean sizes instead. *)
                       float_of_int result.Run.alive_bytes
                       /. float_of_int (max 1 result.Run.messages_sent)
                     in
                     obs_cells obs result
                       [
                         Table.intc n;
                         crash_label;
                         Table.intc result.Run.messages_sent;
                         Printf.sprintf "%.0f" per_proc_per_sec;
                         Table.intc result.Run.alive_bytes;
                         Table.intc result.Run.suspicion_bytes;
                         Printf.sprintf "%.1f" alive_avg;
                         Table.intc result.Run.max_susp_level;
                         Table.intc result.Run.max_round_state;
                       ]);
               })
             [ ("none", []); ("p0@5s", [ (0, sec 5) ]) ])
         ns
  in
  Table.print
    ~title:
      "E5: cost vs system size (fig3, rotating star) [section 1.3/8: all \
       fields but round numbers bounded]"
    ~header:
      (obs_header obs
         [
           "n"; "crash"; "msgs"; "msg/s/proc"; "alive_B"; "susp_B"; "B/msg";
           "max_susp"; "round_state";
         ])
    rows

(* ------------------------------------------------------------------ E6 *)

let consensus_run ~n ~t ~d ~horizon ~seed =
  let engine = Sim.Engine.create ~seed () in
  let center = n - 2 in
  let cfg = config ~n ~t Omega.Config.Fig3 in
  let scen = scenario ~n ~t (Scenario.Intermittent_star { center; d }) in
  let net_for oracle =
    Net.Spec.(default |> with_oracle oracle) |> fun spec ->
    Net.Network.of_spec spec engine ~n
  in
  let omega_net =
    net_for (Scenario.oracle scen ~round_of:Scenario.round_of_omega)
  in
  let omega = Omega.Cluster.create cfg omega_net in
  let cons_net = net_for (Scenario.oracle scen ~round_of:(fun _ -> None)) in
  let cluster =
    Consensus.Single.create cons_net
      ~oracle:(fun p () -> Omega.Node.leader (Omega.Cluster.node omega p))
      ~retry_every:(ms 50) ~crash_bound:t
  in
  Omega.Cluster.start omega;
  Consensus.Single.start cluster;
  (* Crash the initial minimum-id process (everyone's first leader estimate)
     before any proposal exists, so consensus cannot be decided by a lucky
     pre-crash ballot and must ride the oracle's re-election. *)
  Omega.Cluster.crash_at omega 0 (ms 200);
  ignore
    (Sim.Engine.schedule_at engine (ms 200) (fun () ->
         Net.Network.crash cons_net 0));
  let propose_at = ms 500 in
  ignore
    (Sim.Engine.schedule_at engine propose_at (fun () ->
         for p = 1 to n - 1 do
           Consensus.Single.propose cluster p (100 + p)
         done));
  Sim.Engine.run_until engine horizon;
  let ballots = ref 0 in
  for p = 0 to n - 1 do
    ballots :=
      !ballots + Consensus.Node.ballots_started (Consensus.Single.node cluster p)
  done;
  let latency =
    Option.map
      (fun at -> Sim.Time.sub at propose_at)
      (Consensus.Single.last_decision_time cluster)
  in
  (Consensus.Single.uniform_decision cluster, latency, !ballots)

let broadcast_run ~n ~t ~d ~commands ~horizon ~seed =
  let engine = Sim.Engine.create ~seed () in
  let center = n - 2 in
  let cfg = config ~n ~t Omega.Config.Fig3 in
  let scen = scenario ~n ~t (Scenario.Intermittent_star { center; d }) in
  let net_for oracle =
    Net.Spec.(default |> with_oracle oracle) |> fun spec ->
    Net.Network.of_spec spec engine ~n
  in
  let omega_net =
    net_for (Scenario.oracle scen ~round_of:Scenario.round_of_omega)
  in
  let omega = Omega.Cluster.create cfg omega_net in
  let bc_net = net_for (Scenario.oracle scen ~round_of:(fun _ -> None)) in
  let nodes =
    Array.init n (fun me ->
        Consensus.Broadcast.create bc_net ~me
          ~oracle:(fun () -> Omega.Node.leader (Omega.Cluster.node omega me))
          ~retry_every:(ms 50) ~crash_bound:t ~equal:Int.equal)
  in
  Omega.Cluster.start omega;
  Array.iter Consensus.Broadcast.start nodes;
  (* Commands submitted over time from three different processes. *)
  for c = 0 to commands - 1 do
    let submitter = 1 + (c mod 3) in
    ignore
      (Sim.Engine.schedule_at engine
         (ms (100 * c))
         (fun () -> Consensus.Broadcast.submit nodes.(submitter) (1000 + c)))
  done;
  Omega.Cluster.crash_at omega 0 (sec 1);
  ignore
    (Sim.Engine.schedule_at engine (sec 1) (fun () ->
         Net.Network.crash bc_net 0));
  Sim.Engine.run_until engine horizon;
  let correct = Net.Network.correct bc_net in
  let sequences =
    List.map (fun p -> Consensus.Broadcast.delivered nodes.(p)) correct
  in
  let all_equal =
    match sequences with
    | [] -> true
    | first :: rest -> List.for_all (fun s -> s = first) rest
  in
  let delivered = match sequences with [] -> 0 | s :: _ -> List.length s in
  (delivered, all_equal)

(* E6's consensus/broadcast runs assemble their own two-network stacks
   above (no Run.run), so like E4 they stay observability-free (but still
   farm cells). *)
let e6 ~pool ~quick ~obs =
  let n = 8 and t = 3 in
  let ds = if quick then [ 4 ] else [ 4; 16 ] in
  let horizon = if quick then sec 20 else sec 60 in
  let commands = if quick then 10 else 30 in
  let rows =
    on ~obs pool
    @@ List.map
         (fun d ->
           {
             label = Printf.sprintf "e6 D=%d" d;
             (* Four networks across the two runs: omega + payload, twice. *)
             cost = cost_of ~n ~stacks:4 horizon;
             exec =
               (fun () ->
                 let decision, latency, ballots =
                   consensus_run ~n ~t ~d ~horizon ~seed:11L
                 in
                 let delivered, order_ok =
                   broadcast_run ~n ~t ~d ~commands ~horizon ~seed:11L
                 in
                 [
                   Table.intc d;
                   (match decision with
                   | Some v -> string_of_int v
                   | None -> "-");
                   (match latency with
                   | Some x -> Format.asprintf "%a" Sim.Time.pp x
                   | None -> "-");
                   Table.intc ballots;
                   Printf.sprintf "%d/%d" delivered commands;
                   Table.yesno order_ok;
                 ]);
           })
         ds
  in
  Table.print
    ~title:
      "E6: consensus + atomic broadcast over fig3-Omega (n=8, t=3, crash \
       p0; intermittent star) [Theorem 5]"
    ~header:
      [ "D"; "decision"; "decision latency"; "ballots"; "delivered"; "same order" ]
    rows

(* ------------------------------------------------------------------ E7 *)

let e7 ~pool ~quick ~obs =
  let n = 5 and t = 2 and center = 3 and d = 2 in
  (* Quadratic g (see Scenario.g_function): outgrows the linear-rate timeout
     adaptation, so only the g-aware variant can keep waiting long enough.
     Small base timeout and jitter keep the send/receive drift from masking
     the growth; no crashes (with the center dark off-star and one victim,
     round closure has exactly n-t ALIVEs counting the receiver itself). *)
  let g_step = ms 5 in
  let horizon = if quick then sec 90 else sec 150 in
  let regime = Scenario.Growing_star { center; d; g_step } in
  let scen = scenario ~n ~t regime in
  let g = Scenario.g_function scen in
  let tweak c =
    {
      c with
      Omega.Config.initial_timeout = ms 8;
      send_jitter = 0.02;
      timeout_unit = Sim.Time.of_us 50;
    }
  in
  let thunks_a =
    List.map
      (fun (algo_label, variant) ->
        let label = Printf.sprintf "e7a %s" algo_label in
        {
          label;
          cost = cost_of ~n horizon;
          exec =
            (fun () ->
              let result =
                obs_run ~obs ~label
                  ~spec:Run.Spec.(default |> with_horizon horizon)
                  ~env:
                    (Scenarios.Env.make (tweak (config ~n ~t variant)) regime)
                  ~seed:7L ()
              in
              obs_cells obs result
                [
                  algo_label;
                  stab_cell result;
                  leader_cell result;
                  Table.yesno (result.Run.final_leader = Some center);
                  Format.asprintf "%a" Sim.Time.pp result.Run.max_timeout;
                  Table.intc (violations result);
                ]);
        })
      [
        ("fig3 (g unknown)", Omega.Config.Fig3);
        ("fig3_fg (knows g)", Omega.Config.Fig3_fg { f = (fun _ -> 0); g });
      ]
  in
  (* E7b: the f side — gaps between good rounds grow without bound. *)
  let n = 8 and t = 3 and center_b = 6 in
  let regime_b = Scenario.Growing_gaps { center = center_b; d = 4; f_step = 8 } in
  let params = Scenario.default_params ~n ~t ~beta:(ms 10) in
  let scen_b = Scenario.create params regime_b ~seed:42L in
  let f = Scenario.f_function scen_b in
  let horizon_b = if quick then sec 45 else sec 90 in
  let thunks_b =
    List.map
      (fun (algo_label, variant) ->
        let label = Printf.sprintf "e7b %s" algo_label in
        {
          label;
          cost = cost_of ~n horizon_b;
          exec =
            (fun () ->
              let result =
                obs_run ~obs ~label
                  ~spec:
                    Run.Spec.(
                      default |> with_horizon horizon_b
                      |> with_crashes [ (0, sec 5) ])
                  ~env:(env ~n ~t variant regime_b)
                  ~seed:7L ()
              in
              obs_cells obs result
                [
                  algo_label;
                  stab_cell result;
                  leader_cell result;
                  Table.yesno (result.Run.final_leader = Some center_b);
                  Table.intc result.Run.max_susp_level;
                  Table.intc (violations result);
                ]);
        })
      [
        ("fig3 (f unknown)", Omega.Config.Fig3);
        ("fig3_fg (knows f)", Omega.Config.Fig3_fg { f; g = (fun _ -> Sim.Time.zero) });
      ]
  in
  (* Both tables' runs go out in one batch; printing happens after the
     join, in table order. *)
  let split = List.length thunks_a in
  let all_rows = on ~obs pool (thunks_a @ thunks_b) in
  let rows = List.filteri (fun i _ -> i < split) all_rows in
  let rows_b = List.filteri (fun i _ -> i >= split) all_rows in
  Table.print
    ~title:
      "E7a: growing timeliness bound delta+g(rn), quadratic g (growing star, \
       n=5, t=2, D=2) [section 7: only the g-aware algorithm elects the \
       center]"
    ~header:
      (obs_header obs
         [ "algo"; "stabilized"; "leader"; "=center"; "max_timeout"; "viol" ])
    rows;
  Table.print
    ~title:
      "E7b: growing gaps between good rounds, f(s) = 4 + 8*(s/256) (n=8, \
       t=3, crash p0@5s) [section 7: only the f-aware algorithm elects the \
       center]"
    ~header:
      (obs_header obs
         [ "algo"; "stabilized"; "leader"; "=center"; "max_susp"; "viol" ])
    rows_b

(* ------------------------------------------------------------------ E8 *)

let e8 ~pool ~quick ~obs =
  let n = 8 and t = 3 in
  let first = 2 and second = 6 in
  let crash_time = if quick then sec 8 else sec 20 in
  let switch = Sim.Time.to_us crash_time / Sim.Time.to_us (ms 10) in
  let horizon = if quick then sec 30 else sec 90 in
  let seeds = if quick then [ 7L ] else [ 7L; 8L; 9L ] in
  let rows =
    on ~obs pool
    @@ List.concat_map
         (fun variant ->
           List.map
             (fun seed ->
               let label =
                 Printf.sprintf "e8 %s seed=%Ld"
                   (Omega.Config.variant_name variant)
                   seed
               in
               {
                 label;
                 cost = cost_of ~n horizon;
                 exec =
                   (fun () ->
                     let result =
                       obs_run ~obs ~label
                         ~spec:
                           Run.Spec.(
                             default |> with_horizon horizon
                             |> with_crashes [ (first, crash_time) ])
                         ~env:
                           (env ~n ~t ~scenario_seed:seed variant
                              (Scenario.Failover { first; second; switch }))
                         ~seed ()
                     in
                     let relect =
                       match result.Run.stabilized_at with
                       | Some at when Sim.Time.(at > crash_time) ->
                           Table.ms
                             (Sim.Time.to_ms_float (Sim.Time.sub at crash_time))
                       | Some _ | None -> "-"
                     in
                     (* Leader agreed just before the crash, from the
                        samples. *)
                     let pre_crash =
                       List.fold_left
                         (fun acc (s : Run.sample) ->
                           if Sim.Time.(s.Run.time < crash_time) then
                             match s.Run.agreed with
                             | Some l -> string_of_int l
                             | None -> acc
                           else acc)
                         "-" result.Run.samples
                     in
                     obs_cells obs result
                       [
                         Omega.Config.variant_name variant;
                         Int64.to_string seed;
                         pre_crash;
                         leader_cell result;
                         stab_cell result;
                         relect;
                         Table.intc (violations result);
                       ]);
               })
             seeds)
         [ Omega.Config.Fig2; Omega.Config.Fig3 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E8: leader crash and re-election (failover star %d->%d, crash \
          p%d@%ds) [section 1.1 good/bad periods]"
         first second first
         (Sim.Time.to_us crash_time / 1_000_000))
    ~header:
      (obs_header obs
         [
           "algo"; "seed"; "pre-crash"; "final"; "stabilized"; "re-elect";
           "viol";
         ])
    rows

(* ------------------------------------------------------------------ E9 *)

let e9 ~pool ~quick ~obs =
  let n = 8 and t = 3 and center = 6 in
  let fault_at = if quick then sec 8 else sec 15 in
  let durations = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let fault_cfg = fault_config ~n ~t Omega.Config.Fig3 in
  (* Horizon leaves a post-heal tail longer than min_stable (horizon/5) plus
     the re-stabilization transient, so a healed run can prove itself (the
     stability judge also wants the final third of the rounds agreed). *)
  let horizon d =
    Sim.Time.add fault_at (sec ((if quick then 20 else 30) + (2 * d)))
  in
  let faults =
    [
      (* Isolating the center severs its ALIVEs both ways: the majority side
         churns leaderless (the rotating adversary victimizes everyone else),
         and after the heal the center must win re-election. *)
      ( "partition center",
        fun d ->
          Fault.Plan.(
            empty
            |> partition ~at:fault_at
                 ~heal_at:(Sim.Time.add fault_at (sec d))
                 [ [ center ] ]) );
      ( "crash+recover center",
        fun d ->
          Fault.Plan.(
            empty
            |> crash center ~at:fault_at
            |> recover center ~at:(Sim.Time.add fault_at (sec d))) );
    ]
  in
  let rows =
    on ~obs pool
    @@ List.concat_map
         (fun (fault_label, plan_of) ->
           List.map
             (fun d ->
               let horizon = horizon d in
               let label = Printf.sprintf "e9 %s D=%ds" fault_label d in
               {
                 label;
                 cost = cost_of ~n horizon;
                 exec =
                   (fun () ->
                     let result =
                       obs_run ~obs ~label
                         ~spec:
                           Run.Spec.(
                             default |> with_horizon horizon
                             |> with_plan (plan_of d))
                         ~env:
                           (Scenarios.Env.make fault_cfg
                              (Scenario.Rotating_star { center }))
                         ~seed:7L ()
                     in
                     obs_cells obs result
                       [
                         fault_label;
                         Printf.sprintf "%ds" d;
                         Format.asprintf "%a" Sim.Time.pp horizon;
                         stab_cell result;
                         leader_cell result;
                         Table.yesno (result.Run.final_leader = Some center);
                         Table.intc result.Run.re_elections;
                         Table.intc result.Run.leadership_epochs;
                         Format.asprintf "%a" Sim.Time.pp
                           result.Run.partition_downtime;
                         Table.intc (violations result);
                       ]);
               })
             durations)
         faults
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E9: partition / crash-recovery of the center for D seconds \
          (fig3, rotating star, n=8, t=3, fault@%ds) [stabilization must \
          recover after the heal]"
         (Sim.Time.to_us fault_at / 1_000_000))
    ~header:
      (obs_header obs
         [
           "fault"; "D"; "horizon"; "stabilized"; "leader"; "=center";
           "re-elect"; "epochs"; "downtime"; "viol";
         ])
    rows

(* ----------------------------------------------------------------- E10 *)

let e10 ~pool ~quick ~obs =
  let n = 8 and t = 3 and center = 6 in
  let horizon = if quick then sec 20 else sec 60 in
  let adaptive_plan = Fault.Plan.(empty |> adaptive ~from:(sec 2)) in
  let cases =
    [
      (Scenario.Rotating_star { center }, "static", Fault.Plan.empty);
      (Scenario.Rotating_star { center }, "adaptive", adaptive_plan);
      (Scenario.Chaos, "static", Fault.Plan.empty);
      (Scenario.Chaos, "adaptive", adaptive_plan);
    ]
  in
  let rows =
    on ~obs pool
    @@ List.map
         (fun (regime, adversary, plan) ->
           let label =
             Printf.sprintf "e10 %s %s" (Scenario.regime_name regime) adversary
           in
           {
             label;
             cost = cost_of ~n horizon;
             exec =
               (fun () ->
                 let result =
                   obs_run ~obs ~label
                     ~spec:
                       Run.Spec.(
                         default |> with_horizon horizon |> with_plan plan)
                     ~env:
                       (Scenarios.Env.make
                          (fault_config ~n ~t Omega.Config.Fig3)
                          regime)
                     ~seed:7L ()
                 in
                 obs_cells obs result
                   [
                     Scenario.regime_name regime;
                     adversary;
                     stab_cell result;
                     leader_cell result;
                     Table.yesno (result.Run.final_leader = Some center);
                     Table.intc result.Run.adversary_moves;
                     Table.intc result.Run.re_elections;
                     Table.intc result.Run.max_susp_level;
                   ]);
           })
         cases
  in
  Table.print
    ~title:
      "E10: static victim blocks vs leader-chasing adaptive adversary \
       (fig3, n=8, t=3) [the star's protected center survives the chase; \
       under chaos the chase never ends]"
    ~header:
      (obs_header obs
         [
           "regime"; "adversary"; "stabilized"; "leader"; "=center"; "moves";
           "re-elect"; "max_susp";
         ])
    rows

(* ----------------------------------------------------------------- E11 *)

let e11 ~pool ~quick ~obs =
  (* The n >= 256 rows are full-mode only: a quick CI sweep (and the
     determinism gate riding on it) stays at n <= 128, while the full
     tables exercise the cache-conscious tier (DESIGN.md §14). *)
  let ns =
    if quick then [ 8; 16; 32; 64; 128 ]
    else [ 8; 16; 32; 64; 128; 256; 512 ]
  in
  let beta = ms 10 in
  (* Stabilization needs a few full victim rotations (each one n-1 rounds:
     every process must be suspected past the center's transient level), so
     the horizon scales with n instead of admitting defeat at n=128 — up to
     the large tier, where a rotation-scaled horizon would cost hours of
     wall clock: n >= 256 runs a fixed two simulated seconds and measures
     throughput only (stabilization is out of reach by construction there,
     and E1-E10 already establish it discriminates). *)
  let horizon n =
    if n >= 256 then ms 2_000
    else
      let rotation_ms = 10 * (n - 1) in
      ms
        (if quick then max 4_000 (7 * rotation_ms)
         else max 10_000 (10 * rotation_ms))
  in
  (* Fixed stable-suffix requirement: the default horizon/5 would demand an
     ever-longer proof of stability just because large n needs a longer
     horizon to get there. *)
  let min_stable = if quick then sec 1 else sec 2 in
  let regimes =
    [
      ("star", fun center -> Scenario.Rotating_star { center });
      ("moving-star", fun center -> Scenario.Moving_source { center });
    ]
  in
  let results =
    on ~obs pool
    @@ List.concat_map
         (fun n ->
           let t = (n - 1) / 2 in
           let center = n - 2 in
           let cfg = fault_config ~n ~t Omega.Config.Fig1 in
           (* The mildest adversary (single-round victim blocks, no growth,
              star from round 2): E11 measures how the simulator and the
              algorithm scale with n, not whether the assumption
              discriminates — E1 does that. The star must start almost
              immediately: each anarchy round inflates the center's
              suspicion level, and erasing one level of deficit costs a
              full victim rotation (n-1 rounds), which at n=128 would push
              stabilization far past any CI-feasible horizon. *)
           let params =
             {
               (Scenario.default_params ~n ~t ~beta) with
               Scenario.rn0 = 2;
               victim_block0 = 1;
               victim_block_step = 0;
             }
           in
           List.map
             (fun (rlabel, regime_of) ->
               let label = Printf.sprintf "e11 n=%d %s" n rlabel in
               {
                 label;
                 cost = cost_of ~n ~check:false (horizon n);
                 exec =
                   (fun () ->
                     let result =
                       obs_run ~obs ~label
                         (* No checker: it costs as much as the simulation
                            at large n, and assumption compliance is
                            E1-E10's job — this tier measures throughput. *)
                         ~spec:
                           Run.Spec.(
                             default |> with_horizon (horizon n)
                             |> with_min_stable min_stable
                             |> with_check false)
                         ~env:
                           (Scenarios.Env.make ~params cfg (regime_of center))
                         ~seed:7L ()
                     in
                     let rounds = max 1 result.Run.min_sending_round in
                     let stab_round =
                       match result.Run.stabilized_at with
                       | Some at ->
                           Table.intc (Sim.Time.to_us at / Sim.Time.to_us beta)
                       | None -> "-"
                     in
                     obs_cells obs result
                       [
                         Table.intc n;
                         Table.intc t;
                         rlabel;
                         stab_cell result;
                         stab_round;
                         leader_cell result;
                         Table.yesno (result.Run.final_leader = Some center);
                         Table.intc result.Run.messages_sent;
                         Table.intc (result.Run.messages_sent / rounds);
                       ]);
               })
             regimes)
         ns
  in
  Table.print
    ~title:
      "E11: scaling in n (fig1, tight config, mild single-round victim \
       rotation; wall-clock per run on stderr; n>=256 full-mode only, \
       fixed 2 s horizon, throughput not stabilization) [DESIGN.md 13-14]"
    ~header:
      (obs_header obs
         [
           "n"; "t"; "regime"; "stabilized"; "stab_round"; "leader";
           "=center"; "msgs"; "msgs/round";
         ])
    results

(* ------------------------------------------------------------------ E12 *)

let e12 ~pool ~quick ~obs =
  (* Message-complexity shootout (DESIGN.md §15): the Figure 3 gossip
     family against the communication-efficient relay variant, same
     adversary, same seeds, same tight config — stabilization and
     packets/round side by side. Gossip sends ~1.5 n^2 messages per round
     (n ALIVEs per beta plus the n/2-ish close-round SUSPICION echoes
     under pressure); the relay variant sends ~2 n (one HEARTBEAT per
     process plus one n-fan-out AGGREGATE), so msgs/rd/n is the headline
     column: roughly linear in n for gossip, roughly constant ~2 for the
     relay tier. *)
  let ns =
    if quick then [ 8; 16 ] else [ 8; 16; 32; 64; 128; 256 ]
  in
  let beta = ms 10 in
  (* The victim block must beat the relay's staleness slack (6 + level) or
     the lean tier would stabilize against any adversary trivially: 8-round
     blocks engage both detectors. One full rotation is 8 (n - 1) rounds;
     stabilization needs one or two (the relay tier freezes the center at
     level 0, the gossip tier must lift every arm past the center's
     transient level). n >= 128 runs a fixed two simulated seconds like
     E11's large tier: throughput only, and the msgs/rd/n separation is
     the point there, not stabilization. *)
  let horizon n =
    if n >= 128 then ms 2_000
    else
      let rotation_ms = 10 * 8 * (n - 1) in
      ms
        (if quick then max 4_000 (3 * rotation_ms)
         else max 10_000 (5 * rotation_ms))
  in
  let min_stable = if quick then sec 1 else sec 2 in
  let regimes =
    [
      ("star", fun center -> Scenario.Rotating_star { center });
      ("moving-star", fun center -> Scenario.Moving_source { center });
    ]
  in
  let algos = [ ("fig3", `Gossip); ("relay", `Relay) ] in
  let results =
    on ~obs pool
    @@ List.concat_map
         (fun n ->
           let t = (n - 1) / 2 in
           let center = n - 2 in
           let cfg = fault_config ~n ~t Omega.Config.Fig3 in
           let params =
             {
               (Scenario.default_params ~n ~t ~beta) with
               Scenario.rn0 = 2;
               victim_block0 = 8;
               victim_block_step = 0;
             }
           in
           List.concat_map
             (fun (rlabel, regime_of) ->
               List.map
                 (fun (alabel, algo) ->
                   let label =
                     Printf.sprintf "e12 n=%d %s %s" n rlabel alabel
                   in
                   {
                     label;
                     cost = cost_of ~n ~algo ~check:false (horizon n);
                     exec =
                       (fun () ->
                         let result =
                           obs_run ~obs ~label
                             ~spec:
                               Run.Spec.(
                                 default |> with_horizon (horizon n)
                                 |> with_min_stable min_stable
                                 |> with_check false |> with_algo algo)
                             ~env:
                               (Scenarios.Env.make ~params cfg
                                  (regime_of center))
                             ~seed:7L ()
                         in
                         let rounds = max 1 result.Run.min_sending_round in
                         let per_round = result.Run.messages_sent / rounds in
                         let stab_round =
                           match result.Run.stabilized_at with
                           | Some at ->
                               Table.intc
                                 (Sim.Time.to_us at / Sim.Time.to_us beta)
                           | None -> "-"
                         in
                         obs_cells obs result
                           [
                             Table.intc n;
                             Table.intc t;
                             rlabel;
                             alabel;
                             stab_cell result;
                             stab_round;
                             leader_cell result;
                             Table.yesno
                               (result.Run.final_leader = Some center);
                             Table.intc result.Run.messages_sent;
                             Table.intc per_round;
                             Printf.sprintf "%.1f"
                               (float_of_int per_round /. float_of_int n);
                           ]);
                   })
                 algos)
             regimes)
         ns
  in
  Table.print
    ~title:
      "E12: message complexity, gossip (fig3) vs relay tier (tight config, \
       8-round victim blocks, same seeds; wall-clock per run on stderr; \
       n>=128 fixed 2 s horizon, throughput not stabilization) \
       [DESIGN.md 15]"
    ~header:
      (obs_header obs
         [
           "n"; "t"; "regime"; "algo"; "stabilized"; "stab_round"; "leader";
           "=center"; "msgs"; "msgs/round"; "msgs/rd/n";
         ])
    results

(* ------------------------------------------------------------------ E13 *)

let e13 ~pool ~quick ~obs =
  (* Topology sweep (DESIGN.md §17): the paper's complete-graph model
     generalized to routed graphs with per-edge channel classes, both Ω
     algorithms under the same rotating-star adversary and tight config as
     E12. The headline: election still lands on the star's center on every
     structured graph — the checker's bounds and the adversary's victim
     blocks both stretch with the diameter, but the assumption's promise
     survives multi-hop relaying, a 0.5% fair-lossy floor, and
     eventually-timely links whose pre-GST delays are unconstrained. *)
  let ns = if quick then [ 8 ] else [ 8; 16 ] in
  let beta = ms 10 in
  let topologies =
    [
      ("ring", Net.Topology.Ring);
      ("grid", Net.Topology.Grid);
      ("fattree", Net.Topology.Fat_tree { rack = 4 });
      ("wan", Net.Topology.Wan_of_lans { lan = 4 });
    ]
  in
  let channels =
    [
      ("reliable", Net.Topology.Reliable);
      ("lossy-.5%", Net.Topology.Fair_lossy 0.005);
      ( "ev-timely",
        Net.Topology.Eventually_timely { gst = ms 500; bound = sec 2 } );
    ]
  in
  let algos = [ ("fig3", `Gossip); ("relay", `Relay) ] in
  (* The victim block must beat the relay tier's staleness slack
     (6 + 4 (diam-1) + level, see Omega.Lean) with margin, as E12's 8-round
     blocks beat the complete graph's 6 + level. *)
  let block diam = 10 + (4 * (diam - 1)) in
  (* One victim rotation is [block (n-1)] rounds of beta; the horizon buys
     several (the relay tier moves one accusation per block, so it needs
     a few full rotations before the last arm lifts past the center). *)
  let horizon n diam =
    if quick then sec 8
    else Sim.Time.of_ms (Stdlib.max 20_000 ((5 * block diam * (n - 1) * 10) + 2_000)
    )
  in
  let min_stable = if quick then sec 1 else sec 2 in
  (* The structured kinds draw nothing from the RNG, so a scratch stream
     recovers the exact diameter the run's network will compute. *)
  let diameter_of kind n =
    Net.Topology.diameter
      (Net.Topology.build kind ~n ~rng:(Dstruct.Rng.create 0L))
  in
  (* One row, shared between the stabilization sweep and the scaling
     tier below; [horizon] is the only knob that differs. *)
  let mk_row ~n ~tlabel ~kind ~diam ~clabel ~chan ~alabel ~algo ~horizon =
    let t = (n - 1) / 2 in
    let center = n - 2 in
    let cfg = fault_config ~n ~t Omega.Config.Fig3 in
    (* Same adversary for both algorithms in a row; the block length
       scales with the topology's slack (above). *)
    let params =
      {
        (Scenario.default_params ~n ~t ~beta) with
        Scenario.rn0 = 2;
        victim_block0 = block diam;
        victim_block_step = 0;
      }
    in
    let label = Printf.sprintf "e13 n=%d %s %s %s" n tlabel clabel alabel in
    {
      label;
      (* Every message crosses ~diam links, so routed traffic scales the
         cost estimate. *)
      cost = float_of_int diam *. cost_of ~n ~algo ~check:false horizon;
      exec =
        (fun () ->
          let result =
            obs_run ~obs ~label
              ~spec:
                Run.Spec.(
                  default |> with_horizon horizon
                  |> with_min_stable min_stable
                  |> with_check false |> with_algo algo
                  |> with_topology kind |> with_link_channel chan)
              ~env:
                (Scenarios.Env.make ~params cfg
                   (Scenario.Rotating_star { center }))
              ~seed:7L ()
          in
          let rounds = max 1 result.Run.min_sending_round in
          let per_round = result.Run.messages_sent / rounds in
          let stab_round =
            match result.Run.stabilized_at with
            | Some at ->
                Table.intc (Sim.Time.to_us at / Sim.Time.to_us beta)
            | None -> "-"
          in
          obs_cells obs result
            [
              Table.intc n;
              tlabel;
              Table.intc diam;
              clabel;
              alabel;
              stab_cell result;
              stab_round;
              leader_cell result;
              Table.yesno (result.Run.final_leader = Some center);
              Table.intc result.Run.messages_sent;
              Table.intc per_round;
            ]);
    }
  in
  let sweep_rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun (tlabel, kind) ->
            let diam = diameter_of kind n in
            List.concat_map
              (fun (clabel, chan) ->
                List.map
                  (fun (alabel, algo) ->
                    mk_row ~n ~tlabel ~kind ~diam ~clabel ~chan ~alabel
                      ~algo ~horizon:(horizon n diam))
                  algos)
              channels)
          topologies)
      ns
  in
  (* Routed scaling tier (full mode only; ROADMAP's "routed runs cap at
     n = 16" item): the routed hot path — one pooled flight per hop,
     staged fan-out, per-hop oracle draws — under E11-class load. A
     rotation-scaled horizon is unaffordable at this size, so as in
     E11/E12's large tiers the rows run a fixed two simulated seconds
     and measure throughput, not stabilization. Fat-tree keeps its
     diameter at 3 while racks multiply, so per-send hop cost stays
     flat as n grows — which is exactly what makes it the rack-scale
     graph worth scaling. *)
  let scale_rows =
    if quick then []
    else
      List.concat_map
        (fun n ->
          let kind = Net.Topology.Fat_tree { rack = 4 } in
          let diam = diameter_of kind n in
          List.map
            (fun (alabel, algo) ->
              mk_row ~n ~tlabel:"fattree" ~kind ~diam ~clabel:"reliable"
                ~chan:Net.Topology.Reliable ~alabel ~algo
                ~horizon:(ms 2_000))
            algos)
        [ 64; 256 ]
  in
  let results = on ~obs pool (sweep_rows @ scale_rows) in
  Table.print
    ~title:
      "E13: topology x channel class x algorithm (routed graphs, tight \
       config, diameter-scaled victim blocks, same seeds as E12; 'msgs' \
       counts sends, each crossing up to 'diam' links; n>=64 fattree \
       full-mode only, fixed 2 s horizon, throughput not stabilization) \
       [DESIGN.md 17]"
    ~header:
      (obs_header obs
         [
           "n"; "topo"; "diam"; "chan"; "algo"; "stabilized"; "stab_round";
           "leader"; "=center"; "msgs"; "msgs/round";
         ])
    results

let all =
  [
    ("e1", "Theorem 1: rotating star stabilization vs n", e1);
    ("e2", "Theorem 2: intermittent star, gap bound D sweep", e2);
    ("e3", "Theorem 4/Lemma 8: bounded variables", e3);
    ("e4", "Section 3: regimes x algorithms matrix", e4);
    ("e5", "Sections 1.3/8: message and state cost vs n", e5);
    ("e6", "Theorem 5: consensus and atomic broadcast", e6);
    ("e7", "Section 7: growing timeliness bounds", e7);
    ("e8", "Section 1.1: crash of the leader, re-election", e8);
    ("e9", "Fault plans: partition and crash-recovery of the center", e9);
    ("e10", "Fault plans: adaptive leader-chasing adversary", e10);
    ("e11", "Scaling in n: large-cluster throughput tier", e11);
    ("e12", "Message complexity: gossip vs communication-efficient relay", e12);
    ("e13", "Topologies: routed graphs x channel classes x algorithms", e13);
  ]
