(* A fixed-size domain pool with a mutex-protected task queue.

   Determinism argument: [run] stores each task's result at the task's
   submission index and re-raises the first (by index) exception, so the
   observable outcome is a pure function of the thunks — scheduling decides
   only wall-clock time. *)

type task = unit -> unit

type t = {
  jobs : int;
  m : Mutex.t;
  wake : Condition.t;  (* signalled when [pending] grows or [stop] is set *)
  pending : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;  (* spawned lazily by the first run *)
  mutable spawned : bool;
}

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  {
    jobs;
    m = Mutex.create ();
    wake = Condition.create ();
    pending = Queue.create ();
    stop = false;
    workers = [];
    spawned = false;
  }

let jobs t = t.jobs
let sequential = create ~jobs:1 ()

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.pending && not t.stop do
    Condition.wait t.wake t.m
  done;
  if Queue.is_empty t.pending then Mutex.unlock t.m (* stop *)
  else begin
    let task = Queue.pop t.pending in
    Mutex.unlock t.m;
    task ();
    worker_loop t
  end

(* Workers are spawned on first use so that merely creating a pool (or the
   [sequential] constant at module init) costs nothing. *)
let ensure_workers t =
  if not t.spawned then begin
    t.spawned <- true;
    t.workers <-
      List.init (t.jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.m;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let run (type a) t (thunks : (unit -> a) array) : a array =
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  let n = Array.length thunks in
  if n = 0 then [||]
  else if t.jobs = 1 then Array.map (fun f -> f ()) thunks
  else begin
    ensure_workers t;
    let results : (a, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let remaining = ref n in
    let finished = Condition.create () in
    let task i () =
      let r =
        match thunks.(i) () with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.m;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast finished;
      Mutex.unlock t.m
    in
    Mutex.lock t.m;
    for i = 0 to n - 1 do
      Queue.push (task i) t.pending
    done;
    Condition.broadcast t.wake;
    Mutex.unlock t.m;
    (* The submitter drains the queue alongside the workers. It may execute
       tasks from a concurrent (nested) batch — harmless, they are
       independent — and only sleeps once nothing is left to pull. *)
    let rec help () =
      Mutex.lock t.m;
      match Queue.pop t.pending with
      | task ->
          Mutex.unlock t.m;
          task ();
          help ()
      | exception Queue.Empty ->
          while !remaining > 0 do
            Condition.wait finished t.m
          done;
          Mutex.unlock t.m
    in
    help ();
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map t f xs = Array.to_list (run t (Array.of_list (List.map (fun x () -> f x) xs)))

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
