(** Deterministic fan-out of independent tasks over OCaml 5 domains.

    The pool exists for one workload shape: many seed-deterministic
    simulation runs that share no mutable state. Tasks are submitted as a
    batch and their results are returned {e in submission order}, so a
    program that computes values on the pool and only then renders them is
    byte-identical to its sequential counterpart — which domain evaluated a
    task is unobservable.

    Worker domains are fixed at creation (no work stealing, no dynamic
    resizing). Task→domain assignment is dynamic (workers pull from a shared
    queue under a mutex), which is safe precisely because tasks must be
    independent: a task must not touch mutable state reachable from another
    task, and in this codebase it must own its whole simulation stack
    (engine, RNG streams, event queue). In-run parallelism remains
    forbidden; see DESIGN.md "Parallel execution".

    The submitting domain participates in draining the queue, so a pool
    created with [jobs:1] spawns no domains at all and [run] degenerates to
    a plain sequential [Array.map] — the path used to prove byte-identical
    output. This also makes nested [run] calls on the same pool
    deadlock-free: a waiting submitter only blocks once the queue is empty,
    hence only while other tasks are actually executing. *)

type t

(** [create ~jobs ()] is a pool that evaluates up to [jobs] tasks
    concurrently: the submitter plus [jobs - 1] worker domains. Raises
    [Invalid_argument] if [jobs < 1]. *)
val create : jobs:int -> unit -> t

(** Concurrency of the pool, as passed to {!create}. *)
val jobs : t -> int

(** A pool that evaluates everything in the submitting domain. *)
val sequential : t

(** [run pool thunks] evaluates every thunk and returns their results in
    submission order. If a thunk raises, the first such exception (again in
    submission order) is re-raised in the submitter after all tasks have
    finished, so no domain is left running a stale task. *)
val run : t -> (unit -> 'a) array -> 'a array

(** [map pool f xs] is [run] over [fun () -> f x], keeping list order. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Stop the worker domains and join them. Idempotent. Calling [run] after
    [shutdown] raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f pool] and shuts the pool down afterwards,
    exceptions included. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
