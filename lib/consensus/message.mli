(** Messages of the Ω-based indulgent consensus (ballot protocol).

    Ballots are globally unique and totally ordered:
    [ballot = attempt * n + proposer_id]. *)

type pid = int

type 'v t =
  | Prepare of { ballot : int }
      (** phase 1a: a self-believed leader claims the ballot *)
  | Promise of { ballot : int; accepted : (int * 'v) option }
      (** phase 1b: acceptor joins; reports its latest accepted pair *)
  | Accept of { ballot : int; value : 'v }
      (** phase 2a: proposer asks acceptance of the safe value *)
  | Accepted of { ballot : int; value : 'v }
      (** phase 2b: acceptor accepted (sent back to the proposer) *)
  | Nack of { ballot : int; promised : int }
      (** the acceptor has promised a higher ballot *)
  | Decide of { value : 'v }
      (** decision propagation (each process relays it once) *)

val ballot_of : 'v t -> int

(** Observability classifier for {!Net.Spec.with_classify}: kind
    ["prepare"]/["promise"]/…, no assumption round, sizes under the same
    nominal binary encoding as {!Omega.Message.wire_size} (the polymorphic
    value counted as 4 bytes). *)
val info : 'v t -> Obs.Event.msg_info
val pp : (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit
