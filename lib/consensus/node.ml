type pid = int

type phase = Idle | Preparing | Accepting

type 'v transport = {
  engine : Sim.Engine.t;
  n : int;
  send : dst:pid -> 'v Message.t -> unit;
  halted : unit -> bool;
}

let network_transport net ~me =
  {
    engine = Net.Network.engine net;
    n = Net.Network.n net;
    send = (fun ~dst msg -> Net.Network.send net ~src:me ~dst msg);
    halted = (fun () -> Net.Network.is_crashed net me);
  }

type 'v t = {
  tr : 'v transport;
  rng : Dstruct.Rng.t;
  me : pid;
  leader_oracle : unit -> pid;
  retry_every : Sim.Time.t;
  quorum : int;
  n : int;
  (* acceptor state *)
  mutable promised : int;
  mutable accepted : (int * 'v) option;
  (* proposer state *)
  mutable proposal : 'v option;
  mutable phase : phase;
  mutable ballot : int;  (* ballot being driven when phase <> Idle *)
  mutable attempt : int;  (* next attempt number *)
  promise_from : Dstruct.Bitset.t;
  accepted_from : Dstruct.Bitset.t;
  mutable best_promise : (int * 'v) option;  (* highest accepted among promises *)
  mutable accept_value : 'v option;
  mutable progressed : bool;  (* progress since the last retry check *)
  (* learner state *)
  mutable decided : 'v option;
  mutable decided_at : Sim.Time.t option;
  mutable ballots_started : int;
}

let halted t = t.tr.halted ()

let broadcast_all t msg =
  (* Including self: the proposer is also an acceptor, and routing the self
     copy through the transport keeps the protocol uniform. *)
  for dst = 0 to t.n - 1 do
    t.tr.send ~dst msg
  done

let clear_ballot_state t =
  Dstruct.Bitset.clear t.promise_from;
  Dstruct.Bitset.clear t.accepted_from;
  t.best_promise <- None;
  t.accept_value <- None

let emit_ballot_event t make =
  let sink = Sim.Engine.sink t.tr.engine in
  if Obs.Sink.wants sink Obs.Event.c_consensus then
    Obs.Sink.emit sink
      (make (Sim.Time.to_us (Sim.Engine.now t.tr.engine)))

let start_ballot t =
  if Option.is_none t.decided && Option.is_some t.proposal then begin
    t.ballot <- (t.attempt * t.n) + t.me;
    t.attempt <- t.attempt + 1;
    t.ballots_started <- t.ballots_started + 1;
    t.phase <- Preparing;
    clear_ballot_state t;
    emit_ballot_event t (fun now ->
        Obs.Event.Ballot_open { now; pid = t.me; ballot = t.ballot });
    broadcast_all t (Message.Prepare { ballot = t.ballot })
  end

let decide t v =
  if Option.is_none t.decided then begin
    t.decided <- Some v;
    t.decided_at <- Some (Sim.Engine.now t.tr.engine);
    t.phase <- Idle;
    emit_ballot_event t (fun now ->
        Obs.Event.Decided { now; pid = t.me; ballot = t.ballot });
    (* Relay exactly once: with [n - t] correct processes and reliable links,
       one relay per process floods the decision to every correct process
       even if the original proposer crashes mid-broadcast. *)
    broadcast_all t (Message.Decide { value = v })
  end

let on_prepare t ~src ballot =
  if ballot > t.promised then begin
    t.promised <- ballot;
    t.tr.send ~dst:src (Message.Promise { ballot; accepted = t.accepted })
  end
  else t.tr.send ~dst:src (Message.Nack { ballot; promised = t.promised })

let on_promise t ~src ballot accepted =
  if t.phase = Preparing && ballot = t.ballot then begin
    t.progressed <- true;
    Dstruct.Bitset.add t.promise_from src;
    (match accepted with
    | Some (b, _) -> (
        match t.best_promise with
        | Some (b', _) when b' >= b -> ()
        | Some _ | None -> t.best_promise <- accepted)
    | None -> ());
    if Dstruct.Bitset.cardinal t.promise_from >= t.quorum then begin
      (* The classic safety core: adopt the highest accepted value from the
         promise quorum, else this proposer's own initial value. *)
      let value =
        match t.best_promise with
        | Some (_, v) -> v
        | None -> Option.get t.proposal
      in
      t.phase <- Accepting;
      t.accept_value <- Some value;
      broadcast_all t (Message.Accept { ballot = t.ballot; value })
    end
  end

let on_accept t ~src ballot value =
  if ballot >= t.promised then begin
    t.promised <- ballot;
    t.accepted <- Some (ballot, value);
    t.tr.send ~dst:src (Message.Accepted { ballot; value })
  end
  else t.tr.send ~dst:src (Message.Nack { ballot; promised = t.promised })

let on_accepted t ~src ballot value =
  if t.phase = Accepting && ballot = t.ballot then begin
    t.progressed <- true;
    Dstruct.Bitset.add t.accepted_from src;
    if Dstruct.Bitset.cardinal t.accepted_from >= t.quorum then decide t value
  end

let on_nack t ballot promised =
  if t.phase <> Idle && ballot = t.ballot then begin
    t.phase <- Idle;
    (* Jump past the competing ballot so the next attempt can win. *)
    t.attempt <- max t.attempt ((promised / t.n) + 1)
  end

let on_decide t value =
  if Option.is_none t.decided then begin
    t.decided <- Some value;
    t.decided_at <- Some (Sim.Engine.now t.tr.engine);
    t.phase <- Idle;
    (* [ballot = -1]: the deciding ballot is unknown to a learner. *)
    emit_ballot_event t (fun now ->
        Obs.Event.Decided { now; pid = t.me; ballot = -1 });
    broadcast_all t (Message.Decide { value })
  end

let on_message t ~src msg =
  if not (halted t) then
    match msg with
    | Message.Prepare { ballot } -> on_prepare t ~src ballot
    | Message.Promise { ballot; accepted } -> on_promise t ~src ballot accepted
    | Message.Accept { ballot; value } -> on_accept t ~src ballot value
    | Message.Accepted { ballot; value } -> on_accepted t ~src ballot value
    | Message.Nack { ballot; promised } -> on_nack t ballot promised
    | Message.Decide { value } -> on_decide t value

(* Liveness driver: if the oracle elects me and the current ballot made no
   progress since the last check, claim a fresh one. Before Ω stabilizes
   several processes may duel; afterwards only the true leader retries. *)
let rec retry_task t =
  if not (halted t) then begin
    if
      Option.is_none t.decided
      && Option.is_some t.proposal
      && t.leader_oracle () = t.me
      && ((not t.progressed) || t.phase = Idle)
    then start_ballot t;
    t.progressed <- false;
    let period_us = Sim.Time.to_us t.retry_every in
    let period =
      period_us + Dstruct.Rng.int t.rng (max 1 (period_us / 2))
    in
    Sim.Engine.call_after t.tr.engine (Sim.Time.of_us period) retry_task t
  end

let create (tr : 'v transport) ~me ~leader_oracle ~retry_every ~crash_bound =
  let n = tr.n in
  if 2 * crash_bound >= n then
    invalid_arg "Consensus.Node.create: needs a majority of correct processes";
  let t =
    {
      tr;
      rng = Dstruct.Rng.split (Sim.Engine.rng tr.engine);
      me;
      leader_oracle;
      retry_every;
      quorum = n - crash_bound;
      n;
      promised = -1;
      accepted = None;
      proposal = None;
      phase = Idle;
      ballot = -1;
      attempt = 0;
      promise_from = Dstruct.Bitset.create n;
      accepted_from = Dstruct.Bitset.create n;
      best_promise = None;
      accept_value = None;
      progressed = false;
      decided = None;
      decided_at = None;
      ballots_started = 0;
    }
  in
  t

let handle t ~src msg = on_message t ~src msg

let start t =
  let offset = Dstruct.Rng.int t.rng (max 1 (Sim.Time.to_us t.retry_every)) in
  Sim.Engine.call_after t.tr.engine (Sim.Time.of_us offset) retry_task t

let propose t v = if Option.is_none t.proposal then t.proposal <- Some v

let decision t = t.decided
let decided_at t = t.decided_at
let ballots_started t = t.ballots_started
