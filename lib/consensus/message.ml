type pid = int

type 'v t =
  | Prepare of { ballot : int }
  | Promise of { ballot : int; accepted : (int * 'v) option }
  | Accept of { ballot : int; value : 'v }
  | Accepted of { ballot : int; value : 'v }
  | Nack of { ballot : int; promised : int }
  | Decide of { value : 'v }

let ballot_of = function
  | Prepare { ballot }
  | Promise { ballot; _ }
  | Accept { ballot; _ }
  | Accepted { ballot; _ }
  | Nack { ballot; _ } -> ballot
  | Decide _ -> -1

(* Observability classifier. Sizes assume the same simple binary encoding as
   {!Omega.Message.wire_size} (1-byte tag, 4-byte ints) with a nominal
   4-byte value — the payload type is polymorphic, so its true size is
   unknowable here. *)
let info = function
  | Prepare _ -> { Obs.Event.kind = "prepare"; round = -1; bytes = 5 }
  | Promise { accepted = None; _ } ->
      { Obs.Event.kind = "promise"; round = -1; bytes = 6 }
  | Promise { accepted = Some _; _ } ->
      { Obs.Event.kind = "promise"; round = -1; bytes = 14 }
  | Accept _ -> { Obs.Event.kind = "accept"; round = -1; bytes = 9 }
  | Accepted _ -> { Obs.Event.kind = "accepted"; round = -1; bytes = 9 }
  | Nack _ -> { Obs.Event.kind = "nack"; round = -1; bytes = 9 }
  | Decide _ -> { Obs.Event.kind = "decide"; round = -1; bytes = 5 }

let pp pp_v ppf = function
  | Prepare { ballot } -> Format.fprintf ppf "PREPARE(%d)" ballot
  | Promise { ballot; accepted = None } ->
      Format.fprintf ppf "PROMISE(%d, none)" ballot
  | Promise { ballot; accepted = Some (b, v) } ->
      Format.fprintf ppf "PROMISE(%d, %d:%a)" ballot b pp_v v
  | Accept { ballot; value } ->
      Format.fprintf ppf "ACCEPT(%d, %a)" ballot pp_v value
  | Accepted { ballot; value } ->
      Format.fprintf ppf "ACCEPTED(%d, %a)" ballot pp_v value
  | Nack { ballot; promised } ->
      Format.fprintf ppf "NACK(%d, promised=%d)" ballot promised
  | Decide { value } -> Format.fprintf ppf "DECIDE(%a)" pp_v value
