type pid = int

type 'v msg =
  | Cons of { instance : int; m : 'v list Message.t }
  | Forward of { cmd : 'v }

type 'v t = {
  net : 'v msg Net.Network.t;
  engine : Sim.Engine.t;
  rng : Dstruct.Rng.t;
  me : pid;
  oracle : unit -> pid;
  retry_every : Sim.Time.t;
  crash_bound : int;
  equal : 'v -> 'v -> bool;
  instances : (int, 'v list Node.t) Hashtbl.t;
  mutable submitted : 'v list;  (* my own commands (newest first) *)
  mutable pending : 'v list;  (* commands I am responsible for sequencing *)
  mutable delivered_rev : 'v list;
  mutable next_deliver : int;  (* lowest undelivered instance *)
  mutable proposed_upto : int;  (* instances this node has proposed to *)
}

let halted t = Net.Network.is_crashed t.net t.me

let mem t cmd xs = List.exists (t.equal cmd) xs

let is_delivered t cmd = mem t cmd t.delivered_rev

(* Lazily materialize the consensus node of an instance, its messages tagged
   with the instance id and demultiplexed by [on_message]. *)
let instance t k =
  match Hashtbl.find_opt t.instances k with
  | Some node -> node
  | None ->
      let transport =
        {
          Node.engine = t.engine;
          n = Net.Network.n t.net;
          send =
            (fun ~dst m ->
              Net.Network.send t.net ~src:t.me ~dst (Cons { instance = k; m }));
          halted = (fun () -> halted t);
        }
      in
      let node =
        Node.create transport ~me:t.me ~leader_oracle:t.oracle
          ~retry_every:t.retry_every ~crash_bound:t.crash_bound
      in
      Hashtbl.add t.instances k node;
      Node.start node;
      node

(* Deliver decided instances strictly in order, de-duplicating commands
   decided by more than one instance (a command can be re-proposed after a
   lost batch). *)
let advance_delivery t =
  let rec step () =
    match Hashtbl.find_opt t.instances t.next_deliver with
    | Some node -> (
        match Node.decision node with
        | Some batch ->
            List.iter
              (fun cmd ->
                if not (is_delivered t cmd) then
                  t.delivered_rev <- cmd :: t.delivered_rev)
              batch;
            t.pending <-
              List.filter (fun cmd -> not (is_delivered t cmd)) t.pending;
            t.next_deliver <- t.next_deliver + 1;
            step ()
        | None -> ())
    | None -> ()
  in
  step ()

let on_forward t cmd =
  if not (is_delivered t cmd || mem t cmd t.pending) then
    t.pending <- t.pending @ [ cmd ]

let on_message t ~src msg =
  if not (halted t) then begin
    (match msg with
    | Cons { instance = k; m } -> Node.handle (instance t k) ~src m
    | Forward { cmd } -> on_forward t cmd);
    advance_delivery t
  end

(* Periodic driver: re-forward my undelivered commands to the current
   leader, and, if I believe I am the leader, propose my pending batch to
   the lowest instance I have not proposed to yet. *)
let rec driver t =
  if not (halted t) then begin
    advance_delivery t;
    let leader = t.oracle () in
    List.iter
      (fun cmd ->
        if not (is_delivered t cmd) then begin
          if leader = t.me then on_forward t cmd
          else Net.Network.send t.net ~src:t.me ~dst:leader (Forward { cmd })
        end)
      (List.rev t.submitted);
    if leader = t.me then begin
      let batch =
        List.filter (fun cmd -> not (is_delivered t cmd)) t.pending
      in
      if batch <> [] && t.proposed_upto <= t.next_deliver then begin
        let k = max t.next_deliver t.proposed_upto in
        Node.propose (instance t k) batch;
        t.proposed_upto <- k + 1
      end
    end;
    let period_us = Sim.Time.to_us t.retry_every in
    let period = period_us + Dstruct.Rng.int t.rng (max 1 (period_us / 2)) in
    Sim.Engine.call_after t.engine (Sim.Time.of_us period) driver t
  end

let create net ~me ~oracle ~retry_every ~crash_bound ~equal =
  let t =
    {
      net;
      engine = Net.Network.engine net;
      rng = Dstruct.Rng.split (Sim.Engine.rng (Net.Network.engine net));
      me;
      oracle;
      retry_every;
      crash_bound;
      equal;
      instances = Hashtbl.create 16;
      submitted = [];
      pending = [];
      delivered_rev = [];
      next_deliver = 0;
      proposed_upto = 0;
    }
  in
  Net.Network.set_handler net me (fun ~src msg -> on_message t ~src msg);
  t

let start t =
  let offset = Dstruct.Rng.int t.rng (max 1 (Sim.Time.to_us t.retry_every)) in
  Sim.Engine.call_after t.engine (Sim.Time.of_us offset) driver t

let submit t cmd =
  if not (mem t cmd t.submitted) then t.submitted <- cmd :: t.submitted

let delivered t = List.rev t.delivered_rev

let instances_decided t =
  Hashtbl.fold
    (fun _ node acc -> if Option.is_some (Node.decision node) then acc + 1 else acc)
    t.instances 0
