type pid = int

type t = {
  nodes : Node.t array;
  net : Message.t Net.Network.t;
  engine : Sim.Engine.t;
}

let create cfg net =
  let n = Net.Network.n net in
  (* One struct-of-arrays store for the whole cluster: every node's hot row
     lives in the same flat arrays (DESIGN.md §14). *)
  let store = Store.create ~n in
  let nodes = Array.init n (fun me -> Node.create ~store cfg net ~me) in
  { nodes; net; engine = Net.Network.engine net }

let start t = Array.iter Node.start t.nodes
let node t i = t.nodes.(i)
let net t = t.net
let engine t = t.engine
let n t = Array.length t.nodes

let crash_at t p time =
  ignore
    (Sim.Engine.schedule_at t.engine time (fun () ->
         Net.Network.crash t.net p))

let recover t p =
  Net.Network.recover t.net p;
  Node.recover t.nodes.(p)

let recover_at t p time =
  ignore (Sim.Engine.schedule_at t.engine time (fun () -> recover t p))

let leaders t =
  List.map
    (fun p -> (p, Node.leader t.nodes.(p)))
    (Net.Network.correct t.net)

let agreed_leader t =
  match leaders t with
  | [] -> None
  | (_, l) :: rest ->
      if
        List.for_all (fun (_, l') -> l' = l) rest
        && not (Net.Network.is_crashed t.net l)
      then Some l
      else None
