type pid = int

type t = {
  nodes : Node.t array;
  net : Message.t Net.Network.t;
  engine : Sim.Engine.t;
}

let create cfg net =
  let n = Net.Network.n net in
  (* One struct-of-arrays store for the whole cluster: every node's hot row
     lives in the same flat arrays (DESIGN.md §14). *)
  let store = Store.create ~n in
  let nodes = Array.init n (fun me -> Node.create ~store cfg net ~me) in
  { nodes; net; engine = Net.Network.engine net }

(* [owned] filters which nodes start — a sharded replica builds all [n]
   nodes (construction splits each node's RNG off the engine stream, so
   building the full set keeps replicas' streams aligned) but runs only
   its own. Each start stamps events under the node's own rank, so
   starting a subset in pid order draws exactly the sequential keys. *)
let start ?owned t =
  match owned with
  | None -> Array.iter Node.start t.nodes
  | Some mine ->
      Array.iteri (fun i nd -> if mine i then Node.start nd) t.nodes
let node t i = t.nodes.(i)
let net t = t.net
let engine t = t.engine
let n t = Array.length t.nodes

let crash_at t p time =
  ignore
    (Sim.Engine.schedule_at t.engine time (fun () ->
         Net.Network.crash t.net p))

let recover t p =
  Net.Network.recover t.net p;
  Node.recover t.nodes.(p)

let recover_at t p time =
  ignore (Sim.Engine.schedule_at t.engine time (fun () -> recover t p))

let leaders t =
  List.map
    (fun p -> (p, Node.leader t.nodes.(p)))
    (Net.Network.correct t.net)

let iface t : Iface.t =
  let nd i = t.nodes.(i) in
  {
    Iface.config = Node.config (nd 0);
    net = t.net;
    start = (fun () -> Array.iter Node.start t.nodes);
    leader_of = (fun p -> Node.leader (nd p));
    recover =
      (fun p ->
        Net.Network.recover t.net p;
        Node.recover (nd p));
    resync = (fun p -> Node.resync (nd p));
    sending_round = (fun p -> Node.sending_round (nd p));
    receiving_round = (fun p -> Node.receiving_round (nd p));
    susp_level_get = (fun p k -> Node.susp_level_get (nd p) k);
    max_susp_level_seen = (fun p -> Node.max_susp_level_seen (nd p));
    max_timeout_armed = (fun p -> Node.max_timeout_armed (nd p));
    lattice_invariant_holds = (fun p -> Node.lattice_invariant_holds (nd p));
    round_state_cardinal = (fun p -> Node.round_state_cardinal (nd p));
  }

let agreed_leader t =
  match leaders t with
  | [] -> None
  | (_, l) :: rest ->
      if
        List.for_all (fun (_, l') -> l' = l) rest
        && not (Net.Network.is_crashed t.net l)
      then Some l
      else None
