type t = {
  n : int;
  susp : int array;  (* n rows of n ints; process p's row starts at p * n *)
  cached_max : int array;  (* per process: exact max of its row *)
  cached_min : int array;  (* per process: min of its row, maybe stale *)
  min_stale : bool array;  (* per process: must the min be recomputed? *)
}

let create ~n =
  if n <= 0 then invalid_arg "Store.create: n must be positive";
  {
    n;
    susp = Array.make (n * n) 0;
    cached_max = Array.make n 0;
    cached_min = Array.make n 0;
    min_stale = Array.make n false;
  }

let n t = t.n
