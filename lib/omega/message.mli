(** Messages of the leader algorithms (Figures 1-3 of the paper).

    Only two message kinds exist. The assumption [A] constrains ALIVE
    messages exclusively; SUSPICION messages are entirely asynchronous.
    Except for the round number, every field has a finite domain — the
    property §6 of the paper establishes and experiment E5 measures. *)

type pid = int

type t =
  | Alive of { rn : int; susp_level : int array }
      (** Heartbeat of sending round [rn], gossiping the sender's whole
          suspicion-level array (line 3). *)
  | Suspicion of { rn : int; suspects : pid list }
      (** "These processes never completed receiving round [rn] for me"
          (line 10). *)

(** Round number carried by a message. *)
val round : t -> int

val is_alive : t -> bool

(** Serialized size in bytes under a simple binary encoding (4-byte ints,
    1-byte tag); used by experiment E5 for cost accounting. *)
val wire_size : t -> int

(** Classifier for {!Net.Network.create}: kind ["alive"]/["susp"],
    [round = rn] for ALIVE only (the checker's convention, matching
    {!Scenarios.Scenario.round_of_omega}), [bytes = wire_size]. *)
val info : t -> Obs.Event.msg_info

val pp : Format.formatter -> t -> unit
