(** Messages of the leader algorithms.

    The Figure-1/2/3 family uses two kinds: the assumption [A] constrains
    ALIVE messages exclusively, SUSPICION messages are entirely
    asynchronous. Except for the round number, every field has a finite
    domain — the property §6 of the paper establishes and experiment E5
    measures.

    The communication-efficient variant ({!Lean}, DESIGN.md §15) adds
    three kinds: point-to-point HEARTBEATs to the current relay, the
    relay's aggregated AGGREGATE broadcast, and ACCUSE broadcasts against
    a silent relay. HEARTBEAT and AGGREGATE carry the sender's heartbeat
    round and are the messages the adversary's round-tagged delay policies
    apply to ({!Scenarios.Scenario.round_rn_of_omega}); ACCUSE is
    asynchronous control traffic like SUSPICION. *)

type pid = int

type t =
  | Alive of { rn : int; susp_level : int array }
      (** Heartbeat of sending round [rn], gossiping the sender's whole
          suspicion-level array (line 3). *)
  | Suspicion of { rn : int; suspects : pid list }
      (** "These processes never completed receiving round [rn] for me"
          (line 10). *)
  | Heartbeat of { rn : int }
      (** Lean variant: "I am alive at heartbeat round [rn]", sent only to
          the sender's current relay (leader estimate). *)
  | Aggregate of { rn : int; levels : int array }
      (** Lean variant: the relay's aggregated suspicion-level vector,
          broadcast once per heartbeat round — the interned copy-on-write
          payload discipline of ALIVE applies. *)
  | Accuse of { rn : int; target : pid; level : int }
      (** Lean variant: "relay [target] went silent on me; my level for it
          is now [level]" — how suspicion of a failed relay spreads when
          there is no relay to aggregate it. *)

(** Round number carried by a message. *)
val round : t -> int

val is_alive : t -> bool

(** Serialized size in bytes under a simple binary encoding (4-byte ints,
    1-byte tag); used by experiment E5 for cost accounting. *)
val wire_size : t -> int

(** Classifier for {!Net.Spec.with_classify}: kind
    ["alive"]/["susp"]/["hb"]/["agg"]/["accuse"], [round = rn] for ALIVE
    only (the checker's convention, matching
    {!Scenarios.Scenario.round_of_omega}), [bytes = wire_size]. *)
val info : t -> Obs.Event.msg_info

val pp : Format.formatter -> t -> unit
