(** Convenience wiring of [n] {!Node}s over one network — what examples,
    tests and the harness instantiate. *)

type pid = int

type t

(** [create cfg net] builds one node per process id of [net]. *)
val create : Config.t -> Message.t Net.Network.t -> t

(** [start t] starts every node; [start ~owned t] only those with
    [owned i = true] — the intra-run parallel driver builds a full
    cluster per shard replica (construction keeps RNG streams aligned)
    but runs only the shard's own processes (DESIGN.md §18). *)
val start : ?owned:(pid -> bool) -> t -> unit

val node : t -> pid -> Node.t
val net : t -> Message.t Net.Network.t
val engine : t -> Sim.Engine.t
val n : t -> int

(** [crash_at t p time] schedules a crash of process [p]. *)
val crash_at : t -> pid -> Sim.Time.t -> unit

(** [recover t p] rejoins crashed process [p] immediately: un-crashes the
    network endpoint, then restarts the node with its persisted state
    ({!Node.recover}). *)
val recover : t -> pid -> unit

(** [recover_at t p time] schedules a {!recover}. *)
val recover_at : t -> pid -> Sim.Time.t -> unit

(** The algorithm-agnostic surface consumed by {!Harness.Run} and
    {!Fault.Injector} (DESIGN.md §15). Construction draws no randomness
    and schedules nothing. *)
val iface : t -> Iface.t

(** Current [leader ()] output of every non-crashed process. *)
val leaders : t -> (pid * pid) list

(** [Some l] iff every non-crashed process currently outputs the same leader
    [l] and [l] has not crashed — the "good period" condition of §1.1. *)
val agreed_leader : t -> pid option
