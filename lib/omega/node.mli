(** One process of the leader algorithm (Figures 1, 2, 3 and the [A_{f,g}]
    variant of §7), driven by the discrete-event engine.

    Line-by-line mapping to Figure 3 of the paper (the supersets Figure 1 and
    Figure 2 are obtained by disabling the [*] / [**] conditions through
    {!Config.variant}):

    - init: [rec_from.(rn) = {i}] for every rn (the round store's default),
      [suspicions.(rn).(j) = 0], [s_rn = 0], [r_rn = 1], timer armed.
    - lines 1-3 (task T1): every at-most-[beta] units, [s_rn <- s_rn + 1] and
      broadcast [ALIVE (s_rn, susp_level)] to every other process.
    - lines 4-7: on [ALIVE (rn, sl)], merge [sl] into [susp_level] by
      pointwise max; if [rn >= r_rn], add the sender to [rec_from.(rn)].
    - lines 8-12: when the timer has expired {e and} [|rec_from.(r_rn)| >=
      alpha]: broadcast [SUSPICION (r_rn, Pi \ rec_from.(r_rn))] to every
      process (itself included — line 10 has no [j <> i] filter, unlike
      line 3), re-arm the timer from [max_j susp_level.(j)], and move to
      receiving round [r_rn + 1].
    - lines 13-18: on [SUSPICION (rn, suspects)], for each [k] in [suspects]
      increment [suspicions.(rn).(k)]; raise [susp_level.(k)] by one iff
      [suspicions.(rn).(k) >= alpha] {e and} (line [*], Figures 2-3) every
      [x] in [[rn - susp_level.(k) - f rn, rn]] already reached [alpha]
      {e and} (line [**], Figure 3) [susp_level.(k)] is currently minimal.
    - lines 19-21: [leader ()] is the lexicographically least
      [(susp_level.(j), j)].

    Unbounded round-indexed state is pruned once out of reach; see
    DESIGN.md §2 and {!Dstruct.Rounds}. *)

type pid = int

(** How the node reaches its peers. Decoupled from {!Net.Network} so the
    algorithm also runs over the fair-lossy + retransmission stack of the
    paper's footnote 2 ({!Net.Retransmit}). *)
type transport = {
  engine : Sim.Engine.t;
  n : int;
  send : dst:pid -> Message.t -> unit;
  halted : unit -> bool;  (** has this process crashed? *)
}

type t

(** [create cfg net ~me] allocates the node and registers its receive handler
    on [net]. Call {!start} to begin the sending task and arm the timer.
    [?store] is the cluster-shared struct-of-arrays backing for the hot
    per-node state ({!Store}); omitted, the node allocates a private one.
    Network-backed nodes broadcast through {!Net.Network.broadcast} /
    {!Net.Network.broadcast_all} (batched wheel fan-out). *)
val create : ?store:Store.t -> Config.t -> Message.t Net.Network.t -> me:pid -> t

(** [create_with_transport cfg tr ~me] is {!create} over an arbitrary
    transport; the caller must route incoming messages to {!handle}.
    Broadcasts fall back to a per-destination [tr.send] loop. *)
val create_with_transport :
  ?store:Store.t -> Config.t -> transport -> me:pid -> t

(** The direct transport {!create} uses. *)
val network_transport : Message.t Net.Network.t -> me:pid -> transport

(** Deliver an incoming message (only needed with
    {!create_with_transport}). *)
val handle : t -> src:pid -> Message.t -> unit

(** Schedules the first ALIVE broadcast and arms the initial timer. *)
val start : t -> unit

(** [recover t] rejoins a crashed process with its persisted state (the
    paper's crash–recovery discussion, §1.3): [susp_level], sending round
    and suspicion history all survive untouched. Two recovery rules keep the
    algorithm live: (1) the stale receiving round can never close again
    (line 8 needs [alpha] ALIVEs tagged with it, and the correct processes
    have moved on), so the node re-seats [r_rn] at the first live round an
    incoming ALIVE exhibits; (2) the previous incarnation's sending task is
    retired by an epoch counter, so a pre-crash pending event cannot
    duplicate the loop this call restarts. The caller must un-crash the
    transport first ({!Net.Network.recover}); see {!Cluster.recover}. *)
val recover : t -> unit

(** [resync t] applies recovery rule (1) alone — re-seat the receiving round
    at the next live round an incoming ALIVE exhibits — to a process that
    never crashed. A partition survivor needs it: ALIVEs tagged with rounds
    sent while its links were cut are gone for good, so once its (buffered)
    receiving round reaches that gap, line 8's quorum is unreachable forever.
    The fault injector calls this on heal for every process whose group was
    too small to retain an [alpha]-quorum; plan-free runs never reach it. *)
val resync : t -> unit

(** Line 19-21: the current leader estimate. *)
val leader : t -> pid

val me : t -> pid
val config : t -> Config.t

(** {2 Introspection (observers used by tests and experiments)} *)

(** Copy of the suspicion-level array (Θ(n) — test/debug use). *)
val susp_level : t -> int array

(** [susp_level_get t k] is [susp_level.(k)] without the copy: the O(1)
    read-only view samplers and checkers should take every verification
    step. *)
val susp_level_get : t -> pid -> int

(** Current sending round. *)
val sending_round : t -> int

(** Current receiving round. *)
val receiving_round : t -> int

(** Duration the timer was last armed with (initially
    [cfg.initial_timeout]). *)
val current_timeout : t -> Sim.Time.t

(** Largest timeout armed so far. *)
val max_timeout_armed : t -> Sim.Time.t

(** Largest value ever held by any [susp_level] entry. *)
val max_susp_level_seen : t -> int

(** Number of times line 17 executed ([susp_level] increments other than
    gossip merges). *)
val local_increments : t -> int

(** Lemma 8 invariant for Figure 3: [max susp_level - min susp_level <= 1].
    Always true for Fig3/Fig3_fg; meaningless (often false) for Fig1/Fig2. *)
val lattice_invariant_holds : t -> bool

(** Live entries in the round-indexed stores (bounded iff pruning works).
    This is the {e logical} count: the collapsed-full prefix (DESIGN.md
    §16) is counted as if its rounds were still present, so the number
    measures the algorithm's window, not the representation. *)
val round_state_cardinal : t -> int

(** Table entries {e physically} retained — the collapsed-full prefix
    excluded. Under the default config the sending frontier outruns the
    receiving round without bound; in a timely run the buffered rounds
    are all fully received and collapse, so this stays O(jitter spread)
    over arbitrarily long runs while {!round_state_cardinal} reports the
    frontier gap. The memory regression test pins it. *)
val retained_round_entries : t -> int
