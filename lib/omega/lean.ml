type pid = int

(* Communication-efficient Ω (DESIGN.md §15), after the packet-efficient
   relay construction of Bramas, Dubois, Guerraoui & Tixeuil: instead of
   every process gossiping its whole suspicion vector to everyone (Θ(n²)
   messages per round), each process sends one point-to-point HEARTBEAT per
   round to the process it currently trusts (its leader estimate, the
   "relay"), and only the relay broadcasts — one aggregated AGGREGATE
   carrying the suspicion-level vector. Steady state is 2(n-1) messages per
   round: O(n).

   Suspicion raising moves to the relay: it tracks, in its own heartbeat
   clock, how long ago each process's heartbeat counter last advanced, and
   raises its level for processes stale past an adaptive slack. Everyone
   else learns levels by max-merging the relay's AGGREGATEs. The one
   failure the relay cannot report is its own: each process runs a monitor
   that counts relay-silent periods and, past an adaptive miss budget,
   raises its own level for the relay and broadcasts an ACCUSE — the only
   n²-ish traffic, and it only flows while leadership is actually moving.

   Clocks and adversary coupling. Staleness is measured in the relay's own
   heartbeat rounds, never by comparing two processes' counters (send
   jitter makes cross-process counter comparison drift). HEARTBEAT and
   AGGREGATE carry the sender's heartbeat round and are the round-tagged
   traffic the scenario adversary victimizes
   ({!Scenarios.Scenario.round_rn_of_omega}); a victim's heartbeats stall
   for the block length, so blocks longer than the slack raise its level —
   the same rotating-star discrimination the Figure family faces, at O(n)
   traffic. The assumption's protected center is exactly the process whose
   level stops growing, so leadership converges on it.

   Hot-path discipline (DESIGN.md §11/§14) matches {!Node}: per-message
   handlers allocate nothing, the AGGREGATE payload is interned
   copy-on-write with physical-equality merge skips, periodic work rides
   packed self-reposting tasks, and every emission site is mask-guarded. *)

type t = {
  cfg : Config.t;
  net : Message.t Net.Network.t;
  engine : Sim.Engine.t;
  rng : Dstruct.Rng.t;
  me : pid;
  mutable hb_rn : int;  (* own heartbeat round; sending and receiving clock *)
  hop_slack : int;  (* extra staleness rounds a routed topology adds *)
  (* Struct-of-arrays suspicion rows, shared across the cluster like the
     gossip family's (DESIGN.md §14): this process's level vector is the
     row of [store.susp] at [base = me * n]. *)
  store : Store.t;
  susp : int array;  (* == store.susp *)
  base : int;  (* == me * n *)
  (* Relay-side freshness, indexed by peer: the highest heartbeat tag seen
     and — the staleness clock — our own [hb_rn] when it last advanced. *)
  fresh : int array;
  last_fresh_round : int array;
  (* Interned AGGREGATE payload and per-sender merge skip, exactly the
     ALIVE discipline: a published array is never mutated again. *)
  mutable payload : int array;
  mutable payload_clean : bool;
  last_merged : int array array;
  (* Leader estimate cache: recomputed on demand after a level rose. *)
  mutable cur_leader : pid;
  mutable leader_dirty : bool;
  (* Monitor state: which relay it watches, whether that relay aggregated
     since the last tick, and how many silent ticks accumulated. *)
  mutable monitored : pid;
  mutable agg_seen : bool;
  mutable misses : int;
  (* Was this process its own leader estimate at the last heartbeat tick?
     Detects self-promotion: the staleness clocks re-stamp at that moment
     (see [heartbeat_task]), so staleness only ever accumulates across
     *continuous* self-leadership. *)
  mutable was_leader : bool;
  mutable epoch : int;  (* invalidates tasks of previous incarnations *)
  mutable last_leader : pid;  (* last Leader_change reported on the sink *)
  (* observers *)
  mutable max_susp_seen : int;
  mutable max_timeout_armed : Sim.Time.t;
  mutable accusations_sent : int;
}

(* Staleness slack, in relay heartbeat rounds: must absorb the benign
   worst case — one heartbeat period plus the asynchronous delay cap
   (async_base = 3 rounds at the defaults) plus send jitter — with margin,
   so only victim blocks longer than this register. Adaptive in the
   target's level so repeated victimization self-limits, mirroring the
   Figure family's adaptive timeouts. On a routed topology every message
   crosses up to [diameter] links, each a fresh oracle draw — one
   heartbeat period plus the async cap per hop, the same ~4-round budget
   the complete-graph constant absorbs once — so [hop_slack] adds that
   budget for every extra hop (it is 0 when complete, keeping the pinned
   digests). *)
let stale_slack t k = 6 + t.hop_slack + t.susp.(t.base + k)

(* Monitor miss budget, in monitor periods: consecutive AGGREGATE arrivals
   from a live relay can gap by one heartbeat period plus the async cap
   (~4 monitor periods under the tight config), so the budget starts above
   that and adapts with the relay's level — plus the routed hop slack,
   like [stale_slack]. *)
let miss_slack t k = 5 + t.hop_slack + t.susp.(t.base + k)

let halted t = Net.Network.is_crashed t.net t.me

let note_level t level = if level > t.max_susp_seen then t.max_susp_seen <- level

(* Sole write path to this process's level row; same extrema and payload
   bookkeeping as {!Node.raise_level}, same guarded Suspicion emission. *)
let raise_level t k level =
  let st = t.store in
  if t.susp.(t.base + k) = st.Store.cached_min.(t.me) then
    st.Store.min_stale.(t.me) <- true;
  t.susp.(t.base + k) <- level;
  if level > st.Store.cached_max.(t.me) then
    st.Store.cached_max.(t.me) <- level;
  t.payload_clean <- false;
  t.leader_dirty <- true;
  note_level t level;
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_omega then
    Obs.Sink.emit sink
      (Obs.Event.Suspicion
         {
           now = Sim.Time.to_us (Sim.Engine.now t.engine);
           pid = t.me;
           target = k;
           level;
         })

(* Lexicographic minimum of (level, pid) over this process's row, cached
   until a level rises. *)
let leader t =
  if t.leader_dirty then begin
    let susp = t.susp and base = t.base in
    let best = ref 0 in
    for j = 1 to t.cfg.Config.n - 1 do
      if susp.(base + j) < susp.(base + best.contents) then best := j
    done;
    t.cur_leader <- best.contents;
    t.leader_dirty <- false
  end;
  t.cur_leader

let maybe_leader_change t =
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_omega then begin
    let l = leader t in
    if l <> t.last_leader then begin
      t.last_leader <- l;
      Obs.Sink.emit sink
        (Obs.Event.Leader_change
           {
             now = Sim.Time.to_us (Sim.Engine.now t.engine);
             pid = t.me;
             leader = l;
           })
    end
  end

(* Freshness update shared by every message kind: any round-tagged sign of
   life from [src] advances its counter and re-stamps the staleness clock.
   Monotone ([max]), so victim-delayed stragglers arriving an hour late
   cannot un-refresh anything. *)
let note_alive t ~src rn =
  if rn > t.fresh.(src) then begin
    t.fresh.(src) <- rn;
    t.last_fresh_round.(src) <- t.hb_rn
  end

let on_heartbeat t ~src rn = note_alive t ~src rn

(* Pointwise-max merge of the relay's aggregated levels, with the
   physical-equality skip on interned payloads (see {!Node.on_alive}). *)
let on_aggregate t ~src rn levels =
  note_alive t ~src rn;
  if src = t.monitored then t.agg_seen <- true;
  if levels != t.last_merged.(src) then begin
    let susp = t.susp and base = t.base in
    for k = 0 to t.cfg.Config.n - 1 do
      let lvl = Array.unsafe_get levels k in
      if lvl > Array.unsafe_get susp (base + k) then raise_level t k lvl
    done;
    t.last_merged.(src) <- levels
  end

let on_accuse t ~src rn target level =
  note_alive t ~src rn;
  if level > t.susp.(t.base + target) then raise_level t target level

let on_message t ~src msg =
  if not (halted t) then begin
    (match msg with
    | Message.Heartbeat { rn } -> on_heartbeat t ~src rn
    | Message.Aggregate { rn; levels } -> on_aggregate t ~src rn levels
    | Message.Accuse { rn; target; level } -> on_accuse t ~src rn target level
    | Message.Alive _ | Message.Suspicion _ ->
        (* Figure-family traffic; a run selects one algorithm for the
           whole cluster, so the lean variant never receives these. *)
        ());
    maybe_leader_change t
  end

(* ---- the heartbeat task (period <= beta, jittered like Node's T1) ---- *)

type task = { node : t; epoch : int }

let emit_relay_round t ~stale =
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_omega then
    Obs.Sink.emit sink
      (Obs.Event.Relay_round
         {
           now = Sim.Time.to_us (Sim.Engine.now t.engine);
           pid = t.me;
           rn = t.hb_rn;
           stale;
         })

let rec heartbeat_task ({ node = t; epoch } as task) =
  if (not (halted t)) && epoch = t.epoch then begin
    t.hb_rn <- t.hb_rn + 1;
    (* Own row stays trivially fresh: the relay never suspects itself. *)
    t.fresh.(t.me) <- t.hb_rn;
    t.last_fresh_round.(t.me) <- t.hb_rn;
    let l = leader t in
    if l = t.me then begin
      if not t.was_leader then begin
        (* Promotion grace: while this process was not the relay, nobody
           was heartbeating it, so its freshness clocks are uniformly —
           and meaninglessly — stale. Re-stamp them all: staleness is
           only evidence when it accumulated while everyone had this
           process as their heartbeat target. Without this, every
           transient self-believed relay of the anarchy phase mass-raises
           the whole cluster (the center included — and max-merge makes
           that permanent). *)
        t.was_leader <- true;
        for j = 0 to t.cfg.Config.n - 1 do
          t.last_fresh_round.(j) <- t.hb_rn
        done
      end;
      (* Relay duty: raise levels of processes whose heartbeat counter
         went stale past the slack, then broadcast the aggregate. One
         level per scan tick — the same at-most-one-increment-per-round
         pacing as the Figure family. *)
      let stale = ref 0 in
      for j = 0 to t.cfg.Config.n - 1 do
        if
          j <> t.me
          && t.hb_rn - t.last_fresh_round.(j) > stale_slack t j
        then begin
          incr stale;
          raise_level t j (t.susp.(t.base + j) + 1)
        end
      done;
      let levels =
        if t.payload_clean then t.payload
        else begin
          let p = Array.sub t.susp t.base t.cfg.Config.n in
          t.payload <- p;
          t.payload_clean <- true;
          p
        end
      in
      Net.Network.broadcast t.net ~src:t.me
        (Message.Aggregate { rn = t.hb_rn; levels });
      emit_relay_round t ~stale:stale.contents;
      maybe_leader_change t
    end
    else begin
      t.was_leader <- false;
      Net.Network.send t.net ~src:t.me ~dst:l
        (Message.Heartbeat { rn = t.hb_rn })
    end;
    let beta_us = Sim.Time.to_us t.cfg.Config.beta in
    let low =
      int_of_float (float_of_int beta_us *. (1. -. t.cfg.Config.send_jitter))
    in
    let period = Dstruct.Rng.int_in t.rng (max 1 low) beta_us in
    Sim.Engine.call_after t.engine (Sim.Time.of_us period) heartbeat_task task
  end

(* ---- the relay monitor (fixed period, adaptive miss budget) ---- *)

let emit_accusation t ~target ~level =
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_omega then
    Obs.Sink.emit sink
      (Obs.Event.Accusation
         {
           now = Sim.Time.to_us (Sim.Engine.now t.engine);
           pid = t.me;
           target;
           level;
         })

let monitor_period_us t = Sim.Time.to_us t.cfg.Config.initial_timeout

let rec monitor_task ({ node = t; epoch } as task) =
  if (not (halted t)) && epoch = t.epoch then begin
    let l = leader t in
    if l <> t.monitored then begin
      (* Leadership moved since the last tick: watch the new relay and
         grant it a full miss budget before the first accusation. *)
      t.monitored <- l;
      t.misses <- 0;
      t.agg_seen <- false
    end
    else if l = t.me || t.agg_seen then begin
      t.misses <- 0;
      t.agg_seen <- false
    end
    else begin
      t.misses <- t.misses + 1;
      let budget = miss_slack t l in
      (* Effective detection latency, reported like an armed timeout. *)
      let eff = Sim.Time.of_us (monitor_period_us t * (budget + 1)) in
      if Sim.Time.(eff > t.max_timeout_armed) then t.max_timeout_armed <- eff;
      if t.misses > budget then begin
        let level = t.susp.(t.base + l) + 1 in
        raise_level t l level;
        t.accusations_sent <- t.accusations_sent + 1;
        Net.Network.broadcast t.net ~src:t.me
          (Message.Accuse { rn = t.hb_rn; target = l; level });
        emit_accusation t ~target:l ~level;
        t.misses <- 0;
        t.agg_seen <- false;
        maybe_leader_change t
      end
    end;
    Sim.Engine.call_after t.engine
      (Sim.Time.of_us (monitor_period_us t))
      monitor_task task
  end

let () =
  Sim.Checkpoint.register ~id:5 heartbeat_task;
  Sim.Checkpoint.register ~id:6 monitor_task

(* ---- cluster lifecycle ---- *)

type cluster = { nodes : t array; net : Message.t Net.Network.t }

let create_node cfg net ~store ~me =
  let n = cfg.Config.n in
  let engine = Net.Network.engine net in
  let t =
    {
      cfg;
      net;
      engine;
      rng = Dstruct.Rng.split (Sim.Engine.rng engine);
      me;
      hb_rn = 0;
      hop_slack = 4 * max 0 (Net.Network.diameter net - 1);
      store;
      susp = store.Store.susp;
      base = me * n;
      fresh = Array.make n 0;
      last_fresh_round = Array.make n 0;
      payload = Array.make n 0;
      payload_clean = true;
      (* [ [||] ] is never physically equal to a length-n payload (n >= 2),
         so the first AGGREGATE from each relay always merges. *)
      last_merged = Array.make n [||];
      cur_leader = 0;
      leader_dirty = false;
      monitored = 0;
      agg_seen = false;
      misses = 0;
      was_leader = false;
      epoch = 0;
      last_leader = 0;
      max_susp_seen = 0;
      max_timeout_armed = Sim.Time.zero;
      accusations_sent = 0;
    }
  in
  Net.Network.set_handler net me (fun ~src msg -> on_message t ~src msg);
  t

let create cfg net =
  Config.validate cfg;
  let n = Net.Network.n net in
  if n <> cfg.Config.n then
    invalid_arg "Lean.create: network size differs from config";
  (* One struct-of-arrays store for the whole cluster, same as the gossip
     family (DESIGN.md §14). *)
  let store = Store.create ~n in
  let nodes = Array.init n (fun me -> create_node cfg net ~store ~me) in
  { nodes; net }

let arm (t : t) =
  (* Both tasks below are created by this process. *)
  Sim.Engine.set_rank t.engine t.me;
  let beta_us = Sim.Time.to_us t.cfg.Config.beta in
  (* Processes start at unrelated instants (§3), like the gossip family. *)
  let offset = Dstruct.Rng.int t.rng (max 1 beta_us) in
  Sim.Engine.call_after t.engine (Sim.Time.of_us offset) heartbeat_task
    { node = t; epoch = t.epoch };
  let mon_offset = Dstruct.Rng.int t.rng (max 1 (monitor_period_us t)) in
  Sim.Engine.call_after t.engine (Sim.Time.of_us mon_offset) monitor_task
    { node = t; epoch = t.epoch }

(* [owned] — see {!Cluster.start}: a sharded replica arms only the relay
   nodes it owns; [arm] draws from the node's private stream under the
   node's own rank, so a pid-ordered subset draws the sequential keys. *)
let start ?owned c =
  match owned with
  | None -> Array.iter arm c.nodes
  | Some mine -> Array.iteri (fun i nd -> if mine i then arm nd) c.nodes

(* Crash–recovery: levels and heartbeat counters are persisted state and
   survive untouched; only the monitor restarts from a clean slate (its
   silence window while down proves nothing about the relay) and the
   staleness clocks re-stamp to "fresh now" so the rejoiner doesn't
   instantly accuse everyone it missed while down. The caller must
   un-crash the transport first ([Net.Network.recover]). *)
let grace (t : t) =
  t.misses <- 0;
  t.agg_seen <- false;
  t.was_leader <- false;
  for j = 0 to t.cfg.Config.n - 1 do
    t.last_fresh_round.(j) <- t.hb_rn
  done

let recover (t : t) =
  t.epoch <- t.epoch + 1;
  grace t;
  arm t

(* A healed partition survivor kept both tasks running; only its staleness
   and monitor evidence spans the cut and must be forgiven (the gossip
   family's catch-up analogue, DESIGN.md §12). *)
let resync t = grace t

let node c i = c.nodes.(i)

let iface c : Iface.t =
  let nd i = c.nodes.(i) in
  {
    Iface.config = (nd 0).cfg;
    net = c.net;
    start = (fun () -> start c);
    leader_of = (fun p -> leader (nd p));
    recover =
      (fun p ->
        Net.Network.recover c.net p;
        recover (nd p));
    resync = (fun p -> resync (nd p));
    (* One clock drives both directions here: heartbeat rounds are emitted
       and judged in the same counter. *)
    sending_round = (fun p -> (nd p).hb_rn);
    receiving_round = (fun p -> (nd p).hb_rn);
    susp_level_get =
      (fun p k ->
        let t = nd p in
        if k < 0 || k >= t.cfg.Config.n then
          invalid_arg "Lean.susp_level_get: pid out of range";
        t.susp.(t.base + k));
    max_susp_level_seen = (fun p -> (nd p).max_susp_seen);
    max_timeout_armed = (fun p -> (nd p).max_timeout_armed);
    (* No bounded-condition lattice and no round-indexed state. *)
    lattice_invariant_holds = (fun _ -> true);
    round_state_cardinal = (fun _ -> 0);
  }

let accusations_sent t = t.accusations_sent
let heartbeat_round t = t.hb_rn
