type pid = int

(* How a node reaches its peers; decoupled from {!Net.Network} so the
   algorithm also runs over the fair-lossy + retransmission stack
   (footnote 2 of the paper). *)
type transport = {
  engine : Sim.Engine.t;
  n : int;
  send : dst:pid -> Message.t -> unit;
  halted : unit -> bool;
}

(* Per-round suspicion state: the count per suspected process (line 15) and
   whether line 17 already ran for this (round, process) pair — the paper
   increments at most once per pair, but the conditions must be re-evaluated
   on every later SUSPICION arrival because the window (line [*]) can become
   true only after older rounds' counts complete. [credited] is a bitset
   (n bits, not n words): round entries are the node's only O(n)-sized
   per-round state, and at large n their footprint dominates. *)
type suspicion_entry = { counts : int array; credited : Dstruct.Bitset.t }

type t = {
  cfg : Config.t;
  tr : transport;
  engine : Sim.Engine.t;
  rng : Dstruct.Rng.t;
  me : pid;
  mutable s_rn : int;  (* current sending round *)
  mutable r_rn : int;  (* current receiving round *)
  (* Struct-of-arrays hot state (DESIGN.md §14): this node's [susp_level]
     vector is the row of [store.susp] at [base = me * n], and the cached
     extrema live in the store's per-process slots. [susp]/[base] are
     latched here so the gossip merge and the leader scan index one flat
     array directly. Levels only ever increase, so the max is maintained
     exactly on every write; the min is recomputed lazily, and only when an
     entry that sat at the cached minimum was raised. [arm_timer], [prune]
     and Fig3's bounded condition (line 16) consult the extrema on every
     round closure / SUSPICION. *)
  store : Store.t;
  susp : int array;  (* == store.susp *)
  base : int;  (* == me * n *)
  rec_from : Dstruct.Bitset.t Dstruct.Rounds.t;
  (* Full-prefix collapse (DESIGN.md §16): every round in
     [[r_rn, full_upto)] was received from all n processes and its bitset
     has been reclaimed — the rounds behave as present-and-full without a
     table entry. Invariant: [full_upto >= r_rn] at all times (bumped at
     every [r_rn] write), and the window's rounds are exactly the
     collapsed-full ones. Under the default config the sending frontier
     runs ahead of the receiving round without bound, and in a timely run
     the buffered rounds are all full — the collapse is what keeps a
     multi-minute run's round buffer O(gap-width) instead of O(elapsed
     time). *)
  mutable full_upto : int;
  suspicions : suspicion_entry Dstruct.Rounds.t;
  mutable timer : Sim.Timer.t option;  (* set at [create], before [start] *)
  (* Interned ALIVE payload (DESIGN.md §14): the snapshot of [susp_level]
     the sending task last broadcast. While no level rises the same array
     object is re-sent round after round — every receiver and every flight
     share it — and [raise_level] clears [payload_clean] so the next
     broadcast takes a fresh copy (copy-on-write). A published payload
     array is never mutated again, which is what makes both the sharing and
     [last_merged]'s physical-equality test sound. *)
  mutable payload : int array;
  mutable payload_clean : bool;
  (* Per-sender merge skip: the payload array last merged from each peer.
     Physical equality means contents already absorbed — levels are
     monotone, so re-merging the same array is a no-op and can be skipped
     without touching the event stream. *)
  last_merged : int array array;
  (* Broadcast fan-out, overridable so the network-backed constructor can
     route through {!Net.Network}'s batched paths while transport-backed
     nodes keep the per-destination loop. [bcast_others] is line 3 (every
     [j <> i]); [bcast_all] is line 10 (itself included). Both must emit
     exactly the per-destination event sequence of a [send] loop in
     destination order. *)
  mutable bcast_others : Message.t -> unit;
  mutable bcast_all : Message.t -> unit;
  (* Last leader estimate reported on the obs sink. Only consulted (and only
     kept current) while a sink wants omega events; [leader] stays pure. *)
  mutable last_leader : pid;
  (* Crash–recovery state (inert unless [recover] is called). [catch_up]
     marks a freshly recovered process whose [r_rn] is stale: rec_from for
     those old rounds can never reach [alpha] again (the peers moved on), so
     the next ALIVE from a live round re-seats [r_rn] there. [sending_epoch]
     invalidates the previous incarnation's sending task: a pending
     pre-crash event would otherwise find [halted () = false] after recovery
     and resume, duplicating the loop [recover] restarts. *)
  mutable catch_up : bool;
  mutable sending_epoch : int;
  (* observers *)
  mutable current_timeout : Sim.Time.t;
  mutable max_timeout_armed : Sim.Time.t;
  mutable max_susp_seen : int;
  mutable local_increments : int;
  (* Freelists for the O(n)-sized per-round cells ([rec_from] bitsets,
     [suspicions] entries): [prune] recycles instead of discarding, so the
     steady state creates one round and retires one round per closure with
     no O(n) allocation. The [default_*] / [recycle_*] closures are built
     once at [create] (placeholders until [t] exists) — allocating them per
     call would put closures back on the per-message path. *)
  mutable set_pool : Dstruct.Bitset.t list;
  mutable susp_pool : suspicion_entry list;
  mutable default_rec : unit -> Dstruct.Bitset.t;
  mutable default_susp : unit -> suspicion_entry;
  mutable recycle_set : Dstruct.Bitset.t -> unit;
  mutable recycle_susp : suspicion_entry -> unit;
}

let me t = t.me
let config t = t.cfg

let timer_exn t =
  match t.timer with Some timer -> timer | None -> assert false

(* A crashed process executes no step at all: its pending timer and send
   events become no-ops. *)
let halted t = t.tr.halted ()

let note_level t level = if level > t.max_susp_seen then t.max_susp_seen <- level

let max_susp t = t.store.Store.cached_max.(t.me)

let min_susp t =
  let st = t.store in
  if st.Store.min_stale.(t.me) then begin
    let susp = t.susp and base = t.base in
    let m = ref susp.(base) in
    for k = 1 to t.cfg.Config.n - 1 do
      if susp.(base + k) < !m then m := susp.(base + k)
    done;
    st.Store.cached_min.(t.me) <- !m;
    st.Store.min_stale.(t.me) <- false
  end;
  st.Store.cached_min.(t.me)

(* Sole write path to [susp_level]; keeps the cached extrema honest and
   marks the interned ALIVE payload dirty. Requires [level >
   susp_level.(k)] (levels are monotone). *)
let raise_level t k level =
  let st = t.store in
  if t.susp.(t.base + k) = st.Store.cached_min.(t.me) then
    st.Store.min_stale.(t.me) <- true;
  t.susp.(t.base + k) <- level;
  if level > st.Store.cached_max.(t.me) then
    st.Store.cached_max.(t.me) <- level;
  t.payload_clean <- false;
  note_level t level;
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_omega then
    Obs.Sink.emit sink
      (Obs.Event.Suspicion
         {
           now = Sim.Time.to_us (Sim.Engine.now t.engine);
           pid = t.me;
           target = k;
           level;
         })

(* Line 11 (+ Section 7's [+ g(r_rn + 1)]), scaled to a duration as per
   DESIGN.md §2. *)
let arm_timer t =
  let g = Config.g_of t.cfg.Config.variant in
  let duration =
    Sim.Time.add
      (Sim.Time.add t.cfg.Config.initial_timeout
         (Sim.Time.of_us (Sim.Time.to_us t.cfg.Config.timeout_unit * max_susp t)))
      (g (t.r_rn + 1))
  in
  t.current_timeout <- duration;
  if Sim.Time.(duration > t.max_timeout_armed) then
    t.max_timeout_armed <- duration;
  Sim.Timer.set (timer_exn t) duration

(* Lines 19-21: lexicographic minimum of (susp_level.(j), j) — one strided
   pass over this node's row of the store. *)
let leader t =
  let susp = t.susp and base = t.base in
  let best = ref 0 in
  for j = 1 to t.cfg.Config.n - 1 do
    if susp.(base + j) < susp.(base + !best) then best := j
  done;
  !best

(* Leadership is a pure function of [susp_level] (lines 19-21), so there is
   no code point where it "changes"; instead, re-derive it after every
   message when a sink cares and report edges. *)
let maybe_leader_change t =
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_omega then begin
    let l = leader t in
    if l <> t.last_leader then begin
      t.last_leader <- l;
      Obs.Sink.emit sink
        (Obs.Event.Leader_change
           {
             now = Sim.Time.to_us (Sim.Engine.now t.engine);
             pid = t.me;
             leader = l;
           })
    end
  end

let fresh_rec_from t () =
  let s =
    match t.set_pool with
    | s :: rest ->
        t.set_pool <- rest;
        Dstruct.Bitset.clear s;
        s
    | [] -> Dstruct.Bitset.create t.cfg.Config.n
  in
  Dstruct.Bitset.add s t.me;
  s

let fresh_suspicions t () =
  match t.susp_pool with
  | e :: rest ->
      t.susp_pool <- rest;
      Array.fill e.counts 0 (Array.length e.counts) 0;
      Dstruct.Bitset.clear e.credited;
      e
  | [] ->
      {
        counts = Array.make t.cfg.Config.n 0;
        credited = Dstruct.Bitset.create t.cfg.Config.n;
      }

(* How far past the delivered-tag frontier a catch-up re-seats [r_rn]: must
   exceed the number of ALIVE tags a sender can have in flight (delay bound
   over minimum send period — some tens of ms over ~8 ms here). Rounds are
   ~10 ms, so the skip costs a recovered process well under a second. *)
let catch_up_margin = 32

(* Highest round tag still tracked, collapsed prefix included: the table's
   max, or [full_upto - 1] when the top collapsed round is higher. The
   [>= 1] guard excludes the initial state (rounds start at 1; [full_upto]
   starts at 1 without any round 0 ever existing) and the floor guard
   excludes collapsed rounds an uncollapsed table would have pruned. *)
let max_tracked_round t =
  let m =
    match Dstruct.Rounds.max_round t.rec_from with
    | Some m -> m
    | None -> min_int
  in
  let hi = t.full_upto - 1 in
  let c =
    if hi >= 1 && hi >= Dstruct.Rounds.floor t.rec_from then hi else min_int
  in
  let v = if m > c then m else c in
  if v = min_int then None else Some v

(* Reclaim the contiguous prefix of fully-received rounds starting at
   [full_upto]: each full bitset goes back to the freelist and the round
   becomes part of the collapsed window. Rounds fill out of order (delays
   jitter per sender), so the loop stops at the first gap and resumes when
   a later delivery plugs it. *)
let rec collapse_full t =
  match Dstruct.Rounds.find_exn t.rec_from t.full_upto with
  | s ->
      if Dstruct.Bitset.cardinal s = t.cfg.Config.n then begin
        Dstruct.Rounds.remove ~recycle:t.recycle_set t.rec_from t.full_upto;
        t.full_upto <- t.full_upto + 1;
        collapse_full t
      end
  | exception Not_found -> ()

(* Lines 9-12, fired once the conjunction of line 8 holds. The closing
   round is either collapsed-full ([r_rn < full_upto]: quorum holds,
   nobody suspected, no table entry to read) or looked up as before; both
   branches produce the identical SUSPICION broadcast and emissions. *)
let rec try_close_round t =
  if not (halted t) then
    if t.r_rn < t.full_upto then begin
      let ready =
        match t.cfg.Config.closure with
        | Config.Conjunction | Config.Timer_only ->
            Sim.Timer.has_expired (timer_exn t)
        | Config.Count_only -> true
      in
      if ready then close_round t ~n_suspected:0 ~suspects:[]
    end
    else begin
      let received =
        Dstruct.Rounds.find_or_add t.rec_from t.r_rn ~default:t.default_rec
      in
      let expired = Sim.Timer.has_expired (timer_exn t) in
      let quorum = Dstruct.Bitset.cardinal received >= t.cfg.Config.alpha in
      let ready =
        match t.cfg.Config.closure with
        | Config.Conjunction -> expired && quorum
        | Config.Timer_only -> expired
        | Config.Count_only -> quorum
      in
      if ready then begin
        (* The suspects of line 9 are the complement of [received], read off
           the bitset's words directly: a word whose 32 senders all delivered
           costs one test (descending fold, so the cons-list comes out
           ascending — the order [Bitset.complement |> to_list] produced);
           the cardinal is known without a [List.length] re-walk. O(live)
           work, where the per-id loop this replaces scanned all n slots. *)
        let n_suspected = t.cfg.Config.n - Dstruct.Bitset.cardinal received in
        let suspects =
          Dstruct.Bitset.fold_unset_down received ~init:[] ~f:(fun acc i ->
              i :: acc)
        in
        close_round t ~n_suspected ~suspects
      end
    end

and close_round t ~n_suspected ~suspects =
  (* Line 10 sends to every process, itself included (no [j <> i]). *)
  t.bcast_all (Message.Suspicion { rn = t.r_rn; suspects });
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_omega then begin
    let now = Sim.Time.to_us (Sim.Engine.now t.engine) in
    Obs.Sink.emit sink
      (Obs.Event.Round_close
         { now; pid = t.me; rn = t.r_rn; suspected = n_suspected });
    Obs.Sink.emit sink
      (Obs.Event.Round_open { now; pid = t.me; rn = t.r_rn + 1 })
  end;
  t.r_rn <- t.r_rn + 1;
  if t.full_upto < t.r_rn then t.full_upto <- t.r_rn;
  (* A catch-up (see [on_alive]) is complete only once the node closes
     rounds *at the live frontier*. A recovered process often replays a
     stretch of pre-crash buffered rounds first — those closes say
     nothing about reaching the senders, so clearing on them would leave
     the node stranded at the first buffer gap. *)
  if t.catch_up then begin
    match max_tracked_round t with
    | Some m when m > t.r_rn + catch_up_margin -> ()
    | Some _ | None -> t.catch_up <- false
  end;
  arm_timer t;
  prune t;
  (* The next round may already satisfy line 8 if the timeout was zero
     and enough future-round ALIVEs were buffered. *)
  try_close_round t

(* Discard rounds no rule can read again (DESIGN.md §2): [rec_from] below the
   current receiving round, [suspicions] below the deepest window any future
   line [*] check can reach, with a safety margin for processes whose
   receiving round lags ours. *)
and prune t =
  Dstruct.Rounds.prune_below ~recycle:t.recycle_set t.rec_from t.r_rn;
  let f = Config.f_of t.cfg.Config.variant in
  let reach = max_susp t + f t.r_rn + t.cfg.Config.prune_margin in
  Dstruct.Rounds.prune_below ~recycle:t.recycle_susp t.suspicions
    (t.r_rn - reach)

(* Lines 4-7. The pointwise-max merge is skipped when [sl] is physically
   the payload array last merged from this sender: interned payloads make
   that the steady state (a sender re-broadcasts the same array object
   until one of its levels rises), and monotonicity makes the skip exact —
   a second merge of the same contents raises nothing and emits nothing. *)
let on_alive t ~src rn sl =
  if sl != t.last_merged.(src) then begin
    let susp = t.susp and base = t.base in
    (* Unsafe accesses: [k < n], [sl] is a length-n ALIVE payload
       (Message invariant), and [base + k < n*n = length susp] (the
       store row layout) — this loop runs once per received ALIVE and
       the two bounds checks per entry were measurable at n = 128. *)
    for k = 0 to t.cfg.Config.n - 1 do
      let lvl = Array.unsafe_get sl k in
      if lvl > Array.unsafe_get susp (base + k) then raise_level t k lvl
    done;
    t.last_merged.(src) <- sl
  end;
  (* Recovery catch-up: resume receiving past the live frontier. Waiting for
     the stale [r_rn] to close would block forever — line 8 needs [alpha]
     ALIVEs tagged with that round, and no correct process sends them
     anymore. Re-seating at [rn] itself is equally wrong: send jitter spreads
     the senders' current tags over tens of rounds (and [rn] may even be a
     stale victim-delayed tag), so if fewer than [alpha] senders still have
     the target round ahead of them it can never close either. The target is
     therefore placed [catch_up_margin] past the highest tag ever delivered
     ([rec_from]'s max — the leading sender's position minus in-flight
     messages, which the margin covers): every sender then still has the
     whole target round ahead of it, and the quorum must fill. The flag
     stays armed until a round demonstrably closes at the frontier
     ({!try_close_round}): one re-seat can still land short when the first
     evidence itself was stale, and new evidence (a tag a full margin past
     [r_rn]) then re-fires the jump. Requiring a margin-sized gap keeps a
     successfully re-seated node from chasing the senders it now trails by
     design. *)
  if t.catch_up && rn > t.r_rn + catch_up_margin then begin
    let frontier =
      match max_tracked_round t with Some m -> max m rn | None -> rn
    in
    t.r_rn <- frontier + catch_up_margin;
    if t.full_upto < t.r_rn then t.full_upto <- t.r_rn;
    (* The paper has one round counter; this rendering paces [s_rn] and
       [r_rn] independently, so a recovered process would otherwise resume
       broadcasting tags from before the crash — all below its peers'
       receiving rounds, hence discarded, leaving it suspected for as long
       as its stale sending round needs to overtake them. Re-seat the
       sending side with the receiving side: the skipped tags were never
       sent and cannot be retroactively useful to anyone. *)
    if t.s_rn < t.r_rn then t.s_rn <- t.r_rn;
    let sink = Sim.Engine.sink t.engine in
    if Obs.Sink.wants sink Obs.Event.c_omega then
      Obs.Sink.emit sink
        (Obs.Event.Round_open
           {
             now = Sim.Time.to_us (Sim.Engine.now t.engine);
             pid = t.me;
             rn = t.r_rn;
           });
    arm_timer t;
    prune t
  end;
  (* Rounds in [[r_rn, full_upto)] are collapsed-full: every bit is already
     set, so the add would be a no-op on a reclaimed bitset — skip it. The
     [full_upto >= r_rn] invariant makes this guard subsume the old
     [rn >= r_rn] one. *)
  if rn >= t.full_upto then begin
    let received =
      Dstruct.Rounds.find_or_add t.rec_from rn ~default:t.default_rec
    in
    Dstruct.Bitset.add received src;
    (* This delivery may have completed the frontier round: reclaim the
       contiguous full prefix. Amortized once per round per node. *)
    if
      rn = t.full_upto
      && Dstruct.Bitset.cardinal received = t.cfg.Config.n
    then collapse_full t
  end;
  (* The line-8 conjunction may have just become true (timer expired first,
     the [alpha]-th ALIVE arrived now). *)
  try_close_round t

(* Line [*] of Figures 2-3, widened by [f] for the A_{f,g} variant:
   every round in [[rn - susp_level.(k) - f rn, rn]] must already have
   [alpha] suspicions against [k]. Rounds below 1 don't exist; rounds below
   the prune floor count as unsatisfied (they can only be reached when the
   margin is exceeded, which delays — never falsifies — an increment). *)
let rec window_check t rn k x =
  if x > rn then true
  else
    match Dstruct.Rounds.find_exn t.suspicions x with
    | entry ->
        entry.counts.(k) >= t.cfg.Config.alpha && window_check t rn k (x + 1)
    | exception Not_found -> false

let window_satisfied t rn k =
  let f = Config.f_of t.cfg.Config.variant in
  let lo = max 1 (rn - t.susp.(t.base + k) - f rn) in
  let floor = Dstruct.Rounds.floor t.suspicions in
  (* [window_check] is a top-level recursion using the allocation-free
     [Rounds.find_exn]: a nested [let rec] plus [Rounds.find]'s [Some] box
     would allocate on every SUSPICION's suspect walk. *)
  if lo < floor then false else window_check t rn k lo

(* Lines 13-18. The suspect loop is a top-level recursion over the list
   rather than a [List.iter] closure: the closure would capture four
   variables and be rebuilt for every SUSPICION received — a per-message
   allocation on a path that must stay steady-state free. *)
let rec credit_suspects t entry rn variant = function
  | [] -> ()
  | k :: rest ->
      entry.counts.(k) <- entry.counts.(k) + 1;
      let quorum =
        entry.counts.(k) >= t.cfg.Config.alpha
        && not (Dstruct.Bitset.mem entry.credited k)
      in
      let window =
        (not (Config.has_window_condition variant)) || window_satisfied t rn k
      in
      let bounded =
        (not (Config.has_bounded_condition variant))
        || t.susp.(t.base + k) = min_susp t
      in
      if quorum && window && bounded then begin
        Dstruct.Bitset.add entry.credited k;
        raise_level t k (t.susp.(t.base + k) + 1);
        t.local_increments <- t.local_increments + 1
      end;
      credit_suspects t entry rn variant rest

let on_suspicion t rn suspects =
  if rn >= Dstruct.Rounds.floor t.suspicions then begin
    let entry =
      Dstruct.Rounds.find_or_add t.suspicions rn ~default:t.default_susp
    in
    credit_suspects t entry rn t.cfg.Config.variant suspects
  end

let on_message t ~src msg =
  if not (halted t) then begin
    (match msg with
    | Message.Alive { rn; susp_level } -> on_alive t ~src rn susp_level
    | Message.Suspicion { rn; suspects } -> on_suspicion t rn suspects
    | Message.Heartbeat _ | Message.Aggregate _ | Message.Accuse _ ->
        (* Lean-variant traffic; a run selects one algorithm for the whole
           cluster, so the Figure family never receives these. *)
        ());
    maybe_leader_change t
  end

(* Lines 1-3 (task T1): consecutive broadcasts at most [beta] apart. The
   task re-posts itself packed ([call_after] with one record per incarnation
   as the argument), so the periodic loop allocates no closures. The epoch
   check retires tasks of previous incarnations after a recovery. *)
type task = { node : t; epoch : int }

let rec sending_task ({ node = t; epoch } as task) =
  if (not (halted t)) && epoch = t.sending_epoch then begin
    t.s_rn <- t.s_rn + 1;
    (* Interned payload: re-broadcast the same snapshot array while no
       level rose since it was taken (the steady state once suspicions
       settle), copy the row afresh otherwise. Published arrays are never
       written again, so every flight and every receiver-side cache may
       hold them indefinitely. The copy was [Array.copy susp_level] on
       every single round — Θ(n²) ints per round cluster-wide. *)
    let sl =
      if t.payload_clean then t.payload
      else begin
        let p = Array.sub t.susp t.base t.cfg.Config.n in
        t.payload <- p;
        t.payload_clean <- true;
        p
      end
    in
    (* Line 3: every j <> i. *)
    t.bcast_others (Message.Alive { rn = t.s_rn; susp_level = sl });
    let beta_us = Sim.Time.to_us t.cfg.Config.beta in
    let low =
      int_of_float (float_of_int beta_us *. (1. -. t.cfg.Config.send_jitter))
    in
    let period = Dstruct.Rng.int_in t.rng (max 1 low) beta_us in
    Sim.Engine.call_after t.engine (Sim.Time.of_us period) sending_task task
  end

let () = Sim.Checkpoint.register ~id:4 sending_task

let create_with_transport ?store cfg (tr : transport) ~me =
  Config.validate cfg;
  if tr.n <> cfg.Config.n then
    invalid_arg "Node.create: transport size differs from config";
  let n = cfg.Config.n in
  let store =
    match store with
    | Some s ->
        if Store.n s <> n then
          invalid_arg "Node.create: store size differs from config";
        s
    | None -> Store.create ~n
  in
  let engine = tr.engine in
  let t =
    {
      cfg;
      tr;
      engine;
      rng = Dstruct.Rng.split (Sim.Engine.rng engine);
      me;
      s_rn = 0;
      r_rn = 1;
      full_upto = 1;
      store;
      susp = store.Store.susp;
      base = me * n;
      rec_from = Dstruct.Rounds.create ();
      suspicions = Dstruct.Rounds.create ();
      timer = None;
      (* The initial all-zero payload matches the initial all-zero row, so
         the first broadcasts share it until a first suspicion. *)
      payload = Array.make n 0;
      payload_clean = true;
      (* [ [||] ] is never physically equal to a length-n payload (n >= 2),
         so every sender's first ALIVE merges. *)
      last_merged = Array.make n [||];
      bcast_others = ignore;
      bcast_all = ignore;
      last_leader = 0;
      catch_up = false;
      sending_epoch = 0;
      current_timeout = cfg.Config.initial_timeout;
      max_timeout_armed = cfg.Config.initial_timeout;
      max_susp_seen = 0;
      local_increments = 0;
      set_pool = [];
      susp_pool = [];
      default_rec = (fun () -> assert false);
      default_susp = (fun () -> assert false);
      recycle_set = ignore;
      recycle_susp = ignore;
    }
  in
  t.default_rec <- (fun () -> fresh_rec_from t ());
  t.default_susp <- (fun () -> fresh_suspicions t ());
  t.recycle_set <- (fun s -> t.set_pool <- s :: t.set_pool);
  t.recycle_susp <- (fun e -> t.susp_pool <- e :: t.susp_pool);
  t.bcast_others <-
    (fun msg ->
      for dst = 0 to t.cfg.Config.n - 1 do
        if dst <> t.me then t.tr.send ~dst msg
      done);
  t.bcast_all <-
    (fun msg ->
      for dst = 0 to t.cfg.Config.n - 1 do
        t.tr.send ~dst msg
      done);
  t.timer <- Some (Sim.Timer.create engine ~on_expire:(fun () -> try_close_round t));
  t

let handle t ~src msg = on_message t ~src msg

let network_transport net ~me =
  {
    engine = Net.Network.engine net;
    n = Net.Network.n net;
    send = (fun ~dst msg -> Net.Network.send net ~src:me ~dst msg);
    halted = (fun () -> Net.Network.is_crashed net me);
  }

let create ?store cfg net ~me =
  let t = create_with_transport ?store cfg (network_transport net ~me) ~me in
  (* The batched fan-out: one latch of (now, sink, classification) and one
     wheel splice per broadcast, against per-destination [send]'s n
     repetitions — with the per-destination event sequence (Send, then the
     oracle's verdict, then Sched/Drop) preserved exactly. *)
  t.bcast_others <- (fun msg -> Net.Network.broadcast net ~src:me msg);
  t.bcast_all <- (fun msg -> Net.Network.broadcast_all net ~src:me msg);
  Net.Network.set_handler net me (fun ~src msg -> on_message t ~src msg);
  t

let start t =
  (* Everything scheduled below is created by this process. *)
  Sim.Engine.set_rank t.engine t.me;
  Sim.Timer.set (timer_exn t) t.cfg.Config.initial_timeout;
  (* Processes start their sending tasks at unrelated instants (§3: no
     relation between send times of different processes). *)
  let offset = Dstruct.Rng.int t.rng (max 1 (Sim.Time.to_us t.cfg.Config.beta)) in
  Sim.Engine.call_after t.engine (Sim.Time.of_us offset) sending_task
    { node = t; epoch = t.sending_epoch }

(* Crash–recovery (paper §1.3): the process rejoins with its persisted
   state — [susp_level], round counters, suspicion history all survive the
   crash untouched; only [r_rn] is re-seated by the catch-up rule above.
   The caller must un-crash the transport first ([Net.Network.recover]). *)
let recover t =
  Sim.Engine.set_rank t.engine t.me;
  t.catch_up <- true;
  t.sending_epoch <- t.sending_epoch + 1;
  Sim.Timer.set (timer_exn t) t.cfg.Config.initial_timeout;
  let offset = Dstruct.Rng.int t.rng (max 1 (Sim.Time.to_us t.cfg.Config.beta)) in
  Sim.Engine.call_after t.engine (Sim.Time.of_us offset) sending_task
    { node = t; epoch = t.sending_epoch }

(* A partition survivor can strand the same way a crashed process does, only
   slower: sending rounds run ahead of receiving rounds, so [rec_from] holds a
   deep buffer of future-tagged ALIVEs and the node keeps closing rounds from
   it long after the cut. The rounds whose ALIVEs were sent *during* the cut
   form a gap that buffer never covers — when [r_rn] reaches the first gap
   round, line 8's quorum is unreachable forever. The heal therefore re-seats
   [r_rn] with the same catch-up rule recovery uses; the sending task never
   stopped, so nothing else needs restarting. *)
let resync t = t.catch_up <- true

let susp_level t = Array.sub t.susp t.base t.cfg.Config.n
let susp_level_get t k =
  if k < 0 || k >= t.cfg.Config.n then
    invalid_arg "Node.susp_level_get: pid out of range";
  t.susp.(t.base + k)
let sending_round t = t.s_rn
let receiving_round t = t.r_rn
let current_timeout t = t.current_timeout
let max_timeout_armed t = t.max_timeout_armed
let max_susp_level_seen t = t.max_susp_seen
let local_increments t = t.local_increments
let lattice_invariant_holds t = max_susp t - min_susp t <= 1

(* Logical count: table entries plus the collapsed-full window — what the
   table would hold without the collapse, so E3's boundedness column (and
   [max_round_state]) measure the algorithm, not the representation. *)
let round_state_cardinal t =
  Dstruct.Rounds.cardinal t.rec_from
  + max 0 (t.full_upto - t.r_rn)
  + Dstruct.Rounds.cardinal t.suspicions

let retained_round_entries t =
  Dstruct.Rounds.cardinal t.rec_from + Dstruct.Rounds.cardinal t.suspicions
