(** Struct-of-arrays backing for the per-node hot state of a cluster.

    Every {!Node} of one simulation owns a row of [susp] (its
    [susp_level] vector, [n] contiguous ints at offset [me * n]) and one
    slot of each extrema array, instead of a private [int array] plus
    mutable record fields. A whole cluster's suspicion state is then three
    flat arrays: the gossip merge, the leader scan and the extrema reads
    walk sequential memory instead of chasing [n] heap-scattered records.

    One store serves one cluster — rows are indexed by process id, so two
    clusters must never share a store. {!Cluster.create} allocates one per
    cluster; a standalone {!Node.create_with_transport} allocates a private
    one unless the caller passes [?store]. *)

type t = {
  n : int;
  susp : int array;  (** [n] rows of [n] ints; process [p]'s row at [p * n] *)
  cached_max : int array;  (** per process: exact max of its row *)
  cached_min : int array;  (** per process: min of its row, maybe stale *)
  min_stale : bool array;  (** per process: must the min be recomputed? *)
}

(** [create ~n] is an all-zero store for an [n]-process cluster. *)
val create : n:int -> t

val n : t -> int
