type pid = int

type t =
  | Alive of { rn : int; susp_level : int array }
  | Suspicion of { rn : int; suspects : pid list }
  | Heartbeat of { rn : int }
  | Aggregate of { rn : int; levels : int array }
  | Accuse of { rn : int; target : pid; level : int }

let round = function
  | Alive { rn; _ }
  | Suspicion { rn; _ }
  | Heartbeat { rn }
  | Aggregate { rn; _ }
  | Accuse { rn; _ } -> rn

let is_alive = function
  | Alive _ -> true
  | Suspicion _ | Heartbeat _ | Aggregate _ | Accuse _ -> false

let wire_size = function
  | Alive { susp_level; _ } -> 1 + 4 + (4 * Array.length susp_level)
  | Suspicion { suspects; _ } -> 1 + 4 + 4 + (4 * List.length suspects)
  | Heartbeat _ -> 1 + 4
  | Aggregate { levels; _ } -> 1 + 4 + (4 * Array.length levels)
  | Accuse _ -> 1 + 4 + 4 + 4

(* Observability classifier for {!Net.Spec.with_classify}. [round] is only set
   for ALIVE, matching {!Scenarios.Scenario.round_of_omega}: SUSPICION
   carries a round number but no assumption constrains its delivery, and the
   checker must not mistake it for an ALIVE arrival. The lean variant's
   messages all classify with [round = -1] for the same reason — the
   checker verifies Figure 3's per-round ALIVE arrival pattern and must
   never key on relay traffic. (The {e adversary} still sees their round
   tags: {!Scenarios.Scenario.round_rn_of_omega} is a separate
   projection.) *)
let info = function
  | Alive { rn; _ } as m -> { Obs.Event.kind = "alive"; round = rn; bytes = wire_size m }
  | Suspicion _ as m -> { Obs.Event.kind = "susp"; round = -1; bytes = wire_size m }
  | Heartbeat _ as m -> { Obs.Event.kind = "hb"; round = -1; bytes = wire_size m }
  | Aggregate _ as m -> { Obs.Event.kind = "agg"; round = -1; bytes = wire_size m }
  | Accuse _ as m -> { Obs.Event.kind = "accuse"; round = -1; bytes = wire_size m }

let pp ppf = function
  | Alive { rn; susp_level } ->
      Format.fprintf ppf "ALIVE(%d, [%a])" rn
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           Format.pp_print_int)
        (Array.to_list susp_level)
  | Suspicion { rn; suspects } ->
      Format.fprintf ppf "SUSPICION(%d, {%a})" rn
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        suspects
  | Heartbeat { rn } -> Format.fprintf ppf "HEARTBEAT(%d)" rn
  | Aggregate { rn; levels } ->
      Format.fprintf ppf "AGGREGATE(%d, [%a])" rn
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           Format.pp_print_int)
        (Array.to_list levels)
  | Accuse { rn; target; level } ->
      Format.fprintf ppf "ACCUSE(%d, target=%d, level=%d)" rn target level
