type pid = int

type t =
  | Alive of { rn : int; susp_level : int array }
  | Suspicion of { rn : int; suspects : pid list }

let round = function Alive { rn; _ } -> rn | Suspicion { rn; _ } -> rn
let is_alive = function Alive _ -> true | Suspicion _ -> false

let wire_size = function
  | Alive { susp_level; _ } -> 1 + 4 + (4 * Array.length susp_level)
  | Suspicion { suspects; _ } -> 1 + 4 + 4 + (4 * List.length suspects)

(* Observability classifier for {!Net.Network.create}. [round] is only set
   for ALIVE, matching {!Scenarios.Scenario.round_of_omega}: SUSPICION
   carries a round number but no assumption constrains its delivery, and the
   checker must not mistake it for an ALIVE arrival. *)
let info = function
  | Alive { rn; _ } as m -> { Obs.Event.kind = "alive"; round = rn; bytes = wire_size m }
  | Suspicion _ as m -> { Obs.Event.kind = "susp"; round = -1; bytes = wire_size m }

let pp ppf = function
  | Alive { rn; susp_level } ->
      Format.fprintf ppf "ALIVE(%d, [%a])" rn
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           Format.pp_print_int)
        (Array.to_list susp_level)
  | Suspicion { rn; suspects } ->
      Format.fprintf ppf "SUSPICION(%d, {%a})" rn
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        suspects
