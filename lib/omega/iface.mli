(** The shared node interface (DESIGN.md §15): one algorithm-agnostic
    surface over a running Ω cluster — start, per-process leader output,
    crash-recovery hooks and the observers the harness samples — so
    {!Harness.Run} and {!Fault.Injector} select the algorithm the way the
    engine already selects its scheduler backend.

    Implementations: {!Cluster.iface} (the Figure-1/2/3 gossip family)
    and {!Lean.iface} (the communication-efficient relay variant). Both
    run over the same {!Message} network type, so networks, scenarios and
    classifiers need no algorithm plumbing.

    Construction is observationally free: building the record allocates a
    few closures and draws no randomness, which keeps digests of runs
    routed through it byte-identical to direct-wired ones. *)

type pid = int

type t = {
  config : Config.t;
  net : Message.t Net.Network.t;
  start : unit -> unit;  (** start every process *)
  leader_of : pid -> pid;  (** current [leader ()] output of a process *)
  recover : pid -> unit;
      (** un-crash the network endpoint and rejoin the process with its
          persisted state (crash-recovery, paper §1.3) *)
  resync : pid -> unit;
      (** re-seat a stranded-but-alive process past a partition gap
          (same catch-up rule as recovery; see DESIGN.md §12) *)
  sending_round : pid -> int;
  receiving_round : pid -> int;
  susp_level_get : pid -> pid -> int;
  max_susp_level_seen : pid -> int;
  max_timeout_armed : pid -> Sim.Time.t;
  lattice_invariant_holds : pid -> bool;
      (** Lemma 8's [max - min <= 1]; vacuously [true] for algorithms
          without the bounded condition *)
  round_state_cardinal : pid -> int;
      (** live round-indexed entries (memory boundedness); [0] for
          algorithms with no per-round state *)
}

val config : t -> Config.t
val net : t -> Message.t Net.Network.t
val engine : t -> Sim.Engine.t
val n : t -> int
val start : t -> unit
val leader_of : t -> pid -> pid
val recover : t -> pid -> unit
val resync : t -> pid -> unit
val sending_round : t -> pid -> int
val receiving_round : t -> pid -> int
val susp_level_get : t -> pid -> pid -> int
val max_susp_level_seen : t -> pid -> int
val max_timeout_armed : t -> pid -> Sim.Time.t
val lattice_invariant_holds : t -> pid -> bool
val round_state_cardinal : t -> pid -> int

(** [crash_at t p time] schedules a permanent-unless-recovered crash. *)
val crash_at : t -> pid -> Sim.Time.t -> unit

(** [recover_at t p time] schedules a {!recover}. *)
val recover_at : t -> pid -> Sim.Time.t -> unit

(** Current [leader ()] output of every non-crashed process. *)
val leaders : t -> (pid * pid) list

(** [Some l] iff every non-crashed process currently outputs the same
    leader [l] and [l] has not crashed — the "good period" of §1.1. *)
val agreed_leader : t -> pid option
