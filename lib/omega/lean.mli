(** Communication-efficient Ω: the relay variant (DESIGN.md §15).

    Instead of the Figure family's all-to-all ALIVE gossip (Θ(n²) messages
    per round), every process sends one HEARTBEAT per round to its current
    leader estimate (the {e relay}), and only the relay broadcasts — one
    AGGREGATE per round carrying the suspicion-level vector. Steady state
    is [2(n-1)] messages per round: O(n). The relay raises the level of
    processes whose heartbeat counter stalls past an adaptive slack
    (measured in the relay's own rounds); every process monitors its relay
    and, past an adaptive budget of silent periods, raises the relay's
    level itself and broadcasts an ACCUSE — the only quadratic-ish traffic,
    flowing only while leadership actually moves.

    Same {!Message} network type, same seeded determinism, same hot-path
    contract as {!Node} (allocation-free handlers, interned copy-on-write
    AGGREGATE payloads, packed self-reposting tasks, mask-guarded
    emission; DESIGN.md §11/§14). Select it via
    [Harness.Run.Spec.with_algo `Relay], or drive it directly through
    {!iface}. *)

type pid = int

(** One process's state. All mutation happens inside engine callbacks. *)
type t

(** A full cluster over one shared {!Store}. *)
type cluster

(** [create cfg net] builds one process per network endpoint and installs
    their receive handlers. Like {!Cluster.create}, creation only splits
    per-process RNG streams — it schedules nothing and emits nothing. *)
val create : Config.t -> Message.t Net.Network.t -> cluster

(** Arms every process's heartbeat and monitor tasks at independent random
    offsets (§3: no relation between send times). [owned] restricts the
    armed set to one shard's processes, as in {!Cluster.start}
    (DESIGN.md §18). *)
val start : ?owned:(pid -> bool) -> cluster -> unit

val node : cluster -> pid -> t

(** The algorithm-agnostic surface consumed by {!Harness.Run} and
    {!Fault.Injector}. *)
val iface : cluster -> Iface.t

(** Current leader estimate: lexicographic min of [(level, pid)] over the
    process's own row. *)
val leader : t -> pid

(** Re-arms a process after {!Net.Network.recover}: persisted levels and
    counters survive; monitor evidence and staleness clocks are forgiven. *)
val recover : t -> unit

(** Partition-heal catch-up: forgives staleness/monitor evidence spanning
    the cut without restarting tasks. *)
val resync : t -> unit

(** ACCUSE broadcasts this process has sent (experiment accounting). *)
val accusations_sent : t -> int

val heartbeat_round : t -> int
