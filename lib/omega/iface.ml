type pid = int

(* First-class algorithm surface (DESIGN.md §15): everything the harness,
   the fault injector and the experiments need from a running cluster,
   with no reference to which algorithm is behind it. Constructing one
   allocates a handful of closures once per run and draws no randomness,
   so routing a run through it leaves the event stream untouched. *)
type t = {
  config : Config.t;
  net : Message.t Net.Network.t;
  start : unit -> unit;
  leader_of : pid -> pid;
  recover : pid -> unit;
  resync : pid -> unit;
  sending_round : pid -> int;
  receiving_round : pid -> int;
  susp_level_get : pid -> pid -> int;
  max_susp_level_seen : pid -> int;
  max_timeout_armed : pid -> Sim.Time.t;
  lattice_invariant_holds : pid -> bool;
  round_state_cardinal : pid -> int;
}

let config t = t.config
let net t = t.net
let engine t = Net.Network.engine t.net
let n t = Net.Network.n t.net
let start t = t.start ()
let leader_of t p = t.leader_of p
let recover t p = t.recover p
let resync t p = t.resync p
let sending_round t p = t.sending_round p
let receiving_round t p = t.receiving_round p
let susp_level_get t p k = t.susp_level_get p k
let max_susp_level_seen t p = t.max_susp_level_seen p
let max_timeout_armed t p = t.max_timeout_armed p
let lattice_invariant_holds t p = t.lattice_invariant_holds p
let round_state_cardinal t p = t.round_state_cardinal p

let crash_at t p time =
  let net = t.net in
  ignore
    (Sim.Engine.schedule_at (engine t) time (fun () ->
         Net.Network.crash net p))

let recover_at t p time =
  ignore (Sim.Engine.schedule_at (engine t) time (fun () -> t.recover p))

let leaders t =
  List.map (fun p -> (p, t.leader_of p)) (Net.Network.correct t.net)

let agreed_leader t =
  match leaders t with
  | [] -> None
  | (_, l) :: rest ->
      if
        List.for_all (fun (_, l') -> l' = l) rest
        && not (Net.Network.is_crashed t.net l)
      then Some l
      else None
