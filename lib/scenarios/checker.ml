type pid = int

type violation = { rn : int; q : pid; detail : string }

type report = {
  rounds_checked : int;
  points_checked : int;
  points_timely : int;
  points_winning : int;
  points_crashed : int;
  points_skipped : int;
  rounds_masked : int;
  violations : violation list;
}

let pp_report ppf r =
  Format.fprintf ppf
    "rounds=%d points=%d timely=%d winning=%d crashed=%d skipped=%d \
     masked=%d violations=%d"
    r.rounds_checked r.points_checked r.points_timely r.points_winning
    r.points_crashed r.points_skipped r.rounds_masked
    (List.length r.violations)

type arrival = { src : pid; sent_at : Sim.Time.t; received_at : Sim.Time.t }

type t = {
  scenario : Scenario.t;
  (* (dst, rn) -> arrivals in delivery order (stored reversed). *)
  arrivals : (pid * int, arrival list ref) Hashtbl.t;
}

let create scenario = { scenario; arrivals = Hashtbl.create 1024 }

(* The checker consumes [Deliver] events whose [round >= 0] — by the
   classifier contract (see {!Net.Spec.with_classify}) exactly the
   assumption-bearing messages, i.e. what [round_of] used to tag. *)
let on_event t = function
  | Obs.Event.Deliver { now; sent_at; src; dst; round = rn; _ } when rn >= 0
    ->
      let key = (dst, rn) in
      let cell =
        match Hashtbl.find_opt t.arrivals key with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.add t.arrivals key cell;
            cell
      in
      cell :=
        {
          src;
          sent_at = Sim.Time.of_us sent_at;
          received_at = Sim.Time.of_us now;
        }
        :: !cell
  | _ -> ()

let sink t = Obs.Sink.make ~mask:Obs.Event.c_net (on_event t)

(* Position (1-based) of the center's ALIVE(rn) among the messages [q]
   received, and its transfer delay. *)
let center_arrival t ~q ~rn ~center =
  match Hashtbl.find_opt t.arrivals (q, rn) with
  | None -> `No_arrivals
  | Some cell ->
      let in_order = List.rev !cell in
      let rec scan pos = function
        | [] -> `Missing (List.length in_order)
        | a :: rest ->
            if a.src = center then
              `Found (pos, Sim.Time.sub a.received_at a.sent_at)
            else scan (pos + 1) rest
      in
      scan 1 in_order

let verify ?(masked = fun _ -> false) ?(stretch = 1) t ~upto_round ~crashed =
  if stretch < 1 then invalid_arg "Checker.verify: stretch must be >= 1";
  let p = Scenario.params t.scenario in
  let winning_rank = p.Scenario.n - p.Scenario.t in
  let rounds_checked = ref 0 in
  let points_checked = ref 0 in
  let timely = ref 0 in
  let winning = ref 0 in
  let crashed_ok = ref 0 in
  let skipped = ref 0 in
  let masked_rounds = ref 0 in
  let violations = ref [] in
  (match Scenario.center t.scenario with
  | None -> ()
  | Some _ ->
      for rn = p.Scenario.rn0 to upto_round do
        let center = Option.get (Scenario.center_at t.scenario rn) in
        (* Fault plans suspend the assumption: a round whose messages could
           be in flight during a partition or crash window is excused (the
           paper's assumptions are promises about eventually-good periods,
           and a partition is by construction not one). *)
        if masked rn then incr masked_rounds
        else if Scenario.in_s t.scenario rn then begin
          incr rounds_checked;
          List.iter
            (fun (q, _mode) ->
              incr points_checked;
              if crashed q then incr crashed_ok
              else begin
                (* [stretch] is the routed network's diameter: each hop is
                   its own timely draw, so a δ + g(s) promise per link
                   becomes hops * (δ + g(s)) end to end. *)
                let delta_bound =
                  Sim.Time.of_us
                    (stretch
                    * Sim.Time.to_us
                        (Sim.Time.add p.Scenario.delta
                           (Scenario.g_function t.scenario rn)))
                in
                match center_arrival t ~q ~rn ~center with
                | `Found (pos, delay) ->
                    if Sim.Time.(delay <= delta_bound) then incr timely
                    else if pos <= winning_rank then incr winning
                    else
                      violations :=
                        {
                          rn;
                          q;
                          detail =
                            Format.asprintf
                              "neither timely (delay %a > %a) nor winning \
                               (rank %d > %d)"
                              Sim.Time.pp delay Sim.Time.pp delta_bound pos
                              winning_rank;
                        }
                        :: !violations
                | `No_arrivals -> incr skipped
                | `Missing received ->
                    (* The center's message has not arrived by the horizon.
                       If q has already received enough other ALIVEs, the
                       center can no longer be winning: violation. Otherwise
                       the round is still in flight: skip. *)
                    if received >= winning_rank then
                      violations :=
                        {
                          rn;
                          q;
                          detail =
                            Printf.sprintf
                              "center ALIVE not delivered, %d others already \
                               arrived"
                              received;
                        }
                        :: !violations
                    else incr skipped
              end)
            (Scenario.q_set t.scenario rn)
        end
      done);
  {
    rounds_checked = !rounds_checked;
    points_checked = !points_checked;
    points_timely = !timely;
    points_winning = !winning;
    points_crashed = !crashed_ok;
    points_skipped = !skipped;
    rounds_masked = !masked_rounds;
    violations = List.rev !violations;
  }
