(** Trace checker: verifies that a finished run actually satisfied the
    assumption the scenario promised.

    Register {!sink} on the engine (typically under {!Obs.Sink.tee}) before
    the run; afterwards {!verify} replays the witness: for every round
    [s ∈ S] up to a horizon and every point [q ∈ Q(s)], property A2 must
    hold — [q] crashed, or the center's ALIVE(s) was received by [q] within
    [δ + g s] of its sending, or among the first [n − t] ALIVE(s) messages
    [q] received.

    The checker consumes the typed {!Obs.Event} stream: [Deliver] events
    with [round >= 0], which by the classifier contract (the network's
    [classify], e.g. {!Omega.Message.info}) are exactly the messages the
    assumption constrains. It is therefore message-type agnostic — any
    algorithm whose classifier tags its assumption-bearing messages can be
    checked. The verification horizon is still chosen by the caller from
    {!Scenario.arrival_bound} (see [Harness.Run.checkable_round]).

    This closes the loop on experiment honesty: E1/E2/E7's "the assumption
    held" is a checked fact about the trace, not a property we hope the
    delay oracle implements. *)

type pid = int

type violation = {
  rn : int;
  q : pid;
  detail : string;  (** human-readable reason A2 failed at (rn, q) *)
}

type report = {
  rounds_checked : int;  (** rounds of S in the verified window *)
  points_checked : int;  (** (rn, q) pairs examined *)
  points_timely : int;  (** satisfied via A2(2) *)
  points_winning : int;  (** satisfied via A2(3) but not A2(2) *)
  points_crashed : int;  (** satisfied via A2(1) *)
  points_skipped : int;  (** not judgeable (round incomplete at horizon) *)
  rounds_masked : int;  (** excused by the caller's [masked] predicate *)
  violations : violation list;
}

val pp_report : Format.formatter -> report -> unit

type t

val create : Scenario.t -> t

(** Record one event; {!sink} packages this for {!Sim.Engine.set_sink}. *)
val on_event : t -> Obs.Event.t -> unit

(** A sink with mask {!Obs.Event.c_net} feeding {!on_event}. *)
val sink : t -> Obs.Sink.t

(** [verify t ~upto_round ~crashed] checks every [s ∈ S] with
    [rn0 <= s <= upto_round]. [crashed q] must say whether [q] crashed
    during the run. [masked rn] (default: never) excuses round [rn]
    entirely — used by fault plans for rounds whose messages could be in
    flight during a partition or crash–recovery window, when the
    assumption's promise is deliberately suspended (see
    [Harness.Run]). Masked rounds are counted in [rounds_masked].

    [stretch] (default 1) scales the timeliness bound to
    [stretch * (δ + g s)]: on a routed topology each hop draws its own
    timely delay, so the harness passes the network diameter. *)
val verify :
  ?masked:(int -> bool) ->
  ?stretch:int ->
  t ->
  upto_round:int ->
  crashed:(pid -> bool) ->
  report
