(** Validated run environment: everything about a simulated world except
    the engine seed and the fault plan.

    [Env.make] assembles algorithm config, scenario regime and params,
    optional fair-lossy wrapper and message classifier in one step, and
    rejects inconsistent combinations ([params.n <> config.n],
    [alpha <> n - t], mismatched [beta], out-of-range loss, bad regime
    centers) up front — the checks hand-wired setups kept scattering over
    [Network.of_spec] + [Lossy.wrap] + oracle plumbing in three different
    orders. An [Env.t] is immutable and shareable; [build] instantiates
    the run-local scenario and network for one engine (pool tasks each
    build their own, per the engine-local-state rule).

    Fault plans deliberately ride [Harness.Run.Spec], not the environment:
    [Fault] sits above [Scenarios] in the library order (the adaptive
    adversary drives {!Scenario.set_victim_override}), so this module
    cannot name {!Fault.Plan.t} — and a plan is per-run churn, not part of
    the world's definition. *)

type pid = int
type t

(** [make config regime] validates and freezes an environment.

    [params] default to
    [Scenario.default_params ~n ~t:(n - alpha) ~beta] derived from
    [config]; [lossy] is an optional [(loss, burst)] pair for
    {!Net.Lossy.wrap}; [classify] (default {!Omega.Message.info}) feeds
    the network's observability events; [scenario_seed] (default [42L])
    fixes the scenario plan, independently of any run seed.
    Raises [Invalid_argument] on any inconsistency. *)
val make :
  ?params:Scenario.params ->
  ?lossy:float * int ->
  ?classify:(Omega.Message.t -> Obs.Event.msg_info) ->
  ?scenario_seed:int64 ->
  Omega.Config.t ->
  Scenario.regime ->
  t

val config : t -> Omega.Config.t

(** Whether {!build} wraps the oracle in the legacy {!Net.Lossy} layer.
    Its drop coins come from one stream drawn in global send order —
    interleaving-dependent, so intra-run parallel execution falls back to
    sequential on lossy environments (DESIGN.md §18; the fair-lossy
    {e channel} classes draw per-executor and parallelize fine). *)
val is_lossy : t -> bool
val params : t -> Scenario.params
val regime : t -> Scenario.regime
val scenario_seed : t -> int64

(** The regime's center (initial one for [Failover]); no scenario needed. *)
val center : t -> pid option

(** The center in charge of round [rn]. *)
val center_at : t -> int -> pid option

(** [build t engine] instantiates the scenario and network for one engine
    (through {!Net.Network.of_spec}). Both are run-local: call once per
    simulation stack. When [lossy] is set, one RNG stream is split off the
    engine for the wrapper; a lossless build over the default topology
    draws nothing from the engine. [flight_pool] (default [true]) feeds
    the spec's [with_pool] — set it to [false] only for A/B allocation
    measurements.

    [topology] (default [Complete]) selects the network graph, and
    [channel] (default [Reliable]) applies one channel class uniformly to
    every edge; any non-default value of either switches the network to
    the routed multi-hop path (fresh digests). Heterogeneous per-edge
    channel maps are a [Net.Spec.with_channels] affair — build the network
    by hand for those. *)
val build :
  ?flight_pool:bool ->
  ?topology:Net.Topology.kind ->
  ?channel:Net.Topology.channel ->
  t ->
  Sim.Engine.t ->
  Scenario.t * Omega.Message.t Net.Network.t

val describe : t -> string
