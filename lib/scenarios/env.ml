type pid = int

type t = {
  config : Omega.Config.t;
  params : Scenario.params;
  regime : Scenario.regime;
  scenario_seed : int64;
  lossy : (float * int) option;
  classify : Omega.Message.t -> Obs.Event.msg_info;
}

let make ?params ?lossy ?(classify = Omega.Message.info)
    ?(scenario_seed = 42L) config regime =
  Omega.Config.validate config;
  let params =
    match params with
    | Some p -> p
    | None ->
        Scenario.default_params ~n:config.Omega.Config.n
          ~t:(config.Omega.Config.n - config.Omega.Config.alpha)
          ~beta:config.Omega.Config.beta
  in
  (* The consistency checks hand-wired setups kept getting wrong, now
     rejected in one place before anything runs. *)
  if params.Scenario.n <> config.Omega.Config.n then
    invalid_arg "Env.make: params.n differs from config.n";
  if config.Omega.Config.alpha <> params.Scenario.n - params.Scenario.t then
    invalid_arg "Env.make: config.alpha must equal n - t";
  if params.Scenario.beta <> config.Omega.Config.beta then
    invalid_arg "Env.make: params.beta differs from config.beta";
  (match lossy with
  | Some (loss, burst) ->
      if loss < 0. || loss >= 1. then
        invalid_arg "Env.make: loss must be in [0, 1)";
      if burst < 1 then invalid_arg "Env.make: burst must be >= 1"
  | None -> ());
  (* Surface regime errors (center range, failover switch <= rn0) eagerly
     rather than at first [build] inside a pool task. *)
  ignore (Scenario.create params regime ~seed:scenario_seed);
  { config; params; regime; scenario_seed; lossy; classify }

let config t = t.config
let is_lossy t = Option.is_some t.lossy
let params t = t.params
let regime t = t.regime
let scenario_seed t = t.scenario_seed
let center t = Scenario.center_of_regime t.regime
let center_at t rn = Scenario.center_at_round t.regime rn

(* Fresh per engine: scenarios and networks hold run-local mutable state
   (plan memoization, counters, fault surfaces), so a pool task must build
   its own from the shared immutable [t]. The lossy RNG is split off the
   engine only when a wrapper is requested — a lossless [build] leaves the
   engine's stream exactly where hand-wiring left it, which keeps plan-free
   digests byte-identical across the API migration. *)
let build ?(flight_pool = true) ?(topology = Net.Topology.Complete)
    ?(channel = Net.Topology.Reliable) t engine =
  let scenario =
    Scenario.create t.params t.regime ~seed:t.scenario_seed
  in
  (* Eta-expanded on purpose: a partial application of [oracle_rn] would be
     an arity-1 curry closure, and the network's call through it would then
     allocate an intermediate closure per remaining argument — per message.
     The explicit [fun] has exact arity 5, so [caml_apply5] jumps straight
     to the body. *)
  let oracle ~now ~seq ~src ~dst msg =
    Scenario.oracle_rn scenario ~round_of:Scenario.round_rn_of_omega ~now ~seq
      ~src ~dst msg
  in
  let spec =
    Net.Spec.default
    |> Net.Spec.with_classify t.classify
    |> Net.Spec.with_pool flight_pool
    |> Net.Spec.with_topology topology
  in
  (* A channel selector — even a uniform one — switches the network to the
     routed path, so only install one when the row asked for a non-default
     class: the complete/Reliable default must stay on the legacy direct
     dispatch, digests included. *)
  let spec =
    match channel with
    | Net.Topology.Reliable -> spec
    | c -> Net.Spec.with_channels (fun ~src:_ ~dst:_ -> c) spec
  in
  let net =
    match t.lossy with
    | None ->
        (* The lossless path also hands the network the unboxed oracle
           flavour ([delay_oracle_us]): same draws, same delays, but no
           [Deliver_after] box per message. *)
        let oracle_us ~now ~seq ~at ~src ~dst msg =
          Scenario.oracle_us scenario ~round_of:Scenario.round_rn_of_omega
            ~now ~seq ~at ~src ~dst msg
        in
        Net.Network.of_spec
          (spec |> Net.Spec.with_oracle oracle
          |> Net.Spec.with_oracle_us oracle_us)
          engine ~n:t.config.Omega.Config.n
    | Some (loss, burst) ->
        let oracle =
          Net.Lossy.wrap ~loss ~burst
            ~rng:(Dstruct.Rng.split (Sim.Engine.rng engine))
            ~n:t.config.Omega.Config.n oracle
        in
        Net.Network.of_spec
          (spec |> Net.Spec.with_oracle oracle)
          engine ~n:t.config.Omega.Config.n
  in
  (scenario, net)

let describe t =
  Scenario.describe (Scenario.create t.params t.regime ~seed:t.scenario_seed)
