type pid = int

type mode = Timely | Winning

type regime =
  | Full_timely
  | T_source of { center : pid }
  | Moving_source of { center : pid }
  | Message_pattern of { center : pid }
  | Combined of { center : pid }
  | Rotating_star of { center : pid }
  | Intermittent_star of { center : pid; d : int }
  | Growing_star of { center : pid; d : int; g_step : Sim.Time.t }
  | Growing_gaps of { center : pid; d : int; f_step : int }
  | Failover of { first : pid; second : pid; switch : int }
  | Chaos

let regime_name = function
  | Full_timely -> "full-timely"
  | T_source _ -> "t-source"
  | Moving_source _ -> "moving-source"
  | Message_pattern _ -> "message-pattern"
  | Combined _ -> "combined"
  | Rotating_star _ -> "rotating-star"
  | Intermittent_star _ -> "intermittent-star"
  | Growing_star _ -> "growing-star"
  | Growing_gaps _ -> "growing-gaps"
  | Failover _ -> "failover"
  | Chaos -> "chaos"

type params = {
  n : int;
  t : int;
  beta : Sim.Time.t;
  delta : Sim.Time.t;
  min_delay : Sim.Time.t;
  async_base : Sim.Time.t;
  async_growth : float;
  rn0 : int;
  order_gap : Sim.Time.t;
  victim_block0 : int;
  victim_block_step : int;
  victim_delay : Sim.Time.t;
}

let default_params ~n ~t ~beta =
  {
    n;
    t;
    beta;
    delta = Sim.Time.of_ms 2;
    min_delay = Sim.Time.of_us 100;
    async_base = Sim.Time.of_ms 30;
    async_growth = 0.;
    rn0 = 20;
    order_gap = beta;
    victim_block0 = 4;
    victim_block_step = 1;
    victim_delay = Sim.Time.of_sec 3600;
  }

(* Per-round plan entry, generated lazily and memoized so oracle, witness
   accessors and checker all see the same pseudo-random draw. [points] is
   [q] re-indexed by destination pid (0 = not a point, 1 = timely,
   2 = winning): the oracle consults the star set for every single message,
   and a linear scan of [q] — t tuple dereferences — was the hottest
   compute loop in the whole simulator at large t. One byte table per
   round, O(1) per message. *)
type round_plan = { in_s : bool; q : (pid * mode) array; points : Bytes.t }

(* Shared by every round with no star point: plans are immutable, so rounds
   outside S (and rounds before rn0) all alias this one record instead of
   allocating fresh copies on the oracle path. Its [points] is never read
   ([mode_of_point] is only reached when [in_s]). *)
let empty_plan = { in_s = false; q = [||]; points = Bytes.empty }

let plan_of_q ~n ~in_s q =
  let points = Bytes.make n '\000' in
  Array.iter
    (fun (p, m) ->
      Bytes.set points p (match m with Timely -> '\001' | Winning -> '\002'))
    q;
  { in_s; q; points }

type t = {
  p : params;
  regime : regime;
  plan_rng : Dstruct.Rng.t;  (* dedicated stream: draws happen in rn order *)
  (* Jitter streams, one per executor ([delay_rngs.(at)]): a message's
     delay draw comes from the stream of the process whose code performs
     it — the sender on the direct path, the relay on a routed hop — so
     each stream's draw sequence is a pure function of that process's
     local computation, never of how processes interleave. This is the
     interleaving-invariance DESIGN.md §18's intra-run parallel mode
     rests on; plans ([plan_rng]) stay a single stream because their
     draws are forced into round order by the high-water marks below. *)
  delay_rngs : Dstruct.Rng.t array;
  fixed_q : (pid * mode) array;  (* for fixed-set regimes *)
  plans : (int, round_plan) Hashtbl.t;
  mutable memo_rn : int;  (* round of [memo_plan]; 0 = the rn < 1 plan *)
  mutable memo_plan : round_plan;
  mutable s_generated_upto : int;  (* rounds < this have plans (intermittent) *)
  mutable s_next : int;  (* next round to be put in S (intermittent) *)
  mutable block_starts : int array;  (* block_starts.(k) = first rn of block k *)
  mutable blocks : int;  (* number of valid entries in block_starts *)
  mutable memo_block_rn : int;  (* round of [memo_block]; -1 = empty *)
  mutable memo_block : int;
  (* Adaptive adversary hook (Fault.Injector): when >= 0, this process is
     the victim instead of the block rotation — its ALIVEs are delayed
     beyond the horizon to every receiver. The assumption's protected
     arms (timely/winning star points) are untouched, so under A'-style
     regimes the adversary can chase leaders but never violate the
     promise about the center. *)
  mutable victim_override : pid;
}

(* The center in charge of round [rn] (failover switches centers). *)
let center_at_round regime rn =
  match regime with
  | Full_timely | Chaos -> None
  | T_source { center }
  | Moving_source { center }
  | Message_pattern { center }
  | Combined { center }
  | Rotating_star { center } -> Some center
  | Intermittent_star { center; _ } -> Some center
  | Growing_star { center; _ } -> Some center
  | Growing_gaps { center; _ } -> Some center
  | Failover { first; second; switch } ->
      Some (if rn < switch then first else second)

(* [center_at_round] without the option box, for the per-message oracle
   path; only called for regimes that have a center. *)
let center_pid regime rn =
  match regime with
  | T_source { center }
  | Moving_source { center }
  | Message_pattern { center }
  | Combined { center }
  | Rotating_star { center }
  | Intermittent_star { center; _ }
  | Growing_star { center; _ }
  | Growing_gaps { center; _ } -> center
  | Failover { first; second; switch } -> if rn < switch then first else second
  | Full_timely | Chaos -> invalid_arg "Scenario.center_pid: no center"

let center_of_regime regime = center_at_round regime 1

let others ~n ~center = List.filter (fun j -> j <> center) (List.init n Fun.id)

let create p regime ~seed =
  if p.n < 2 then invalid_arg "Scenario.create: n < 2";
  if p.t < 0 || p.t >= p.n then invalid_arg "Scenario.create: t out of range";
  (match regime with
  | Failover { first; second; switch } ->
      if first < 0 || first >= p.n || second < 0 || second >= p.n then
        invalid_arg "Scenario.create: center out of range";
      if first = second then invalid_arg "Scenario.create: equal centers";
      if switch <= p.rn0 then invalid_arg "Scenario.create: switch <= rn0"
  | _ -> (
      match center_of_regime regime with
      | Some c when c < 0 || c >= p.n ->
          invalid_arg "Scenario.create: center out of range"
      | Some _ | None -> ()));
  let root = Dstruct.Rng.create seed in
  let plan_rng = Dstruct.Rng.split root in
  (* Split in pid order, so the streams are a function of (seed, n). *)
  let delay_rngs =
    let a = Array.make p.n (Dstruct.Rng.split root) in
    for i = 1 to p.n - 1 do
      a.(i) <- Dstruct.Rng.split root
    done;
    a
  in
  let fixed_q =
    match regime with
    | T_source { center } | Moving_source { center } ->
        Array.of_list
          (List.map
             (fun q -> (q, Timely))
             (Dstruct.Rng.sample plan_rng p.t (others ~n:p.n ~center)))
    | Message_pattern { center } ->
        Array.of_list
          (List.map
             (fun q -> (q, Winning))
             (Dstruct.Rng.sample plan_rng p.t (others ~n:p.n ~center)))
    | Combined { center } ->
        Array.of_list
          (List.map
             (fun q -> (q, if Dstruct.Rng.bool plan_rng then Timely else Winning))
             (Dstruct.Rng.sample plan_rng p.t (others ~n:p.n ~center)))
    | Full_timely | Rotating_star _ | Intermittent_star _ | Growing_star _
    | Growing_gaps _ | Failover _ | Chaos -> [||]
  in
  let block_starts = Array.make 64 0 in
  block_starts.(0) <- 1;
  {
    p;
    regime;
    plan_rng;
    delay_rngs;
    fixed_q;
    plans = Hashtbl.create 256;
    memo_rn = 0;
    memo_plan = empty_plan;
    s_generated_upto = 1;
    s_next = p.rn0;
    block_starts;
    blocks = 1;
    memo_block_rn = -1;
    memo_block = 0;
    victim_override = -1;
  }

let params t = t.p
let regime t = t.regime
let center t = center_of_regime t.regime
let center_at t rn = center_at_round t.regime rn

let set_victim_override t p =
  if p < -1 || p >= t.p.n then
    invalid_arg "Scenario.set_victim_override: pid out of range";
  t.victim_override <- p

let victim_override t = t.victim_override

let fresh_rotating_q t ~center =
  Array.of_list
    (List.map
       (fun q -> (q, if Dstruct.Rng.bool t.plan_rng then Timely else Winning))
       (Dstruct.Rng.sample t.plan_rng t.p.t (others ~n:t.p.n ~center)))

(* Advance the intermittent sequence S until round [rn] is covered,
   recording a plan for every round passed over. The gap after an S round
   [s] is uniform in [1, bound_at s] — a constant [d] for the intermittent
   star, growing for the Growing_gaps regime. Plans must be drawn in
   increasing round order for determinism, hence the [s_generated_upto]
   high-water mark. *)
let generate_intermittent_upto t ~center ~bound_at rn =
  while t.s_generated_upto <= rn do
    let this = t.s_generated_upto in
    if this < t.p.rn0 then Hashtbl.replace t.plans this empty_plan
    else if this = t.s_next then begin
      Hashtbl.replace t.plans this
        (plan_of_q ~n:t.p.n ~in_s:true (fresh_rotating_q t ~center));
      t.s_next <- this + Dstruct.Rng.int_in t.plan_rng 1 (max 1 (bound_at this))
    end
    else Hashtbl.replace t.plans this empty_plan;
    t.s_generated_upto <- this + 1
  done

(* Rotating regimes re-draw Q every round >= rn0; draws happen in round
   order via the same high-water mark. [center_of] gives the round's center
   (it changes at a failover's switch round). *)
let generate_moving t ~center_of rn =
  while t.s_generated_upto <= rn do
    let this = t.s_generated_upto in
    let plan =
      if this < t.p.rn0 then empty_plan
      else begin
        let q = fresh_rotating_q t ~center:(center_of this) in
        let q =
          match t.regime with
          | Moving_source _ -> Array.map (fun (j, _) -> (j, Timely)) q
          | _ -> q
        in
        plan_of_q ~n:t.p.n ~in_s:true q
      end
    in
    Hashtbl.replace t.plans this plan;
    t.s_generated_upto <- this + 1
  done

(* The memo caches the last round looked up, but senders drift apart by
   whole rounds at large n, so consecutive messages alternate between
   distinct rounds and the memo thrashes. The table hit therefore sits on
   the per-message path: [Hashtbl.find] with a [Not_found] handler, not
   [find_opt], because the [Some] box of a found plan would be a
   two-word allocation per message. *)
let plan_for t rn =
  if rn < 1 then empty_plan
  else if rn = t.memo_rn then t.memo_plan
  else begin
    let plan =
      match Hashtbl.find t.plans rn with
      | plan -> plan
      | exception Not_found ->
        let plan =
          match t.regime with
          | Full_timely ->
              if rn >= t.p.rn0 then plan_of_q ~n:t.p.n ~in_s:true [||]
              else empty_plan
          | Chaos -> empty_plan
          | T_source _ | Moving_source _ | Message_pattern _ | Combined _
            when rn < t.p.rn0 -> empty_plan
          | T_source _ | Message_pattern _ | Combined _ ->
              plan_of_q ~n:t.p.n ~in_s:true t.fixed_q
          | Moving_source { center } ->
              (* Rotating set, all points timely. The per-round draws of a
                 moving source are order-sensitive too. *)
              generate_moving t ~center_of:(fun _ -> center) rn;
              Hashtbl.find t.plans rn
          | Rotating_star { center } ->
              generate_moving t ~center_of:(fun _ -> center) rn;
              Hashtbl.find t.plans rn
          | Failover _ ->
              generate_moving t
                ~center_of:(fun this -> center_pid t.regime this)
                rn;
              Hashtbl.find t.plans rn
          | Intermittent_star { center; d } | Growing_star { center; d; _ } ->
              generate_intermittent_upto t ~center ~bound_at:(fun _ -> d) rn;
              Hashtbl.find t.plans rn
          | Growing_gaps { center; d; f_step } ->
              generate_intermittent_upto t ~center
                ~bound_at:(fun s -> d + (f_step * (s / 256)))
                rn;
              Hashtbl.find t.plans rn
        in
        Hashtbl.replace t.plans rn plan;
        plan
    in
    t.memo_rn <- rn;
    t.memo_plan <- plan;
    plan
  end

let in_s t rn = (plan_for t rn).in_s

let q_set t rn = Array.to_list (plan_for t rn).q

(* The window-widening function f of the A_{f,g} model: the algorithm that
   knows it passes it to [Fig3_fg]. Conservative: at least the gap bound. *)
let f_function t rn =
  match t.regime with
  | Growing_gaps { d; f_step; _ } -> d + (f_step * (rn / 256))
  | Full_timely | T_source _ | Moving_source _ | Message_pattern _
  | Combined _ | Rotating_star _ | Intermittent_star _ | Growing_star _
  | Failover _ | Chaos -> 0

let g_function t rn =
  match t.regime with
  | Growing_star { g_step; _ } ->
      (* Quadratic growth: the algorithms' adaptive timeouts grow at most
         linearly per round (one suspicion level a round), so closure times
         grow at most quadratically with a [timeout_unit/2] coefficient; a
         quadratic g with a larger coefficient cannot be adapted away
         without knowing it. *)
      Sim.Time.of_us (Sim.Time.to_us g_step * (rn / 8) * (rn / 8))
  | Full_timely | T_source _ | Moving_source _ | Message_pattern _
  | Combined _ | Rotating_star _ | Intermittent_star _ | Growing_gaps _
  | Failover _ | Chaos -> Sim.Time.zero

(* ---- victim blocks ----

   The destabilizing adversary: simulated time is cut into blocks of rounds
   with growing lengths (block k spans victim_block0 + k * victim_block_step
   rounds); in each block one "victim" process's ALIVE messages are delayed
   beyond any realistic horizon, making it look crashed. Rotating the victim
   keeps every process's suspicion level growing forever, so no algorithm can
   stabilize unless an assumption protects some process. Growing block
   lengths matter: with fixed blocks, Figure 2's window condition would cap
   every victim's level at the block length and chaos would accidentally
   stabilize. *)

let block_len t k = t.p.victim_block0 + (k * t.p.victim_block_step)

(* Top-level on purpose: as a local [let rec] capturing [t] and [rn] this
   was a closure allocation per call — and [block_of] runs once per
   background message, making it one of the hottest allocation sites in the
   whole simulator. *)
let rec block_search starts rn lo hi =
  (* invariant: starts.(lo) <= rn and (hi = blocks or rn < starts.(hi)) *)
  if hi - lo <= 1 then lo
  else begin
    let mid = (lo + hi) / 2 in
    if starts.(mid) <= rn then block_search starts rn mid hi
    else block_search starts rn lo mid
  end

(* One-entry memo in front of the binary search: the oracle calls this for
   every message, and consecutive messages overwhelmingly share a round
   (sends of one round cluster in time), so most calls skip the O(log
   blocks) search. Pure function of [rn] — the memo cannot change any
   answer. *)
let block_of t rn =
  if rn = t.memo_block_rn then t.memo_block
  else begin
    while t.block_starts.(t.blocks - 1) + block_len t (t.blocks - 1) <= rn do
      if t.blocks = Array.length t.block_starts then begin
        let bigger = Array.make (2 * t.blocks) 0 in
        Array.blit t.block_starts 0 bigger 0 t.blocks;
        t.block_starts <- bigger
      end;
      t.block_starts.(t.blocks) <-
        t.block_starts.(t.blocks - 1) + block_len t (t.blocks - 1);
      t.blocks <- t.blocks + 1
    done;
    let b = block_search t.block_starts rn 0 t.blocks in
    t.memo_block_rn <- rn;
    t.memo_block <- b;
    b
  end

(* Victim among all n processes (chaos, and the pre-rn0 anarchy of every
   regime). *)
let victim_all t rn = block_of t rn mod t.p.n

(* Victim rotating over the non-center processes (the assumption protects
   only the center, and only at the star's points). *)
let victim_among_others t ~center rn =
  let k = block_of t rn mod (t.p.n - 1) in
  if k < center then k else k + 1

(* ---- delay policies (all in microseconds) ---- *)

let us = Sim.Time.to_us

let victim_delay_us t rn = us t.p.victim_delay + (rn * us t.p.beta)

(* Every process has sent its round [rn] ALIVE by this time (offset < beta,
   period <= beta). *)
let u_bound t rn = (rn + 1) * us t.p.beta

(* The winning center's extra delay: must grow faster than any timeout a
   timer-based algorithm can adapt to. Adaptive timeouts grow at most
   linearly in the round number (at most one suspicion level per round), so
   closure times grow at most quadratically; the lag's quadratic term has a
   larger coefficient than any such adaptation, keeping the winning side
   genuinely time-free. *)
let winning_lag t rn =
  (* Constant in the star regimes: the arrival target U(rn) + lag keeps pace
     with the sending rate, so receiving rounds do not drift behind sending
     rounds (a growing lag would grant every process ever-growing slack and
     mask genuinely growing bounds, E7). The center's winning delay is still
     unbounded — its own send times run up to [jitter * beta] per round ahead
     of U(rn). Only the pure message-pattern regime adds growth: there the
     lag must outpace any quadratic closure-time adaptation so that nothing
     timer-based can be learned (see E4's timer-only column). *)
  let base = 4 * us t.p.delta in
  match t.regime with
  | Message_pattern _ ->
      base + (rn * us t.p.beta / 4) + (rn * rn * us t.p.beta / 32)
  | _ -> base

(* Timely delays sample the top quarter of the allowed interval: still
   within the promised bound, but maximally adversarial — a generous oracle
   would hide the difference between delta and delta + g(rn). *)
(* The delay helpers draw from [rng] — the executor's jitter stream,
   selected once per message in [delay_us_of]. *)
let timely_delay t rng rn =
  let bound = us t.p.delta + us (g_function t rn) in
  let lo = max (us t.p.min_delay) (bound * 3 / 4) in
  lo + Dstruct.Rng.int rng (max 1 (bound - lo))

let async_delay t rng ~now =
  let cap =
    (* The float conversions run per message; the default (no growth)
       skips them. *)
    if t.p.async_growth = 0. then us t.p.async_base
    else
      us t.p.async_base
      + int_of_float (t.p.async_growth *. float_of_int (us now))
  in
  let lo = us t.p.min_delay in
  lo + Dstruct.Rng.int rng (max 1 cap)

(* Center's winning ALIVE(rn): arrive exactly at the target U(rn)+B(rn),
   which is both late (not timely) and earlier than every competitor. *)
let winning_center_delay t ~now rn =
  let target = u_bound t rn + winning_lag t rn in
  max (us t.p.min_delay) (target - us now)

(* Competitor ALIVE(rn) to a winning point: no earlier than the center's
   target plus the order gap (plus jitter so competitors are not
   simultaneous). [base] is the delay the competitor would have had anyway
   (possibly a victim delay, which dominates and preserves the order). *)
let winning_competitor_delay t rng ~now ~base rn =
  let target =
    u_bound t rn + winning_lag t rn + us t.p.order_gap
    + Dstruct.Rng.int rng (max 1 (us t.p.order_gap))
  in
  max base (target - us now)

(* Unboxed point code (0 = not a point, 1 = timely, 2 = winning) straight
   from the plan's byte table: one bounds-checked byte load per message,
   where the previous [q] scan chased t tuples per destination — the
   hottest compute loop in the simulator at large t. *)
let point_timely = 1
let point_winning = 2
let mode_of_point plan dst = Char.code (Bytes.get plan.points dst)

(* Unconstrained ALIVE(rn): victims look crashed, everyone else is merely
   asynchronous. [center] is [-1] for the center-less regimes (the option
   box would cost two words per message on the oracle path). *)
let background_delay t rng ~now ~src ~center rn =
  if t.victim_override >= 0 then
    if src = t.victim_override then victim_delay_us t rn
    else async_delay t rng ~now
  else if rn < t.p.rn0 then
    if src = victim_all t rn then victim_delay_us t rn
    else async_delay t rng ~now
  else if center < 0 then
    if src = victim_all t rn then victim_delay_us t rn
    else async_delay t rng ~now
  else if src <> center && src = victim_among_others t ~center rn then
    victim_delay_us t rn
  else async_delay t rng ~now

let alive_delay t rng ~now ~src ~dst rn =
  match t.regime with
  | Full_timely ->
      if rn >= t.p.rn0 then timely_delay t rng rn
      else background_delay t rng ~now ~src ~center:(-1) rn
  | Chaos -> background_delay t rng ~now ~src ~center:(-1) rn
  | T_source _ | Moving_source _ | Message_pattern _ | Combined _
  | Rotating_star _ | Intermittent_star _ | Growing_star _ | Growing_gaps _
  | Failover _ -> (
      let center = center_pid t.regime rn in
      let plan = plan_for t rn in
      if plan.in_s then begin
        let point = mode_of_point plan dst in
        if point = point_timely && src = center then timely_delay t rng rn
        else if point = point_winning && src = center then
          winning_center_delay t ~now rn
        else if point = point_winning then
          let base = background_delay t rng ~now ~src ~center rn in
          winning_competitor_delay t rng ~now ~base rn
        else if src = center then begin
          if t.victim_override = center then
            (* Adaptive adversary targeting the center: only its
               non-protected messages can be delayed. *)
            victim_delay_us t rn
          else
            match t.regime with
            | Message_pattern _ | Growing_star _ ->
                (* The purely time-free adversary: outside the star's
                   points the center's messages are arbitrarily late, so
                   nothing timer-based can be learned about it. (Round
                   closure still reaches n-t ALIVEs: the receiver itself
                   plus the n-2-t other non-victim senders.) *)
                victim_delay_us t rn
            | _ -> async_delay t rng ~now
        end
        else background_delay t rng ~now ~src ~center rn
      end
      else if rn >= t.p.rn0 && src = center then
        (* Outside S the assumption is silent about the center: the adversary
           victimizes it, which is exactly what separates A from A'. *)
        victim_delay_us t rn
      else background_delay t rng ~now ~src ~center rn)

(* [rn] is the message's round tag, or [-1] for unconstrained messages —
   the unboxed rendering of [round_of]'s [int option] (ALIVE rounds start
   at 1, so -1 is free). Factored out so both oracle flavours draw exactly
   the same randomness for the same message. [at] selects the executor's
   jitter stream; the boxed compatibility oracles pass [src] (they never
   serve routed or intra-parallel runs). *)
let delay_us_of t ~at ~now ~src ~dst rn =
  if src = dst then us t.p.min_delay
  else
    let rng = t.delay_rngs.(at) in
    if rn < 0 then
      match t.regime with
      | Full_timely -> timely_delay t rng 0
      | _ -> async_delay t rng ~now
    else alive_delay t rng ~now ~src ~dst rn

let oracle_rn t ~round_of ~now ~seq ~src ~dst msg =
  ignore seq;
  Net.Network.Deliver_after
    (Sim.Time.of_us (delay_us_of t ~at:src ~now ~src ~dst (round_of msg)))

let oracle_us t ~round_of ~now ~seq ~at ~src ~dst msg =
  ignore seq;
  delay_us_of t ~at ~now ~src ~dst (round_of msg)

let oracle t ~round_of ~now ~seq ~src ~dst msg =
  ignore seq;
  let rn = match round_of msg with None -> -1 | Some rn -> rn in
  Net.Network.Deliver_after
    (Sim.Time.of_us (delay_us_of t ~at:src ~now ~src ~dst rn))

(* Every delay path above floors at [min_delay]: [timely_delay] and
   [async_delay] take [max]/[lo] against it, the winning targets clamp
   with it, victim delays dwarf it, and self-sends are exactly it. That
   floor is what certifies the conservative window (DESIGN.md §18). *)
let lookahead_us t = us t.p.min_delay

let arrival_bound ?(hops = 1) t rn =
  if hops < 1 then invalid_arg "Scenario.arrival_bound: hops must be >= 1";
  let u = u_bound t rn in
  let async_cap =
    us t.p.async_base
    + int_of_float (t.p.async_growth *. float_of_int u)
  in
  let winning_cap = winning_lag t rn + (3 * us t.p.order_gap) in
  let timely_cap = us t.p.delta + us (g_function t rn) in
  (* Routed topologies redraw the oracle per hop, so the worst case is
     [hops] maximal draws end to end; the factor keeps the bound monotone
     in [rn] (each cap is) and in [hops]. *)
  Sim.Time.of_us (u + (hops * max async_cap (max winning_cap timely_cap)))

(* The adversary's projection: which messages the round-tagged delay
   policies (victim blocks, timely/winning star points) apply to. ALIVE for
   the Figure family; HEARTBEAT and AGGREGATE for the lean variant — they
   are its liveness-bearing traffic and must face the same adversary, or
   E12's shootout would compare algorithms under different worlds. SUSPICION
   and ACCUSE are asynchronous control messages: no assumption constrains
   them. Distinct from {!Omega.Message.info}, the checker-facing classifier,
   which tags only ALIVE — the checker verifies Figure 3's arrival pattern
   and must not key on relay traffic. *)
let round_of_omega = function
  | Omega.Message.Alive { rn; _ }
  | Omega.Message.Heartbeat { rn }
  | Omega.Message.Aggregate { rn; _ } -> Some rn
  | Omega.Message.Suspicion _ | Omega.Message.Accuse _ -> None

let round_rn_of_omega = function
  | Omega.Message.Alive { rn; _ }
  | Omega.Message.Heartbeat { rn }
  | Omega.Message.Aggregate { rn; _ } -> rn
  | Omega.Message.Suspicion _ | Omega.Message.Accuse _ -> -1

let describe t =
  let base =
    Printf.sprintf "%s (n=%d t=%d rn0=%d)" (regime_name t.regime) t.p.n t.p.t
      t.p.rn0
  in
  match t.regime with
  | Intermittent_star { center; d } ->
      Printf.sprintf "%s center=%d D=%d" base center d
  | Growing_star { center; d; _ } ->
      Printf.sprintf "%s center=%d D=%d growing-g" base center d
  | Growing_gaps { center; d; f_step } ->
      Printf.sprintf "%s center=%d D0=%d f-step=%d" base center d f_step
  | T_source { center }
  | Moving_source { center }
  | Message_pattern { center }
  | Combined { center }
  | Rotating_star { center } -> Printf.sprintf "%s center=%d" base center
  | Failover { first; second; switch } ->
      Printf.sprintf "%s %d->%d at rn %d" base first second switch
  | Full_timely | Chaos -> base
