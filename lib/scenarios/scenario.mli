(** Assumption regimes, realized as network delay oracles.

    A scenario decides, per message, a transfer delay that makes the run
    satisfy (or deliberately not satisfy) one of the behavioural assumptions
    from the paper and its related work:

    - {b Full_timely}: every message timely — the strongest classical model.
    - {b T_source}: eventual t-source [ADFT04] — fixed set [Q] of [t]
      processes; from round [rn0] on, the center's ALIVE to each [q ∈ Q] is
      δ-timely.
    - {b Moving_source}: eventual t-moving source [HMSZ06] — [Q(rn)] redrawn
      every round, all timely.
    - {b Message_pattern}: [MMR03] — fixed [Q]; the center's ALIVE(rn) is
      {e winning} (among the first [n-t] ALIVE(rn) received by [q]) but its
      delay grows without bound, so no timeliness assumption holds.
    - {b Combined}: [MRT06] — fixed [Q], each point independently timely or
      winning.
    - {b Rotating_star}: the paper's [A'] — [Q(rn)] redrawn every round,
      each point independently timely or winning.
    - {b Intermittent_star}: the paper's [A] — like [Rotating_star] but only
      on an infinite round sequence [S] with gaps at most [d]; rounds outside
      [S] are unconstrained.
    - {b Growing_star}: §7's [A_{f,g}] — like [Intermittent_star] but
      δ-timeliness is relaxed to [δ + g rn] with a known growing [g].
    - {b Chaos}: no assumption at all.

    {b Unconstrained links are adversarial, not random.} With merely random
    bounded delays, adaptive timeouts eventually cover every link and every
    regime degenerates into [Full_timely]; worse, with no crashes {e any}
    frozen leader satisfies Ω, so "chaos" would not discriminate. Instead,
    rounds are cut into {e victim blocks} of growing length: in each block
    one process's ALIVE messages are delayed beyond any horizon, making it
    look crashed, and the victim rotates. Every process not protected by the
    active assumption accumulates suspicions forever, so only a genuinely
    protected center can be elected stably. The block lengths grow so that
    Figure 2's window condition cannot cap a victim's level at the block
    length. In intermittent regimes the center itself is victimized on every
    round outside [S] — the exact adversary that separates [A] from [A'].

    {b Realizing "winning".} A winning message must arrive among the first
    [n-t] round-[rn] messages at its destination. Every process sends its
    round [rn] by time [U(rn) = (rn+1)·beta] (period ≤ beta, initial offset
    < beta), so the oracle targets arrival times: the center's ALIVE(rn) is
    delivered at [U(rn) + B(rn)] (with [B] growing, hence not timely) and
    every competing ALIVE(rn) to that destination no earlier than a gap
    later. The {!Checker} verifies the promise held on the actual trace. *)

type pid = int

type mode = Timely | Winning

type regime =
  | Full_timely
  | T_source of { center : pid }
  | Moving_source of { center : pid }
  | Message_pattern of { center : pid }
  | Combined of { center : pid }
  | Rotating_star of { center : pid }
  | Intermittent_star of { center : pid; d : int }
  | Growing_star of { center : pid; d : int; g_step : Sim.Time.t }
  | Growing_gaps of { center : pid; d : int; f_step : int }
      (** §7's [f] side of [A_{f,g}]: like [Intermittent_star], but the gap
          after an S round [s] may reach [d + f_step * (s / 256)] — growing
          without bound, so no fixed window covers it. The matching window
          widener for [Fig3_fg] is {!f_function}. *)
  | Failover of { first : pid; second : pid; switch : int }
      (** A rotating star centered at [first] for rounds below [switch], at
          [second] from [switch] on — the regime for crash-the-leader
          re-election experiments: crash [first] around the switch and [A]
          still holds, with a different center. Requires [switch > rn0]. *)
  | Chaos

val regime_name : regime -> string

type params = {
  n : int;
  t : int;  (** size of the star's point set [Q] *)
  beta : Sim.Time.t;  (** must match the algorithm's ALIVE period *)
  delta : Sim.Time.t;  (** timeliness bound δ *)
  min_delay : Sim.Time.t;  (** lower bound of every link delay *)
  async_base : Sim.Time.t;  (** non-victim unconstrained delay bound at time 0 *)
  async_growth : float;
      (** optional linear growth of unconstrained delays with sim time *)
  rn0 : int;  (** the assumption holds from this round on ("eventual") *)
  order_gap : Sim.Time.t;
      (** safety margin enforcing winning arrival order *)
  victim_block0 : int;  (** rounds in the first victim block *)
  victim_block_step : int;  (** block-length growth per block *)
  victim_delay : Sim.Time.t;
      (** base delay of a victimized ALIVE (far beyond any horizon) *)
}

(** Defaults matched to {!Omega.Config.default}: δ = 2ms, min 100µs, base
    30ms, no growth, rn0 = 20, gap = beta, blocks 4+k rounds, victim delay
    1 sim-hour. *)
val default_params : n:int -> t:int -> beta:Sim.Time.t -> params

type t

(** [create params regime ~seed] fixes the whole plan (S, Q(rn), modes)
    pseudo-randomly from [seed]. Raises [Invalid_argument] if the regime
    names an out-of-range center or [params] are inconsistent. *)
val create : params -> regime -> seed:int64 -> t

val params : t -> params
val regime : t -> regime

(** The star's center, if the regime has one (the initial one for
    [Failover]). *)
val center : t -> pid option

(** The center in charge of round [rn] (differs from {!center} only after a
    [Failover] switch). *)
val center_at : t -> int -> pid option

(** {!center} / {!center_at} as pure functions of the regime, for callers
    (e.g. {!Env}) that have not instantiated a scenario. *)
val center_of_regime : regime -> pid option

val center_at_round : regime -> int -> pid option

(** [set_victim_override t p] redirects the adversary at process [p]: from
    now on [p]'s ALIVEs are victim-delayed to every receiver and the block
    rotation is suspended, until [set_victim_override t (-1)] restores it.
    The assumption's protected arms are untouched — a timely or winning
    star point of the center stays timely or winning even when the center
    is the target — so an adaptive adversary ({!Fault.Injector}) can chase
    leaders without ever violating the regime's promise. Raises
    [Invalid_argument] unless [-1 <= p < n]. *)
val set_victim_override : t -> pid -> unit

(** Current override, [-1] when the block rotation is in force. *)
val victim_override : t -> pid

(** Is round [rn] in the constrained sequence [S]? (True for every
    [rn >= rn0] in non-intermittent regimes.) *)
val in_s : t -> int -> bool

(** The witness [Q(rn)] with per-point modes; [[]] if [rn] is outside [S] or
    the regime has no star. *)
val q_set : t -> int -> (pid * mode) list

(** The [g] function of a [Growing_star] regime ([fun _ -> 0] otherwise),
    to hand to [Fig3_fg]. *)
val g_function : t -> int -> Sim.Time.t

(** The window widener [f] of a [Growing_gaps] regime ([fun _ -> 0]
    otherwise), to hand to [Fig3_fg]; conservative: at least the regime's
    per-round gap bound. *)
val f_function : t -> int -> int

(** [oracle t ~round_of] is the boxed delay oracle to plug into a
    {!Net.Spec}. [round_of m] must return [Some rn] when [m] is a
    round-tagged, assumption-constrained message (an ALIVE), [None]
    otherwise. Jitter comes from per-executor streams keyed on the
    sender; the boxed flavours serve direct-dispatch runs only. *)
val oracle :
  t -> round_of:('m -> int option) -> 'm Net.Network.delay_oracle

(** [oracle_rn] is {!oracle} with the round tag unboxed: [round_of m] must
    return the message's round, or [-1] when [m] is unconstrained. The two
    flavours draw identical randomness for identical messages — [oracle]'s
    [Some] box costs two minor words per message, which matters only on the
    simulator's hot path. *)
val oracle_rn : t -> round_of:('m -> int) -> 'm Net.Network.delay_oracle

(** [oracle_us] is {!oracle_rn} with the verdict unboxed too (microseconds,
    never negative — scenario oracles never drop): the
    {!Net.Network.delay_oracle_us} fast path {!Env} installs. Its jitter
    stream is the {e executor}'s ([at] — the sender on the direct path,
    the relay on a routed hop), so on direct dispatch it draws identically
    to the boxed flavours; on routed runs it is the only flavour the
    network consults (the Spec precedence rule). *)
val oracle_us : t -> round_of:('m -> int) -> 'm Net.Network.delay_oracle_us

(** [arrival_bound t rn] is an upper bound on the arrival time of any
    round-[rn] ALIVE that is not victim-delayed, across all delay policies.
    Harnesses use it to pick the checker's verification horizon: every round
    whose bound lies before the run's end has fully arrived.

    [hops] (default 1) is the network diameter on routed topologies: every
    hop draws its own delay from the oracle, so the worst case multiplies.
    The bound is monotone in [rn] for every fixed [hops] (the property
    test pins this) and monotone in [hops]. *)
val arrival_bound : ?hops:int -> t -> int -> Sim.Time.t

(** Certified lower bound, in µs, on every delay this scenario's oracles
    can return (= [min_delay]; every delay policy floors at it, and the
    qcheck property test pins that). The intra-run parallel driver's
    conservative window is the [min] of this and the network's
    {!Net.Network.channel_floor_us} (DESIGN.md §18). *)
val lookahead_us : t -> int

(** [round_of] for the core algorithm's messages. *)
val round_of_omega : Omega.Message.t -> int option

(** Unboxed [round_of] for {!oracle_rn}: the ALIVE round, [-1] otherwise. *)
val round_rn_of_omega : Omega.Message.t -> int

val describe : t -> string
