type pid = int

type msg = Heartbeat of { epoch : int }

let round_of (Heartbeat { epoch }) = Some epoch

type t = {
  net : msg Net.Network.t;
  engine : Sim.Engine.t;
  rng : Dstruct.Rng.t;
  me : pid;
  beta : Sim.Time.t;
  initial_timeout : Sim.Time.t;
  mutable epoch : int;
  suspected : bool array;
  timeout : Sim.Time.t array;  (* adaptive per-sender timeout *)
  deadline : Sim.Timer.t array;  (* per-sender deadline timer *)
}

let halted t = Net.Network.is_crashed t.net t.me

let arm t j = Sim.Timer.set t.deadline.(j) t.timeout.(j)

let on_heartbeat t ~src =
  if not (halted t) then begin
    if t.suspected.(src) then begin
      (* False suspicion: the deadline was too short — lengthen it by one
         initial timeout. The adaptation is additive, like the paper
         family's suspicion-level-driven timeouts (an exponential backoff
         would eventually outrun any polynomially growing adversary and
         blur the comparison). *)
      t.suspected.(src) <- false;
      t.timeout.(src) <- Sim.Time.add t.timeout.(src) t.initial_timeout
    end;
    arm t src
  end

let on_deadline t j () = if not (halted t) then t.suspected.(j) <- true

let rec heartbeat_task t =
  if not (halted t) then begin
    t.epoch <- t.epoch + 1;
    Net.Network.broadcast t.net ~src:t.me (Heartbeat { epoch = t.epoch });
    let beta_us = Sim.Time.to_us t.beta in
    let low = max 1 (beta_us * 4 / 5) in
    let period = Dstruct.Rng.int_in t.rng low beta_us in
    Sim.Engine.call_after t.engine (Sim.Time.of_us period) heartbeat_task t
  end

let create net ~me ~beta ~initial_timeout =
  let engine = Net.Network.engine net in
  let n = Net.Network.n net in
  let t =
    {
      net;
      engine;
      rng = Dstruct.Rng.split (Sim.Engine.rng engine);
      me;
      beta;
      initial_timeout;
      epoch = 0;
      suspected = Array.make n false;
      timeout = Array.make n initial_timeout;
      deadline = Array.init n (fun _ -> Sim.Timer.create engine ~on_expire:ignore);
    }
  in
  (* Recreate deadline timers with the right expiry actions (they need [t]). *)
  for j = 0 to n - 1 do
    t.deadline.(j) <- Sim.Timer.create engine ~on_expire:(on_deadline t j)
  done;
  Net.Network.set_handler net me (fun ~src _msg -> on_heartbeat t ~src);
  t

let start_node t =
  let n = Net.Network.n t.net in
  for j = 0 to n - 1 do
    if j <> t.me then arm t j
  done;
  let offset = Dstruct.Rng.int t.rng (max 1 (Sim.Time.to_us t.beta)) in
  Sim.Engine.call_after t.engine (Sim.Time.of_us offset) heartbeat_task t

let node_leader t =
  let n = Net.Network.n t.net in
  let rec first j = if j >= n then t.me else if t.suspected.(j) then first (j + 1) else j in
  first 0

type cluster = { nodes : t array; cnet : msg Net.Network.t }

let create_cluster net ~beta ~initial_timeout =
  let n = Net.Network.n net in
  {
    nodes = Array.init n (fun me -> create net ~me ~beta ~initial_timeout);
    cnet = net;
  }

let start c = Array.iter start_node c.nodes
let leader c p = node_leader c.nodes.(p)

let agreed_leader c =
  match Net.Network.correct c.cnet with
  | [] -> None
  | p :: rest ->
      let l = leader c p in
      if
        List.for_all (fun q -> leader c q = l) rest
        && not (Net.Network.is_crashed c.cnet l)
      then Some l
      else None

let min_epoch c =
  List.fold_left
    (fun acc p -> min acc c.nodes.(p).epoch)
    max_int
    (Net.Network.correct c.cnet)

let suspected c p =
  let node = c.nodes.(p) in
  let acc = ref [] in
  Array.iteri (fun j s -> if s then acc := j :: !acc) node.suspected;
  List.rev !acc
