type pid = int

type instance = {
  start : unit -> unit;
  crash_at : pid -> Sim.Time.t -> unit;
  agreed_leader : unit -> pid option;
  min_round : unit -> int;
}

type algo = {
  name : string;
  describe : string;
  make : Sim.Engine.t -> Scenarios.Scenario.t -> instance;
}

(* An omega-family instance: the paper's node with a given variant and
   closure rule, configured from the scenario's (n, t, beta). *)
let omega_instance ~variant ~closure engine scenario =
  let p = Scenarios.Scenario.params scenario in
  let config =
    {
      (Omega.Config.default ~n:p.Scenarios.Scenario.n
         ~t:p.Scenarios.Scenario.t variant)
      with
      Omega.Config.beta = p.Scenarios.Scenario.beta;
      closure;
    }
  in
  let oracle =
    Scenarios.Scenario.oracle scenario
      ~round_of:Scenarios.Scenario.round_of_omega
  in
  let net =
    Net.Spec.(default |> with_oracle oracle)
    |> fun spec -> Net.Network.of_spec spec engine ~n:p.Scenarios.Scenario.n
  in
  let cluster = Omega.Cluster.create config net in
  {
    start = (fun () -> Omega.Cluster.start cluster);
    crash_at = (fun q time -> Omega.Cluster.crash_at cluster q time);
    agreed_leader = (fun () -> Omega.Cluster.agreed_leader cluster);
    min_round =
      (fun () ->
        List.fold_left
          (fun acc q ->
            min acc (Omega.Node.receiving_round (Omega.Cluster.node cluster q)))
          max_int
          (Net.Network.correct net));
  }

let fig1 =
  {
    name = "fig1";
    describe = "paper Figure 1 (needs A': rotating star on every round)";
    make = omega_instance ~variant:Omega.Config.Fig1 ~closure:Omega.Config.Conjunction;
  }

let fig2 =
  {
    name = "fig2";
    describe = "paper Figure 2 (A: intermittent rotating star)";
    make = omega_instance ~variant:Omega.Config.Fig2 ~closure:Omega.Config.Conjunction;
  }

let fig3 =
  {
    name = "fig3";
    describe = "paper Figure 3 (A, bounded variables)";
    make = omega_instance ~variant:Omega.Config.Fig3 ~closure:Omega.Config.Conjunction;
  }

let timer_only =
  {
    name = "timer-only";
    describe = "pure timeout detector (eventual t-source family mechanism)";
    make = omega_instance ~variant:Omega.Config.Fig1 ~closure:Omega.Config.Timer_only;
  }

let count_only =
  {
    name = "count-only";
    describe = "pure order detector (message-pattern mechanism, MMR03)";
    make = omega_instance ~variant:Omega.Config.Fig1 ~closure:Omega.Config.Count_only;
  }

let heartbeat =
  {
    name = "heartbeat";
    describe = "classic per-link timeout election (no suspicion exchange)";
    make =
      (fun engine scenario ->
        let p = Scenarios.Scenario.params scenario in
        let oracle =
          Scenarios.Scenario.oracle scenario ~round_of:Heartbeat.round_of
        in
        let net =
          Net.Spec.(default |> with_oracle oracle)
          |> fun spec ->
          Net.Network.of_spec spec engine ~n:p.Scenarios.Scenario.n
        in
        let cluster =
          Heartbeat.create_cluster net ~beta:p.Scenarios.Scenario.beta
            ~initial_timeout:(Sim.Time.of_ms 20)
        in
        {
          start = (fun () -> Heartbeat.start cluster);
          crash_at =
            (fun q time ->
              ignore
                (Sim.Engine.schedule_at engine time (fun () ->
                     Net.Network.crash net q)));
          agreed_leader = (fun () -> Heartbeat.agreed_leader cluster);
          min_round = (fun () -> Heartbeat.min_epoch cluster);
        });
  }

let all = [ fig1; fig2; fig3; timer_only; count_only; heartbeat ]

let by_name name = List.find_opt (fun a -> a.name = name) all
