(** Alias for {!Network.Spec}, the network construction builder — see
    {!Network.of_spec} for field semantics and the oracle precedence
    rule. [Net.Spec.t] and [Net.Network.Spec.t] are the same type. *)
include module type of struct
  include Network.Spec
end
