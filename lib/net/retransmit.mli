(** Reliable channels over fair-lossy links — the construction of the
    paper's footnote 2: "a message is piggybacked on the next messages until
    it has been acknowledged".

    Per directed link, the sender numbers messages and keeps them in an
    unacknowledged queue; every wire envelope carries the whole queue (the
    piggyback) plus a cumulative acknowledgment of the reverse direction.
    A periodic retransmission task re-sends non-empty queues, so any fair-
    lossy link (infinitely many deliveries) yields exactly-once, in-order
    delivery of every payload between non-crashed processes.

    The layer owns an internal envelope-typed {!Network} built from the
    (typically {!Lossy.wrap}ped) oracle, and exposes the same send/handler
    surface as {!Network}, so transport-generic protocols (e.g.
    {!Consensus.Node}) run over it unchanged. *)

type pid = int

(** Wire envelope (exposed for tests and size accounting). *)
type 'm envelope = {
  first_seq : int;  (** sequence number of the first queued payload *)
  payloads : 'm list;  (** the sender's whole unacknowledged queue *)
  ack : int;  (** cumulative ack: all reverse-direction seq < ack received *)
}

type 'm t

(** [create engine ~n ~oracle ~resend_every] builds the layer and its
    internal network.

    [max_pending] (default 256) bounds each directed link's unacknowledged
    queue: once full — as happens under a long partition, when the peer acks
    nothing — further [send]s on that link refuse the {e new} payload and
    count it in {!shed} instead of queueing. Refusing the newest (rather
    than evicting the oldest) keeps the queue a contiguous seq range, which
    the receiver's in-order cursor requires; shed payloads are simply lost,
    as on any fair-lossy link, and callers that need them re-offer.

    [topology] / [channels] configure the internal network's graph and
    per-edge reliability classes (see {!Network.Spec}): the canonical use
    is per-edge {!Topology.Fair_lossy} channels under this layer, which
    then delivers exactly-once in-order anyway — the footnote's point. *)
val create :
  ?max_pending:int ->
  ?topology:Topology.kind ->
  ?channels:(src:pid -> dst:pid -> Topology.channel) ->
  Sim.Engine.t ->
  n:int ->
  oracle:'m envelope Network.delay_oracle ->
  resend_every:Sim.Time.t ->
  'm t

(** Starts the per-process retransmission tasks. *)
val start : 'm t -> unit

val send : 'm t -> src:pid -> dst:pid -> 'm -> unit
val set_handler : 'm t -> pid -> (src:pid -> 'm -> unit) -> unit
val crash : 'm t -> pid -> unit
val is_crashed : 'm t -> pid -> bool

(** Partition the internal network (see {!Network.set_partition}). The
    retransmission tasks keep running, so queued payloads flow again as
    soon as the partition heals. *)
val set_partition : 'm t -> int array option -> unit

(** Envelopes put on the wire (including retransmissions). *)
val wire_sends : 'm t -> int

(** Payloads delivered to handlers (each exactly once). *)
val delivered : 'm t -> int

(** Current total backlog of unacknowledged payloads (boundedness probe). *)
val backlog : 'm t -> int

(** Payloads refused because their link's queue was at [max_pending]. *)
val shed : 'm t -> int
