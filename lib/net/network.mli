(** Simulated message-passing network.

    Matches the paper's model (§2.1): every ordered pair of processes is
    connected by a directed link; links are reliable (no creation, alteration
    or loss) and non-FIFO, with no bound on transfer delays. Delays come from
    a {!delay_oracle}, which is where scenario generators inject timeliness,
    winning order, or chaos. An oracle may also return [`Drop]: the paper's
    base model never drops, but lossy variants are exercised by tests of the
    fair-lossy extension discussed in §1.2/§3 of the paper.

    Crash faults: a crashed process neither sends nor receives from the crash
    time on (its handler is never invoked again), which is exactly premature
    halting.

    Beyond the paper's model, a network can be built over a {!Topology}
    (with per-edge {!Topology.channel} classes): sends are then routed hop
    by hop over precomputed shortest paths, each hop drawing its own delay
    from the oracle. The complete default is observationally identical to
    the historical direct-dispatch network. See DESIGN.md §17. *)

type pid = int

type verdict =
  | Deliver_after of Sim.Time.t  (** transfer delay for this message *)
  | Drop  (** lose the message (extension; not used by the base model) *)

(** The oracle sees the send time, the link and the message, plus the
    sender's per-source sequence number ([seqs.(src)]-th send of [src]) for
    tie-breaking. *)
type 'm delay_oracle =
  now:Sim.Time.t -> seq:int -> src:pid -> dst:pid -> 'm -> verdict

(** The unboxed oracle flavour: the transfer delay in microseconds, any
    negative value meaning [Drop]. Semantically identical to
    {!delay_oracle}, but the per-message call returns a plain [int] — no
    [Deliver_after] box, which on the simulator's hot path was two words
    for every message sent ({!Scenarios.Env} passes this flavour) — and it
    additionally receives [at], the {e executor} performing the draw: the
    sender on the direct path, the relaying node on a routed hop. Oracles
    that draw randomness must key their streams on [at] (one sub-stream
    per executor) so the draw sequence is a pure function of each
    process's local computation — the interleaving-invariance the
    intra-run parallel mode relies on (DESIGN.md §18). Boxed oracles
    adapted by {!of_spec} never see [at]. *)
type 'm delay_oracle_us =
  now:Sim.Time.t -> seq:int -> at:pid -> src:pid -> dst:pid -> 'm -> int

type 'm t

(** The construction spec, a builder record mirroring [Run.Spec]:

    {[
      Net.Spec.default
      |> Net.Spec.with_oracle_us oracle_us
      |> Net.Spec.with_topology Net.Topology.Ring
      |> Net.Spec.with_classify classify
      |> fun spec -> Net.Network.of_spec spec engine ~n
    ]}

    (Also exposed as {!Net.Spec} at the library level.) Field semantics:

    - [with_classify] projects a message into the monomorphic
      {!Obs.Event.msg_info} carried by net events on the engine's sink
      (see {!Sim.Engine.set_sink}): a static kind string, the
      assumption-relevant round ([-1] when none — the {!Scenarios.Checker}
      keys on it), and the wire size. Default {!Obs.Event.no_info}; only
      invoked when a sink wants [c_net] events.
    - [with_oracle] / [with_oracle_us] set the delay oracle; at least one
      is required. The precedence rule lives here, not in prose:
      {e [oracle_us] wins whenever both are set} ([oracle] is then never
      called; the two must agree if both are meaningful). A spec with only
      the boxed [oracle] is adapted once at creation, preserving behaviour
      (including the negative-delay rejection) at the cost of the
      per-message verdict box.
    - [with_pool] (default [true]) recycles in-flight message records
      through a network-local freelist: a delivery latches its fields and
      releases the record before invoking the handler, so steady-state
      traffic allocates no flight records at all. Pooling changes no
      observable value ([pool:false] exists for A/B allocation
      measurements). The pool is network-local state like the handlers:
      never share a network across parallel pool tasks.
    - [with_topology] (default {!Topology.Complete}) selects the graph.
      Non-complete kinds route every send hop by hop over precomputed
      shortest paths (see {!Topology} and DESIGN.md §17); the complete
      default is the paper's model and keeps the legacy direct-dispatch
      path, bit for bit.
    - [with_channels] assigns a {!Topology.channel} class to every
      directed edge (consulted once per ordered pair at construction).
      Channel classes compose {e before} the delay oracle the way
      partitions cut traffic: a fair-lossy hop drops without drawing
      delay randomness, an eventually-timely hop clamps the oracle's
      delay to its bound once [now >= gst]. Giving channels — even all
      [Reliable] — selects the routed path. *)
module Spec : sig
  type 'm t

  val default : 'm t
  val with_classify : ('m -> Obs.Event.msg_info) -> 'm t -> 'm t
  val with_pool : bool -> 'm t -> 'm t
  val with_oracle : 'm delay_oracle -> 'm t -> 'm t
  val with_oracle_us : 'm delay_oracle_us -> 'm t -> 'm t
  val with_topology : Topology.kind -> 'm t -> 'm t

  val with_channels :
    (src:pid -> dst:pid -> Topology.channel) -> 'm t -> 'm t
end

(** [of_spec spec engine ~n] is a network for processes [0 .. n-1].
    Raises [Invalid_argument] if [spec] carries no oracle of either
    flavour, or if the topology is not connected. A non-complete topology
    splits its routing-table stream off the engine seed (and a second
    stream for fair-lossy coins when some edge needs one); the complete
    reliable default splits nothing, so legacy digests are unchanged. *)
val of_spec : 'm Spec.t -> Sim.Engine.t -> n:int -> 'm t

val n : 'm t -> int
val engine : 'm t -> Sim.Engine.t

(** [set_handler t i f] installs the receive handler of process [i]. *)
val set_handler : 'm t -> pid -> (src:pid -> 'm -> unit) -> unit

(** [send t ~src ~dst m] sends [m] on link [src -> dst]. No-op if [src] has
    crashed. Self-sends are delivered through the oracle like any other. *)
val send : 'm t -> src:pid -> dst:pid -> 'm -> unit

(** [broadcast t ~src m] sends [m] to every process except [src] (the
    algorithms in the paper send "to each j <> i"). Wide fan-outs
    (n - 1 >= 48) are batched: per-destination deliveries are staged and
    spliced into the scheduler in one commit
    ({!Sim.Engine.batch_call_after}), which is observably identical to a
    loop of {!send}s but amortizes the queue insertions; below the
    measured crossover the straight per-send path is faster and is used
    instead (the event stream is bit-identical either way). *)
val broadcast : 'm t -> src:pid -> 'm -> unit

(** [broadcast_all t ~src m] is {!broadcast} including the self-send —
    line 10 of the paper's Figure 3 has no [j <> i] filter. *)
val broadcast_all : 'm t -> src:pid -> 'm -> unit

(** [crash t i] halts process [i] immediately. A crashed process neither
    sends nor receives until (and unless) {!recover} is called. *)
val crash : 'm t -> pid -> unit

(** [recover t i] lets a crashed process send and receive again. Messages
    consumed while it was down stay lost (the paper's crash–recovery
    discussion: only persisted process state survives, not the link). *)
val recover : 'm t -> pid -> unit

val is_crashed : 'm t -> pid -> bool

(** [set_partition t (Some groups)] cuts every link whose endpoints are in
    different connectivity groups ([Array.length groups] must be [n]);
    messages on cut links are dropped {e before} the delay oracle runs, so
    no delay randomness is drawn for them. [set_partition t None] heals.
    In-flight messages scheduled before the cut still arrive (links lose
    messages, they do not destroy ones already travelling). *)
val set_partition : 'm t -> int array option -> unit

(** [set_dup_burst t ~until ~extra] makes every send with [now < until]
    deliver twice, the duplicate [extra] after the original — the fair-lossy
    model's "finite duplication" exercised en masse (see {!Retransmit}).
    On a routed network the duplicate travels as its own flight with
    [extra] added to its first hop. *)
val set_dup_burst : 'm t -> until:Sim.Time.t -> extra:Sim.Time.t -> unit

(** [set_edge_cut t ~a ~b on] cuts (or heals) the undirected edge
    [a]<->[b]: messages attempting that hop are dropped before the delay
    oracle runs, exactly like a partition boundary. On the complete graph
    this cuts the direct link; on a routed topology it cuts the physical
    edge, so every route through it. Routing tables are NOT recomputed —
    faults cut traffic, not the map (the paper's model repairs links, it
    does not re-plan around them). *)
val set_edge_cut : 'm t -> a:pid -> b:pid -> bool -> unit

(** [set_edge_degrade t ~a ~b ~extra_us] adds [extra_us] to every delay
    the oracle assigns across [a]<->[b] (both directions); [0] restores.
    Applied after the oracle (and after any eventually-timely clamp), so a
    degraded edge can exceed channel bounds — that is the fault. *)
val set_edge_degrade : 'm t -> a:pid -> b:pid -> extra_us:int -> unit

(** [set_rack_cut t ~rack on] cuts (or heals) every edge with exactly one
    endpoint in [rack] — isolating one rack/LAN of a {!Topology.Fat_tree}
    or {!Topology.Wan_of_lans}. Raises [Invalid_argument] on topologies
    without racks. *)
val set_rack_cut : 'm t -> rack:int -> bool -> unit

(** Ids of processes that have not crashed. *)
val correct : 'm t -> pid list

(** Always-on counters (cheap ints, independent of any sink). For event
    streams — per-kind counters, traces, digests — install an {!Obs.Sink}
    on the engine instead. *)
val sent_count : 'm t -> int

val delivered_count : 'm t -> int
val dropped_count : 'm t -> int

(** The topology the network was built with ({!Topology.complete} for the
    default), and its diameter — the multi-hop stretch factor the checker
    and {!Scenarios.Scenario.arrival_bound} apply on routed runs. *)
val topology : 'm t -> Topology.t

val diameter : 'm t -> int

(** {2 Intra-run sharded execution (DESIGN.md §18)}

    A conservative-window parallel run keeps one full network replica per
    shard (plus a control replica for the fault injector), all built from
    the same seed so their derived streams coincide. Each replica routes
    events for processes it owns through the normal local path; an event
    whose {e executor} (delivery target on the direct path, next hop on a
    routed one) lives on another shard is stamped with its canonical
    identity ({!Sim.Engine.stamp}) and buffered in a per-target-shard
    outbox, then materialized on the owning replica at the window barrier.
    All of this is inert until {!set_sharding}: sequential networks never
    touch the shard map. *)

(** A buffered cross-shard event creation (opaque outside the barrier
    protocol: produced by {!drain_outbox}, consumed by {!commit_inbox}). *)
type 'm xmsg

(** [set_sharding t ~my_shard ~shard_of ~shards] turns on sharded dispatch
    for this replica: [shard_of.(pid)] is the owning shard of each process,
    [my_shard] this replica's index ([-1] for the control replica, which
    owns no process). *)
val set_sharding : 'm t -> my_shard:int -> shard_of:int array -> shards:int -> unit

(** [link_siblings nets] registers every replica of one run (shards and
    control) with every other: fault mutators ({!crash}, {!set_partition},
    {!set_edge_cut}, …) then apply to all replicas at once, keeping link
    state in lockstep. Mutators only ever run at barriers on the main
    domain, so no synchronisation is involved. *)
val link_siblings : 'm t array -> unit

(** [drain_outbox t s] removes and returns this replica's buffered
    creations bound for shard [s] (unordered). *)
val drain_outbox : 'm t -> int -> 'm xmsg list

(** [commit_inbox t lists] materializes every buffered creation owned by
    this replica, in canonical (key, creation index) order — flights come
    from this replica's pool and are enqueued silently with
    {!Sim.Engine.enqueue_committed}. Call only at a window barrier, with
    the target engine's clock at or past every sender's window end. *)
val commit_inbox : 'm t -> 'm xmsg list list -> unit

(** The smallest delay a channel class can impose on a hop of this
    network — an eventually-timely clamp can pull any oracle delay down
    to its bound, so the certified cross-shard lookahead must not exceed
    the smallest such bound. [max_int] when no channel can shrink a
    delay. *)
val channel_floor_us : 'm t -> int
