(** Simulated message-passing network.

    Matches the paper's model (§2.1): every ordered pair of processes is
    connected by a directed link; links are reliable (no creation, alteration
    or loss) and non-FIFO, with no bound on transfer delays. Delays come from
    a {!delay_oracle}, which is where scenario generators inject timeliness,
    winning order, or chaos. An oracle may also return [`Drop]: the paper's
    base model never drops, but lossy variants are exercised by tests of the
    fair-lossy extension discussed in §1.2/§3 of the paper.

    Crash faults: a crashed process neither sends nor receives from the crash
    time on (its handler is never invoked again), which is exactly premature
    halting. *)

type pid = int

type verdict =
  | Deliver_after of Sim.Time.t  (** transfer delay for this message *)
  | Drop  (** lose the message (extension; not used by the base model) *)

(** The oracle sees the send time, the link and the message, plus a
    per-message sequence number (total order of sends) for tie-breaking. *)
type 'm delay_oracle =
  now:Sim.Time.t -> seq:int -> src:pid -> dst:pid -> 'm -> verdict

(** The unboxed oracle flavour: the transfer delay in microseconds, any
    negative value meaning [Drop]. Semantically identical to
    {!delay_oracle}, but the per-message call returns a plain [int] — no
    [Deliver_after] box, which on the simulator's hot path was two words
    for every message sent ({!Scenarios.Env} passes this flavour). *)
type 'm delay_oracle_us =
  now:Sim.Time.t -> seq:int -> src:pid -> dst:pid -> 'm -> int

type 'm t

(** [create engine ~n ~oracle] is a network for processes [0 .. n-1].

    [classify] projects a message into the monomorphic {!Obs.Event.msg_info}
    carried by [Send]/[Deliver]/[Drop] events on the engine's sink (see
    {!Sim.Engine.set_sink}): a static kind string, the assumption-relevant
    round ([-1] when none, mirroring [round_of] returning [None] — the
    {!Scenarios.Checker} keys on it), and the wire size. Defaults to
    {!Obs.Event.no_info}. It is only invoked when a sink wants [c_net]
    events, so the untraced path never calls it.

    [oracle_us], when given, takes precedence over [oracle] for every
    per-message decision ([oracle] is then never called): the two must
    agree if both are meaningful. The boxed [oracle] remains the primary
    API — a missing [oracle_us] is adapted once at creation, preserving
    behaviour (including the negative-delay rejection) at the cost of the
    per-message verdict box.

    [pool] (default [true]) recycles in-flight message records through a
    network-local freelist: a delivery latches its fields and releases the
    record before invoking the handler, so steady-state traffic allocates
    no flight records at all. Pooling changes no observable value — the
    event stream is bit-identical either way ([pool:false] exists for A/B
    allocation measurements). The pool is network-local state like the
    handlers: never share a network across parallel pool tasks. *)
val create :
  ?classify:('m -> Obs.Event.msg_info) ->
  ?pool:bool ->
  ?oracle_us:'m delay_oracle_us ->
  Sim.Engine.t ->
  n:int ->
  oracle:'m delay_oracle ->
  'm t

val n : 'm t -> int
val engine : 'm t -> Sim.Engine.t

(** [set_handler t i f] installs the receive handler of process [i]. *)
val set_handler : 'm t -> pid -> (src:pid -> 'm -> unit) -> unit

(** [send t ~src ~dst m] sends [m] on link [src -> dst]. No-op if [src] has
    crashed. Self-sends are delivered through the oracle like any other. *)
val send : 'm t -> src:pid -> dst:pid -> 'm -> unit

(** [broadcast t ~src m] sends [m] to every process except [src] (the
    algorithms in the paper send "to each j <> i"). Wide fan-outs
    (n - 1 >= 48) are batched: per-destination deliveries are staged and
    spliced into the scheduler in one commit
    ({!Sim.Engine.batch_call_after}), which is observably identical to a
    loop of {!send}s but amortizes the queue insertions; below the
    measured crossover the straight per-send path is faster and is used
    instead (the event stream is bit-identical either way). *)
val broadcast : 'm t -> src:pid -> 'm -> unit

(** [broadcast_all t ~src m] is {!broadcast} including the self-send —
    line 10 of the paper's Figure 3 has no [j <> i] filter. *)
val broadcast_all : 'm t -> src:pid -> 'm -> unit

(** [crash t i] halts process [i] immediately. A crashed process neither
    sends nor receives until (and unless) {!recover} is called. *)
val crash : 'm t -> pid -> unit

(** [recover t i] lets a crashed process send and receive again. Messages
    consumed while it was down stay lost (the paper's crash–recovery
    discussion: only persisted process state survives, not the link). *)
val recover : 'm t -> pid -> unit

val is_crashed : 'm t -> pid -> bool

(** [set_partition t (Some groups)] cuts every link whose endpoints are in
    different connectivity groups ([Array.length groups] must be [n]);
    messages on cut links are dropped {e before} the delay oracle runs, so
    no delay randomness is drawn for them. [set_partition t None] heals.
    In-flight messages scheduled before the cut still arrive (links lose
    messages, they do not destroy ones already travelling). *)
val set_partition : 'm t -> int array option -> unit

(** [set_dup_burst t ~until ~extra] makes every send with [now < until]
    deliver twice, the duplicate [extra] after the original — the fair-lossy
    model's "finite duplication" exercised en masse (see {!Retransmit}). *)
val set_dup_burst : 'm t -> until:Sim.Time.t -> extra:Sim.Time.t -> unit

(** Ids of processes that have not crashed. *)
val correct : 'm t -> pid list

(** Always-on counters (cheap ints, independent of any sink). For event
    streams — per-kind counters, traces, digests — install an {!Obs.Sink}
    on the engine instead. *)
val sent_count : 'm t -> int

val delivered_count : 'm t -> int
val dropped_count : 'm t -> int
