(** Simulated message-passing network.

    Matches the paper's model (§2.1): every ordered pair of processes is
    connected by a directed link; links are reliable (no creation, alteration
    or loss) and non-FIFO, with no bound on transfer delays. Delays come from
    a {!delay_oracle}, which is where scenario generators inject timeliness,
    winning order, or chaos. An oracle may also return [`Drop]: the paper's
    base model never drops, but lossy variants are exercised by tests of the
    fair-lossy extension discussed in §1.2/§3 of the paper.

    Crash faults: a crashed process neither sends nor receives from the crash
    time on (its handler is never invoked again), which is exactly premature
    halting. *)

type pid = int

type verdict =
  | Deliver_after of Sim.Time.t  (** transfer delay for this message *)
  | Drop  (** lose the message (extension; not used by the base model) *)

(** The oracle sees the send time, the link and the message, plus a
    per-message sequence number (total order of sends) for tie-breaking. *)
type 'm delay_oracle =
  now:Sim.Time.t -> seq:int -> src:pid -> dst:pid -> 'm -> verdict

type 'm t

(** [create engine ~n ~oracle] is a network for processes [0 .. n-1].

    [classify] projects a message into the monomorphic {!Obs.Event.msg_info}
    carried by [Send]/[Deliver]/[Drop] events on the engine's sink (see
    {!Sim.Engine.set_sink}): a static kind string, the assumption-relevant
    round ([-1] when none, mirroring [round_of] returning [None] — the
    {!Scenarios.Checker} keys on it), and the wire size. Defaults to
    {!Obs.Event.no_info}. It is only invoked when a sink wants [c_net]
    events, so the untraced path never calls it. *)
val create :
  ?classify:('m -> Obs.Event.msg_info) ->
  Sim.Engine.t ->
  n:int ->
  oracle:'m delay_oracle ->
  'm t

val n : 'm t -> int
val engine : 'm t -> Sim.Engine.t

(** [set_handler t i f] installs the receive handler of process [i]. *)
val set_handler : 'm t -> pid -> (src:pid -> 'm -> unit) -> unit

(** [send t ~src ~dst m] sends [m] on link [src -> dst]. No-op if [src] has
    crashed. Self-sends are delivered through the oracle like any other. *)
val send : 'm t -> src:pid -> dst:pid -> 'm -> unit

(** [broadcast t ~src m] sends [m] to every process except [src] (the
    algorithms in the paper send "to each j <> i"). *)
val broadcast : 'm t -> src:pid -> 'm -> unit

(** [crash t i] halts process [i] immediately and permanently. *)
val crash : 'm t -> pid -> unit

val is_crashed : 'm t -> pid -> bool

(** Ids of processes that have not crashed. *)
val correct : 'm t -> pid list

(** Always-on counters (cheap ints, independent of any sink). For event
    streams — per-kind counters, traces, digests — install an {!Obs.Sink}
    on the engine instead. *)
val sent_count : 'm t -> int

val delivered_count : 'm t -> int
val dropped_count : 'm t -> int
