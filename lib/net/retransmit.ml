type pid = int

type 'm envelope = { first_seq : int; payloads : 'm list; ack : int }

(* Sender-side state of one directed link: the unacknowledged queue and the
   sequence number of its head. *)
type 'm outgoing = { mutable head_seq : int; queue : 'm Queue.t }

type 'm t = {
  net : 'm envelope Network.t;
  engine : Sim.Engine.t;
  rng : Dstruct.Rng.t;
  n : int;
  resend_every : Sim.Time.t;
  outgoing : 'm outgoing array;  (* indexed src*n + dst *)
  expected : int array;  (* receiver side: next in-order seq, per src*n+dst *)
  handlers : (src:pid -> 'm -> unit) option array;
  max_pending : int;
  mutable delivered : int;
  mutable shed : int;
}

let link t src dst = (src * t.n) + dst

let create ?(max_pending = 256) ?(topology = Topology.Complete) ?channels
    engine ~n ~oracle ~resend_every =
  if max_pending <= 0 then
    invalid_arg "Retransmit.create: max_pending must be positive";
  let spec =
    Network.Spec.default
    |> Network.Spec.with_oracle oracle
    |> Network.Spec.with_topology topology
  in
  let spec =
    match channels with
    | None -> spec
    | Some f -> Network.Spec.with_channels f spec
  in
  {
    net = Network.of_spec spec engine ~n;
    engine;
    rng = Dstruct.Rng.split (Sim.Engine.rng engine);
    n;
    resend_every;
    outgoing =
      Array.init (n * n) (fun _ -> { head_seq = 0; queue = Queue.create () });
    expected = Array.make (n * n) 0;
    handlers = Array.make n None;
    max_pending;
    delivered = 0;
    shed = 0;
  }

let is_crashed t p = Network.is_crashed t.net p
let crash t p = Network.crash t.net p

(* Put the whole unacknowledged queue of link [src -> dst] on the wire, with
   the cumulative ack for the reverse direction piggybacked. *)
let transmit t ~src ~dst =
  let out = t.outgoing.(link t src dst) in
  Network.send t.net ~src ~dst
    {
      first_seq = out.head_seq;
      payloads = List.of_seq (Queue.to_seq out.queue);
      ack = t.expected.(link t dst src);
    }

let pure_ack t ~src ~dst =
  let out = t.outgoing.(link t src dst) in
  if Queue.is_empty out.queue then
    Network.send t.net ~src ~dst
      {
        first_seq = out.head_seq;
        payloads = [];
        ack = t.expected.(link t dst src);
      }
  else transmit t ~src ~dst

let on_envelope t ~me ~src env =
  if not (is_crashed t me) then begin
    (* 1. The ack releases acknowledged payloads of the reverse link. *)
    let out = t.outgoing.(link t me src) in
    while out.head_seq < env.ack && not (Queue.is_empty out.queue) do
      ignore (Queue.pop out.queue);
      out.head_seq <- out.head_seq + 1
    done;
    (* 2. Deliver exactly the payloads we have not delivered yet, in order.
       The queue is contiguous, so anything beyond [expected] follows it. *)
    let l = link t src me in
    let had_news = ref false in
    List.iteri
      (fun i payload ->
        let seq = env.first_seq + i in
        if seq = t.expected.(l) then begin
          t.expected.(l) <- seq + 1;
          t.delivered <- t.delivered + 1;
          had_news := true;
          match t.handlers.(me) with
          | Some f -> f ~src payload
          | None -> ()
        end
        else if seq < t.expected.(l) then begin
          (* Retransmission overlap: this payload was already delivered. *)
          let sink = Sim.Engine.sink t.engine in
          if Obs.Sink.wants sink Obs.Event.c_net then
            Obs.Sink.emit sink
              (Obs.Event.Duplicate
                 {
                   now = Sim.Time.to_us (Sim.Engine.now t.engine);
                   src;
                   dst = me;
                   seq;
                 })
        end)
      env.payloads;
    (* 3. Acknowledge data envelopes (pure acks are never ack'd back, so
       there is no ack storm). *)
    if env.payloads <> [] then
      if !had_news then pure_ack t ~src:me ~dst:src
      else if Dstruct.Rng.chance t.rng 0.2 then
        (* Stale retransmission: our previous ack was probably lost; re-ack
           occasionally rather than on every duplicate. *)
        pure_ack t ~src:me ~dst:src
  end

let send t ~src ~dst m =
  if not (is_crashed t src) then begin
    let out = t.outgoing.(link t src dst) in
    (* Bound the unacknowledged queue: during a long partition the peer acks
       nothing, and every envelope carries the whole queue, so an unbounded
       queue means quadratic wire bytes and a retransmission storm at heal
       time. Shedding must refuse the NEWEST payload — the receiver's
       [expected] cursor only advances over a contiguous prefix, so dropping
       the oldest unacked payload would wedge the link forever. *)
    if Queue.length out.queue >= t.max_pending then t.shed <- t.shed + 1
    else begin
      Queue.push m out.queue;
      transmit t ~src ~dst
    end
  end

let set_handler t p f = t.handlers.(p) <- Some f

(* One record per process, allocated at [start] and re-posted with
   [Engine.call_after] forever after: the periodic resend loop costs no
   closures, only its event cells. *)
type 'm resend = { rt : 'm t; me : pid }

let rec resend_step ({ rt = t; me } as r) =
  if not (is_crashed t me) then begin
    for dst = 0 to t.n - 1 do
      if dst <> me && not (Queue.is_empty t.outgoing.(link t me dst).queue)
      then transmit t ~src:me ~dst
    done;
    let period_us = Sim.Time.to_us t.resend_every in
    let period = period_us + Dstruct.Rng.int t.rng (max 1 (period_us / 4)) in
    Sim.Engine.call_after t.engine (Sim.Time.of_us period) resend_step r
  end

let start t =
  for me = 0 to t.n - 1 do
    Network.set_handler t.net me (fun ~src env -> on_envelope t ~me ~src env);
    let offset = Dstruct.Rng.int t.rng (max 1 (Sim.Time.to_us t.resend_every)) in
    Sim.Engine.call_after t.engine (Sim.Time.of_us offset) resend_step
      { rt = t; me }
  done

let set_partition t groups = Network.set_partition t.net groups
let wire_sends t = Network.sent_count t.net
let delivered t = t.delivered
let shed t = t.shed

let backlog t =
  Array.fold_left (fun acc out -> acc + Queue.length out.queue) 0 t.outgoing
