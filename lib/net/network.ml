type pid = int

type verdict = Deliver_after of Sim.Time.t | Drop

type 'm delay_oracle =
  now:Sim.Time.t -> seq:int -> src:pid -> dst:pid -> 'm -> verdict

(* The unboxed oracle additionally names the executor [at] — the process
   whose code performs the draw: the sender on the direct path, the
   relaying node on routed hops. Scenario oracles key their jitter streams
   on it (one stream per executor), which is what makes the draw sequence
   a pure function of each process's local computation — the property the
   intra-run parallel mode needs (DESIGN.md §18). The boxed [delay_oracle]
   keeps its arity for compatibility; adapted boxed oracles ignore [at]. *)
type 'm delay_oracle_us =
  now:Sim.Time.t -> seq:int -> at:pid -> src:pid -> dst:pid -> 'm -> int

(* Minimum broadcast fan-out (n - 1) for the batched wheel path; see the
   [batch] field below. *)
let batch_fanout_min = 48

type 'm t = {
  engine : Sim.Engine.t;
  n : int;
  (* Routing state (DESIGN.md §17). [routed] selects the per-hop forward
     path; it is false exactly when the topology is complete AND no
     channel classes were given, and then none of the fields below are
     ever read on the hot path — the legacy direct dispatch is untouched.
     [chan] is flat n*n ([||] = all Reliable); [link_rngs] is non-empty
     only when some edge is fair-lossy (one stream per executor, indexed
     by the hop's sending node), so reliable builds leave the engine's
     stream where the legacy constructor left it. *)
  topo : Topology.t;
  routed : bool;
  chan : Topology.channel array;
  link_rngs : Dstruct.Rng.t array;
  (* Edge-level fault surfaces, lazily materialized n*n (length 0 until a
     plan first touches them, so plan-free runs pay one length check). *)
  mutable cut_edges : Bytes.t;
  mutable degrade_us : int array;
  (* The unboxed rendering of the oracle: delay in microseconds, negative =
     Drop. Boxed oracles are adapted at [create]; the per-message call then
     never allocates a [Deliver_after] box when the caller provided
     [oracle_us] directly. *)
  oracle_us : 'm delay_oracle_us;
  classify : 'm -> Obs.Event.msg_info;
  handlers : (src:pid -> 'm -> unit) option array;
  crashed : bool array;
  (* Per-source sequence counters: [seqs.(src)] numbers [src]'s sends
     0, 1, 2, … so a message's (src, seq) pair depends only on the
     sender's own history, never on how sends of different processes
     interleave — interleaving-invariant like the jitter streams. *)
  seqs : int array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  (* Fault-plan state, all inert by default: [groups.(i)] is process [i]'s
     connectivity group while a partition is in force ([None] = connected),
     and sends during a duplication burst ([now < dup_until]) schedule a
     second delivery [dup_extra] later than the first. *)
  mutable groups : int array option;
  mutable dup_until : Sim.Time.t;
  mutable dup_extra : Sim.Time.t;
  (* Flight freelist (a stack; order is irrelevant, only the values are
     recycled). [pool_n] slots of [pool] hold released flights; [pooling]
     false pins the pre-pool allocate-per-send behaviour for A/B runs. *)
  pooling : bool;
  mutable pool : 'm flight array;
  mutable pool_n : int;
  (* Broadcasts batch their fan-out through the wheel's stage/commit
     splice only when [n] clears [batch_fanout_min]: the splice walks the
     staged chain with an extra placement computation per cell, which is
     pure overhead when buckets are sparse (runs of length 1) and only
     pays once fan-outs are wide enough for same-bucket runs to amortize
     it — measured crossover between n = 32 (+14% clock) and n = 64
     (−19%). The event stream is bit-identical either way; this is a
     clock-only choice, fixed per network at [create]. *)
  batch : bool;
  (* Intra-run sharding (DESIGN.md §18), all inert by default. [shard_of]
     maps each pid to its owning shard ([||] = sequential mode, the only
     state the hot path ever checks); [my_shard] is this replica's index
     (-1 on the control network the fault injector mutates);
     [outboxes.(s)] accumulates cross-shard event creations bound for
     shard [s] (newest first; the barrier commit sorts canonically); and
     [siblings] — every replica of the run including this one — is the
     fan-out list the fault mutators keep in lockstep so a barrier-time
     partition or crash lands on all shards at once. *)
  mutable shard_of : int array;
  mutable my_shard : int;
  mutable outboxes : 'm xmsg list array;
  mutable siblings : 'm t array;
}

(* The in-flight message, packed into one record: scheduling a delivery is
   [Engine.call_after engine delay deliver flight] — one block, no closure,
   no handle — where the old closure chain cost several blocks per message.
   [send] is the simulator's hottest allocation site, which is why flights
   are pooled: [deliver] releases its record back to [t.pool] (fields are
   latched into locals first) and [dispatch] reuses it for a later send, so
   steady-state traffic allocates no flights at all. A flight that is
   scheduled twice (duplication burst) clears [frecycle] so only safe,
   single-delivery flights return to the pool. [finfo] is the message's
   classification, latched at send time (classifiers are pure, so this is
   the delivery-time value too — and [classify] runs once per message, not
   once per event); it is [no_info] when no net sink was live at the send,
   which is fine because sinks are installed before a run starts. *)
and 'm flight = {
  net : 'm t;
  mutable sent_at : Sim.Time.t;
  mutable fseq : int;
  mutable fsrc : pid;
  mutable fdst : pid;
  (* Routed runs thread the SAME record through every hop: [fvia] is the
     node the scheduled arrival lands on (= [fdst] on the final hop). The
     direct path writes it once at acquisition and never reads it. *)
  mutable fvia : pid;
  mutable fmsg : 'm;
  mutable finfo : Obs.Event.msg_info;
  mutable frecycle : bool;
}

(* A cross-shard event creation in transit between a window and its
   barrier: the canonical identity ([x_key]/[x_cidx]) was drawn on the
   creating shard by {!Sim.Engine.stamp}; everything else is what
   [commit_inbox] needs to materialize a flight from the owning replica's
   pool. Plain immutable records — they live only between barriers, and
   the barrier runs on the main domain. *)
and 'm xmsg = {
  x_key : int;
  x_cidx : int;
  x_sent_at : Sim.Time.t;
  x_seq : int;
  x_src : pid;
  x_dst : pid;
  x_via : pid;
  x_msg : 'm;
  x_info : Obs.Event.msg_info;
}

let default_classify _ = Obs.Event.no_info

(* Adapter for boxed oracles: one closure per network, not per message; the
   box itself is still paid on this compatibility path (the caller's oracle
   allocates it), which is why hot setups pass [oracle_us] directly. *)
let boxed_oracle_us oracle ~now ~seq ~at:_ ~src ~dst msg =
  match oracle ~now ~seq ~src ~dst msg with
  | Deliver_after d ->
      let us = Sim.Time.to_us d in
      if us < 0 then invalid_arg "Network.send: oracle returned negative delay"
      else us
  | Drop -> -1

(* The builder record that replaced [create]'s accreted optional
   arguments. The boxed/unboxed oracle precedence rule lives here, in
   [of_spec], instead of prose: [oracle_us] wins whenever both are set. *)
module Spec = struct
  type 'm t = {
    classify : 'm -> Obs.Event.msg_info;
    pool : bool;
    oracle : 'm delay_oracle option;
    oracle_us : 'm delay_oracle_us option;
    topology : Topology.kind;
    channels : (src:pid -> dst:pid -> Topology.channel) option;
  }

  let default =
    {
      classify = default_classify;
      pool = true;
      oracle = None;
      oracle_us = None;
      topology = Topology.Complete;
      channels = None;
    }

  let with_classify classify t = { t with classify }
  let with_pool pool t = { t with pool }
  let with_oracle oracle t = { t with oracle = Some oracle }
  let with_oracle_us oracle_us t = { t with oracle_us = Some oracle_us }
  let with_topology topology t = { t with topology }
  let with_channels channels t = { t with channels = Some channels }
end

let of_spec (spec : 'm Spec.t) engine ~n =
  if n <= 0 then invalid_arg "Network.of_spec: n must be positive";
  let oracle_us =
    match (spec.Spec.oracle_us, spec.Spec.oracle) with
    | Some f, _ -> f
    | None, Some oracle -> boxed_oracle_us oracle
    | None, None ->
        invalid_arg
          "Network.of_spec: spec needs with_oracle or with_oracle_us"
  in
  (* Routing tables are built from a stream split off the engine seed; the
     complete default splits nothing, so legacy runs see an untouched
     engine stream (digest-load-bearing). *)
  let topo =
    match spec.Spec.topology with
    | Topology.Complete -> Topology.complete n
    | kind ->
        Topology.build kind ~n ~rng:(Dstruct.Rng.split (Sim.Engine.rng engine))
  in
  if not (Topology.connected topo) then
    invalid_arg "Network.of_spec: topology is not connected";
  let chan, has_lossy =
    match spec.Spec.channels with
    | None -> ([||], false)
    | Some f ->
        let a = Array.make (n * n) Topology.Reliable in
        let lossy = ref false in
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            if src <> dst then begin
              let c = f ~src ~dst in
              (match c with
              | Topology.Fair_lossy _ -> lossy := true
              | _ -> ());
              a.((src * n) + dst) <- c
            end
          done
        done;
        (a, !lossy)
  in
  (* One fair-lossy coin stream per executor, split in pid order: hop
     coins at node u come from [link_rngs.(u)], so each node's coin
     sequence is a function of its own forwarding history only. *)
  let link_rngs =
    if not has_lossy then [||]
    else begin
      let a =
        Array.make n (Dstruct.Rng.split (Sim.Engine.rng engine))
      in
      for i = 1 to n - 1 do
        a.(i) <- Dstruct.Rng.split (Sim.Engine.rng engine)
      done;
      a
    end
  in
  (* Any channel array forces the routed path (its classes compose per
     hop), even over a complete graph where every route is one hop. *)
  let routed = (not (Topology.is_complete topo)) || Array.length chan > 0 in
  {
    engine;
    n;
    topo;
    routed;
    chan;
    link_rngs;
    cut_edges = Bytes.empty;
    degrade_us = [||];
    oracle_us;
    classify = spec.Spec.classify;
    handlers = Array.make n None;
    crashed = Array.make n false;
    seqs = Array.make n 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    groups = None;
    dup_until = Sim.Time.zero;
    dup_extra = Sim.Time.zero;
    pooling = spec.Spec.pool;
    pool = [||];
    pool_n = 0;
    (* Batched fan-out is a property of the direct path only; routed
       broadcasts schedule first hops individually. *)
    batch = (not routed) && n - 1 >= batch_fanout_min;
    shard_of = [||];
    my_shard = -1;
    outboxes = [||];
    siblings = [||];
  }

let n t = t.n
let engine t = t.engine

let check_pid t i ~op =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Network.%s: pid %d out of range" op i)

let set_handler t i f =
  check_pid t i ~op:"set_handler";
  t.handlers.(i) <- Some f

(* [release] grows the pool with the released flight itself as the
   [Array.make] filler, so no dummy element is ever needed. The pooled
   record keeps its last [fmsg]/[finfo] values alive until reuse — a
   bounded retention (pool size = peak in-flight count), unlike the
   unbounded Pqueue slot leak this design replaces. *)
let release t f =
  let k = t.pool_n in
  if k = Array.length t.pool then begin
    let a = Array.make (if k = 0 then 64 else 2 * k) f in
    Array.blit t.pool 0 a 0 k;
    t.pool <- a
  end;
  t.pool.(k) <- f;
  t.pool_n <- k + 1

(* Cross-shard creation (DESIGN.md §18): draw the canonical identity the
   local [call_after] would have drawn — same [Sched] emission, same
   creation-counter movement — and buffer the payload for the shard that
   owns [via] instead of scheduling a flight here. The window barrier
   materializes it on the owning replica via [commit_inbox]; together the
   two halves are observationally identical to the local path. *)
let defer t ~delay ~sent_at ~seq ~src ~dst ~via ~info msg =
  let time = Sim.Time.add (Sim.Engine.now t.engine) delay in
  let x_key, x_cidx = Sim.Engine.stamp t.engine time in
  let s = Array.unsafe_get t.shard_of via in
  t.outboxes.(s) <-
    {
      x_key;
      x_cidx;
      x_sent_at = sent_at;
      x_seq = seq;
      x_src = src;
      x_dst = dst;
      x_via = via;
      x_msg = msg;
      x_info = info;
    }
    :: t.outboxes.(s)

let deliver f =
  let t = f.net in
  let sent_at = f.sent_at in
  let seq = f.fseq and src = f.fsrc and dst = f.fdst in
  let msg = f.fmsg and finfo = f.finfo in
  (* Recycle before running the handler: every field is latched above, and
     the handler's own sends may then draw this very record from the pool. *)
  if f.frecycle then begin
    f.frecycle <- false;
    release t f
  end;
  (* A message to a crashed process is silently consumed: the paper treats
     the link to a crashed receiver as trivially timely. *)
  if not t.crashed.(dst) then begin
    t.delivered <- t.delivered + 1;
    let sink = Sim.Engine.sink t.engine in
    if Obs.Sink.wants sink Obs.Event.c_net then
      Obs.Sink.emit_deliver sink
        ~now:(Sim.Time.to_us (Sim.Engine.now t.engine))
        ~sent_at:(Sim.Time.to_us sent_at) ~seq ~src ~dst finfo;
    (* The handler is [dst]'s code: everything it schedules (timers, its
       own sends' deliveries) is created by [dst]. *)
    Sim.Engine.set_rank t.engine dst;
    match t.handlers.(dst) with
    | Some f -> f ~src msg
    | None -> ()
  end

let () = Sim.Checkpoint.register ~id:3 deliver

(* One message onto one link: [now], [traced] and [info] are latched by the
   caller so [broadcast] classifies once for all n-1 destinations.
   [batched] routes the delivery through {!Sim.Engine.batch_call_after}
   (staged wheel insertion); the broadcast loops set it and commit once
   after the loop, [send] keeps the immediate path. Everything observable
   (seq numbers, Send/Drop/Sched emission, FIFO order) is identical either
   way. *)
let dispatch t ~batched ~now ~traced ~info ~src ~dst msg =
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  t.sent <- t.sent + 1;
  let sink = Sim.Engine.sink t.engine in
  if traced then
    Obs.Sink.emit_send sink ~now:(Sim.Time.to_us now) ~seq ~src ~dst info;
  (* A partition (or an explicit cut_edge fault) cuts the link before the
     oracle is consulted: messages across the cut are dropped without
     drawing delay randomness, so the same plan gives the same stream
     whatever the oracle. *)
  let cut =
    (match t.groups with Some g -> g.(src) <> g.(dst) | None -> false)
    || Bytes.length t.cut_edges > 0
       && Bytes.unsafe_get t.cut_edges ((src * t.n) + dst) <> '\000'
  in
  if cut then begin
    t.dropped <- t.dropped + 1;
    if traced then
      Obs.Sink.emit_drop sink ~now:(Sim.Time.to_us now) ~seq ~src ~dst info
  end
  else begin
    let delay_us = t.oracle_us ~now ~seq ~at:src ~src ~dst msg in
    if delay_us < 0 then begin
      t.dropped <- t.dropped + 1;
      if traced then
        Obs.Sink.emit_drop sink ~now:(Sim.Time.to_us now) ~seq ~src ~dst info
    end
    else begin
      let delay_us =
        if Array.length t.degrade_us = 0 then delay_us
        else delay_us + Array.unsafe_get t.degrade_us ((src * t.n) + dst)
      in
      let delay = Sim.Time.of_us delay_us in
      let cross =
        Array.length t.shard_of > 0
        && Array.unsafe_get t.shard_of dst <> t.my_shard
      in
      if cross then begin
        defer t ~delay ~sent_at:now ~seq ~src ~dst ~via:dst ~info msg;
        if Sim.Time.(now < t.dup_until) then
          defer t
            ~delay:(Sim.Time.add delay t.dup_extra)
            ~sent_at:now ~seq ~src ~dst ~via:dst ~info msg
      end
      else begin
      let flight =
          if t.pool_n = 0 then
            {
              net = t;
              sent_at = now;
              fseq = seq;
              fsrc = src;
              fdst = dst;
              fvia = dst;
              fmsg = msg;
              finfo = info;
              frecycle = t.pooling;
            }
          else begin
            let k = t.pool_n - 1 in
            t.pool_n <- k;
            let f = t.pool.(k) in
            f.sent_at <- now;
            f.fseq <- seq;
            f.fsrc <- src;
            f.fdst <- dst;
            f.fmsg <- msg;
            f.finfo <- info;
            f.frecycle <- true;
            f
          end
        in
      if batched then
        Sim.Engine.batch_call_after t.engine delay deliver flight
      else Sim.Engine.call_after t.engine delay deliver flight;
      if Sim.Time.(now < t.dup_until) then begin
        (* Two scheduled deliveries share this record; recycling on the
           first would corrupt the second, so this flight retires. *)
        flight.frecycle <- false;
        let extra = Sim.Time.add delay t.dup_extra in
        if batched then
          Sim.Engine.batch_call_after t.engine extra deliver flight
        else Sim.Engine.call_after t.engine extra deliver flight
      end
      end
    end
  end

(* ---- Routed dispatch (DESIGN.md §17) ----------------------------------

   A routed send walks the precomputed shortest path one scheduled hop at
   a time, reusing ONE pooled flight record for the whole trip: [forward]
   applies the outgoing edge's fault and channel state, asks the oracle
   for the hop delay, stamps [fvia] and schedules [hop_arrive] through the
   packed [call_after]; [hop_arrive] either finishes through the shared
   [deliver] (same latch-then-release, same Deliver event with the
   original [sent_at]/[src]) or emits a Hop and forwards again. The
   oracle is consulted per hop with the ORIGINAL (seq, src, dst) — the
   scenario's per-link policies (victim blocks, winning order) keep their
   meaning, they are just drawn once per hop. Drops before the oracle
   (cut edge, partition boundary, fair-lossy coin) emit Link_drop naming
   the hop and draw no delay randomness; an oracle drop stays the legacy
   end-to-end Drop event. *)

let acquire t ~now ~seq ~src ~dst ~info msg =
  if t.pool_n = 0 then
    {
      net = t;
      sent_at = now;
      fseq = seq;
      fsrc = src;
      fdst = dst;
      fvia = dst;
      fmsg = msg;
      finfo = info;
      frecycle = t.pooling;
    }
  else begin
    let k = t.pool_n - 1 in
    t.pool_n <- k;
    let f = t.pool.(k) in
    f.sent_at <- now;
    f.fseq <- seq;
    f.fsrc <- src;
    f.fdst <- dst;
    f.fvia <- dst;
    f.fmsg <- msg;
    f.finfo <- info;
    f.frecycle <- true;
    f
  end

let drop_on_link t f ~now ~hop_src ~hop_dst =
  t.dropped <- t.dropped + 1;
  let sink = Sim.Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_net then
    Obs.Sink.emit_link_drop sink
      ~now:(Sim.Time.to_us now)
      ~seq:f.fseq ~src:f.fsrc ~dst:f.fdst ~hop_src ~hop_dst f.finfo;
  if f.frecycle then begin
    f.frecycle <- false;
    release t f
  end

let rec forward t f ~now ~extra_us u =
  let dst = f.fdst in
  let v = Topology.next_hop t.topo ~src:u ~dst in
  if v < 0 then drop_on_link t f ~now ~hop_src:u ~hop_dst:u
  else begin
    let e = (u * t.n) + v in
    let cut =
      (match t.groups with Some g -> g.(u) <> g.(v) | None -> false)
      || Bytes.length t.cut_edges > 0
         && Bytes.unsafe_get t.cut_edges e <> '\000'
      || Array.length t.chan > 0
         && (match Array.unsafe_get t.chan e with
            | Topology.Fair_lossy p ->
                Array.length t.link_rngs > 0
                && Dstruct.Rng.chance t.link_rngs.(u) p
            | _ -> false)
    in
    if cut then drop_on_link t f ~now ~hop_src:u ~hop_dst:v
    else begin
      let delay_us =
        t.oracle_us ~now ~seq:f.fseq ~at:u ~src:f.fsrc ~dst f.fmsg
      in
      if delay_us < 0 then begin
        t.dropped <- t.dropped + 1;
        let sink = Sim.Engine.sink t.engine in
        if Obs.Sink.wants sink Obs.Event.c_net then
          Obs.Sink.emit_drop sink
            ~now:(Sim.Time.to_us now)
            ~seq:f.fseq ~src:f.fsrc ~dst f.finfo;
        if f.frecycle then begin
          f.frecycle <- false;
          release t f
        end
      end
      else begin
        let delay_us =
          if Array.length t.chan = 0 then delay_us
          else
            match Array.unsafe_get t.chan e with
            | Topology.Eventually_timely { gst; bound } ->
                let b = Sim.Time.to_us bound in
                if Sim.Time.(now >= gst) && delay_us > b then b else delay_us
            | _ -> delay_us
        in
        let delay_us =
          if Array.length t.degrade_us = 0 then delay_us
          else delay_us + Array.unsafe_get t.degrade_us e
        in
        let delay = Sim.Time.of_us (delay_us + extra_us) in
        let cross =
          Array.length t.shard_of > 0
          && Array.unsafe_get t.shard_of v <> t.my_shard
        in
        if cross then begin
          (* The next hop executes on another shard: ship the latched
             fields and retire the local record — the owning replica's
             pool provides the flight that finishes the trip. *)
          defer t ~delay ~sent_at:f.sent_at ~seq:f.fseq ~src:f.fsrc ~dst
            ~via:v ~info:f.finfo f.fmsg;
          if f.frecycle then begin
            f.frecycle <- false;
            release t f
          end
        end
        else begin
          f.fvia <- v;
          Sim.Engine.call_after t.engine delay hop_arrive f
        end
      end
    end
  end

and hop_arrive f =
  let t = f.net in
  let v = f.fvia in
  if v = f.fdst then deliver f
  else begin
    let now = Sim.Engine.now t.engine in
    (* The relay halted with the message in hand: the hop consumed it. *)
    if t.crashed.(v) then drop_on_link t f ~now ~hop_src:v ~hop_dst:v
    else begin
      let sink = Sim.Engine.sink t.engine in
      if Obs.Sink.wants sink Obs.Event.c_net then
        Obs.Sink.emit_hop sink
          ~now:(Sim.Time.to_us now)
          ~seq:f.fseq ~src:f.fsrc ~dst:f.fdst ~via:v f.finfo;
      (* The relay [v] is the executor of the next hop: its coin, its
         jitter draw, its scheduled event. *)
      Sim.Engine.set_rank t.engine v;
      forward t f ~now ~extra_us:0 v
    end
  end

let () = Sim.Checkpoint.register ~id:13 hop_arrive

let dispatch_routed t ~now ~traced ~info ~src ~dst msg =
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  t.sent <- t.sent + 1;
  let sink = Sim.Engine.sink t.engine in
  if traced then
    Obs.Sink.emit_send sink ~now:(Sim.Time.to_us now) ~seq ~src ~dst info;
  let f = acquire t ~now ~seq ~src ~dst ~info msg in
  forward t f ~now ~extra_us:0 src;
  if Sim.Time.(now < t.dup_until) then begin
    (* Unlike the direct path, a routed duplicate cannot share the
       original's record (every hop mutates it), so it travels as its own
       flight — and both can recycle. The [dup_extra] lag lands on the
       duplicate's first hop. *)
    let g = acquire t ~now ~seq ~src ~dst ~info msg in
    forward t g ~now ~extra_us:(Sim.Time.to_us t.dup_extra) src
  end

let send t ~src ~dst msg =
  check_pid t src ~op:"send";
  check_pid t dst ~op:"send";
  if not t.crashed.(src) then begin
    let now = Sim.Engine.now t.engine in
    let sink = Sim.Engine.sink t.engine in
    let traced = Obs.Sink.wants sink Obs.Event.c_net in
    let info = if traced then t.classify msg else Obs.Event.no_info in
    if t.routed then dispatch_routed t ~now ~traced ~info ~src ~dst msg
    else dispatch t ~batched:false ~now ~traced ~info ~src ~dst msg
  end

let broadcast t ~src msg =
  check_pid t src ~op:"broadcast";
  if not t.crashed.(src) then begin
    let now = Sim.Engine.now t.engine in
    let sink = Sim.Engine.sink t.engine in
    let traced = Obs.Sink.wants sink Obs.Event.c_net in
    let info = if traced then t.classify msg else Obs.Event.no_info in
    for dst = 0 to t.n - 1 do
      if dst <> src then
        if t.routed then dispatch_routed t ~now ~traced ~info ~src ~dst msg
        else dispatch t ~batched:t.batch ~now ~traced ~info ~src ~dst msg
    done;
    if t.batch then Sim.Engine.batch_commit t.engine
  end

let broadcast_all t ~src msg =
  check_pid t src ~op:"broadcast_all";
  if not t.crashed.(src) then begin
    let now = Sim.Engine.now t.engine in
    let sink = Sim.Engine.sink t.engine in
    let traced = Obs.Sink.wants sink Obs.Event.c_net in
    let info = if traced then t.classify msg else Obs.Event.no_info in
    for dst = 0 to t.n - 1 do
      if t.routed then dispatch_routed t ~now ~traced ~info ~src ~dst msg
      else dispatch t ~batched:t.batch ~now ~traced ~info ~src ~dst msg
    done;
    if t.batch then Sim.Engine.batch_commit t.engine
  end

(* Fault mutators come in two layers: the [*1] body applies the mutation
   to ONE replica, and the public entry fans it out over [siblings] when
   the run is sharded (intra-run parallel mode keeps a full network
   replica per shard, plus a control replica for the injector — a
   barrier-time crash or cut must land on all of them at once, or the
   shards would disagree on link state). [siblings] includes the receiver
   itself; sequential runs have it empty and take the single-replica
   path untouched. *)

let crash1 t i =
  check_pid t i ~op:"crash";
  t.crashed.(i) <- true

let crash t i =
  if Array.length t.siblings = 0 then crash1 t i
  else Array.iter (fun u -> crash1 u i) t.siblings

let recover1 t i =
  check_pid t i ~op:"recover";
  t.crashed.(i) <- false

let recover t i =
  if Array.length t.siblings = 0 then recover1 t i
  else Array.iter (fun u -> recover1 u i) t.siblings

let set_partition1 t groups =
  (match groups with
  | Some g when Array.length g <> t.n ->
      invalid_arg "Network.set_partition: groups must have length n"
  | _ -> ());
  t.groups <- groups

let set_partition t groups =
  if Array.length t.siblings = 0 then set_partition1 t groups
  else Array.iter (fun u -> set_partition1 u groups) t.siblings

let set_dup_burst1 t ~until ~extra =
  if Sim.Time.(extra < Sim.Time.zero) then
    invalid_arg "Network.set_dup_burst: negative extra delay";
  t.dup_until <- until;
  t.dup_extra <- extra

let set_dup_burst t ~until ~extra =
  if Array.length t.siblings = 0 then set_dup_burst1 t ~until ~extra
  else Array.iter (fun u -> set_dup_burst1 u ~until ~extra) t.siblings

let set_edge_cut1 t ~a ~b on =
  check_pid t a ~op:"set_edge_cut";
  check_pid t b ~op:"set_edge_cut";
  if a = b then invalid_arg "Network.set_edge_cut: a = b";
  if Bytes.length t.cut_edges = 0 then begin
    if not on then () else t.cut_edges <- Bytes.make (t.n * t.n) '\000'
  end;
  if Bytes.length t.cut_edges > 0 then begin
    let v = if on then '\001' else '\000' in
    Bytes.set t.cut_edges ((a * t.n) + b) v;
    Bytes.set t.cut_edges ((b * t.n) + a) v
  end

let set_edge_cut t ~a ~b on =
  if Array.length t.siblings = 0 then set_edge_cut1 t ~a ~b on
  else Array.iter (fun u -> set_edge_cut1 u ~a ~b on) t.siblings

let set_edge_degrade1 t ~a ~b ~extra_us =
  check_pid t a ~op:"set_edge_degrade";
  check_pid t b ~op:"set_edge_degrade";
  if a = b then invalid_arg "Network.set_edge_degrade: a = b";
  if extra_us < 0 then
    invalid_arg "Network.set_edge_degrade: negative extra delay";
  if Array.length t.degrade_us = 0 then begin
    if extra_us = 0 then () else t.degrade_us <- Array.make (t.n * t.n) 0
  end;
  if Array.length t.degrade_us > 0 then begin
    t.degrade_us.((a * t.n) + b) <- extra_us;
    t.degrade_us.((b * t.n) + a) <- extra_us
  end

let set_edge_degrade t ~a ~b ~extra_us =
  if Array.length t.siblings = 0 then set_edge_degrade1 t ~a ~b ~extra_us
  else Array.iter (fun u -> set_edge_degrade1 u ~a ~b ~extra_us) t.siblings

let set_rack_cut1 t ~rack on =
  let groups = Topology.group_count t.topo in
  if groups = 0 then
    invalid_arg "Network.set_rack_cut: topology has no racks/LANs";
  if rack < 0 || rack >= groups then
    invalid_arg "Network.set_rack_cut: rack out of range";
  if Bytes.length t.cut_edges = 0 && on then
    t.cut_edges <- Bytes.make (t.n * t.n) '\000';
  if Bytes.length t.cut_edges > 0 then begin
    let v = if on then '\001' else '\000' in
    for i = 0 to t.n - 1 do
      for j = 0 to t.n - 1 do
        if
          i <> j
          && (Topology.group_of t.topo i = rack)
             <> (Topology.group_of t.topo j = rack)
        then Bytes.set t.cut_edges ((i * t.n) + j) v
      done
    done
  end

let set_rack_cut t ~rack on =
  if Array.length t.siblings = 0 then set_rack_cut1 t ~rack on
  else Array.iter (fun u -> set_rack_cut1 u ~rack on) t.siblings

let topology t = t.topo
let diameter t = Topology.diameter t.topo

let is_crashed t i =
  check_pid t i ~op:"is_crashed";
  t.crashed.(i)

let correct t =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if t.crashed.(i) then acc else i :: acc)
  in
  collect (t.n - 1) []

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped

(* ---- Intra-run sharding barrier API (DESIGN.md §18) ------------------- *)

let set_sharding t ~my_shard ~shard_of ~shards =
  t.my_shard <- my_shard;
  t.shard_of <- shard_of;
  t.outboxes <- Array.make shards []

let link_siblings nets = Array.iter (fun t -> t.siblings <- nets) nets

let drain_outbox t s =
  let l = t.outboxes.(s) in
  t.outboxes.(s) <- [];
  l

let xcompare a b =
  if a.x_key <> b.x_key then compare a.x_key b.x_key
  else compare a.x_cidx b.x_cidx

let commit_inbox t lists =
  (* Keys are globally unique below the cidx tie-break, and (key, cidx)
     pairs are unique outright, so this sort is a total order: the commit
     sequence — and hence queue insertion order, which is the residual
     FIFO tie-break — is independent of how the window interleaved. *)
  let all = List.sort xcompare (List.concat lists) in
  List.iter
    (fun x ->
      let f =
        acquire t ~now:x.x_sent_at ~seq:x.x_seq ~src:x.x_src ~dst:x.x_dst
          ~info:x.x_info x.x_msg
      in
      f.fvia <- x.x_via;
      Sim.Engine.enqueue_committed t.engine ~key:x.x_key ~cidx:x.x_cidx
        (if t.routed then hop_arrive else deliver)
        f)
    all

let channel_floor_us t =
  if Array.length t.chan = 0 then max_int
  else
    Array.fold_left
      (fun acc c ->
        match c with
        | Topology.Eventually_timely { bound; _ } ->
            let b = Sim.Time.to_us bound in
            if b < acc then b else acc
        | _ -> acc)
      max_int t.chan
