type pid = int

type verdict = Deliver_after of Sim.Time.t | Drop

type 'm delay_oracle =
  now:Sim.Time.t -> seq:int -> src:pid -> dst:pid -> 'm -> verdict

type 'm delay_oracle_us =
  now:Sim.Time.t -> seq:int -> src:pid -> dst:pid -> 'm -> int

(* Minimum broadcast fan-out (n - 1) for the batched wheel path; see the
   [batch] field below. *)
let batch_fanout_min = 48

type 'm t = {
  engine : Sim.Engine.t;
  n : int;
  (* The unboxed rendering of the oracle: delay in microseconds, negative =
     Drop. Boxed oracles are adapted at [create]; the per-message call then
     never allocates a [Deliver_after] box when the caller provided
     [oracle_us] directly. *)
  oracle_us : 'm delay_oracle_us;
  classify : 'm -> Obs.Event.msg_info;
  handlers : (src:pid -> 'm -> unit) option array;
  crashed : bool array;
  mutable seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  (* Fault-plan state, all inert by default: [groups.(i)] is process [i]'s
     connectivity group while a partition is in force ([None] = connected),
     and sends during a duplication burst ([now < dup_until]) schedule a
     second delivery [dup_extra] later than the first. *)
  mutable groups : int array option;
  mutable dup_until : Sim.Time.t;
  mutable dup_extra : Sim.Time.t;
  (* Flight freelist (a stack; order is irrelevant, only the values are
     recycled). [pool_n] slots of [pool] hold released flights; [pooling]
     false pins the pre-pool allocate-per-send behaviour for A/B runs. *)
  pooling : bool;
  mutable pool : 'm flight array;
  mutable pool_n : int;
  (* Broadcasts batch their fan-out through the wheel's stage/commit
     splice only when [n] clears [batch_fanout_min]: the splice walks the
     staged chain with an extra placement computation per cell, which is
     pure overhead when buckets are sparse (runs of length 1) and only
     pays once fan-outs are wide enough for same-bucket runs to amortize
     it — measured crossover between n = 32 (+14% clock) and n = 64
     (−19%). The event stream is bit-identical either way; this is a
     clock-only choice, fixed per network at [create]. *)
  batch : bool;
}

(* The in-flight message, packed into one record: scheduling a delivery is
   [Engine.call_after engine delay deliver flight] — one block, no closure,
   no handle — where the old closure chain cost several blocks per message.
   [send] is the simulator's hottest allocation site, which is why flights
   are pooled: [deliver] releases its record back to [t.pool] (fields are
   latched into locals first) and [dispatch] reuses it for a later send, so
   steady-state traffic allocates no flights at all. A flight that is
   scheduled twice (duplication burst) clears [frecycle] so only safe,
   single-delivery flights return to the pool. [finfo] is the message's
   classification, latched at send time (classifiers are pure, so this is
   the delivery-time value too — and [classify] runs once per message, not
   once per event); it is [no_info] when no net sink was live at the send,
   which is fine because sinks are installed before a run starts. *)
and 'm flight = {
  net : 'm t;
  mutable sent_at : Sim.Time.t;
  mutable fseq : int;
  mutable fsrc : pid;
  mutable fdst : pid;
  mutable fmsg : 'm;
  mutable finfo : Obs.Event.msg_info;
  mutable frecycle : bool;
}

let default_classify _ = Obs.Event.no_info

(* Adapter for boxed oracles: one closure per network, not per message; the
   box itself is still paid on this compatibility path (the caller's oracle
   allocates it), which is why hot setups pass [oracle_us] directly. *)
let boxed_oracle_us oracle ~now ~seq ~src ~dst msg =
  match oracle ~now ~seq ~src ~dst msg with
  | Deliver_after d ->
      let us = Sim.Time.to_us d in
      if us < 0 then invalid_arg "Network.send: oracle returned negative delay"
      else us
  | Drop -> -1

let create ?(classify = default_classify) ?(pool = true) ?oracle_us engine ~n
    ~oracle =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  let oracle_us =
    match oracle_us with Some f -> f | None -> boxed_oracle_us oracle
  in
  {
    engine;
    n;
    oracle_us;
    classify;
    handlers = Array.make n None;
    crashed = Array.make n false;
    seq = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    groups = None;
    dup_until = Sim.Time.zero;
    dup_extra = Sim.Time.zero;
    pooling = pool;
    pool = [||];
    pool_n = 0;
    batch = n - 1 >= batch_fanout_min;
  }

let n t = t.n
let engine t = t.engine

let check_pid t i ~op =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Network.%s: pid %d out of range" op i)

let set_handler t i f =
  check_pid t i ~op:"set_handler";
  t.handlers.(i) <- Some f

(* [release] grows the pool with the released flight itself as the
   [Array.make] filler, so no dummy element is ever needed. The pooled
   record keeps its last [fmsg]/[finfo] values alive until reuse — a
   bounded retention (pool size = peak in-flight count), unlike the
   unbounded Pqueue slot leak this design replaces. *)
let release t f =
  let k = t.pool_n in
  if k = Array.length t.pool then begin
    let a = Array.make (if k = 0 then 64 else 2 * k) f in
    Array.blit t.pool 0 a 0 k;
    t.pool <- a
  end;
  t.pool.(k) <- f;
  t.pool_n <- k + 1

let deliver f =
  let t = f.net in
  let sent_at = f.sent_at in
  let seq = f.fseq and src = f.fsrc and dst = f.fdst in
  let msg = f.fmsg and finfo = f.finfo in
  (* Recycle before running the handler: every field is latched above, and
     the handler's own sends may then draw this very record from the pool. *)
  if f.frecycle then begin
    f.frecycle <- false;
    release t f
  end;
  (* A message to a crashed process is silently consumed: the paper treats
     the link to a crashed receiver as trivially timely. *)
  if not t.crashed.(dst) then begin
    t.delivered <- t.delivered + 1;
    let sink = Sim.Engine.sink t.engine in
    if Obs.Sink.wants sink Obs.Event.c_net then
      Obs.Sink.emit_deliver sink
        ~now:(Sim.Time.to_us (Sim.Engine.now t.engine))
        ~sent_at:(Sim.Time.to_us sent_at) ~seq ~src ~dst finfo;
    match t.handlers.(dst) with
    | Some f -> f ~src msg
    | None -> ()
  end

let () = Sim.Checkpoint.register ~id:3 deliver

(* One message onto one link: [now], [traced] and [info] are latched by the
   caller so [broadcast] classifies once for all n-1 destinations.
   [batched] routes the delivery through {!Sim.Engine.batch_call_after}
   (staged wheel insertion); the broadcast loops set it and commit once
   after the loop, [send] keeps the immediate path. Everything observable
   (seq numbers, Send/Drop/Sched emission, FIFO order) is identical either
   way. *)
let dispatch t ~batched ~now ~traced ~info ~src ~dst msg =
  let seq = t.seq in
  t.seq <- seq + 1;
  t.sent <- t.sent + 1;
  let sink = Sim.Engine.sink t.engine in
  if traced then
    Obs.Sink.emit_send sink ~now:(Sim.Time.to_us now) ~seq ~src ~dst info;
  (* A partition cuts the link before the oracle is consulted: messages
     across a group boundary are dropped without drawing delay randomness,
     so the same plan gives the same stream whatever the oracle. *)
  let cut =
    match t.groups with Some g -> g.(src) <> g.(dst) | None -> false
  in
  if cut then begin
    t.dropped <- t.dropped + 1;
    if traced then
      Obs.Sink.emit_drop sink ~now:(Sim.Time.to_us now) ~seq ~src ~dst info
  end
  else begin
    let delay_us = t.oracle_us ~now ~seq ~src ~dst msg in
    if delay_us < 0 then begin
      t.dropped <- t.dropped + 1;
      if traced then
        Obs.Sink.emit_drop sink ~now:(Sim.Time.to_us now) ~seq ~src ~dst info
    end
    else begin
      let delay = Sim.Time.of_us delay_us in
      let flight =
          if t.pool_n = 0 then
            {
              net = t;
              sent_at = now;
              fseq = seq;
              fsrc = src;
              fdst = dst;
              fmsg = msg;
              finfo = info;
              frecycle = t.pooling;
            }
          else begin
            let k = t.pool_n - 1 in
            t.pool_n <- k;
            let f = t.pool.(k) in
            f.sent_at <- now;
            f.fseq <- seq;
            f.fsrc <- src;
            f.fdst <- dst;
            f.fmsg <- msg;
            f.finfo <- info;
            f.frecycle <- true;
            f
          end
        in
      if batched then
        Sim.Engine.batch_call_after t.engine delay deliver flight
      else Sim.Engine.call_after t.engine delay deliver flight;
      if Sim.Time.(now < t.dup_until) then begin
        (* Two scheduled deliveries share this record; recycling on the
           first would corrupt the second, so this flight retires. *)
        flight.frecycle <- false;
        let extra = Sim.Time.add delay t.dup_extra in
        if batched then
          Sim.Engine.batch_call_after t.engine extra deliver flight
        else Sim.Engine.call_after t.engine extra deliver flight
      end
    end
  end

let send t ~src ~dst msg =
  check_pid t src ~op:"send";
  check_pid t dst ~op:"send";
  if not t.crashed.(src) then begin
    let now = Sim.Engine.now t.engine in
    let sink = Sim.Engine.sink t.engine in
    let traced = Obs.Sink.wants sink Obs.Event.c_net in
    let info = if traced then t.classify msg else Obs.Event.no_info in
    dispatch t ~batched:false ~now ~traced ~info ~src ~dst msg
  end

let broadcast t ~src msg =
  check_pid t src ~op:"broadcast";
  if not t.crashed.(src) then begin
    let now = Sim.Engine.now t.engine in
    let sink = Sim.Engine.sink t.engine in
    let traced = Obs.Sink.wants sink Obs.Event.c_net in
    let info = if traced then t.classify msg else Obs.Event.no_info in
    for dst = 0 to t.n - 1 do
      if dst <> src then
        dispatch t ~batched:t.batch ~now ~traced ~info ~src ~dst msg
    done;
    if t.batch then Sim.Engine.batch_commit t.engine
  end

let broadcast_all t ~src msg =
  check_pid t src ~op:"broadcast_all";
  if not t.crashed.(src) then begin
    let now = Sim.Engine.now t.engine in
    let sink = Sim.Engine.sink t.engine in
    let traced = Obs.Sink.wants sink Obs.Event.c_net in
    let info = if traced then t.classify msg else Obs.Event.no_info in
    for dst = 0 to t.n - 1 do
      dispatch t ~batched:t.batch ~now ~traced ~info ~src ~dst msg
    done;
    if t.batch then Sim.Engine.batch_commit t.engine
  end

let crash t i =
  check_pid t i ~op:"crash";
  t.crashed.(i) <- true

let recover t i =
  check_pid t i ~op:"recover";
  t.crashed.(i) <- false

let set_partition t groups =
  (match groups with
  | Some g when Array.length g <> t.n ->
      invalid_arg "Network.set_partition: groups must have length n"
  | _ -> ());
  t.groups <- groups

let set_dup_burst t ~until ~extra =
  if Sim.Time.(extra < Sim.Time.zero) then
    invalid_arg "Network.set_dup_burst: negative extra delay";
  t.dup_until <- until;
  t.dup_extra <- extra

let is_crashed t i =
  check_pid t i ~op:"is_crashed";
  t.crashed.(i)

let correct t =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if t.crashed.(i) then acc else i :: acc)
  in
  collect (t.n - 1) []

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
