(* Topology kinds and per-edge channel classes (DESIGN.md §17).

   A built topology is a routing table ({!Dstruct.Topo}) plus the rack/LAN
   grouping the fault plans target. Construction is deterministic: the
   structured kinds (ring, grid, fat-tree, WAN-of-LANs) draw nothing from
   the RNG stream they are handed, and the random-geometric kind draws its
   point set in pid order from that stream alone — so the same engine seed
   always yields the same graph, whatever else the run does. The complete
   kind builds no table at all: it is the legacy direct-dispatch network
   and must stay observationally identical to it. *)

type kind =
  | Complete
  | Ring
  | Grid
  | Random_geometric of { radius : float }
  | Fat_tree of { rack : int }
  | Wan_of_lans of { lan : int }

type channel =
  | Reliable
  | Fair_lossy of float
  | Eventually_timely of { gst : Sim.Time.t; bound : Sim.Time.t }

type t = {
  kind : kind;
  n : int;
  table : Dstruct.Topo.t option;  (* None = complete graph *)
  group : int array;  (* rack/LAN id per pid; [||] when the kind has none *)
  group_count : int;
}

let kind t = t.kind
let n t = t.n
let is_complete t = Option.is_none t.table

let complete n =
  if n <= 0 then invalid_arg "Topology.complete: n must be positive";
  { kind = Complete; n; table = None; group = [||]; group_count = 0 }

(* Sorted, deduplicated neighbour sets from an edge predicate. The sort is
   cosmetic (Topo canonicalizes next hops itself) but keeps the adjacency
   readable in the debugger. *)
let adjacency n edge =
  Array.init n (fun i ->
      let rec collect j acc =
        if j < 0 then acc
        else collect (j - 1) (if j <> i && edge i j then j :: acc else acc)
      in
      collect (n - 1) [])

let ring_adj n = adjacency n (fun i j -> (i + 1) mod n = j || (j + 1) mod n = i)

let grid_adj n =
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  adjacency n (fun i j ->
      let ri = i / cols and ci = i mod cols in
      let rj = j / cols and cj = j mod cols in
      (ri = rj && abs (ci - cj) = 1) || (ci = cj && abs (ri - rj) = 1))

(* Racks of [rack] consecutive pids, complete inside; the lowest pid of
   each rack is its gateway (top-of-rack uplink), and the gateways form a
   complete core — diameter <= 3 whatever n. *)
let fat_tree_adj ~rack n =
  adjacency n (fun i j ->
      i / rack = j / rack
      || (i mod rack = 0 && j mod rack = 0))

(* Complete LANs of [lan] consecutive pids; the lowest pid of each LAN is
   its border gateway, and the gateways sit on a WAN ring — diameter grows
   with the number of sites, unlike the fat tree's flat core. *)
let wan_adj ~lan n =
  let sites = (n + lan - 1) / lan in
  adjacency n (fun i j ->
      i / lan = j / lan
      || (i mod lan = 0 && j mod lan = 0 && sites > 1
         && ((i / lan + 1) mod sites = j / lan
            || (j / lan + 1) mod sites = i / lan)))

(* Unit-square points drawn in pid order (x then y), edges within [radius].
   A sparse draw can disconnect the graph; the repair is deterministic too:
   while some node is unreachable from 0, bridge the closest
   (reached, unreached) pair — ties broken by pid — and retry. *)
let geometric_adj ~radius ~rng n =
  if radius <= 0. then
    invalid_arg "Topology.build: random-geometric radius must be positive";
  let xs = Array.make n 0. and ys = Array.make n 0. in
  for i = 0 to n - 1 do
    xs.(i) <- Dstruct.Rng.float rng 1.0;
    ys.(i) <- Dstruct.Rng.float rng 1.0
  done;
  let d2 i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    (dx *. dx) +. (dy *. dy)
  in
  let r2 = radius *. radius in
  let extra = Hashtbl.create 8 in
  let edge i j = d2 i j <= r2 || Hashtbl.mem extra (min i j, max i j) in
  let reached () =
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          for v = 0 to n - 1 do
            if v <> u && (not seen.(v)) && edge u v then begin
              seen.(v) <- true;
              stack := v :: !stack
            end
          done
    done;
    seen
  in
  let rec repair () =
    let seen = reached () in
    if Array.exists not seen then begin
      let best = ref (-1, -1) and best_d = ref infinity in
      for u = 0 to n - 1 do
        if seen.(u) then
          for v = 0 to n - 1 do
            if not seen.(v) then begin
              let d = d2 u v in
              if d < !best_d then begin
                best_d := d;
                best := (u, v)
              end
            end
          done
      done;
      let u, v = !best in
      Hashtbl.replace extra (min u v, max u v) ();
      repair ()
    end
  in
  repair ();
  adjacency n edge

let build kind ~n ~rng =
  if n <= 0 then invalid_arg "Topology.build: n must be positive";
  match kind with
  | Complete -> complete n
  | Ring ->
      let table = Dstruct.Topo.of_adjacency (ring_adj n) in
      { kind; n; table = Some table; group = [||]; group_count = 0 }
  | Grid ->
      let table = Dstruct.Topo.of_adjacency (grid_adj n) in
      { kind; n; table = Some table; group = [||]; group_count = 0 }
  | Random_geometric { radius } ->
      let table = Dstruct.Topo.of_adjacency (geometric_adj ~radius ~rng n) in
      { kind; n; table = Some table; group = [||]; group_count = 0 }
  | Fat_tree { rack } ->
      if rack < 1 then invalid_arg "Topology.build: rack size must be >= 1";
      let table = Dstruct.Topo.of_adjacency (fat_tree_adj ~rack n) in
      let group = Array.init n (fun i -> i / rack) in
      {
        kind;
        n;
        table = Some table;
        group;
        group_count = ((n - 1) / rack) + 1;
      }
  | Wan_of_lans { lan } ->
      if lan < 1 then invalid_arg "Topology.build: lan size must be >= 1";
      let table = Dstruct.Topo.of_adjacency (wan_adj ~lan n) in
      let group = Array.init n (fun i -> i / lan) in
      {
        kind;
        n;
        table = Some table;
        group;
        group_count = ((n - 1) / lan) + 1;
      }

let next_hop t ~src ~dst =
  match t.table with
  | None -> dst
  | Some table -> Dstruct.Topo.next_hop table ~src ~dst

let dist t ~src ~dst =
  match t.table with
  | None -> if src = dst then 0 else 1
  | Some table -> Dstruct.Topo.dist table ~src ~dst

let diameter t =
  match t.table with
  | None -> if t.n > 1 then 1 else 0
  | Some table -> Dstruct.Topo.diameter table

let connected t =
  match t.table with None -> true | Some table -> Dstruct.Topo.connected table

let group_count t = t.group_count

let group_of t i =
  if Array.length t.group = 0 then -1 else t.group.(i)

let kind_of_string = function
  | "complete" -> Some Complete
  | "ring" -> Some Ring
  | "grid" -> Some Grid
  | "rgg" -> Some (Random_geometric { radius = 0.35 })
  | "fattree" -> Some (Fat_tree { rack = 4 })
  | "wan" -> Some (Wan_of_lans { lan = 4 })
  | _ -> None

let kind_to_string = function
  | Complete -> "complete"
  | Ring -> "ring"
  | Grid -> "grid"
  | Random_geometric _ -> "rgg"
  | Fat_tree _ -> "fattree"
  | Wan_of_lans _ -> "wan"
