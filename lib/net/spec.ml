(* Library-level alias so callers write [Net.Spec.default |> ...] next to
   [Net.Network.of_spec]; the builder itself lives in {!Network.Spec}
   (construction and the oracle-precedence rule are Network's business). *)
include Network.Spec
