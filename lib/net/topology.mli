(** Network topologies and per-edge channel classes (DESIGN.md §17).

    The paper's model is a complete graph of reliable links; this module
    is the generalization axis (López, Rajsbaum, Raynal & Vargas):
    multi-hop routing over a structured graph, with a reliability class
    per undirected edge. A built topology is immutable — precomputed
    next-hop tables ({!Dstruct.Topo}) plus the rack/LAN grouping that
    {!Fault.Plan.cut_rack} targets.

    Construction is deterministic. {!build} is handed an RNG stream (the
    network splits one off the engine seed); only {!Random_geometric}
    draws from it — in pid order, before anything else — so the same seed
    always yields the same graph, and the structured kinds do not depend
    on the stream at all. *)

type kind =
  | Complete  (** the paper's model; no routing, the legacy direct path *)
  | Ring  (** pid i <-> i+1 mod n; diameter n/2 *)
  | Grid  (** ~sqrt n x sqrt n mesh, row-major pids *)
  | Random_geometric of { radius : float }
      (** unit-square points, edges within [radius]; deterministically
          bridged if the draw disconnects *)
  | Fat_tree of { rack : int }
      (** complete racks of [rack] consecutive pids; the lowest pid of
          each rack is its gateway, gateways form a complete core
          (diameter <= 3) *)
  | Wan_of_lans of { lan : int }
      (** complete LANs of [lan] consecutive pids; LAN gateways sit on a
          WAN ring, so diameter grows with the number of sites *)

(** Per-edge reliability class, composed {e before} the delay oracle the
    way partitions cut traffic: a fair-lossy coin drops the hop without
    drawing delay randomness, and an eventually-timely promise clamps the
    oracle's delay to [bound] once [now >= gst]. *)
type channel =
  | Reliable
  | Fair_lossy of float  (** per-hop loss probability *)
  | Eventually_timely of { gst : Sim.Time.t; bound : Sim.Time.t }

type t

(** [complete n] is the no-table complete graph ({!Complete} without an
    RNG); {!build} returns it for [Complete]. *)
val complete : int -> t

(** [build kind ~n ~rng] precomputes the routing tables for [kind] over
    pids [0 .. n-1]. Only {!Random_geometric} draws from [rng]. *)
val build : kind -> n:int -> rng:Dstruct.Rng.t -> t

val kind : t -> kind
val n : t -> int
val is_complete : t -> bool

(** [next_hop t ~src ~dst] is the canonical first relay toward [dst]
    ([dst] itself when adjacent or complete; [-1] if unreachable — built
    kinds are always connected, but a fault plan cannot disconnect the
    table, only the traffic). No bounds check: called once per hop. *)
val next_hop : t -> src:int -> dst:int -> int

(** Shortest-path hop count ([1] for every distinct pair when complete). *)
val dist : t -> src:int -> dst:int -> int

(** Worst-case hop count; the factor by which {!Scenarios.Scenario.arrival_bound}
    and the checker's timeliness bound stretch on routed runs. *)
val diameter : t -> int

val connected : t -> bool

(** Rack/LAN grouping: [group_count] is [0] for kinds without one
    ({!Fat_tree} and {!Wan_of_lans} have [ceil (n / size)] groups), and
    [group_of t i] is [i]'s group id ([-1] when there is none). *)
val group_count : t -> int

val group_of : t -> int -> int

(** CLI names: ["complete"], ["ring"], ["grid"], ["rgg"] (radius 0.35),
    ["fattree"] (racks of 4), ["wan"] (LANs of 4). *)
val kind_of_string : string -> kind option

val kind_to_string : kind -> string
