type pid = int

type t = {
  engine : Sim.Engine.t;
  net : Omega.Message.t Net.Network.t;
  iface : Omega.Iface.t;
  scenario : Scenarios.Scenario.t;
  n : int;
  (* Last leader estimate each process reported via [Leader_change]; 0
     initially, matching the nodes' own initial estimate (lines 19-21 of an
     all-zero [susp_level] elect process 0). *)
  leaders : int array;
  mutable adaptive_on : bool;
  mutable target : pid;  (* current victim override; -1 = none yet *)
  mutable moves : int;
  mutable recoveries : int;
  mutable partitions : int;
}

let now_us inj = Sim.Time.to_us (Sim.Engine.now inj.engine)

(* Fault events are rare (a handful per run), but they still go through the
   guarded-emission discipline of every other site. *)
let emit_fault inj ev =
  let sink = Sim.Engine.sink inj.engine in
  if Obs.Sink.wants sink Obs.Event.c_fault then Obs.Sink.emit sink ev

(* ---- plan actions, as packed [call_at] events ---- *)

type partition_ev = {
  p_inj : t;
  p_groups : int array option;
  p_count : int;
  (* On heal ([p_groups = None]): processes whose group was too small to
     retain an [alpha]-quorum while the partition was in force. Their
     receiving rounds are stranded — the ALIVEs tagged with cut-window
     rounds are gone for good — so the heal re-seats them at the next live
     round ({!Omega.Node.resync}), mirroring crash recovery. Computed at
     [attach] from the plan, so it costs nothing per event. *)
  p_resync : pid array;
}

let apply_partition { p_inj = inj; p_groups; p_count; p_resync } =
  Net.Network.set_partition inj.net p_groups;
  if p_groups <> None then inj.partitions <- inj.partitions + 1;
  Array.iter
    (fun p ->
      if not (Net.Network.is_crashed inj.net p) then
        Omega.Iface.resync inj.iface p)
    p_resync;
  emit_fault inj
    (Obs.Event.Partition { now = now_us inj; groups = p_count })

type pid_ev = { a_inj : t; a_pid : pid }

let apply_crash { a_inj = inj; a_pid } = Net.Network.crash inj.net a_pid

let apply_recover { a_inj = inj; a_pid } =
  Omega.Iface.recover inj.iface a_pid;
  inj.recoveries <- inj.recoveries + 1;
  emit_fault inj (Obs.Event.Recover { now = now_us inj; pid = a_pid })

type dup_ev = { d_inj : t; d_until : Sim.Time.t; d_extra : Sim.Time.t }

let apply_dup { d_inj = inj; d_until; d_extra } =
  Net.Network.set_dup_burst inj.net ~until:d_until ~extra:d_extra

(* One packed handler covers all four edge moves, keyed by the event's
   state code (mirrored verbatim in [Edge_fault]): 0 cut, 1 healed,
   2 degraded, 3 degradation lifted. *)
type edge_ev = { e_inj : t; e_a : pid; e_b : pid; e_state : int; e_us : int }

let apply_edge { e_inj = inj; e_a; e_b; e_state; e_us } =
  (match e_state with
  | 0 -> Net.Network.set_edge_cut inj.net ~a:e_a ~b:e_b true
  | 1 -> Net.Network.set_edge_cut inj.net ~a:e_a ~b:e_b false
  | 2 -> Net.Network.set_edge_degrade inj.net ~a:e_a ~b:e_b ~extra_us:e_us
  | _ -> Net.Network.set_edge_degrade inj.net ~a:e_a ~b:e_b ~extra_us:0);
  emit_fault inj
    (Obs.Event.Edge_fault
       { now = now_us inj; a = e_a; b = e_b; state = e_state })

type rack_ev = { k_inj : t; k_rack : int; k_on : bool }

let apply_rack { k_inj = inj; k_rack; k_on } =
  Net.Network.set_rack_cut inj.net ~rack:k_rack k_on;
  emit_fault inj
    (Obs.Event.Rack_fault
       { now = now_us inj; rack = k_rack; state = (if k_on then 0 else 1) })

(* ---- the adaptive adversary ---- *)

(* Re-target when every non-crashed process currently believes in the same
   leader and it differs from the current victim: the strongest reactive
   generalization of the static victim rotation. Under a star regime the
   chase must end at the center — the assumption's protected arms are
   untouched by the override, so the center's suspicion level freezes while
   every other leader the processes converge on gets blocked away. Under
   Chaos nothing is protected and the chase never ends. *)
let try_retarget inj =
  if inj.adaptive_on then begin
    let l = ref (-1) in
    let agree = ref true in
    for p = 0 to inj.n - 1 do
      if not (Net.Network.is_crashed inj.net p) then begin
        let lp = inj.leaders.(p) in
        if !l < 0 then l := lp else if lp <> !l then agree := false
      end
    done;
    if !agree && !l >= 0 && !l <> inj.target then begin
      inj.target <- !l;
      Scenarios.Scenario.set_victim_override inj.scenario !l;
      inj.moves <- inj.moves + 1;
      emit_fault inj
        (Obs.Event.Adversary_move { now = now_us inj; target = !l })
    end
  end

let activate inj =
  inj.adaptive_on <- true;
  try_retarget inj

let () =
  Sim.Checkpoint.register ~id:7 apply_partition;
  Sim.Checkpoint.register ~id:8 apply_crash;
  Sim.Checkpoint.register ~id:9 apply_recover;
  Sim.Checkpoint.register ~id:10 apply_dup;
  Sim.Checkpoint.register ~id:11 activate;
  Sim.Checkpoint.register ~id:14 apply_edge;
  Sim.Checkpoint.register ~id:15 apply_rack

let on_event inj = function
  | Obs.Event.Leader_change { pid; leader; _ } ->
      inj.leaders.(pid) <- leader;
      try_retarget inj
  | _ -> ()

(* The injector's own sink: it consumes omega events (leader changes) to
   drive the adaptive adversary. Tee'd with the run's other sinks by the
   harness; an adaptive plan therefore turns on [c_omega] emission even in
   otherwise unobserved runs — the override it installs perturbs the run by
   design, so there is nothing to keep unperturbed. *)
let sink inj = Obs.Sink.make ~mask:Obs.Event.c_omega (on_event inj)

let attach plan ~iface ~scenario =
  let net = Omega.Iface.net iface in
  let engine = Omega.Iface.engine iface in
  let n = Omega.Iface.n iface in
  Plan.validate ~n plan;
  let inj =
    {
      engine;
      net;
      iface;
      scenario;
      n;
      leaders = Array.make n 0;
      adaptive_on = false;
      target = -1;
      moves = 0;
      recoveries = 0;
      partitions = 0;
    }
  in
  List.iter
    (fun action ->
      match action with
      | Plan.Partition { at; heal_at; groups } ->
          let g, count = Plan.groups_array ~n groups in
          let alpha = (Omega.Iface.config iface).Omega.Config.alpha in
          let sizes = Array.make count 0 in
          Array.iter (fun id -> sizes.(id) <- sizes.(id) + 1) g;
          let stranded =
            Array.of_seq
              (Seq.filter
                 (fun p -> sizes.(g.(p)) < alpha)
                 (Seq.init n Fun.id))
          in
          Sim.Engine.call_at engine at apply_partition
            { p_inj = inj; p_groups = Some g; p_count = count; p_resync = [||] };
          Sim.Engine.call_at engine heal_at apply_partition
            { p_inj = inj; p_groups = None; p_count = 1; p_resync = stranded }
      | Plan.Crash { pid; at } ->
          Sim.Engine.call_at engine at apply_crash { a_inj = inj; a_pid = pid }
      | Plan.Recover { pid; at } ->
          Sim.Engine.call_at engine at apply_recover
            { a_inj = inj; a_pid = pid }
      | Plan.Adaptive { from } -> Sim.Engine.call_at engine from activate inj
      | Plan.Dup_burst { at; until; extra } ->
          Sim.Engine.call_at engine at apply_dup
            { d_inj = inj; d_until = until; d_extra = extra }
      | Plan.Cut_edge { a; b; at; heal_at } -> (
          Sim.Engine.call_at engine at apply_edge
            { e_inj = inj; e_a = a; e_b = b; e_state = 0; e_us = 0 };
          match heal_at with
          | None -> ()
          | Some h ->
              Sim.Engine.call_at engine h apply_edge
                { e_inj = inj; e_a = a; e_b = b; e_state = 1; e_us = 0 })
      | Plan.Degrade_edge { a; b; extra; at; until } ->
          Sim.Engine.call_at engine at apply_edge
            {
              e_inj = inj;
              e_a = a;
              e_b = b;
              e_state = 2;
              e_us = Sim.Time.to_us extra;
            };
          Sim.Engine.call_at engine until apply_edge
            { e_inj = inj; e_a = a; e_b = b; e_state = 3; e_us = 0 }
      | Plan.Cut_rack { rack; at; heal_at } -> (
          Sim.Engine.call_at engine at apply_rack
            { k_inj = inj; k_rack = rack; k_on = true };
          match heal_at with
          | None -> ()
          | Some h ->
              Sim.Engine.call_at engine h apply_rack
                { k_inj = inj; k_rack = rack; k_on = false }))
    (Plan.actions plan);
  inj

let adaptive_in_plan plan =
  List.exists
    (function Plan.Adaptive _ -> true | _ -> false)
    (Plan.actions plan)

let moves inj = inj.moves
let recoveries inj = inj.recoveries
let partitions_applied inj = inj.partitions
let target inj = inj.target
