(** Declarative fault plans.

    A plan is pure data: a list of timed fault actions that
    {!Injector.attach} compiles onto a simulation stack. Plans are
    deterministic by construction — they hold no randomness of their own
    (any randomness an action needs flows from the engine-seeded
    {!Dstruct.Rng} streams of the layers it drives), so the same
    [(seed, plan)] pair always produces the same run, whatever the pool
    size. Build with the [|>]-chainable constructors:

    {[
      Fault.Plan.(
        empty
        |> partition ~at:(sec 1) ~heal_at:(sec 3) [ [ center ] ]
        |> crash 0 ~at:(sec 2)
        |> recover 0 ~at:(sec 4)
        |> adaptive ~from:(sec 1))
    ]} *)

type pid = int

type action =
  | Partition of {
      at : Sim.Time.t;
      heal_at : Sim.Time.t;
      groups : pid list list;
          (** explicit connectivity groups; processes not named share one
              implicit remainder group, so [[ [c] ]] isolates [c] *)
    }
  | Crash of { pid : pid; at : Sim.Time.t }
  | Recover of { pid : pid; at : Sim.Time.t }
      (** rejoin a process the plan crashed earlier, with its persisted
          state ({!Omega.Node.recover}) *)
  | Adaptive of { from : Sim.Time.t }
      (** from [from] on, re-target the victim blocks at whichever leader
          the processes agree on ({!Scenario.set_victim_override}) *)
  | Dup_burst of { at : Sim.Time.t; until : Sim.Time.t; extra : Sim.Time.t }
      (** every message sent in [[at, until)] is delivered twice, the
          duplicate [extra] later ({!Net.Network.set_dup_burst}) *)
  | Cut_edge of {
      a : pid;
      b : pid;
      at : Sim.Time.t;
      heal_at : Sim.Time.t option;
          (** [None] = permanent: the outage window runs forever *)
    }
      (** sever the undirected link [a—b] ({!Net.Network.set_edge_cut});
          routing tables are {e not} recomputed — on a routed topology
          traffic through the edge is lost hop by hop, exactly like a
          physical cable cut under static routing *)
  | Degrade_edge of {
      a : pid;
      b : pid;
      extra : Sim.Time.t;
      at : Sim.Time.t;
      until : Sim.Time.t;
    }
      (** add [extra] to every traversal of the link [a—b] in
          [[at, until)] ({!Net.Network.set_edge_degrade}) *)
  | Cut_rack of { rack : int; at : Sim.Time.t; heal_at : Sim.Time.t option }
      (** sever every link crossing the boundary of group [rack]
          ({!Net.Network.set_rack_cut}); only meaningful on grouped
          topologies ([Fat_tree]/[Wan]) *)

type t

val empty : t
val is_empty : t -> bool

(** Actions in the order they were added. *)
val actions : t -> action list

val partition : at:Sim.Time.t -> heal_at:Sim.Time.t -> pid list list -> t -> t
val crash : pid -> at:Sim.Time.t -> t -> t
val recover : pid -> at:Sim.Time.t -> t -> t
val adaptive : from:Sim.Time.t -> t -> t
val dup_burst : at:Sim.Time.t -> until:Sim.Time.t -> extra:Sim.Time.t -> t -> t

(** [cut_edge ~a ~b ~at ()] severs [a—b] at [at], forever; add
    [?heal_at] to restore it. *)
val cut_edge :
  a:pid -> b:pid -> at:Sim.Time.t -> ?heal_at:Sim.Time.t -> unit -> t -> t

val degrade_edge :
  a:pid -> b:pid -> extra:Sim.Time.t -> at:Sim.Time.t -> until:Sim.Time.t ->
  t -> t

val cut_rack : int -> at:Sim.Time.t -> ?heal_at:Sim.Time.t -> unit -> t -> t

(** Raises [Invalid_argument] on out-of-range pids, a pid in two groups of
    one partition, a window that ends before it starts, a crash of an
    already-down process, or a recover without a preceding crash. *)
val validate : n:int -> t -> unit

(** [(groups.(p), count)] rendering of one partition's group lists; exposed
    for the injector and tests. *)
val groups_array : n:int -> pid list list -> int array * int

(** The [(at, heal_at)] window of every partition action. *)
val partition_windows : t -> (Sim.Time.t * Sim.Time.t) list

(** Windows during which the plan may lose or over-delay messages: every
    partition window, every crash window that ends in a recovery (permanent
    crashes are covered by the checker's [crashed] predicate instead),
    every edge/rack cut (a permanent cut's window runs forever), and every
    edge degradation. [Harness.Run] masks assumption checking for rounds
    whose messages could be in flight during one of these. *)
val outage_windows : t -> (Sim.Time.t * Sim.Time.t) list

(** Total partition time within [[0, horizon]] (overlaps count double —
    plans with overlapping partitions rarely need this statistic). *)
val partition_downtime : horizon:Sim.Time.t -> t -> Sim.Time.t
