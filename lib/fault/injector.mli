(** Compiles a {!Plan} onto a live simulation stack.

    [attach] validates the plan and schedules every action as a packed
    {!Sim.Engine.call_at} event (static functions, one small record per
    action — nothing on the per-message hot path). Applied actions emit
    {!Obs.Event.c_fault} events ([Partition]/[Recover]/[Adversary_move])
    through the engine sink under the usual [wants] guard, so they feed
    digests and traces like every other layer.

    The adaptive adversary is event-driven: {!sink} consumes
    [Leader_change] events, and once the plan's [Adaptive] action fires,
    any moment at which every non-crashed process agrees on a leader that
    is not the current victim re-targets the scenario's victim override at
    it ({!Scenarios.Scenario.set_victim_override}). The harness must tee
    {!sink} into the engine sink for adaptive plans (see [Harness.Run]). *)

type pid = int
type t

(** [attach plan ~iface ~scenario] validates [plan] against the cluster
    size and schedules its actions on the cluster's engine. Call before
    the run starts; crashes scheduled by the plan act on the cluster's
    network, recoveries and partition-heal catch-ups go through the
    algorithm's {!Omega.Iface} hooks (so faults work the same over any
    algorithm a run selects), partitions and duplication bursts through
    the {!Net.Network} fault surface, and the adaptive adversary through
    [scenario]'s victim override. *)
val attach :
  Plan.t -> iface:Omega.Iface.t -> scenario:Scenarios.Scenario.t -> t

(** Sink consuming [Leader_change] events (mask {!Obs.Event.c_omega}) that
    drives the adaptive adversary; tee it into the engine sink iff
    {!adaptive_in_plan}. *)
val sink : t -> Obs.Sink.t

(** Does the plan contain an [Adaptive] action? *)
val adaptive_in_plan : Plan.t -> bool

(** Number of adversary re-targetings so far. *)
val moves : t -> int

(** Number of recoveries applied so far. *)
val recoveries : t -> int

(** Number of partitions formed (heals not counted). *)
val partitions_applied : t -> int

(** Current adversary target, [-1] before the first move. *)
val target : t -> pid
