type pid = int

type action =
  | Partition of { at : Sim.Time.t; heal_at : Sim.Time.t; groups : pid list list }
  | Crash of { pid : pid; at : Sim.Time.t }
  | Recover of { pid : pid; at : Sim.Time.t }
  | Adaptive of { from : Sim.Time.t }
  | Dup_burst of { at : Sim.Time.t; until : Sim.Time.t; extra : Sim.Time.t }
  | Cut_edge of {
      a : pid;
      b : pid;
      at : Sim.Time.t;
      heal_at : Sim.Time.t option;
    }
  | Degrade_edge of {
      a : pid;
      b : pid;
      extra : Sim.Time.t;
      at : Sim.Time.t;
      until : Sim.Time.t;
    }
  | Cut_rack of { rack : int; at : Sim.Time.t; heal_at : Sim.Time.t option }

type t = { actions : action list }

let empty = { actions = [] }
let is_empty t = t.actions = []
let actions t = t.actions
let add a t = { actions = t.actions @ [ a ] }

let partition ~at ~heal_at groups t = add (Partition { at; heal_at; groups }) t
let crash pid ~at t = add (Crash { pid; at }) t
let recover pid ~at t = add (Recover { pid; at }) t
let adaptive ~from t = add (Adaptive { from }) t
let dup_burst ~at ~until ~extra t = add (Dup_burst { at; until; extra }) t
let cut_edge ~a ~b ~at ?heal_at () t = add (Cut_edge { a; b; at; heal_at }) t

let degrade_edge ~a ~b ~extra ~at ~until t =
  add (Degrade_edge { a; b; extra; at; until }) t

let cut_rack rack ~at ?heal_at () t = add (Cut_rack { rack; at; heal_at }) t

(* [groups.(p)] = connectivity group of [p]; processes not named by any
   explicit group share one implicit remainder group, so e.g.
   [partition [[center]]] isolates the center from everyone else. Also
   returns the group count (what the [Partition] event reports). *)
let groups_array ~n groups =
  let g = Array.make n (-1) in
  List.iteri
    (fun gi members ->
      List.iter
        (fun p ->
          if p < 0 || p >= n then
            invalid_arg "Fault.Plan: partition pid out of range";
          if g.(p) >= 0 then
            invalid_arg "Fault.Plan: pid in two partition groups";
          g.(p) <- gi)
        members)
    groups;
  let explicit = List.length groups in
  let rest = Array.exists (fun x -> x < 0) g in
  if rest then
    Array.iteri (fun i x -> if x < 0 then g.(i) <- explicit) g;
  (g, explicit + if rest then 1 else 0)

let check_pid ~n p op =
  if p < 0 || p >= n then
    invalid_arg (Printf.sprintf "Fault.Plan: %s pid %d out of range" op p)

let validate ~n t =
  if n <= 0 then invalid_arg "Fault.Plan.validate: n must be positive";
  (* Per-pid crash/recover alternation: a recover must rejoin a process the
     plan crashed earlier (Harness.Run's [crashes] are permanent). *)
  let crashed_at = Array.make n Sim.Time.zero in
  let down = Array.make n false in
  List.iter
    (fun a ->
      match a with
      | Partition { at; heal_at; groups } ->
          if Sim.Time.(heal_at <= at) then
            invalid_arg "Fault.Plan: partition heals before it forms";
          ignore (groups_array ~n groups)
      | Crash { pid; at } ->
          check_pid ~n pid "crash";
          if down.(pid) then invalid_arg "Fault.Plan: crash of a down process";
          down.(pid) <- true;
          crashed_at.(pid) <- at
      | Recover { pid; at } ->
          check_pid ~n pid "recover";
          if not down.(pid) then
            invalid_arg "Fault.Plan: recover without a preceding crash";
          if Sim.Time.(at <= crashed_at.(pid)) then
            invalid_arg "Fault.Plan: recover before the crash";
          down.(pid) <- false
      | Adaptive _ -> ()
      | Dup_burst { at; until; extra } ->
          if Sim.Time.(until <= at) then
            invalid_arg "Fault.Plan: duplication burst ends before it starts";
          if Sim.Time.(extra < Sim.Time.zero) then
            invalid_arg "Fault.Plan: negative duplicate extra delay"
      | Cut_edge { a; b; at; heal_at } ->
          check_pid ~n a "cut_edge";
          check_pid ~n b "cut_edge";
          if a = b then invalid_arg "Fault.Plan: cut_edge of a self-loop";
          (match heal_at with
          | Some h when Sim.Time.(h <= at) ->
              invalid_arg "Fault.Plan: edge heals before it is cut"
          | _ -> ())
      | Degrade_edge { a; b; extra; at; until } ->
          check_pid ~n a "degrade_edge";
          check_pid ~n b "degrade_edge";
          if a = b then invalid_arg "Fault.Plan: degrade_edge of a self-loop";
          if Sim.Time.(until <= at) then
            invalid_arg "Fault.Plan: degradation lifts before it starts";
          if Sim.Time.(extra < Sim.Time.zero) then
            invalid_arg "Fault.Plan: negative degrade extra delay"
      | Cut_rack { rack; at; heal_at } ->
          if rack < 0 then invalid_arg "Fault.Plan: cut_rack rack negative";
          ignore at;
          (match heal_at with
          | Some h when Sim.Time.(h <= at) ->
              invalid_arg "Fault.Plan: rack heals before it is cut"
          | _ -> ()))
    t.actions

let partition_windows t =
  List.filter_map
    (function
      | Partition { at; heal_at; _ } -> Some (at, heal_at) | _ -> None)
    t.actions

(* A permanent edge/rack cut never heals: its outage window runs to the
   end of (virtual) time, so every checkable round overlapping it is
   masked. *)
let forever = Sim.Time.of_us max_int

(* Windows during which link or process outages may lose or delay messages
   beyond the assumption's promise: every partition, every crash window
   that ends in a recovery (a permanent crash is not an outage window — the
   checker's [crashed] predicate covers it, per A2(1)), every edge or rack
   cut, and every edge degradation (it loses nothing, but can break the
   δ-timeliness promise). Used to mask assumption checking; see
   Harness.Run. *)
let outage_windows t =
  let crashes =
    List.filter_map
      (fun a ->
        match a with
        | Crash { pid; at } ->
            let rec first_recover = function
              | [] -> None
              | Recover { pid = p; at = r } :: _
                when p = pid && Sim.Time.(at < r) -> Some (at, r)
              | _ :: rest -> first_recover rest
            in
            first_recover t.actions
        | _ -> None)
      t.actions
  in
  let topo =
    List.filter_map
      (function
        | Cut_edge { at; heal_at; _ } | Cut_rack { at; heal_at; _ } ->
            Some (at, Option.value heal_at ~default:forever)
        | Degrade_edge { at; until; _ } -> Some (at, until)
        | _ -> None)
      t.actions
  in
  partition_windows t @ crashes @ topo

let partition_downtime ~horizon t =
  List.fold_left
    (fun acc (at, heal_at) ->
      let hi = Sim.Time.min heal_at horizon in
      if Sim.Time.(hi <= at) then acc else Sim.Time.add acc (Sim.Time.sub hi at))
    Sim.Time.zero (partition_windows t)
