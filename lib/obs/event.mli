(** Typed simulation events.

    One monomorphic variant covers every layer of the stack — engine
    scheduling, network traffic, the Omega rounds/suspicions/leadership, and
    consensus ballots — so sinks (counters, JSONL writers, digests, the
    scenario checker) can consume a single stream without knowing message
    types. Times are raw {!Sim.Time} microsecond ints: [Obs] sits below
    [Sim] in the dependency order, because the engine itself emits events.

    Polymorphic network messages are projected into a {!msg_info} by a
    per-network classifier (see {!Net.Spec.with_classify}): a static [kind]
    string, the assumption-relevant round ([-1] when none — the same
    convention as [round_of] returning [None]), and the wire size. *)

type msg_info = { kind : string; round : int; bytes : int }

(** [{kind = "msg"; round = -1; bytes = 0}] — the default classifier. *)
val no_info : msg_info

type t =
  | Sched of { now : int; at : int }  (** engine: event scheduled *)
  | Fire of { now : int }  (** engine: event executed *)
  | Cancel of { now : int }  (** engine: live event cancelled *)
  | Timer_fire of { now : int }  (** a {!Sim.Timer} expired *)
  | Send of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Deliver of {
      now : int;
      sent_at : int;
      seq : int;
      src : int;
      dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Drop of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Duplicate of { now : int; src : int; dst : int; seq : int }
      (** retransmission layer: an already-delivered payload arrived again *)
  | Round_open of { now : int; pid : int; rn : int }
  | Round_close of { now : int; pid : int; rn : int; suspected : int }
  | Suspicion of { now : int; pid : int; target : int; level : int }
      (** [pid]'s suspicion level for [target] rose to [level] (local
          increment or adoption from a received ALIVE) *)
  | Leader_change of { now : int; pid : int; leader : int }
  | Ballot_open of { now : int; pid : int; ballot : int }
  | Decided of { now : int; pid : int; ballot : int }
      (** [ballot = -1] when learned from a DECIDE relay *)
  | Partition of { now : int; groups : int }
      (** fault plan: the partition in force changed; [groups] is the number
          of connectivity groups ([1] = fully healed) *)
  | Recover of { now : int; pid : int }
      (** fault plan: a crashed process rejoined with its persisted state *)
  | Adversary_move of { now : int; target : int }
      (** the adaptive adversary re-targeted its victim blocks at [target] *)
  | Relay_round of { now : int; pid : int; rn : int; stale : int }
      (** communication-efficient variant: relay [pid] aggregated and
          re-broadcast suspicion state for its heartbeat round [rn],
          having found [stale] processes past their staleness slack *)
  | Accusation of { now : int; pid : int; target : int; level : int }
      (** communication-efficient variant: [pid] broadcast an accusation
          against its silent relay [target] at suspicion [level] *)
  | Hop of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      via : int;
      kind : string;
      round : int;
      bytes : int;
    }
      (** routed topology: message [seq] on its way [src]->[dst] was
          forwarded by the intermediate relay [via] *)
  | Link_drop of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      hop_src : int;
      hop_dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
      (** routed topology: message [seq] ([src]->[dst] end to end) was lost
          on the hop [hop_src]->[hop_dst] — edge cut, fair-lossy coin, no
          route, or a crashed relay ([hop_src = hop_dst] for the last two) *)
  | Edge_fault of { now : int; a : int; b : int; state : int }
      (** fault plan: the undirected edge [a]<->[b] changed state
          ([0] cut, [1] healed, [2] degraded, [3] degradation lifted) *)
  | Rack_fault of { now : int; rack : int; state : int }
      (** fault plan: every edge crossing the boundary of [rack] was cut
          ([state = 0]) or healed ([state = 1]) *)

(** {2 Event classes}

    Emission sites guard on [Sink.wants sink class]: a sink's mask says
    which classes it consumes, and unwanted events are never allocated. *)

val c_engine : int

val c_timer : int
val c_net : int
val c_omega : int
val c_consensus : int
val c_fault : int

(** Union of every class. *)
val all : int

val class_of : t -> int

(** Stable lowercase name, also the ["ev"] field of {!to_json}. *)
val name : t -> string

(** Stable small int identifying the constructor; the digest folds it.
    Append-only: renumbering silently changes every pinned digest. *)
val tag : t -> int

(** [tag (Send _)], [tag (Deliver _)], [tag (Drop _)], [tag (Hop _)] and
    [tag (Link_drop _)] as constants, for scalar-lane consumers that have
    the fields but no event value. *)
val tag_send : int

val tag_deliver : int
val tag_drop : int
val tag_hop : int
val tag_link_drop : int

(** The [now] field, whichever constructor. *)
val time : t -> int

val pp : Format.formatter -> t -> unit

(** Append the event as one JSON object (no trailing newline). *)
val to_json : Buffer.t -> t -> unit
