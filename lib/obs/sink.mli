(** Event sinks.

    A sink is a mask of event classes it wants plus an [emit] function.
    The contract that keeps the disabled path free: producers must guard

    {[
      if Obs.Sink.wants sink Obs.Event.c_net then
        Obs.Sink.emit sink (Obs.Event.Send { ... })
    ]}

    so when the mask bit is clear (in particular for {!null}) the cost is a
    single branch and the event is never allocated.

    {2 Scalar fast lane}

    Send/Deliver/Drop are emitted once per simulated message and dominate a
    traced run. A sink that only folds their fields (the digest) can
    declare a {!scalar} implementation; producers that emit through
    {!emit_send} / {!emit_deliver} / {!emit_drop} then pass the fields
    directly and never allocate the event record. Sinks without a scalar
    lane (JSONL, ring, metrics, the checker) observe the exact same stream
    as before — the helpers build the event for them on demand. *)

type t

(** Direct field consumers for the three per-message event kinds. The
    [Event.msg_info] argument carries [kind]/[round]/[bytes] exactly as the
    corresponding event constructor would. *)
type scalar = {
  s_send :
    now:int -> seq:int -> src:int -> dst:int -> Event.msg_info -> unit;
  s_deliver :
    now:int ->
    sent_at:int ->
    seq:int ->
    src:int ->
    dst:int ->
    Event.msg_info ->
    unit;
  s_drop :
    now:int -> seq:int -> src:int -> dst:int -> Event.msg_info -> unit;
  s_hop :
    now:int ->
    seq:int ->
    src:int ->
    dst:int ->
    via:int ->
    Event.msg_info ->
    unit;
  s_link_drop :
    now:int ->
    seq:int ->
    src:int ->
    dst:int ->
    hop_src:int ->
    hop_dst:int ->
    Event.msg_info ->
    unit;
}

(** Mask [0]: wants nothing, [emit] is [ignore]. The default everywhere. *)
val null : t

(** [make ?scalar ~mask f] is a sink consuming the classes in [mask] with
    [f]. If [scalar] is given, it MUST fold Send/Deliver/Drop identically
    to [f] — producers choose either lane per emission site. *)
val make : ?scalar:scalar -> mask:int -> (Event.t -> unit) -> t

(** [wants t c] — does [t]'s mask intersect class [c]? O(1), no alloc. *)
val wants : t -> int -> bool

(** Unconditional dispatch; call only under a [wants] guard. *)
val emit : t -> Event.t -> unit

(** Fast-lane emission of a Send event: dispatches fields to the scalar
    lane when [t] has one, otherwise builds the event and calls [emit].
    Call only under a [wants t Event.c_net] guard. *)
val emit_send :
  t -> now:int -> seq:int -> src:int -> dst:int -> Event.msg_info -> unit

val emit_deliver :
  t ->
  now:int ->
  sent_at:int ->
  seq:int ->
  src:int ->
  dst:int ->
  Event.msg_info ->
  unit

val emit_drop :
  t -> now:int -> seq:int -> src:int -> dst:int -> Event.msg_info -> unit

(** Fast-lane emission of the per-hop routed-topology events (Hop and
    Link_drop), same contract as {!emit_send}: call only under a
    [wants t Event.c_net] guard. *)
val emit_hop :
  t ->
  now:int ->
  seq:int ->
  src:int ->
  dst:int ->
  via:int ->
  Event.msg_info ->
  unit

val emit_link_drop :
  t ->
  now:int ->
  seq:int ->
  src:int ->
  dst:int ->
  hop_src:int ->
  hop_dst:int ->
  Event.msg_info ->
  unit

val mask : t -> int
val is_null : t -> bool

(** [tee sinks] fans events out to every sink whose mask matches; its mask
    is the union. Collapses to {!null} / the single member when possible.
    The tee is scalar-capable iff at least one member is: scalar members
    receive fields, and a single event record is built for the remaining
    [c_net] members. *)
val tee : t list -> t
