(** Event sinks.

    A sink is a mask of event classes it wants plus an [emit] function.
    The contract that keeps the disabled path free: producers must guard

    {[
      if Obs.Sink.wants sink Obs.Event.c_net then
        Obs.Sink.emit sink (Obs.Event.Send { ... })
    ]}

    so when the mask bit is clear (in particular for {!null}) the cost is a
    single branch and the event is never allocated. *)

type t

(** Mask [0]: wants nothing, [emit] is [ignore]. The default everywhere. *)
val null : t

(** [make ~mask f] is a sink consuming the classes in [mask] with [f]. *)
val make : mask:int -> (Event.t -> unit) -> t

(** [wants t c] — does [t]'s mask intersect class [c]? O(1), no alloc. *)
val wants : t -> int -> bool

(** Unconditional dispatch; call only under a [wants] guard. *)
val emit : t -> Event.t -> unit

val mask : t -> int
val is_null : t -> bool

(** [tee sinks] fans events out to every sink whose mask matches; its mask
    is the union. Collapses to {!null} / the single member when possible. *)
val tee : t list -> t
