type per_kind = {
  mutable sent : int;
  mutable sent_bytes : int;
  mutable delivered : int;
  mutable dropped : int;
}

type t = {
  mask : int;
  by_kind : (string, per_kind) Hashtbl.t;
  delivery_delay_us : Dstruct.Stats.t;
  mutable duplicates : int;
  mutable timer_fires : int;
  mutable scheduled : int;
  mutable fired : int;
  mutable cancelled : int;
  mutable rounds_closed : int;
  mutable suspicion_increments : int;
  mutable leader_changes : int;
  mutable ballots : int;
  mutable decisions : int;
  mutable partitions : int;
  mutable recoveries : int;
  mutable adversary_moves : int;
  mutable relay_rounds : int;
  mutable accusations : int;
  mutable hops : int;
  mutable link_drops : int;
  mutable edge_faults : int;
  mutable rack_faults : int;
}

(* Counters + one delay histogram: everything the sink touches is O(1) per
   event, so metrics can stay on for whole experiment sweeps. *)
let create ?(mask = Event.all) () =
  {
    mask;
    by_kind = Hashtbl.create 8;
    delivery_delay_us = Dstruct.Stats.create ();
    duplicates = 0;
    timer_fires = 0;
    scheduled = 0;
    fired = 0;
    cancelled = 0;
    rounds_closed = 0;
    suspicion_increments = 0;
    leader_changes = 0;
    ballots = 0;
    decisions = 0;
    partitions = 0;
    recoveries = 0;
    adversary_moves = 0;
    relay_rounds = 0;
    accusations = 0;
    hops = 0;
    link_drops = 0;
    edge_faults = 0;
    rack_faults = 0;
  }

let kind_cell t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some c -> c
  | None ->
      let c = { sent = 0; sent_bytes = 0; delivered = 0; dropped = 0 } in
      Hashtbl.add t.by_kind kind c;
      c

let add t ev =
  match ev with
  | Event.Send { kind; bytes; _ } ->
      let c = kind_cell t kind in
      c.sent <- c.sent + 1;
      c.sent_bytes <- c.sent_bytes + bytes
  | Event.Deliver { kind; now; sent_at; _ } ->
      let c = kind_cell t kind in
      c.delivered <- c.delivered + 1;
      Dstruct.Stats.add t.delivery_delay_us (float_of_int (now - sent_at))
  | Event.Drop { kind; _ } ->
      let c = kind_cell t kind in
      c.dropped <- c.dropped + 1
  | Event.Duplicate _ -> t.duplicates <- t.duplicates + 1
  | Event.Timer_fire _ -> t.timer_fires <- t.timer_fires + 1
  | Event.Sched _ -> t.scheduled <- t.scheduled + 1
  | Event.Fire _ -> t.fired <- t.fired + 1
  | Event.Cancel _ -> t.cancelled <- t.cancelled + 1
  | Event.Round_open _ -> ()
  | Event.Round_close _ -> t.rounds_closed <- t.rounds_closed + 1
  | Event.Suspicion _ -> t.suspicion_increments <- t.suspicion_increments + 1
  | Event.Leader_change _ -> t.leader_changes <- t.leader_changes + 1
  | Event.Ballot_open _ -> t.ballots <- t.ballots + 1
  | Event.Decided _ -> t.decisions <- t.decisions + 1
  | Event.Partition _ -> t.partitions <- t.partitions + 1
  | Event.Recover _ -> t.recoveries <- t.recoveries + 1
  | Event.Adversary_move _ -> t.adversary_moves <- t.adversary_moves + 1
  | Event.Relay_round _ -> t.relay_rounds <- t.relay_rounds + 1
  | Event.Accusation _ -> t.accusations <- t.accusations + 1
  | Event.Hop _ -> t.hops <- t.hops + 1
  | Event.Link_drop { kind; _ } ->
      t.link_drops <- t.link_drops + 1;
      (kind_cell t kind).dropped <- (kind_cell t kind).dropped + 1
  | Event.Edge_fault _ -> t.edge_faults <- t.edge_faults + 1
  | Event.Rack_fault _ -> t.rack_faults <- t.rack_faults + 1

let sink t = Sink.make ~mask:t.mask (add t)

let kinds t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.by_kind []
  |> List.sort String.compare

let zero = { sent = 0; sent_bytes = 0; delivered = 0; dropped = 0 }
let cell t kind = Option.value ~default:zero (Hashtbl.find_opt t.by_kind kind)
let sent t ~kind = (cell t kind).sent
let sent_bytes t ~kind = (cell t kind).sent_bytes
let delivered t ~kind = (cell t kind).delivered
let dropped t ~kind = (cell t kind).dropped

let total f t = Hashtbl.fold (fun _ c acc -> acc + f c) t.by_kind 0
let total_sent t = total (fun c -> c.sent) t
let total_delivered t = total (fun c -> c.delivered) t
let total_dropped t = total (fun c -> c.dropped) t
let total_sent_bytes t = total (fun c -> c.sent_bytes) t
let duplicates t = t.duplicates
let timer_fires t = t.timer_fires
let scheduled t = t.scheduled
let fired t = t.fired
let cancelled t = t.cancelled
let rounds_closed t = t.rounds_closed
let suspicion_increments t = t.suspicion_increments
let leader_changes t = t.leader_changes
let ballots t = t.ballots
let decisions t = t.decisions
let partitions t = t.partitions
let recoveries t = t.recoveries
let adversary_moves t = t.adversary_moves
let relay_rounds t = t.relay_rounds
let accusations t = t.accusations
let hops t = t.hops
let link_drops t = t.link_drops
let edge_faults t = t.edge_faults
let rack_faults t = t.rack_faults
let delivery_delay_us t = t.delivery_delay_us

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun kind ->
      let c = cell t kind in
      Format.fprintf ppf "%-10s sent=%d (%dB) delivered=%d dropped=%d@,"
        kind c.sent c.sent_bytes c.delivered c.dropped)
    (kinds t);
  if t.duplicates > 0 then Format.fprintf ppf "duplicates=%d@," t.duplicates;
  Format.fprintf ppf "delay_us: %a@," Dstruct.Stats.summary t.delivery_delay_us;
  Format.fprintf ppf
    "rounds_closed=%d suspicion_incr=%d leader_changes=%d timer_fires=%d"
    t.rounds_closed t.suspicion_increments t.leader_changes t.timer_fires;
  if t.ballots > 0 || t.decisions > 0 then
    Format.fprintf ppf "@,ballots=%d decisions=%d" t.ballots t.decisions;
  if t.partitions > 0 || t.recoveries > 0 || t.adversary_moves > 0 then
    Format.fprintf ppf "@,faults: partitions=%d recoveries=%d adversary=%d"
      t.partitions t.recoveries t.adversary_moves;
  if t.relay_rounds > 0 || t.accusations > 0 then
    Format.fprintf ppf "@,relay: rounds=%d accusations=%d" t.relay_rounds
      t.accusations;
  if t.hops > 0 || t.link_drops > 0 then
    Format.fprintf ppf "@,routing: hops=%d link_drops=%d" t.hops t.link_drops;
  if t.edge_faults > 0 || t.rack_faults > 0 then
    Format.fprintf ppf "@,edges: edge_faults=%d rack_faults=%d" t.edge_faults
      t.rack_faults;
  if t.scheduled > 0 then
    Format.fprintf ppf "@,engine: scheduled=%d fired=%d cancelled=%d"
      t.scheduled t.fired t.cancelled;
  Format.fprintf ppf "@]"
