type t = {
  buf : Event.t option array;
  mutable next : int;  (* slot the next event goes into *)
  mutable total : int;
  mask : int;
}

let create ?(mask = Event.all) ~capacity () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0; mask }

let capacity t = Array.length t.buf
let total t = t.total
let length t = min t.total (Array.length t.buf)

let push t ev =
  t.buf.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let sink t = Sink.make ~mask:t.mask (push t)

let contents t =
  let cap = Array.length t.buf in
  let len = length t in
  (* Oldest surviving event sits at [next] once the ring has wrapped, at 0
     before that. *)
  let start = if t.total > cap then t.next else 0 in
  List.init len (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some ev -> ev
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0
