type t = { oc : out_channel; buf : Buffer.t; mask : int }

let create ?(mask = Event.all) oc = { oc; buf = Buffer.create 256; mask }

let write t ev =
  Buffer.clear t.buf;
  Event.to_json t.buf ev;
  Buffer.add_char t.buf '\n';
  Buffer.output_buffer t.oc t.buf

let sink t = Sink.make ~mask:t.mask (write t)

(* [text] must not contain characters needing JSON escaping; callers pass
   printf-built run labels. *)
let note t text =
  output_string t.oc "{\"note\":\"";
  output_string t.oc text;
  output_string t.oc "\"}\n"

let flush t = Stdlib.flush t.oc
let close t = close_out t.oc
