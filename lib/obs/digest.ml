(* FNV-1a, 64-bit. Each event folds its stable constructor tag, every int
   field, and the bytes of its kind string, so any reordering, insertion or
   field change in the deterministic event stream changes the digest.

   The fold value lives in an 8-byte buffer accessed through the unboxed
   bytes primitives (the same device as Dstruct.Rng): without flambda,
   a [mutable h : int64] field boxes every update, which cost ~75 minor
   words per event and made digest-gated runs pay more for fingerprinting
   than for simulating. [mix_int] keeps the whole 8-byte fold in registers
   — one load, eight xor+mul steps, one store, nothing allocated — and
   produces bit-identical values (byte extraction by [asr] matches the old
   [Int64.of_int] sign extension, including negative fields such as
   [round = -1]); test_obs pins a digest per fixed seed to hold it. *)

external get64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external set64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

type t = { b : Bytes.t; mask : int; mutable events : int }

let create ?(mask = Event.all) () =
  let b = Bytes.make 8 '\000' in
  set64 b 0 offset_basis;
  { b; mask; events = 0 }

(* h <- (h lxor byte) * prime *)
let[@inline] mix_byte t byt =
  set64 t.b 0
    (Int64.mul (Int64.logxor (get64 t.b 0) (Int64.of_int (byt land 0xff))) prime)

(* Little-endian bytes of the 64-bit two's-complement value of [i]. The
   fold is written as one let-chain so the intermediate hashes stay
   unboxed. *)
let mix_int t i =
  let h = get64 t.b 0 in
  let h = Int64.mul (Int64.logxor h (Int64.of_int (i land 0xff))) prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((i asr 8) land 0xff))) prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((i asr 16) land 0xff))) prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((i asr 24) land 0xff))) prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((i asr 32) land 0xff))) prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((i asr 40) land 0xff))) prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((i asr 48) land 0xff))) prime in
  let h = Int64.mul (Int64.logxor h (Int64.of_int ((i asr 56) land 0xff))) prime in
  set64 t.b 0 h

let mix_string t s =
  for i = 0 to String.length s - 1 do
    mix_byte t (Char.code (String.unsafe_get s i))
  done

let add t ev =
  t.events <- t.events + 1;
  mix_int t (Event.tag ev);
  match ev with
  | Event.Sched { now; at } ->
      mix_int t now;
      mix_int t at
  | Event.Fire { now } | Event.Cancel { now } | Event.Timer_fire { now } ->
      mix_int t now
  | Event.Send { now; seq; src; dst; kind; round; bytes }
  | Event.Drop { now; seq; src; dst; kind; round; bytes } ->
      mix_int t now;
      mix_int t seq;
      mix_int t src;
      mix_int t dst;
      mix_string t kind;
      mix_int t round;
      mix_int t bytes
  | Event.Deliver { now; sent_at; seq; src; dst; kind; round; bytes } ->
      mix_int t now;
      mix_int t sent_at;
      mix_int t seq;
      mix_int t src;
      mix_int t dst;
      mix_string t kind;
      mix_int t round;
      mix_int t bytes
  | Event.Duplicate { now; src; dst; seq } ->
      mix_int t now;
      mix_int t src;
      mix_int t dst;
      mix_int t seq
  | Event.Round_open { now; pid; rn } ->
      mix_int t now;
      mix_int t pid;
      mix_int t rn
  | Event.Round_close { now; pid; rn; suspected } ->
      mix_int t now;
      mix_int t pid;
      mix_int t rn;
      mix_int t suspected
  | Event.Suspicion { now; pid; target; level } ->
      mix_int t now;
      mix_int t pid;
      mix_int t target;
      mix_int t level
  | Event.Leader_change { now; pid; leader } ->
      mix_int t now;
      mix_int t pid;
      mix_int t leader
  | Event.Ballot_open { now; pid; ballot } | Event.Decided { now; pid; ballot }
    ->
      mix_int t now;
      mix_int t pid;
      mix_int t ballot
  | Event.Partition { now; groups } ->
      mix_int t now;
      mix_int t groups
  | Event.Recover { now; pid } ->
      mix_int t now;
      mix_int t pid
  | Event.Adversary_move { now; target } ->
      mix_int t now;
      mix_int t target
  | Event.Relay_round { now; pid; rn; stale } ->
      mix_int t now;
      mix_int t pid;
      mix_int t rn;
      mix_int t stale
  | Event.Accusation { now; pid; target; level } ->
      mix_int t now;
      mix_int t pid;
      mix_int t target;
      mix_int t level
  | Event.Hop { now; seq; src; dst; via; kind; round; bytes } ->
      mix_int t now;
      mix_int t seq;
      mix_int t src;
      mix_int t dst;
      mix_int t via;
      mix_string t kind;
      mix_int t round;
      mix_int t bytes
  | Event.Link_drop { now; seq; src; dst; hop_src; hop_dst; kind; round; bytes }
    ->
      mix_int t now;
      mix_int t seq;
      mix_int t src;
      mix_int t dst;
      mix_int t hop_src;
      mix_int t hop_dst;
      mix_string t kind;
      mix_int t round;
      mix_int t bytes
  | Event.Edge_fault { now; a; b; state } ->
      mix_int t now;
      mix_int t a;
      mix_int t b;
      mix_int t state
  | Event.Rack_fault { now; rack; state } ->
      mix_int t now;
      mix_int t rack;
      mix_int t state

(* The scalar lane folds exactly what [add] folds for the corresponding
   event — same tag, same field order — without the event ever existing. *)
let scalar t =
  {
    Sink.s_send =
      (fun ~now ~seq ~src ~dst (info : Event.msg_info) ->
        t.events <- t.events + 1;
        mix_int t Event.tag_send;
        mix_int t now;
        mix_int t seq;
        mix_int t src;
        mix_int t dst;
        mix_string t info.kind;
        mix_int t info.round;
        mix_int t info.bytes);
    s_deliver =
      (fun ~now ~sent_at ~seq ~src ~dst (info : Event.msg_info) ->
        t.events <- t.events + 1;
        mix_int t Event.tag_deliver;
        mix_int t now;
        mix_int t sent_at;
        mix_int t seq;
        mix_int t src;
        mix_int t dst;
        mix_string t info.kind;
        mix_int t info.round;
        mix_int t info.bytes);
    s_drop =
      (fun ~now ~seq ~src ~dst (info : Event.msg_info) ->
        t.events <- t.events + 1;
        mix_int t Event.tag_drop;
        mix_int t now;
        mix_int t seq;
        mix_int t src;
        mix_int t dst;
        mix_string t info.kind;
        mix_int t info.round;
        mix_int t info.bytes);
    s_hop =
      (fun ~now ~seq ~src ~dst ~via (info : Event.msg_info) ->
        t.events <- t.events + 1;
        mix_int t Event.tag_hop;
        mix_int t now;
        mix_int t seq;
        mix_int t src;
        mix_int t dst;
        mix_int t via;
        mix_string t info.kind;
        mix_int t info.round;
        mix_int t info.bytes);
    s_link_drop =
      (fun ~now ~seq ~src ~dst ~hop_src ~hop_dst (info : Event.msg_info) ->
        t.events <- t.events + 1;
        mix_int t Event.tag_link_drop;
        mix_int t now;
        mix_int t seq;
        mix_int t src;
        mix_int t dst;
        mix_int t hop_src;
        mix_int t hop_dst;
        mix_string t info.kind;
        mix_int t info.round;
        mix_int t info.bytes);
  }

let sink t = Sink.make ~scalar:(scalar t) ~mask:t.mask (add t)
let value t = get64 t.b 0
let events t = t.events
let to_hex d = Printf.sprintf "%016Lx" d
