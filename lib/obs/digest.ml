(* FNV-1a, 64-bit. Each event folds its stable constructor tag, every int
   field, and the bytes of its kind string, so any reordering, insertion or
   field change in the deterministic event stream changes the digest. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

type t = { mutable h : int64; mask : int; mutable events : int }

let create ?(mask = Event.all) () = { h = offset_basis; mask; events = 0 }

let mix_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let mix_int h i =
  let x = Int64.of_int i in
  let h = ref h in
  for shift = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * shift)))
  done;
  !h

let mix_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h

let add t ev =
  t.events <- t.events + 1;
  let h = mix_int t.h (Event.tag ev) in
  let h =
    match ev with
    | Event.Sched { now; at } -> mix_int (mix_int h now) at
    | Event.Fire { now } | Event.Cancel { now } | Event.Timer_fire { now } ->
        mix_int h now
    | Event.Send { now; seq; src; dst; kind; round; bytes }
    | Event.Drop { now; seq; src; dst; kind; round; bytes } ->
        let h = mix_int (mix_int (mix_int (mix_int h now) seq) src) dst in
        mix_int (mix_int (mix_string h kind) round) bytes
    | Event.Deliver { now; sent_at; seq; src; dst; kind; round; bytes } ->
        let h = mix_int (mix_int (mix_int (mix_int h now) sent_at) seq) src in
        mix_int (mix_int (mix_string (mix_int h dst) kind) round) bytes
    | Event.Duplicate { now; src; dst; seq } ->
        mix_int (mix_int (mix_int (mix_int h now) src) dst) seq
    | Event.Round_open { now; pid; rn } ->
        mix_int (mix_int (mix_int h now) pid) rn
    | Event.Round_close { now; pid; rn; suspected } ->
        mix_int (mix_int (mix_int (mix_int h now) pid) rn) suspected
    | Event.Suspicion { now; pid; target; level } ->
        mix_int (mix_int (mix_int (mix_int h now) pid) target) level
    | Event.Leader_change { now; pid; leader } ->
        mix_int (mix_int (mix_int h now) pid) leader
    | Event.Ballot_open { now; pid; ballot } | Event.Decided { now; pid; ballot }
      ->
        mix_int (mix_int (mix_int h now) pid) ballot
  in
  t.h <- h

let sink t = Sink.make ~mask:t.mask (add t)
let value t = t.h
let events t = t.events
let to_hex d = Printf.sprintf "%016Lx" d
