type t = { mask : int; emit : Event.t -> unit }

let null = { mask = 0; emit = ignore }
let make ~mask emit = { mask; emit }
let wants t c = t.mask land c <> 0
let emit t ev = t.emit ev
let mask t = t.mask
let is_null t = t.mask = 0

let tee sinks =
  match List.filter (fun s -> s.mask <> 0) sinks with
  | [] -> null
  | [ s ] -> s
  | sinks ->
      let arr = Array.of_list sinks in
      let mask = Array.fold_left (fun acc s -> acc lor s.mask) 0 arr in
      {
        mask;
        emit =
          (fun ev ->
            let c = Event.class_of ev in
            Array.iter (fun s -> if s.mask land c <> 0 then s.emit ev) arr);
      }
