(* [scalar] is the fast lane for the three per-message event kinds that
   dominate a traced run: a scalar-capable sink (the digest) consumes the
   fields directly and the producer never builds an [Event.t] record.
   Everything else — rare constructors, record-only sinks — still flows
   through [emit] with a full event value. *)

type scalar = {
  s_send :
    now:int -> seq:int -> src:int -> dst:int -> Event.msg_info -> unit;
  s_deliver :
    now:int ->
    sent_at:int ->
    seq:int ->
    src:int ->
    dst:int ->
    Event.msg_info ->
    unit;
  s_drop :
    now:int -> seq:int -> src:int -> dst:int -> Event.msg_info -> unit;
  s_hop :
    now:int ->
    seq:int ->
    src:int ->
    dst:int ->
    via:int ->
    Event.msg_info ->
    unit;
  s_link_drop :
    now:int ->
    seq:int ->
    src:int ->
    dst:int ->
    hop_src:int ->
    hop_dst:int ->
    Event.msg_info ->
    unit;
}

type t = { mask : int; emit : Event.t -> unit; scalar : scalar option }

let null = { mask = 0; emit = ignore; scalar = None }
let make ?scalar ~mask emit = { mask; emit; scalar }
let wants t c = t.mask land c <> 0
let emit t ev = t.emit ev
let mask t = t.mask
let is_null t = t.mask = 0

(* Producer helpers for the fast-lane kinds: call only under a
   [wants t Event.c_net] guard, like [emit]. The [None] branch builds the
   event exactly as the producer used to, so record sinks see an unchanged
   stream. *)

let emit_send t ~now ~seq ~src ~dst (info : Event.msg_info) =
  match t.scalar with
  | Some s -> s.s_send ~now ~seq ~src ~dst info
  | None ->
      t.emit
        (Event.Send
           {
             now;
             seq;
             src;
             dst;
             kind = info.kind;
             round = info.round;
             bytes = info.bytes;
           })

let emit_deliver t ~now ~sent_at ~seq ~src ~dst (info : Event.msg_info) =
  match t.scalar with
  | Some s -> s.s_deliver ~now ~sent_at ~seq ~src ~dst info
  | None ->
      t.emit
        (Event.Deliver
           {
             now;
             sent_at;
             seq;
             src;
             dst;
             kind = info.kind;
             round = info.round;
             bytes = info.bytes;
           })

let emit_drop t ~now ~seq ~src ~dst (info : Event.msg_info) =
  match t.scalar with
  | Some s -> s.s_drop ~now ~seq ~src ~dst info
  | None ->
      t.emit
        (Event.Drop
           {
             now;
             seq;
             src;
             dst;
             kind = info.kind;
             round = info.round;
             bytes = info.bytes;
           })

let emit_hop t ~now ~seq ~src ~dst ~via (info : Event.msg_info) =
  match t.scalar with
  | Some s -> s.s_hop ~now ~seq ~src ~dst ~via info
  | None ->
      t.emit
        (Event.Hop
           {
             now;
             seq;
             src;
             dst;
             via;
             kind = info.kind;
             round = info.round;
             bytes = info.bytes;
           })

let emit_link_drop t ~now ~seq ~src ~dst ~hop_src ~hop_dst
    (info : Event.msg_info) =
  match t.scalar with
  | Some s -> s.s_link_drop ~now ~seq ~src ~dst ~hop_src ~hop_dst info
  | None ->
      t.emit
        (Event.Link_drop
           {
             now;
             seq;
             src;
             dst;
             hop_src;
             hop_dst;
             kind = info.kind;
             round = info.round;
             bytes = info.bytes;
           })

let tee sinks =
  match List.filter (fun s -> s.mask <> 0) sinks with
  | [] -> null
  | [ s ] -> s
  | sinks ->
      let arr = Array.of_list sinks in
      let mask = Array.fold_left (fun acc s -> acc lor s.mask) 0 arr in
      let emit ev =
        let c = Event.class_of ev in
        Array.iter (fun s -> if s.mask land c <> 0 then s.emit ev) arr
      in
      (* The tee keeps the fast lane open iff some member can use it: scalar
         members get the fields, and one event record is built for all the
         record-only members together (they all want [c_net] by
         construction, so no per-member class check is needed). *)
      let net = List.filter (fun s -> s.mask land Event.c_net <> 0) sinks in
      let scalars = Array.of_list (List.filter_map (fun s -> s.scalar) net) in
      let recs =
        Array.of_list (List.filter (fun s -> Option.is_none s.scalar) net)
      in
      let scalar =
        if Array.length scalars = 0 then None
        else
          Some
            {
              s_send =
                (fun ~now ~seq ~src ~dst info ->
                  Array.iter
                    (fun s -> s.s_send ~now ~seq ~src ~dst info)
                    scalars;
                  if Array.length recs > 0 then begin
                    let ev =
                      Event.Send
                        {
                          now;
                          seq;
                          src;
                          dst;
                          kind = info.Event.kind;
                          round = info.Event.round;
                          bytes = info.Event.bytes;
                        }
                    in
                    Array.iter (fun s -> s.emit ev) recs
                  end);
              s_deliver =
                (fun ~now ~sent_at ~seq ~src ~dst info ->
                  Array.iter
                    (fun s -> s.s_deliver ~now ~sent_at ~seq ~src ~dst info)
                    scalars;
                  if Array.length recs > 0 then begin
                    let ev =
                      Event.Deliver
                        {
                          now;
                          sent_at;
                          seq;
                          src;
                          dst;
                          kind = info.Event.kind;
                          round = info.Event.round;
                          bytes = info.Event.bytes;
                        }
                    in
                    Array.iter (fun s -> s.emit ev) recs
                  end);
              s_drop =
                (fun ~now ~seq ~src ~dst info ->
                  Array.iter
                    (fun s -> s.s_drop ~now ~seq ~src ~dst info)
                    scalars;
                  if Array.length recs > 0 then begin
                    let ev =
                      Event.Drop
                        {
                          now;
                          seq;
                          src;
                          dst;
                          kind = info.Event.kind;
                          round = info.Event.round;
                          bytes = info.Event.bytes;
                        }
                    in
                    Array.iter (fun s -> s.emit ev) recs
                  end);
              s_hop =
                (fun ~now ~seq ~src ~dst ~via info ->
                  Array.iter
                    (fun s -> s.s_hop ~now ~seq ~src ~dst ~via info)
                    scalars;
                  if Array.length recs > 0 then begin
                    let ev =
                      Event.Hop
                        {
                          now;
                          seq;
                          src;
                          dst;
                          via;
                          kind = info.Event.kind;
                          round = info.Event.round;
                          bytes = info.Event.bytes;
                        }
                    in
                    Array.iter (fun s -> s.emit ev) recs
                  end);
              s_link_drop =
                (fun ~now ~seq ~src ~dst ~hop_src ~hop_dst info ->
                  Array.iter
                    (fun s ->
                      s.s_link_drop ~now ~seq ~src ~dst ~hop_src ~hop_dst info)
                    scalars;
                  if Array.length recs > 0 then begin
                    let ev =
                      Event.Link_drop
                        {
                          now;
                          seq;
                          src;
                          dst;
                          hop_src;
                          hop_dst;
                          kind = info.Event.kind;
                          round = info.Event.round;
                          bytes = info.Event.bytes;
                        }
                    in
                    Array.iter (fun s -> s.emit ev) recs
                  end);
            }
      in
      { mask; emit; scalar }
