(** Run digest: an FNV-1a 64-bit fold over the event stream.

    Because every run is a pure function of its seed and every event is
    emitted at a deterministic point, the digest is a fingerprint of the
    whole execution: same seed ⇒ same digest, for any [--jobs N]. It is the
    determinism oracle used by [test_obs] and the CI gate — far stronger
    than diffing experiment tables, which only summarize endpoints. *)

type t

(** Default mask: {!Event.all} — digest everything the producers emit. *)
val create : ?mask:int -> unit -> t

(** The sink is scalar-capable: producers emitting Send/Deliver/Drop
    through the [Sink.emit_*] helpers feed the fold directly, without
    allocating event records — the digest value is identical either way. *)
val sink : t -> Sink.t

(** The record-path fold: what [sink] does to a full event. Exposed so a
    digest can be attached through a plain [Sink.make] (no scalar lane) —
    [test_obs] pins that both routes produce the same value. *)
val add : t -> Event.t -> unit

(** Current fold value. *)
val value : t -> int64

(** Events folded so far. *)
val events : t -> int

(** 16 lowercase hex digits. *)
val to_hex : int64 -> string
