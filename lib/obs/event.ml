type msg_info = { kind : string; round : int; bytes : int }

let no_info = { kind = "msg"; round = -1; bytes = 0 }

type t =
  | Sched of { now : int; at : int }
  | Fire of { now : int }
  | Cancel of { now : int }
  | Timer_fire of { now : int }
  | Send of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Deliver of {
      now : int;
      sent_at : int;
      seq : int;
      src : int;
      dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Drop of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Duplicate of { now : int; src : int; dst : int; seq : int }
  | Round_open of { now : int; pid : int; rn : int }
  | Round_close of { now : int; pid : int; rn : int; suspected : int }
  | Suspicion of { now : int; pid : int; target : int; level : int }
  | Leader_change of { now : int; pid : int; leader : int }
  | Ballot_open of { now : int; pid : int; ballot : int }
  | Decided of { now : int; pid : int; ballot : int }
  | Partition of { now : int; groups : int }
  | Recover of { now : int; pid : int }
  | Adversary_move of { now : int; target : int }
  | Relay_round of { now : int; pid : int; rn : int; stale : int }
  | Accusation of { now : int; pid : int; target : int; level : int }
  | Hop of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      via : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Link_drop of {
      now : int;
      seq : int;
      src : int;
      dst : int;
      hop_src : int;
      hop_dst : int;
      kind : string;
      round : int;
      bytes : int;
    }
  | Edge_fault of { now : int; a : int; b : int; state : int }
  | Rack_fault of { now : int; rack : int; state : int }

let c_engine = 1
let c_timer = 2
let c_net = 4
let c_omega = 8
let c_consensus = 16
let c_fault = 32

let all =
  c_engine lor c_timer lor c_net lor c_omega lor c_consensus lor c_fault

let class_of = function
  | Sched _ | Fire _ | Cancel _ -> c_engine
  | Timer_fire _ -> c_timer
  | Send _ | Deliver _ | Drop _ | Duplicate _ | Hop _ | Link_drop _ -> c_net
  | Round_open _ | Round_close _ | Suspicion _ | Leader_change _
  | Relay_round _ | Accusation _ -> c_omega
  | Ballot_open _ | Decided _ -> c_consensus
  | Partition _ | Recover _ | Adversary_move _ | Edge_fault _ | Rack_fault _
    -> c_fault

let name = function
  | Sched _ -> "sched"
  | Fire _ -> "fire"
  | Cancel _ -> "cancel"
  | Timer_fire _ -> "timer_fire"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Duplicate _ -> "dup"
  | Round_open _ -> "round_open"
  | Round_close _ -> "round_close"
  | Suspicion _ -> "suspicion"
  | Leader_change _ -> "leader_change"
  | Ballot_open _ -> "ballot_open"
  | Decided _ -> "decided"
  | Partition _ -> "partition"
  | Recover _ -> "recover"
  | Adversary_move _ -> "adversary_move"
  | Relay_round _ -> "relay_round"
  | Accusation _ -> "accusation"
  | Hop _ -> "hop"
  | Link_drop _ -> "link_drop"
  | Edge_fault _ -> "edge_fault"
  | Rack_fault _ -> "rack_fault"

(* Small integer tags for digesting; must stay stable across PRs or pinned
   digests in tests/CI change meaning. Append-only. The named constants are
   for the scalar fast lane (sinks folding Send/Deliver/Drop fields without
   an event value to pass to [tag]). *)
let tag_send = 5
let tag_deliver = 6
let tag_drop = 7
let tag_hop = 20
let tag_link_drop = 21

let tag = function
  | Sched _ -> 1
  | Fire _ -> 2
  | Cancel _ -> 3
  | Timer_fire _ -> 4
  | Send _ -> tag_send
  | Deliver _ -> tag_deliver
  | Drop _ -> tag_drop
  | Duplicate _ -> 8
  | Round_open _ -> 9
  | Round_close _ -> 10
  | Suspicion _ -> 11
  | Leader_change _ -> 12
  | Ballot_open _ -> 13
  | Decided _ -> 14
  | Partition _ -> 15
  | Recover _ -> 16
  | Adversary_move _ -> 17
  | Relay_round _ -> 18
  | Accusation _ -> 19
  | Hop _ -> tag_hop
  | Link_drop _ -> tag_link_drop
  | Edge_fault _ -> 22
  | Rack_fault _ -> 23

let time = function
  | Sched { now; _ }
  | Fire { now }
  | Cancel { now }
  | Timer_fire { now }
  | Send { now; _ }
  | Deliver { now; _ }
  | Drop { now; _ }
  | Duplicate { now; _ }
  | Round_open { now; _ }
  | Round_close { now; _ }
  | Suspicion { now; _ }
  | Leader_change { now; _ }
  | Ballot_open { now; _ }
  | Decided { now; _ }
  | Partition { now; _ }
  | Recover { now; _ }
  | Adversary_move { now; _ }
  | Relay_round { now; _ }
  | Accusation { now; _ }
  | Hop { now; _ }
  | Link_drop { now; _ }
  | Edge_fault { now; _ }
  | Rack_fault { now; _ } -> now

let pp ppf ev =
  match ev with
  | Sched { now; at } -> Format.fprintf ppf "[%d] sched at=%d" now at
  | Fire { now } -> Format.fprintf ppf "[%d] fire" now
  | Cancel { now } -> Format.fprintf ppf "[%d] cancel" now
  | Timer_fire { now } -> Format.fprintf ppf "[%d] timer_fire" now
  | Send { now; seq; src; dst; kind; round; bytes } ->
      Format.fprintf ppf "[%d] send #%d %d->%d %s rn=%d %dB" now seq src dst
        kind round bytes
  | Deliver { now; sent_at; seq; src; dst; kind; round; bytes } ->
      Format.fprintf ppf "[%d] deliver #%d %d->%d %s rn=%d %dB (sent %d)" now
        seq src dst kind round bytes sent_at
  | Drop { now; seq; src; dst; kind; round; bytes } ->
      Format.fprintf ppf "[%d] drop #%d %d->%d %s rn=%d %dB" now seq src dst
        kind round bytes
  | Duplicate { now; src; dst; seq } ->
      Format.fprintf ppf "[%d] dup #%d %d->%d" now seq src dst
  | Round_open { now; pid; rn } ->
      Format.fprintf ppf "[%d] p%d round_open rn=%d" now pid rn
  | Round_close { now; pid; rn; suspected } ->
      Format.fprintf ppf "[%d] p%d round_close rn=%d suspected=%d" now pid rn
        suspected
  | Suspicion { now; pid; target; level } ->
      Format.fprintf ppf "[%d] p%d suspicion target=%d level=%d" now pid
        target level
  | Leader_change { now; pid; leader } ->
      Format.fprintf ppf "[%d] p%d leader=%d" now pid leader
  | Ballot_open { now; pid; ballot } ->
      Format.fprintf ppf "[%d] p%d ballot_open b=%d" now pid ballot
  | Decided { now; pid; ballot } ->
      Format.fprintf ppf "[%d] p%d decided b=%d" now pid ballot
  | Partition { now; groups } ->
      Format.fprintf ppf "[%d] partition groups=%d" now groups
  | Recover { now; pid } -> Format.fprintf ppf "[%d] p%d recovered" now pid
  | Adversary_move { now; target } ->
      Format.fprintf ppf "[%d] adversary target=%d" now target
  | Relay_round { now; pid; rn; stale } ->
      Format.fprintf ppf "[%d] p%d relay_round rn=%d stale=%d" now pid rn stale
  | Accusation { now; pid; target; level } ->
      Format.fprintf ppf "[%d] p%d accusation target=%d level=%d" now pid
        target level
  | Hop { now; seq; src; dst; via; kind; round; bytes } ->
      Format.fprintf ppf "[%d] hop #%d %d->%d via %d %s rn=%d %dB" now seq
        src dst via kind round bytes
  | Link_drop { now; seq; src; dst; hop_src; hop_dst; kind; round; bytes } ->
      Format.fprintf ppf "[%d] link_drop #%d %d->%d at %d->%d %s rn=%d %dB"
        now seq src dst hop_src hop_dst kind round bytes
  | Edge_fault { now; a; b; state } ->
      Format.fprintf ppf "[%d] edge_fault %d<->%d state=%d" now a b state
  | Rack_fault { now; rack; state } ->
      Format.fprintf ppf "[%d] rack_fault rack=%d state=%d" now rack state

(* One JSON object per event, written without a trailing newline. All field
   values are ints or static ASCII kind strings, so no escaping is needed. *)
let to_json buf ev =
  let open Buffer in
  let field b k v =
    add_string b ",\"";
    add_string b k;
    add_string b "\":";
    add_string b (string_of_int v)
  in
  add_string buf "{\"ev\":\"";
  add_string buf (name ev);
  add_string buf "\"";
  field buf "t" (time ev);
  (match ev with
  | Sched { at; _ } -> field buf "at" at
  | Fire _ | Cancel _ | Timer_fire _ -> ()
  | Send { seq; src; dst; kind; round; bytes; _ }
  | Drop { seq; src; dst; kind; round; bytes; _ } ->
      field buf "seq" seq;
      field buf "src" src;
      field buf "dst" dst;
      add_string buf ",\"kind\":\"";
      add_string buf kind;
      add_string buf "\"";
      field buf "rn" round;
      field buf "bytes" bytes
  | Deliver { sent_at; seq; src; dst; kind; round; bytes; _ } ->
      field buf "sent_at" sent_at;
      field buf "seq" seq;
      field buf "src" src;
      field buf "dst" dst;
      add_string buf ",\"kind\":\"";
      add_string buf kind;
      add_string buf "\"";
      field buf "rn" round;
      field buf "bytes" bytes
  | Duplicate { src; dst; seq; _ } ->
      field buf "seq" seq;
      field buf "src" src;
      field buf "dst" dst
  | Round_open { pid; rn; _ } ->
      field buf "pid" pid;
      field buf "rn" rn
  | Round_close { pid; rn; suspected; _ } ->
      field buf "pid" pid;
      field buf "rn" rn;
      field buf "suspected" suspected
  | Suspicion { pid; target; level; _ } ->
      field buf "pid" pid;
      field buf "target" target;
      field buf "level" level
  | Leader_change { pid; leader; _ } ->
      field buf "pid" pid;
      field buf "leader" leader
  | Ballot_open { pid; ballot; _ } | Decided { pid; ballot; _ } ->
      field buf "pid" pid;
      field buf "ballot" ballot
  | Partition { groups; _ } -> field buf "groups" groups
  | Recover { pid; _ } -> field buf "pid" pid
  | Adversary_move { target; _ } -> field buf "target" target
  | Relay_round { pid; rn; stale; _ } ->
      field buf "pid" pid;
      field buf "rn" rn;
      field buf "stale" stale
  | Accusation { pid; target; level; _ } ->
      field buf "pid" pid;
      field buf "target" target;
      field buf "level" level
  | Hop { seq; src; dst; via; kind; round; bytes; _ } ->
      field buf "seq" seq;
      field buf "src" src;
      field buf "dst" dst;
      field buf "via" via;
      add_string buf ",\"kind\":\"";
      add_string buf kind;
      add_string buf "\"";
      field buf "rn" round;
      field buf "bytes" bytes
  | Link_drop { seq; src; dst; hop_src; hop_dst; kind; round; bytes; _ } ->
      field buf "seq" seq;
      field buf "src" src;
      field buf "dst" dst;
      field buf "hop_src" hop_src;
      field buf "hop_dst" hop_dst;
      add_string buf ",\"kind\":\"";
      add_string buf kind;
      add_string buf "\"";
      field buf "rn" round;
      field buf "bytes" bytes
  | Edge_fault { a; b; state; _ } ->
      field buf "a" a;
      field buf "b" b;
      field buf "state" state
  | Rack_fault { rack; state; _ } ->
      field buf "rack" rack;
      field buf "state" state);
  add_string buf "}"
