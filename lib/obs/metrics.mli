(** Counter/histogram aggregator: per-kind message counters and wire bytes,
    a delivery-delay series ({!Dstruct.Stats}), and per-layer event counts.
    O(1) per event, so it can stay attached across full experiment sweeps. *)

type t

(** Default mask: {!Event.all}. Pass a narrower mask (e.g.
    [Event.(c_net lor c_omega)]) to skip engine-internal noise. *)
val create : ?mask:int -> unit -> t

val sink : t -> Sink.t

(** {2 Per-kind message counters} *)

(** Kinds seen so far, sorted. *)
val kinds : t -> string list

val sent : t -> kind:string -> int
val sent_bytes : t -> kind:string -> int
val delivered : t -> kind:string -> int
val dropped : t -> kind:string -> int

(** {2 Totals over every kind} *)

val total_sent : t -> int

val total_delivered : t -> int
val total_dropped : t -> int
val total_sent_bytes : t -> int
val duplicates : t -> int

(** {2 Layer counters} *)

val timer_fires : t -> int

val scheduled : t -> int
val fired : t -> int
val cancelled : t -> int
val rounds_closed : t -> int
val suspicion_increments : t -> int
val leader_changes : t -> int
val ballots : t -> int
val decisions : t -> int

(** {2 Fault-plan counters} *)

val partitions : t -> int

val recoveries : t -> int
val adversary_moves : t -> int

(** {2 Communication-efficient variant counters} *)

val relay_rounds : t -> int

val accusations : t -> int

(** {2 Routed-topology counters}

    [link_drops] also count into the per-kind [dropped] column — a message
    lost mid-route is a dropped message, whichever hop lost it. *)

val hops : t -> int

val link_drops : t -> int
val edge_faults : t -> int
val rack_faults : t -> int

(** Transfer delays of delivered messages, in microseconds. *)
val delivery_delay_us : t -> Dstruct.Stats.t

val pp_summary : Format.formatter -> t -> unit
