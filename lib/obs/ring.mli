(** Bounded in-memory event buffer: keeps the last [capacity] events,
    overwriting the oldest. The cheap always-on choice for interactive
    debugging — memory use is fixed no matter how long the run. *)

type t

val create : ?mask:int -> capacity:int -> unit -> t

(** Register via {!Sim.Engine.set_sink} (possibly under {!Sink.tee}). *)
val sink : t -> Sink.t

val capacity : t -> int

(** Events currently held ([<= capacity]). *)
val length : t -> int

(** Events ever pushed, including overwritten ones. *)
val total : t -> int

(** Surviving events, oldest first. *)
val contents : t -> Event.t list

val clear : t -> unit
