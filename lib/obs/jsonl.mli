(** JSONL trace writer: one JSON object per line per event — the format
    behind [experiments.exe --trace FILE]. Not domain-safe: attach it only
    to sequential runs (the driver forces [--jobs 1] when tracing). *)

type t

(** Default mask: {!Event.all}. The channel stays owned by the caller until
    {!close}. *)
val create : ?mask:int -> out_channel -> t

val sink : t -> Sink.t

(** [note t s] writes [{"note":"s"}] — run boundaries, labels. [s] must not
    need JSON escaping. *)
val note : t -> string -> unit

val flush : t -> unit

(** Flushes and closes the underlying channel. *)
val close : t -> unit
