type 'a t = { table : (int, 'a) Hashtbl.t; mutable floor : int }

let create () = { table = Hashtbl.create 64; floor = 0 }
let floor t = t.floor
let cardinal t = Hashtbl.length t.table

let check_live t rn ~op =
  if rn < t.floor then
    invalid_arg
      (Printf.sprintf "Rounds.%s: round %d below floor %d" op rn t.floor)

let find t rn = if rn < t.floor then None else Hashtbl.find_opt t.table rn

let find_exn t rn =
  if rn < t.floor then raise Not_found else Hashtbl.find t.table rn

(* Exception-based lookup: [Hashtbl.find_opt] boxes a [Some] per call, and
   this runs once per received message. The hit path here is allocation-free
   ([Not_found] is only constructed on a miss, once per round). *)
let find_or_add t rn ~default =
  check_live t rn ~op:"find_or_add";
  match Hashtbl.find t.table rn with
  | v -> v
  | exception Not_found ->
      let v = default () in
      Hashtbl.add t.table rn v;
      v

let set t rn v =
  check_live t rn ~op:"set";
  Hashtbl.replace t.table rn v

(* Walk the keys from the old floor to the new bound directly: every live
   key is >= floor, so the dead ones all lie in [floor, bound). Probing
   each candidate key is O(bound - floor) [Hashtbl.find] calls — pruning
   advances the floor monotonically, so the probes amortize to one per
   round ever lived — where the [Hashtbl.iter]-and-collect this replaces
   walked the whole table and allocated a (rn, v) tuple list per call, on
   the round-closure path. *)
let prune_below ?recycle t bound =
  if bound > t.floor then begin
    for rn = t.floor to bound - 1 do
      match Hashtbl.find t.table rn with
      | v ->
          Hashtbl.remove t.table rn;
          (match recycle with Some f -> f v | None -> ())
      | exception Not_found -> ()
    done;
    t.floor <- bound
  end

(* Unlike [prune_below] this does not advance the floor: the caller keeps
   its own record of which rounds were collapsed away (Omega.Node's
   [full_upto] prefix) and must not let later lookups below the floor
   raise. *)
let remove ?recycle t rn =
  check_live t rn ~op:"remove";
  match Hashtbl.find t.table rn with
  | v ->
      Hashtbl.remove t.table rn;
      (match recycle with Some f -> f v | None -> ())
  | exception Not_found -> ()

let iter t f = Hashtbl.iter f t.table

let max_round t =
  Hashtbl.fold
    (fun rn _ acc ->
      match acc with Some m when m >= rn -> acc | _ -> Some rn)
    t.table None
