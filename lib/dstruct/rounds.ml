type 'a t = { table : (int, 'a) Hashtbl.t; mutable floor : int }

let create () = { table = Hashtbl.create 64; floor = 0 }
let floor t = t.floor
let cardinal t = Hashtbl.length t.table

let check_live t rn ~op =
  if rn < t.floor then
    invalid_arg
      (Printf.sprintf "Rounds.%s: round %d below floor %d" op rn t.floor)

let find t rn = if rn < t.floor then None else Hashtbl.find_opt t.table rn

(* Exception-based lookup: [Hashtbl.find_opt] boxes a [Some] per call, and
   this runs once per received message. The hit path here is allocation-free
   ([Not_found] is only constructed on a miss, once per round). *)
let find_or_add t rn ~default =
  check_live t rn ~op:"find_or_add";
  match Hashtbl.find t.table rn with
  | v -> v
  | exception Not_found ->
      let v = default () in
      Hashtbl.add t.table rn v;
      v

let set t rn v =
  check_live t rn ~op:"set";
  Hashtbl.replace t.table rn v

let prune_below ?recycle t bound =
  if bound > t.floor then begin
    (* Collect first: removing during [iter] is unspecified for Hashtbl. *)
    let dead = ref [] in
    Hashtbl.iter
      (fun rn v -> if rn < bound then dead := (rn, v) :: !dead)
      t.table;
    List.iter
      (fun (rn, v) ->
        Hashtbl.remove t.table rn;
        match recycle with Some f -> f v | None -> ())
      !dead;
    t.floor <- bound
  end

let iter t f = Hashtbl.iter f t.table

let max_round t =
  Hashtbl.fold
    (fun rn _ acc ->
      match acc with Some m when m >= rn -> acc | _ -> Some rn)
    t.table None
