(** Resizable binary min-heap.

    Elements are ordered by a total order supplied at creation time. Ties are
    broken by insertion order (FIFO), which the discrete-event engine relies
    on for deterministic scheduling of simultaneous events. *)

type 'a t

(** [create ~compare] is an empty heap ordered by [compare]. *)
val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push q x] inserts [x]. O(log n). *)
val push : 'a t -> 'a -> unit

(** [peek q] is the minimum element, without removing it. *)
val peek : 'a t -> 'a option

(** [peek_exn q] is [peek q] but raises [Invalid_argument] on an empty
    heap; unlike [peek] it allocates no option. *)
val peek_exn : 'a t -> 'a

(** [drop_exn q] removes the minimum element without returning it. Raises
    [Invalid_argument] on an empty heap. [peek_exn] + [drop_exn] is the
    allocation-free rendering of [pop] for hot loops. *)
val drop_exn : 'a t -> unit

(** [pop q] removes and returns the minimum element.

    Regression note: an earlier version wrote the popped element back into
    the vacated backing slot, keeping every popped element GC-reachable
    until its slot was reused by a later [push]. The slot is now aliased to
    a live element instead, and the pop that empties the heap (which has no
    live element to alias, and no dummy to write — the heap is polymorphic)
    drops the backing arrays entirely, so an empty heap retains no element
    at all. The next push after an empty transition re-grows from the
    minimum capacity; steady non-empty traffic never re-allocates. *)
val pop : 'a t -> 'a option

(** [pop_exn q] is [pop q] but raises [Invalid_argument] on an empty heap. *)
val pop_exn : 'a t -> 'a

val clear : 'a t -> unit

(** [iter_slots q f] applies [f] to {e every} backing-array slot, live and
    stale alike, in unspecified order. Stale slots alias live elements (see
    {!pop}), so [f] may see an element several times and must be
    idempotent. Snapshot support ([Engine.snapshot] swizzles packed event
    functions through this walk, DESIGN.md §16) — not general iteration. *)
val iter_slots : 'a t -> ('a -> unit) -> unit

(** [to_sorted_list q] drains a copy of the heap in ascending order, leaving
    [q] unchanged. Intended for tests and debugging. *)
val to_sorted_list : 'a t -> 'a list
