(* splitmix64 (Steele, Lea & Flood 2014), with the 64-bit state and the
   freshly mixed output kept in a 16-byte buffer accessed through the
   unboxed bytes primitives. Without flambda, ocamlopt unboxes [Int64]
   arithmetic inside a function body but boxes every value that crosses a
   function boundary or lands in an ordinary heap field — the historical
   rendering ([mutable state : int64], [bits64] returning the draw) paid
   two boxes per draw, ~6 minor words, and the delay oracles draw once or
   twice per simulated message. Routing state and output through [set64]/
   [get64] keeps the whole draw path in registers: the multiplies stay
   single [mulq] instructions and nothing is allocated.

   The stream is bit-identical to the original: test/rng_golden.ml pins the
   first 1000 outputs of three seeds captured before the rewrite. *)

type t = { b : Bytes.t }
(* offset 0: state; offset 8: last mixed output. *)

(* Unchecked single-load/store of an unboxed int64; offsets here are the
   constants 0 and 8 against a fixed 16-byte buffer. *)
external get64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external set64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

(* golden gamma and the two finalizer multipliers. *)
let gamma = 0x9E3779B97F4A7C15L
let c1 = 0xBF58476D1CE4E5B9L
let c2 = 0x94D049BB133111EBL

let create seed =
  let b = Bytes.make 16 '\000' in
  set64 b 0 seed;
  { b }

let copy t = { b = Bytes.copy t.b }

(* state += gamma; out = mix state. *)
let advance t =
  let s = Int64.add (get64 t.b 0) gamma in
  set64 t.b 0 s;
  let z = Int64.logxor s (Int64.shift_right_logical s 30) in
  let z = Int64.mul z c1 in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z c2 in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  set64 t.b 8 z

let bits64 t =
  advance t;
  get64 t.b 8

let split t =
  advance t;
  create (get64 t.b 8)

(* The draws below must keep producing exactly what they produced
   historically: [int] consumes [bits64 >> 2] (62 bits, fits an OCaml int),
   [float] consumes [bits64 >> 11] (53 bits, exact in both int and float).
   [Int64.to_int] of the shifted output is a plain truncation — no box. *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  advance t;
  (* Rejection-free modulo is fine here: bounds are tiny vs 2^62. *)
  Int64.to_int (Int64.shift_right_logical (get64 t.b 8) 2) mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let[@inline] bits53 t =
  advance t;
  Int64.to_int (Int64.shift_right_logical (get64 t.b 8) 11)

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  bound *. (float_of_int (bits53 t) /. 9007199254740992.0 (* 2^53 *))

let bool t =
  advance t;
  Int64.to_int (get64 t.b 8) land 1 = 1

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else
    (* = [float t 1.0 < p] without boxing the draw; scaling by 1.0 is
       exact, so dropping it preserves the comparison bit for bit. *)
    float_of_int (bits53 t) /. 9007199254740992.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

(* List draws go through a scratch array: same draws as the historical list
   versions (one [int] for [pick], the [n-1] Fisher-Yates draws for
   [shuffle]/[sample]), without [List.nth] walks or shuffle-then-filter. *)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs ->
      let a = Array.of_list xs in
      a.(int t (Array.length a))

let shuffle_in_place t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t xs =
  let a = Array.of_list xs in
  shuffle_in_place t a;
  Array.to_list a

let sample t k xs =
  let a = Array.of_list xs in
  if k < 0 || k > Array.length a then invalid_arg "Rng.sample: bad k";
  shuffle_in_place t a;
  let rec take i acc = if i < 0 then acc else take (i - 1) (a.(i) :: acc) in
  take (k - 1) []
