(* Hierarchical timing wheel (Varghese & Lauck), radix 256, 8 levels — the
   levels' digit spans cover the full 62-bit non-negative key range, so there
   is no overflow structure and no revolution wrap to reason about.

   Placement invariant: a cell with key [k] always lives at
   [level = highest digit of (k lxor cursor)] in bucket [digit k level].
   The invariant is canonical — a function of [k] and the cursor only, not
   of insertion time — because the cursor's digit at level [l] changes to a
   new value exactly when the bucket at [(l, new digit)] is cascaded down
   (see [pop_exn]), so no cell whose digit matches the cursor's can remain
   at that level. Canonical placement is what makes the FIFO tie-break
   work: all cells with equal keys sit in the same bucket list at every
   moment, in insertion order (pushes append; cascades walk in order and
   append), so the head of the final level-0 bucket is always the oldest.

   Cells are pooled: [pop_exn] releases the popped cell onto an internal
   freelist that the next [push] reuses, so the steady state of a
   push/pop-balanced workload (a simulation's message traffic) allocates
   nothing. Released cells are reset to the [dummy] element so the wheel
   never keeps a popped element reachable (the Pqueue regression, designed
   out here). *)

type 'a cell = {
  mutable key : int;
  mutable v : 'a;
  mutable next : 'a cell;  (* bucket list / freelist link; [nil] terminates *)
}

type 'a t = {
  dummy : 'a;
  nil : 'a cell;  (* self-referential sentinel, never stores an element *)
  heads : 'a cell array;  (* levels * 256 bucket list heads *)
  tails : 'a cell array;
  occ : int array;  (* occupancy bitmap: 8 x 32-bit words per level *)
  mutable cursor : int;  (* key of the last popped cell (or [start]) *)
  mutable free : 'a cell;  (* freelist of released cells *)
  mutable size : int;
  (* Memo of the last [min_key_exn] scan, so the engine's peek-then-pop
     loop scans once per event. Any push invalidates it. *)
  mutable cached : bool;
  mutable cached_key : int;
  mutable cached_level : int;
  mutable cached_bucket : int;
  (* Staged-insertion chain ([stage] / [commit]): cells linked through
     [next] in stage order, invisible to every query until committed. *)
  mutable staged_head : 'a cell;
  mutable staged_tail : 'a cell;
  mutable staged_n : int;
}

let levels = 8
let buckets = levels * 256

let create ?(start = 0) ~dummy () =
  if start < 0 then invalid_arg "Wheel.create: negative start";
  let rec nil = { key = min_int; v = dummy; next = nil } in
  {
    dummy;
    nil;
    heads = Array.make buckets nil;
    tails = Array.make buckets nil;
    occ = Array.make (levels * 8) 0;
    cursor = start;
    free = nil;
    size = 0;
    cached = false;
    cached_key = 0;
    cached_level = 0;
    cached_bucket = 0;
    staged_head = nil;
    staged_tail = nil;
    staged_n = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let cursor t = t.cursor

(* Highest differing radix-256 digit of [x = key lxor cursor], [x <> 0]. *)
let level_of_xor x =
  if x >= 1 lsl 32 then
    if x >= 1 lsl 48 then (if x >= 1 lsl 56 then 7 else 6)
    else if x >= 1 lsl 40 then 5
    else 4
  else if x >= 1 lsl 16 then (if x >= 1 lsl 24 then 3 else 2)
  else if x >= 1 lsl 8 then 1
  else 0

let digit k l = (k lsr (8 * l)) land 0xff

(* ctz of a 32-bit value via de Bruijn multiplication. *)
let debruijn_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 bits =
  debruijn_table.(((bits land -bits) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

let set_bit t l b =
  let w = (l lsl 3) lor (b lsr 5) in
  t.occ.(w) <- t.occ.(w) lor (1 lsl (b land 31))

let clear_bit t l b =
  let w = (l lsl 3) lor (b lsr 5) in
  t.occ.(w) <- t.occ.(w) land lnot (1 lsl (b land 31))

(* Smallest occupied bucket index [>= from] at level [l], or -1. All the
   recursive helpers below are top-level (not nested [let rec]) on
   purpose: a nested recursive function is a closure, and without flambda
   that is one allocation per call — on the per-event path. *)
let rec occ_scan occ l w0 from w =
  if w > 7 then -1
  else begin
    let bits = occ.((l lsl 3) lor w) in
    let bits = if w = w0 then bits land ((-1) lsl (from land 31)) else bits in
    if bits = 0 then occ_scan occ l w0 from (w + 1)
    else (w lsl 5) lor ctz32 bits
  end

let first_occupied t l ~from =
  if from > 255 then -1 else occ_scan t.occ l (from lsr 5) from (from lsr 5)

(* Append [c] (with [c.next = nil]) to its canonical bucket. *)
let place t c =
  let x = c.key lxor t.cursor in
  let l = if x = 0 then 0 else level_of_xor x in
  let b = digit c.key l in
  let i = (l lsl 8) lor b in
  if t.heads.(i) == t.nil then begin
    t.heads.(i) <- c;
    set_bit t l b
  end
  else t.tails.(i).next <- c;
  t.tails.(i) <- c

let push t ~key v =
  if key < t.cursor then
    invalid_arg
      (Printf.sprintf "Wheel.push: key %d below cursor %d" key t.cursor);
  let c =
    if t.free == t.nil then { key; v; next = t.nil }
    else begin
      let c = t.free in
      t.free <- c.next;
      c.key <- key;
      c.v <- v;
      c.next <- t.nil;
      c
    end
  in
  place t c;
  t.size <- t.size + 1;
  t.cached <- false

(* Locate the minimum key without mutating bucket contents: lowest level
   first (cells at level [l] share all digits above [l] with the cursor,
   so every key there is smaller than any key at a higher level); level 0
   scans from the cursor's digit inclusively (keys equal to the cursor are
   legal), higher levels exclusively (a bucket matching the cursor's digit
   would already have cascaded). At level 0 every cell of a bucket has the
   same key; at higher levels the bucket spans several keys, so walk the
   list for the minimum. *)
let rec list_min_key nil c acc =
  if c == nil then acc
  else list_min_key nil c.next (if c.key < acc then c.key else acc)

let rec find_min t l =
  if l >= levels then assert false
  else begin
    let d = digit t.cursor l in
    let from = if l = 0 then d else d + 1 in
    match first_occupied t l ~from with
    | -1 -> find_min t (l + 1)
    | b ->
        let key =
          if l = 0 then (t.cursor land lnot 0xff) lor b
          else list_min_key t.nil t.heads.((l lsl 8) lor b) max_int
        in
        t.cached <- true;
        t.cached_key <- key;
        t.cached_level <- l;
        t.cached_bucket <- b
  end

let locate t =
  if t.staged_n <> 0 then invalid_arg "Wheel: staged cells pending commit";
  if t.size = 0 then invalid_arg "Wheel: empty wheel";
  if not t.cached then find_min t 0

let min_key_exn t =
  locate t;
  t.cached_key

(* First cell holding [key], in list (= insertion) order. *)
let rec first_with_key key c = if c.key = key then c.v else first_with_key key c.next

let peek_exn t =
  locate t;
  if t.cached_level = 0 then t.heads.(t.cached_bucket).v
  else
    first_with_key t.cached_key
      t.heads.((t.cached_level lsl 8) lor t.cached_bucket)

let rec redistribute t c =
  if c != t.nil then begin
    let nx = c.next in
    c.next <- t.nil;
    place t c;
    redistribute t nx
  end

let pop_exn t =
  locate t;
  let k = t.cached_key in
  (* Cascade the minimum's bucket down until the minimum sits at level 0.
     The new cursor is [k] itself: every cell of the cascaded bucket has
     key >= k and shares its digits at and above the bucket's level, so
     re-placement relative to [k] strictly descends. Walking the detached
     list in order and appending preserves insertion order. *)
  while t.cached_level > 0 do
    let l = t.cached_level and b = t.cached_bucket in
    let i = (l lsl 8) lor b in
    let head = t.heads.(i) in
    t.heads.(i) <- t.nil;
    t.tails.(i) <- t.nil;
    clear_bit t l b;
    t.cursor <- k;
    redistribute t head;
    (* The minimum's cells are now at level 0, bucket [digit k 0]; other
       cells may have landed at intermediate levels, all above [k]. *)
    t.cached_level <- 0;
    t.cached_bucket <- digit k 0
  done;
  t.cursor <- k;
  let b = t.cached_bucket in
  let c = t.heads.(b) in
  let nx = c.next in
  t.heads.(b) <- nx;
  if nx == t.nil then begin
    t.tails.(b) <- t.nil;
    clear_bit t 0 b
  end;
  t.size <- t.size - 1;
  t.cached <- false;
  let v = c.v in
  (* Release onto the freelist, cleared so the wheel never retains a
     reference to a popped element. *)
  c.v <- t.dummy;
  c.key <- 0;
  c.next <- t.free;
  t.free <- c;
  v

let drop_exn t = ignore (pop_exn t)

(* Batched insertion. [stage] buffers cells on a private chain in call
   order; [commit] splices the chain into the canonical buckets. The chain
   walk attaches each maximal run of consecutive cells sharing a canonical
   (level, bucket) as one pre-linked segment, so a broadcast whose flights
   land in the same bucket costs one bucket append instead of n-1.
   Insertion order within the chain is preserved verbatim, which is exactly
   the order individual [push]es would have produced — the FIFO tie-break
   and canonical placement invariants are untouched. *)

let stage t ~key v =
  if key < t.cursor then
    invalid_arg
      (Printf.sprintf "Wheel.stage: key %d below cursor %d" key t.cursor);
  let c =
    if t.free == t.nil then { key; v; next = t.nil }
    else begin
      let c = t.free in
      t.free <- c.next;
      c.key <- key;
      c.v <- v;
      c.next <- t.nil;
      c
    end
  in
  if t.staged_head == t.nil then t.staged_head <- c
  else t.staged_tail.next <- c;
  t.staged_tail <- c;
  t.staged_n <- t.staged_n + 1

(* Last cell of the maximal run starting at [last] whose canonical bucket
   is [(l, b)]. Top-level, like the other per-event helpers: a nested
   [let rec] is a closure allocation per call without flambda. *)
let rec run_end nil cursor l b last =
  let nx = last.next in
  if nx == nil then last
  else begin
    let x = nx.key lxor cursor in
    let l' = if x = 0 then 0 else level_of_xor x in
    if l' = l && digit nx.key l' = b then run_end nil cursor l b nx else last
  end

let rec commit_chain t c =
  if c != t.nil then begin
    let x = c.key lxor t.cursor in
    let l = if x = 0 then 0 else level_of_xor x in
    let b = digit c.key l in
    let tail = run_end t.nil t.cursor l b c in
    let after = tail.next in
    tail.next <- t.nil;
    let i = (l lsl 8) lor b in
    if t.heads.(i) == t.nil then begin
      t.heads.(i) <- c;
      set_bit t l b
    end
    else t.tails.(i).next <- c;
    t.tails.(i) <- tail;
    commit_chain t after
  end

let staged_count t = t.staged_n

(* Snapshot support: visit the dummy plus every committed cell's value.
   Freelist cells hold [dummy] (reset on release), so this covers every
   element value reachable through the wheel's marshalled graph. Staged
   cells are deliberately not visited — Engine.snapshot refuses to run
   while a batch is pending. *)
let rec iter_chain nil f c =
  if c != nil then begin
    f c.v;
    iter_chain nil f c.next
  end

let iter_values t f =
  f t.dummy;
  for i = 0 to buckets - 1 do
    iter_chain t.nil f t.heads.(i)
  done

let commit t =
  if t.staged_n > 0 then begin
    let head = t.staged_head in
    t.staged_head <- t.nil;
    t.staged_tail <- t.nil;
    t.size <- t.size + t.staged_n;
    t.staged_n <- 0;
    t.cached <- false;
    commit_chain t head
  end
