(* All-pairs shortest-path routing tables over an undirected graph, flat
   n*n int arrays (same layout discipline as the rest of the hot-path
   state). One BFS per destination fills [dist]; the next-hop choice is
   then canonicalized in a second pass — [next.(src, dst)] is the
   *smallest-id* neighbour of [src] strictly closer to [dst] — so the
   tables are a pure function of the adjacency structure, independent of
   BFS queue order or neighbour-list order. Determinism rests on that:
   the same topology always routes the same way. *)

type t = {
  n : int;
  next : int array;  (* next.(src*n + dst): next hop, -1 unreachable *)
  dist : int array;  (* dist.(src*n + dst): hop count, max_int unreachable *)
  diameter : int;
  connected : bool;
}

let unreached = max_int

let of_adjacency adj =
  let n = Array.length adj in
  if n <= 0 then invalid_arg "Topo.of_adjacency: empty graph";
  Array.iteri
    (fun i ns ->
      List.iter
        (fun j ->
          if j < 0 || j >= n then
            invalid_arg "Topo.of_adjacency: neighbour out of range";
          if j = i then invalid_arg "Topo.of_adjacency: self-loop")
        ns)
    adj;
  let dist = Array.make (n * n) unreached in
  let next = Array.make (n * n) (-1) in
  let queue = Array.make n 0 in
  for dst = 0 to n - 1 do
    dist.((dst * n) + dst) <- 0;
    next.((dst * n) + dst) <- dst;
    queue.(0) <- dst;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.((u * n) + dst) in
      List.iter
        (fun v ->
          if dist.((v * n) + dst) = unreached then begin
            dist.((v * n) + dst) <- du + 1;
            queue.(!tail) <- v;
            incr tail
          end)
        adj.(u)
    done;
    for v = 0 to n - 1 do
      let dv = dist.((v * n) + dst) in
      if v <> dst && dv <> unreached then begin
        let best = ref (-1) in
        List.iter
          (fun u ->
            if
              dist.((u * n) + dst) = dv - 1 && (!best = -1 || u < !best)
            then best := u)
          adj.(v);
        next.((v * n) + dst) <- !best
      end
    done
  done;
  let diameter = ref 0 in
  let connected = ref true in
  Array.iter
    (fun d ->
      if d = unreached then connected := false
      else if d > !diameter then diameter := d)
    dist;
  { n; next; dist; diameter = !diameter; connected = !connected }

let n t = t.n
let next_hop t ~src ~dst = Array.unsafe_get t.next ((src * t.n) + dst)

let dist t ~src ~dst =
  let d = t.dist.((src * t.n) + dst) in
  if d = unreached then -1 else d

let diameter t = t.diameter
let connected t = t.connected
