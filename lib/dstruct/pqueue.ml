type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;  (* data.(0 .. size-1) is the heap *)
  mutable size : int;
  mutable ticket : int;  (* insertion counter, breaks comparison ties *)
  mutable tickets : int array;  (* ticket of data.(i), same length as data *)
}

let create ~compare =
  { compare; data = [||]; size = 0; ticket = 0; tickets = [||] }

let length q = q.size
let is_empty q = q.size = 0

(* Full order used internally: user order, then insertion order. *)
let lt q i j =
  let c = q.compare q.data.(i) q.data.(j) in
  if c <> 0 then c < 0 else q.tickets.(i) < q.tickets.(j)

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp;
  let tk = q.tickets.(i) in
  q.tickets.(i) <- q.tickets.(j);
  q.tickets.(j) <- tk

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = i in
  let smallest = if l < q.size && lt q l smallest then l else smallest in
  let smallest = if r < q.size && lt q r smallest then r else smallest in
  if smallest <> i then begin
    swap q i smallest;
    sift_down q smallest
  end

let grow q x =
  let capacity = max 8 (2 * Array.length q.data) in
  let data = Array.make capacity x in
  Array.blit q.data 0 data 0 q.size;
  let tickets = Array.make capacity 0 in
  Array.blit q.tickets 0 tickets 0 q.size;
  q.data <- data;
  q.tickets <- tickets

let push q x =
  if q.size = Array.length q.data then grow q x;
  q.data.(q.size) <- x;
  q.tickets.(q.size) <- q.ticket;
  q.ticket <- q.ticket + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q = if q.size = 0 then None else Some q.data.(0)

let peek_exn q =
  if q.size = 0 then invalid_arg "Pqueue.peek_exn: empty heap";
  q.data.(0)

(* Remove the minimum without returning it: with [peek_exn], lets hot loops
   (the engine's event loop) avoid the [Some] box that [pop] allocates per
   element. *)
let drop_exn q =
  if q.size = 0 then invalid_arg "Pqueue.drop_exn: empty heap";
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.data.(0) <- q.data.(q.size);
    q.tickets.(0) <- q.tickets.(q.size);
    sift_down q 0;
    (* Release the vacated slot's reference so the GC can reclaim popped
       elements; [data.(0)] is live, so aliasing it leaks nothing. *)
    q.data.(q.size) <- q.data.(0)
  end
  else begin
    (* The pop that empties the heap has no live element to alias the slot
       to, and the heap is polymorphic so there is no dummy to write
       either: drop the backing arrays. The next push re-grows from the
       minimum capacity — an O(1) cost paid only on the empty transition. *)
    q.data <- [||];
    q.tickets <- [||]
  end

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      q.tickets.(0) <- q.tickets.(q.size);
      sift_down q 0;
      q.data.(q.size) <- q.data.(0)
    end
    else begin
      q.data <- [||];
      q.tickets <- [||]
    end;
    Some top
  end

let pop_exn q =
  match pop q with
  | Some x -> x
  | None -> invalid_arg "Pqueue.pop_exn: empty heap"

(* Snapshot support: visit every backing-array slot, live or stale. Stale
   slots ([size ..]) alias live elements by construction (see [drop_exn]),
   so visitors must be idempotent. *)
let iter_slots q f =
  for i = 0 to Array.length q.data - 1 do
    f q.data.(i)
  done

let clear q =
  q.data <- [||];
  q.tickets <- [||];
  q.size <- 0

let to_sorted_list q =
  let copy =
    {
      compare = q.compare;
      data = Array.sub q.data 0 (Array.length q.data);
      size = q.size;
      ticket = q.ticket;
      tickets = Array.sub q.tickets 0 (Array.length q.tickets);
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
