(* 32-bit words in a plain int array: [words.(i lsr 5)], bit [i land 31].
   The byte-per-bit [Bytes.t] rendering this replaces made every scan a
   byte-at-a-time loop; with word-wide occupancy tests a scan skips 32
   absent (or 32 present) ids per zero (or all-ones) word, which is what
   the O(live) round closure in [Omega.Node] leans on. 32-bit words rather
   than the native 63: the masks stay within the portable untagged range
   and match the timing wheel's occupancy bitmap idiom. *)

type t = { words : int array; capacity : int; mutable cardinal : int }

let word_bits = 32

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  {
    words = Array.make ((capacity + word_bits - 1) / word_bits) 0;
    capacity;
    cardinal = 0;
  }

let capacity t = t.capacity
let cardinal t = t.cardinal

let check t i ~op =
  if i < 0 || i >= t.capacity then
    invalid_arg
      (Printf.sprintf "Bitset.%s: %d out of range [0,%d)" op i t.capacity)

let mem t i =
  check t i ~op:"mem";
  t.words.(i lsr 5) land (1 lsl (i land 31)) <> 0

let add t i =
  check t i ~op:"add";
  let w = i lsr 5 in
  let mask = 1 lsl (i land 31) in
  if t.words.(w) land mask = 0 then begin
    t.words.(w) <- t.words.(w) lor mask;
    t.cardinal <- t.cardinal + 1
  end

let remove t i =
  check t i ~op:"remove";
  let w = i lsr 5 in
  let mask = 1 lsl (i land 31) in
  if t.words.(w) land mask <> 0 then begin
    t.words.(w) <- t.words.(w) land lnot mask;
    t.cardinal <- t.cardinal - 1
  end

let is_empty t = t.cardinal = 0

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.cardinal <- 0

let copy t =
  { words = Array.copy t.words; capacity = t.capacity; cardinal = t.cardinal }

(* De Bruijn count-trailing-zeros over a 32-bit word (same table as
   [Dstruct.Wheel]'s occupancy scans). *)
let debruijn_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 bits =
  debruijn_table.(((bits land -bits) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* Drain the set bits of one word in ascending order; top-level recursion,
   not a nested [let rec], so no closure is allocated per call (no
   flambda). *)
let rec iter_word f base bits =
  if bits <> 0 then begin
    f (base + ctz32 bits);
    iter_word f base (bits land (bits - 1))
  end

let iter_set t f =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    iter_word f (w lsl 5) words.(w)
  done

(* [iter] predates [iter_set] (argument order follows [List.iter]); both
   now take the word-skipping path. *)
let iter f t = iter_set t f

let rec fold_word f base bits acc =
  if bits = 0 then acc
  else fold_word f base (bits land (bits - 1)) (f acc (base + ctz32 bits))

let fold_set t ~init ~f =
  let words = t.words in
  let acc = ref init in
  for w = 0 to Array.length words - 1 do
    let bits = words.(w) in
    if bits <> 0 then acc := fold_word f (w lsl 5) bits !acc
  done;
  !acc

let first_set t =
  let words = t.words in
  let len = Array.length words in
  let rec scan w =
    if w >= len then -1
    else if words.(w) <> 0 then (w lsl 5) + ctz32 words.(w)
    else scan (w + 1)
  in
  scan 0

(* The unset-bit mirror: flip the word, mask off the tail bits beyond
   [capacity], then drain as usual. An all-ones word (every id present)
   skips 32 ids in one test — the live-sender case the round closure
   cares about. *)
let unset_word t w =
  let bits = lnot t.words.(w) land 0xFFFFFFFF in
  let base = w lsl 5 in
  let over = base + word_bits - t.capacity in
  if over > 0 then bits land (0xFFFFFFFF lsr over) else bits

let iter_unset t f =
  let len = Array.length t.words in
  for w = 0 to len - 1 do
    iter_word f (w lsl 5) (unset_word t w)
  done

let fold_unset t ~init ~f =
  let len = Array.length t.words in
  let acc = ref init in
  for w = 0 to len - 1 do
    let bits = unset_word t w in
    if bits <> 0 then acc := fold_word f (w lsl 5) bits !acc
  done;
  !acc

(* Descending mirror, for building an ascending cons-list of the absent
   ids in one pass (the suspects of a SUSPICION broadcast). Zero unset
   words — 32 present ids — still cost one test; only words that actually
   hold absent ids pay the per-bit walk. *)
let fold_unset_down t ~init ~f =
  let acc = ref init in
  for w = Array.length t.words - 1 downto 0 do
    let bits = unset_word t w in
    if bits <> 0 then begin
      let base = w lsl 5 in
      for b = word_bits - 1 downto 0 do
        if bits land (1 lsl b) <> 0 then acc := f !acc (base + b)
      done
    end
  done;
  !acc

let complement t =
  let c = create t.capacity in
  let len = Array.length t.words in
  let card = ref 0 in
  for w = 0 to len - 1 do
    let bits = unset_word t w in
    c.words.(w) <- bits;
    (* popcount via drain; complements are off the hot path. *)
    let b = ref bits in
    while !b <> 0 do
      incr card;
      b := !b land (!b - 1)
    done
  done;
  c.cardinal <- !card;
  c

let to_list t =
  fold_set t ~init:[] ~f:(fun acc i -> i :: acc) |> List.rev

let of_list ~capacity members =
  let t = create capacity in
  List.iter (add t) members;
  t

let equal a b =
  a.capacity = b.capacity && a.cardinal = b.cardinal
  && a.words = b.words

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)
