(** All-pairs next-hop routing tables for undirected graphs.

    Built once per network from an adjacency structure (one BFS per
    destination over flat n*n arrays) and read on every routed hop. The
    next hop is canonical: [next_hop ~src ~dst] is the {e smallest-id}
    neighbour of [src] on a shortest path to [dst], so the table is a pure
    function of the adjacency structure — independent of neighbour-list
    order — and two builds of the same topology route identically. *)

type t

(** [of_adjacency adj] builds the tables for the graph whose node [i] has
    neighbour list [adj.(i)]. The graph is taken as given (callers are
    responsible for symmetry); self-loops and out-of-range neighbours are
    rejected. *)
val of_adjacency : int list array -> t

val n : t -> int

(** [next_hop t ~src ~dst] is the first relay on the canonical shortest
    path [src -> dst] ([dst] itself on the last hop, [src = dst] included),
    or [-1] if [dst] is unreachable from [src]. No bounds check — the
    routed hot path calls this per hop. *)
val next_hop : t -> src:int -> dst:int -> int

(** Hop count of the shortest path, [-1] if unreachable, [0] for
    [src = dst]. *)
val dist : t -> src:int -> dst:int -> int

(** Largest finite pairwise distance. *)
val diameter : t -> int

val connected : t -> bool
