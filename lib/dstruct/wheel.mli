(** Hierarchical timing wheel: a priority queue over non-negative integer
    keys (simulation timestamps), radix 256, 8 levels — enough digits for
    the whole 62-bit key range, so there is no overflow level.

    Contract (shared with {!Pqueue} + insertion tickets, and relied on by
    the discrete-event engine): {!pop_exn} returns elements in
    nondecreasing key order, and elements with {e equal} keys come out in
    insertion order (FIFO). [test/test_wheel.ml] checks both against the
    binary heap on identical workloads.

    Unlike {!Pqueue} the wheel is monotone: a pushed key must be [>=] the
    key of the last popped element (the cursor). The engine satisfies this
    by construction — events are never scheduled in the past.

    Costs: {!push} is O(1); {!pop_exn} is O(bucket scan) with each element
    cascading down at most once per level, so amortized O(levels) worst
    case and O(1) for the dense schedules simulations produce. Popped
    cells go onto an internal freelist that the next push reuses, and a
    released cell is reset to [dummy], so a push/pop-balanced workload
    allocates nothing in the steady state and the wheel never keeps a
    popped element alive. *)

type 'a t

(** [create ?start ~dummy ()] is an empty wheel whose cursor begins at
    [start] (default 0). [dummy] is stored in recycled cells; it is never
    returned. *)
val create : ?start:int -> dummy:'a -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Key of the last popped element ([start] if none yet): the floor for
    future pushes. *)
val cursor : 'a t -> int

(** [push t ~key v] inserts [v] at [key]. O(1). Raises [Invalid_argument]
    if [key < cursor t]. *)
val push : 'a t -> key:int -> 'a -> unit

(** Smallest key present. Scans but never reorders (safe before deciding
    not to pop); the scan is memoized until the next push or pop. Raises
    [Invalid_argument] on an empty wheel. *)
val min_key_exn : 'a t -> int

(** Element {!pop_exn} would return, without removing it. Raises
    [Invalid_argument] on an empty wheel. *)
val peek_exn : 'a t -> 'a

(** Remove and return the minimum element (FIFO among equal keys), and
    advance the cursor to its key. Raises [Invalid_argument] on an empty
    wheel. *)
val pop_exn : 'a t -> 'a

(** [pop_exn] without the result. *)
val drop_exn : 'a t -> unit

(** {2 Batched insertion}

    A broadcast schedules n-1 deliveries from inside one event handler;
    staging lets the wheel splice them in bucket-sized runs instead of
    n-1 independent bucket appends. *)

(** [stage t ~key v] buffers an insertion on a private chain, invisible to
    every query until {!commit}. Staged cells reuse the freelist exactly
    like {!push}. Raises [Invalid_argument] if [key < cursor t]. *)
val stage : 'a t -> key:int -> 'a -> unit

(** [commit t] splices every staged cell into its canonical bucket, in
    stage order — the resulting wheel state is {e identical} to having
    {!push}ed each cell individually, including the FIFO tie-break among
    equal keys. Consecutive staged cells sharing a bucket attach as one
    pre-linked segment. No-op when nothing is staged.

    {!pop_exn} / {!peek_exn} / {!min_key_exn} raise [Invalid_argument]
    while cells are staged: commit before the next query (the engine
    commits before returning to its event loop, so the cursor cannot move
    between a stage and its commit). *)
val commit : 'a t -> unit

(** Number of staged, not-yet-committed cells. [Engine.snapshot] refuses
    to run while this is nonzero. *)
val staged_count : 'a t -> int

(** [iter_values t f] applies [f] to [dummy] and then to every committed
    element, in unspecified order. Snapshot support (DESIGN.md §16): the
    engine walks every element value reachable through the wheel's graph —
    including the [dummy] that recycled freelist cells alias — to swizzle
    packed event functions before marshalling. Staged cells are not
    visited. Not for general iteration. *)
val iter_values : 'a t -> ('a -> unit) -> unit
