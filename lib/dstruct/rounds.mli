(** Round-indexed sliding store.

    The algorithms of the paper index state by round number ([rec_from.(rn)],
    [suspicions.(rn).(k)]) for an unbounded range of rounds. Only a bounded
    suffix of rounds is ever read again (the window of line [*] in Figure 2),
    so this store keeps a hash table of live rounds plus a [floor]: all rounds
    below the floor have been discarded and behave as absent.

    Lookups below the floor return [None] — callers must choose their prune
    bound so that semantics are preserved (see DESIGN.md §2). *)

type 'a t

val create : unit -> 'a t

(** Smallest round that may still hold an entry. Initially [0]. *)
val floor : 'a t -> int

(** Number of live entries. *)
val cardinal : 'a t -> int

(** [find t rn] is the entry for round [rn], if any. *)
val find : 'a t -> int -> 'a option

(** [find_exn t rn] is the entry for round [rn]; raises [Not_found] if the
    round is absent {e or below the floor}. The hit path is allocation-free
    where {!find}'s [Some] box is a per-call allocation — use this from
    per-message code (the window check of line [*]). *)
val find_exn : 'a t -> int -> 'a

(** [find_or_add t rn ~default] returns the entry for [rn], creating it with
    [default ()] if absent. Raises [Invalid_argument] if [rn < floor t]:
    resurrecting a pruned round would silently corrupt the algorithm. *)
val find_or_add : 'a t -> int -> default:(unit -> 'a) -> 'a

(** [set t rn v] stores [v] for round [rn]. Raises below the floor. *)
val set : 'a t -> int -> 'a -> unit

(** [prune_below t bound] discards every round [< bound] and raises the floor
    to [max (floor t) bound]. [recycle] is applied to each discarded value
    (in unspecified order) so callers can return round-sized cells to a
    freelist instead of re-allocating them every round. *)
val prune_below : ?recycle:('a -> unit) -> 'a t -> int -> unit

(** [remove t rn] discards round [rn]'s entry (if any) {e without} moving
    the floor — unlike {!prune_below}, later reads of [rn] simply see an
    absent round. [recycle] is applied to the discarded value. The caller
    owns the semantics of the hole ([Omega.Node] collapses fully-received
    round prefixes into a scalar, DESIGN.md §16); raises below the floor. *)
val remove : ?recycle:('a -> unit) -> 'a t -> int -> unit

(** [iter t f] applies [f rn v] to every live entry, in unspecified order. *)
val iter : 'a t -> (int -> 'a -> unit) -> unit

(** Largest live round, if any entry exists. *)
val max_round : 'a t -> int option
