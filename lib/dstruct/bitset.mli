(** Fixed-capacity set of small non-negative integers (process ids).

    Used for [rec_from] sets and [suspects] fields of SUSPICION messages:
    dense, O(1) membership, cheap cardinality, value-style copies. *)

type t

(** [create capacity] is the empty set over [0 .. capacity-1]. *)
val create : int -> t

val capacity : t -> int
val cardinal : t -> int
val mem : t -> int -> bool

(** [add t i] inserts [i]; no-op if already present. Raises on out-of-range. *)
val add : t -> int -> unit

(** [remove t i] deletes [i]; no-op if absent. Raises on out-of-range. *)
val remove : t -> int -> unit

val is_empty : t -> bool

(** [clear t] removes every member. *)
val clear : t -> unit

val copy : t -> t

(** [complement t] is the set of ids in [0 .. capacity-1] not in [t]. *)
val complement : t -> t

(** [iter_set t f] applies [f] to every member in ascending order, skipping
    32 ids per empty word (de Bruijn count-trailing-zeros scan). *)
val iter_set : t -> (int -> unit) -> unit

(** [fold_set t ~init ~f] folds [f] over the members in ascending order. *)
val fold_set : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [first_set t] is the smallest member, or [-1] if the set is empty. *)
val first_set : t -> int

(** [iter_unset t f] applies [f] to every id of [0 .. capacity-1] {e not}
    in the set, ascending; an all-ones word (32 present ids) costs one
    test. This is the suspects scan of the O(live) round closure. *)
val iter_unset : t -> (int -> unit) -> unit

(** [fold_unset t ~init ~f] folds over the absent ids, ascending. *)
val fold_unset : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [fold_unset_down t ~init ~f] folds over the absent ids, descending —
    consing in [f] yields the absent ids as an ascending list. *)
val fold_unset_down : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** Ascending list of members. *)
val to_list : t -> int list

val of_list : capacity:int -> int list -> t
val iter : (int -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
