type t = {
  engine : Engine.t;
  on_expire : unit -> unit;
  mutable handle : Engine.handle option;
  mutable expired : bool;
}

let create engine ~on_expire = { engine; on_expire; handle = None; expired = false }

let disarm t =
  match t.handle with
  | Some h ->
      Engine.cancel t.engine h;
      t.handle <- None
  | None -> ()

(* Static so that (re)arming a timer packs [(fire, t)] instead of building a
   fresh closure — timers re-arm once per receiving round per process. *)
let fire t =
  t.handle <- None;
  t.expired <- true;
  let sink = Engine.sink t.engine in
  if Obs.Sink.wants sink Obs.Event.c_timer then
    Obs.Sink.emit sink
      (Obs.Event.Timer_fire { now = Time.to_us (Engine.now t.engine) });
  t.on_expire ()

let () = Checkpoint.register ~id:2 fire

let set t duration =
  disarm t;
  t.expired <- false;
  t.handle <- Some (Engine.schedule_call_after t.engine duration fire t)

let cancel t = disarm t

let is_armed t = Option.is_some t.handle
let has_expired t = t.expired
