(* Static-function registry backing {!Engine.snapshot}. Packed event cells
   store their function as a raw [Obj.t -> unit] (DESIGN.md §11); snapshots
   replace each one with its registered id before marshalling and swap the
   function back on restore, so a checkpoint never depends on a code
   pointer staying at the same address across processes. Ids are
   append-only, like event tags: an id is part of the on-disk checkpoint
   format, so it must never be reused or renumbered. Closures reachable
   through event *payloads* (timer [on_expire], delay oracles) still ride
   on [Marshal.Closures] and pin checkpoints to the producing binary; the
   registry keeps the hot packed lane position-independent and forces every
   static scheduling entry point to be declared here. *)

let capacity = 64
let fns : (Obj.t -> unit) option array = Array.make capacity None

let register : type a. id:int -> (a -> unit) -> unit =
 fun ~id fn ->
  if id < 0 || id >= capacity then
    invalid_arg (Printf.sprintf "Checkpoint.register: id %d out of range" id);
  (match fns.(id) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Checkpoint.register: id %d already registered" id)
  | None -> ());
  (* Same erasure as [Engine.enqueue]: [Obj.magic] is the identity on the
     runtime value, so the registered slot is physically equal to the
     function the engine's cells store. *)
  fns.(id) <- Some (Obj.magic fn)

(* Physical-equality scan. O(capacity), but it only runs at snapshot time,
   once per pending event — never on the scheduling hot path. *)
let id_of (f : Obj.t -> unit) =
  let rec scan i =
    if i >= capacity then -1
    else
      match fns.(i) with Some g when g == f -> i | _ -> scan (i + 1)
  in
  scan 0

let fn_of id =
  if id < 0 || id >= capacity then
    invalid_arg (Printf.sprintf "Checkpoint.fn_of: id %d out of range" id);
  match fns.(id) with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf
           "Checkpoint.fn_of: id %d not registered (checkpoint written by a \
            build with more registrations?)"
           id)
