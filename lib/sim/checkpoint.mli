(** Static-function registry for snapshot/restore (DESIGN.md §16).

    The engine's packed event cells hold a static [fn] applied to a
    pre-existing [arg] (DESIGN.md §11). {!Engine.snapshot} swizzles each
    cell's function to the integer id registered here before marshalling
    (and back afterwards), so the packed lane of a checkpoint is
    independent of code addresses; {!Engine.restore} maps ids back to
    functions. Every function passed to [Engine.call_at]/[call_after]/
    [schedule_call_after]/[batch_call_after] must be registered, or
    [Engine.snapshot] refuses the run.

    Ids are append-only, exactly like {!Obs.Event} tags: they are part of
    the on-disk checkpoint format. Current assignments:

    {v
      0  Sim.Engine        ignore_obj (cleared / dummy cells)
      1  Sim.Engine        call_thunk (schedule_at closure trampoline)
      2  Sim.Timer         fire
      3  Net.Network       deliver
      4  Omega.Node        sending_task
      5  Omega.Lean        heartbeat_task
      6  Omega.Lean        monitor_task
      7  Fault.Injector    apply_partition
      8  Fault.Injector    apply_crash
      9  Fault.Injector    apply_recover
      10 Fault.Injector    apply_dup
      11 Fault.Injector    activate
      12 Harness.Run       sample_task
      13 Net.Network       hop_arrive
      14 Fault.Injector    apply_edge
      15 Fault.Injector    apply_rack
    v}

    New entries take the next free id and are recorded in this list. *)

val register : id:int -> ('a -> unit) -> unit
(** [register ~id fn] binds [fn] to [id]. Called once, at module
    initialization, by the module defining the static function. Raises
    [Invalid_argument] if [id] is already bound or out of range. *)

val id_of : (Obj.t -> unit) -> int
(** The id registered for this function (by physical equality), or [-1].
    Snapshot-time only — O(registry size) scan. *)

val fn_of : int -> Obj.t -> unit
(** The function registered under this id. Raises [Invalid_argument] for
    an unbound id (a checkpoint from a newer build). *)
