(** Deterministic discrete-event engine.

    Events are actions scheduled at virtual times and totally ordered by
    the canonical key [(time, creator rank, creation index)] (DESIGN.md
    §18): same-time events order by the rank of the code that created them
    (0 = harness/system, pid + 1 = that process), then by per-creator
    creation order. For events created under one rank this degenerates to
    the classic FIFO tie-break; because the order is a pure function of
    the simulated computation — not of scheduler internals — it is the
    same under sequential and intra-run parallel execution, so a run is a
    pure function of the seed and the program under either.

    Two scheduling families share one queue and one FIFO order:

    - the closure API ({!schedule_at} / {!schedule_after}), convenient for
      tests, examples and cold paths;
    - the packed API ({!call_at} / {!call_after} / {!schedule_call_after}),
      which takes a static function and its argument separately so the hot
      path (one event per simulated message) never allocates a closure.

    The engine deliberately has no notion of processes or messages; those
    live in {!Net} and above. *)

type t

(** A cancellable reference to a scheduled event. *)
type handle

(** [create ~seed ()] is a fresh engine at time [Time.zero].

    [queue] selects the scheduler backend — [`Wheel] (default) is the
    hierarchical timing wheel ({!Dstruct.Wheel}: O(1) push, pooled event
    cells); [`Heap] is the binary-heap reference ({!Dstruct.Pqueue} with
    insertion tickets). Both implement the identical contract
    (nondecreasing time, FIFO among equal times), so a run's event stream
    is byte-identical under either; [test/test_wheel.ml] checks them
    differentially. *)
val create : ?queue:[ `Heap | `Wheel ] -> seed:int64 -> unit -> t

(** Current virtual time. *)
val now : t -> Time.t

(** Root PRNG of this engine; use {!Rng.split} to derive sub-streams. *)
val rng : t -> Dstruct.Rng.t

(** The engine's observability sink ({!Obs.Sink.null} by default). Every
    layer of one simulation stack — engine, timers, networks, nodes — emits
    through this single sink, so installing one here observes the whole run.
    Producers guard on [Obs.Sink.wants], so with the null sink the cost of
    instrumentation is one branch per site and no allocation. *)
val sink : t -> Obs.Sink.t

(** [set_sink t s] replaces the sink. Sinks are engine-local state like the
    RNG: a parallel run farm must give each task its own. *)
val set_sink : t -> Obs.Sink.t -> unit

(** [set_rank t pid] declares process [pid] the creator of subsequently
    scheduled events, until the next [set_rank] or the next event pops
    (executing an event restores its own creator's rank). Called at every
    entry point into process code whose executing event does not already
    carry that process's rank: message delivery at the receiver, hop
    forwarding at the relay, node start/recover. Outside process code the
    creation context is the setup rank 0, which sorts first among
    same-time events. Raises [Invalid_argument] if [pid] exceeds the key
    encoding's capacity ({!max_pid}). *)
val set_rank : t -> int -> unit

(** [set_harness_rank t] switches creation to the reserved harness rank —
    the top of the rank space, above every pid — so post-start harness
    chains (the sampler) sort after process events at the same µs and
    never share a per-rank creation counter with a process. The run
    driver calls it once node start-up is done. *)
val set_harness_rank : t -> unit

(** Largest process id the canonical key encoding supports (2045; the
    value above it is the reserved harness rank). *)
val max_pid : int

(** Number of low key bits holding the creator rank: a canonical key is
    [(time_us lsl rank_bits) lor rank]. Exposed for the intra-run driver,
    which converts between keys and µs. *)
val rank_bits : int

(** [schedule_at t time f] runs [f ()] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)
val schedule_at : t -> Time.t -> (unit -> unit) -> handle

(** [schedule_after t delay f] is [schedule_at t (now t + delay)]. *)
val schedule_after : t -> Time.t -> (unit -> unit) -> handle

(** [call_at t time fn arg] runs [fn arg] when the clock reaches [time].
    Fire-and-forget: no handle is allocated and the event cannot be
    cancelled. With a statically allocated [fn], the only allocation is the
    event cell itself. Raises [Invalid_argument] if [time] is in the past. *)
val call_at : t -> Time.t -> ('a -> unit) -> 'a -> unit

(** [call_after t delay fn arg] is [call_at t (now t + delay) fn arg]. *)
val call_after : t -> Time.t -> ('a -> unit) -> 'a -> unit

(** [schedule_call_after t delay fn arg] is {!call_after} with a handle:
    one handle record is the only allocation beyond the event cell. *)
val schedule_call_after : t -> Time.t -> ('a -> unit) -> 'a -> handle

(** [batch_call_after] is {!call_after} with deferred queue insertion: the
    event is staged and becomes poppable only at the next {!batch_commit}.
    A broadcast fan-out stages its n-1 deliveries and commits once, so the
    wheel splices same-bucket runs instead of doing n-1 independent bucket
    appends. Observable behaviour (live count, Sched emission, FIFO order
    among equal times) is identical to the equivalent {!call_after}
    sequence; on the heap backend it {e is} {!call_after}. The caller must
    {!batch_commit} before returning to the event loop. *)
val batch_call_after : t -> Time.t -> ('a -> unit) -> 'a -> unit

(** Make every staged event poppable. No-op when nothing is staged (and
    always, on the heap backend). *)
val batch_commit : t -> unit

(** [cancel t h] prevents the event from firing. Idempotent; no effect if
    the event already fired. [t] must be the engine that issued [h]
    (handles don't carry an engine pointer, precisely so that scheduling
    stays cheap). *)
val cancel : t -> handle -> unit

val is_cancelled : handle -> bool

(** Number of scheduled (non-cancelled) future events. O(1): the engine
    keeps a live counter that {!cancel} decrements eagerly, rather than
    filtering the queue. *)
val pending : t -> int

(** Total events executed so far. *)
val executed : t -> int

(** [run_until t limit] executes every event with time [<= limit] and then
    advances the clock to [limit]. *)
val run_until : t -> Time.t -> unit

(** [run_until_idle ?limit t] executes events until none remain, or the next
    event lies beyond [limit]. Returns the reason it stopped. *)
val run_until_idle : ?limit:Time.t -> t -> [ `Idle | `Limit ]

(** {2 Snapshot / restore (DESIGN.md §16)}

    [snapshot t root] is a deep copy of the whole simulation stack — the
    engine (clock, queue contents, cell pool, RNG, sink) plus [root], the
    caller's world reachable from it — as marshalled bytes. One marshal
    call covers both, so every physical sharing between them (handles,
    interned payloads, the SoA suspicion store) survives the round trip.
    Packed event functions are swizzled to their {!Checkpoint} ids (and
    back, even on failure — the live engine is untouched on return), so
    the packed lane is code-address-independent; closures reachable
    through payloads ride on [Marshal.Closures] and pin the bytes to the
    producing binary. Raises [Invalid_argument] if a staged batch is
    pending commit, if a pending event's function is unregistered, or if
    the graph holds an unmarshallable value (e.g. a JSONL trace sink's
    out-channel).

    [restore bytes] rebuilds the pair. The restored stack is disjoint from
    every live one (pool-safe) and continues bit-identically to the run
    that was snapshotted: same event stream, same digest. The caller is
    responsible for the root type — this is [Marshal]'s usual contract. *)

val snapshot : t -> 'a -> Bytes.t
val restore : Bytes.t -> t * 'a

(** {2 Intra-run sharded execution (DESIGN.md §18)}

    A conservative-window parallel run gives each shard of processes its
    own engine and splits every cross-shard event creation in two: the
    creating shard calls {!stamp} — which draws the canonical (key,
    creation index) pair exactly as the local scheduling path would, and
    emits the same [Sched] event — and ships the pair with the payload to
    the owning shard, which enqueues it at the window barrier with
    {!enqueue_committed}. Together the two halves are observationally
    identical to a local {!call_after} on a single sequential engine. *)

(** [stamp t time] reserves the canonical identity of an event created in
    the current context and arriving at [time], emitting the [Sched] the
    local path would emit. The event itself must then be enqueued exactly
    once via {!enqueue_committed} (on any engine of the same run). Raises
    [Invalid_argument] if [time] is in the past. *)
val stamp : t -> Time.t -> int * int

(** [enqueue_committed t ~key ~cidx fn arg] enqueues an already-stamped
    event silently: no [Sched] emission, no creation-counter movement.
    [key] must not lie below the last popped key (wheel monotonicity);
    barrier commits satisfy this by construction because stamped arrivals
    lie at or beyond the window end. *)
val enqueue_committed : t -> key:int -> cidx:int -> ('a -> unit) -> 'a -> unit

(** Canonical key / creation index of the event currently executing —
    the tag under which shard buffers record this event's emissions so a
    barrier merge can re-fold the global stream in canonical order. *)
val executing_key : t -> int

val executing_cidx : t -> int

(** Earliest pending event's time in µs, or [-1] when the queue is empty.
    Peek-only: the wheel's cursor does not advance. *)
val next_pending_us : t -> int

(** Earliest pending event's full canonical key, or [-1] when the queue is
    empty. Peek-only. The intra-run driver cuts windows at the control
    replica's next key so same-µs rank order survives the barrier. *)
val next_pending_key : t -> int

(** [fast_forward t time] advances the clock to [time] (no-op if already
    there) without executing anything: barrier-time code computes relative
    delays from [now], which must read the barrier instant rather than the
    shard's last executed event time. *)
val fast_forward : t -> Time.t -> unit

(** [run_window t ~limit_us] executes every event with time {e strictly}
    below [limit_us] — one conservative window. Exclusive of all ranks at
    the limit (events at the barrier instant belong to the next window),
    and the clock stays at the last executed event; use {!fast_forward}
    for barrier-time code. *)
val run_window : t -> limit_us:int -> unit

(** [run_window_key t ~limit_key] is the key-granular window: every event
    with canonical key {e strictly} below [limit_key]. A window boundary
    may fall inside an instant — shard events at the barrier µs whose rank
    sorts below the control replica's pending event still belong to the
    closing window. *)
val run_window_key : t -> limit_key:int -> unit

