(* [live] counts scheduled, not-yet-fired, not-cancelled events. Handles
   carry a reference to it so [cancel] can decrement eagerly, making
   [pending] O(1) instead of a sort of the whole queue. [fired] guards the
   idempotence cases: cancel after the event ran (or after a prior cancel)
   must not decrement again. *)
type handle = { mutable cancelled : bool; mutable fired : bool; live : int ref }

type event = { time : Time.t; action : unit -> unit; h : handle }

type t = {
  queue : event Dstruct.Pqueue.t;
  rng : Dstruct.Rng.t;
  mutable now : Time.t;
  mutable executed : int;
  live : int ref;  (* scheduled, not fired and not cancelled *)
}

let compare_event (a : event) (b : event) = Time.compare a.time b.time

let create ~seed () =
  {
    queue = Dstruct.Pqueue.create ~compare:compare_event;
    rng = Dstruct.Rng.create seed;
    now = Time.zero;
    executed = 0;
    live = ref 0;
  }

let now t = t.now
let rng t = t.rng

let schedule_at t time action =
  if Time.(time < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp
         time Time.pp t.now);
  let h = { cancelled = false; fired = false; live = t.live } in
  Dstruct.Pqueue.push t.queue { time; action; h };
  incr t.live;
  h

let schedule_after t delay action =
  schedule_at t (Time.add t.now delay) action

let cancel h =
  if not (h.cancelled || h.fired) then begin
    h.cancelled <- true;
    decr h.live
  end

let is_cancelled h = h.cancelled
let pending t = !(t.live)
let executed t = t.executed

let step t =
  match Dstruct.Pqueue.pop t.queue with
  | None -> false
  | Some e ->
      if not e.h.cancelled then begin
        e.h.fired <- true;
        decr t.live;
        assert (Time.(e.time >= t.now));
        t.now <- e.time;
        t.executed <- t.executed + 1;
        e.action ()
      end;
      true

let run_until t limit =
  let rec loop () =
    match Dstruct.Pqueue.peek t.queue with
    | Some e when Time.(e.time <= limit) ->
        ignore (step t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- Time.max t.now limit

let run_until_idle ?limit t =
  let rec loop () =
    match Dstruct.Pqueue.peek t.queue with
    | None -> `Idle
    | Some e -> (
        match limit with
        | Some l when Time.(e.time > l) ->
            t.now <- Time.max t.now l;
            `Limit
        | Some _ | None ->
            ignore (step t);
            loop ())
  in
  loop ()
