(* [live] counts scheduled, not-yet-fired, not-cancelled events. The
   handle's fired state guards the idempotence cases: cancel after the
   event ran (or after a prior cancel) must not decrement again.

   Events are packed [(fn, arg)] pairs rather than closures: a closure
   capturing k variables costs k+2 words per schedule, while [call_after]
   with a static [fn] and a pre-existing [arg] costs only the event cell
   itself. The cell stores the pair type-erased ([Obj.t] payload applied to
   an [Obj.t -> unit] function — safe because the two are only ever written
   together by [enqueue], which takes them at a common type). Erasure
   rather than an existential GADT because it makes the cell mutable and
   monomorphic, so the wheel backend recycles cells through a freelist and
   steady-state scheduling allocates nothing; the heap backend deliberately
   keeps the allocate-per-event profile (fresh cell each [enqueue], never
   recycled) as the A/B reference the pooling win is measured against.
   Fire-and-forget events all share the engine's [anon] handle (never
   exposed, never cancelled), so only cancellable schedules allocate a
   handle. *)

(* [hstate]: 0 = live, 1 = fired, 2 = cancelled — one word instead of two
   bools, because a handle is allocated per cancellable schedule (every
   {!Timer} re-arm) and [hcidx] below already costs the word back. *)
type handle = {
  mutable hstate : int;
  (* The event's creation index, mirrored here so the cell's [cx] word can
     hold the handle alone (see [cell]). Handles are per-schedule, so the
     field is written once, by [enqueue]. *)
  mutable hcidx : int;
}

(* Canonical event order (DESIGN.md §18): every event is keyed by
   [(time_us << rank_bits) | rank], with a per-rank creation index [ccidx]
   as the residual tie-break. The rank is the {e creator}'s identity —
   process pid + 1 for events created while that process's code runs
   ([set_rank]), 0 for setup/system chains, [harness_rank] (the top of the
   rank space, reserved — no pid maps to it) for post-start harness work
   such as the sampler — so the total order [(ckey, ccidx)] is a pure
   function of the simulated computation, never of scheduler internals or
   (in the intra-run parallel mode) of which domain executed what. Same-µs
   ties order by rank, then by per-creator creation order: setup chains at
   a timestamp run before process events at the same timestamp, harness
   chains after them, in both modes. The reservation also keeps every
   rank's counter owned by exactly one replica when a run is sharded —
   pids draw on their owning shard, ranks 0 and [harness_rank] only on
   the control replica. *)
let rank_bits = 11
let rank_mask = (1 lsl rank_bits) - 1
let harness_rank = rank_mask
let max_pid = rank_mask - 2

type cell = {
  mutable ckey : int;  (* (time_us << rank_bits) | creator rank *)
  mutable cfn : Obj.t -> unit;
  mutable carg : Obj.t;
  (* The creation index and the cancellation handle share one word: an
     immediate int — the per-creator creation index — for the
     fire-and-forget majority (which can never be cancelled), or the
     [handle], which then carries the index in [hcidx], for cancellable
     schedules. Fusing them keeps the cell at its historical five words:
     the fresh-cell cost of a run is peak-concurrency × cell size (the
     freelist only flattens the steady state), so a sixth word here is a
     measurable per-run allocation regression at scale. *)
  mutable cx : Obj.t;
}

(* [cx] decoding. [cell_cidx] is only on heap-compare and latch paths —
   everything is an immediate, so the function boundary boxes nothing. *)
let cell_cidx c =
  let r = c.cx in
  if Obj.is_int r then (Obj.obj r : int) else (Obj.obj r : handle).hcidx

(* Two interchangeable scheduler backends. The wheel keys on the packed
   [ckey] (µs times rank: no two distinct (time, creator) pairs share a
   key) and is monotone — pushes below the last popped key are clamped to
   it (see [enqueue]). Both backends order by nondecreasing [ckey] with
   [ccidx] (= creation order) breaking residual ties: test_wheel checks
   them against each other, and the pinned digests check the wheel against
   the heap-era event streams. *)
type queue =
  | Heap of cell Dstruct.Pqueue.t
  | Wheel of cell Dstruct.Wheel.t

type t = {
  queue : queue;
  rng : Dstruct.Rng.t;
  mutable now : Time.t;
  mutable executed : int;
  mutable live : int;  (* scheduled, not fired and not cancelled *)
  mutable sink : Obs.Sink.t;
  anon : handle;  (* shared by all fire-and-forget events *)
  (* Creation context: [cur_rank] is the rank stamped on events scheduled
     right now (0 = harness; pid + 1 while that process's code runs), and
     [counters.(r)] is rank r's next creation index. [last_key] is the key
     of the last executed event — the floor future keys are clamped to, so
     the wheel's monotonicity holds by construction. *)
  mutable cur_rank : int;
  mutable last_key : int;
  mutable counters : int array;
  (* Execution context, latched by [exec] from the popped cell: the
     canonical identity of the event currently running. Intra-run shard
     buffers tag emissions with it so a barrier merge can re-fold the
     global stream in canonical order (DESIGN.md §18). *)
  mutable exec_key : int;
  mutable exec_cidx : int;
  (* Cell freelist (wheel backend only): [exec] latches a popped cell's
     fields, clears it and releases it here before running the event, so
     the event's own schedules draw recycled cells. *)
  mutable cpool : cell array;
  mutable cpool_n : int;
}

let ignore_obj (_ : Obj.t) = ()
let unit_obj = Obj.repr ()

let compare_cell a b =
  let c = Int.compare a.ckey b.ckey in
  if c <> 0 then c else Int.compare (cell_cidx a) (cell_cidx b)

let create ?(queue = `Wheel) ~seed () =
  let anon = { hstate = 0; hcidx = 0 } in
  let queue =
    match queue with
    | `Heap -> Heap (Dstruct.Pqueue.create ~compare:compare_cell)
    | `Wheel ->
        let dummy =
          { ckey = 0; cfn = ignore_obj; carg = unit_obj; cx = Obj.repr 0 }
        in
        Wheel (Dstruct.Wheel.create ~dummy ())
  in
  {
    queue;
    rng = Dstruct.Rng.create seed;
    now = Time.zero;
    executed = 0;
    live = 0;
    sink = Obs.Sink.null;
    anon;
    cur_rank = 0;
    last_key = 0;
    counters = Array.make 8 0;
    exec_key = 0;
    exec_cidx = 0;
    cpool = [||];
    cpool_n = 0;
  }

let now t = t.now
let rng t = t.rng
let sink t = t.sink
let set_sink t sink = t.sink <- sink

(* [set_rank t pid] declares that subsequently scheduled events are created
   by process [pid] — called at every entry point into process code whose
   executing event does not already carry the process's rank (message
   delivery at the receiver, hop forwarding at the relay, start/recover).
   Events executed from the queue re-establish their own creator's rank
   automatically ([exec]). *)
let set_rank t pid =
  if pid < 0 || pid > max_pid then
    invalid_arg "Engine.set_rank: pid out of range";
  let r = pid + 1 in
  if r >= Array.length t.counters then begin
    let a = Array.make (2 * (r + 1)) 0 in
    Array.blit t.counters 0 a 0 (Array.length t.counters);
    t.counters <- a
  end;
  t.cur_rank <- r

(* Switch to the reserved harness rank: called by the run driver after
   node start-up, before scheduling harness-side chains (the sampler), so
   those chains never share a creation counter with the last pid. *)
let set_harness_rank t =
  let r = harness_rank in
  if r >= Array.length t.counters then begin
    let a = Array.make (r + 1) 0 in
    Array.blit t.counters 0 a 0 (Array.length t.counters);
    t.counters <- a
  end;
  t.cur_rank <- r

(* Like the network's flight pool: grow with the released cell itself as
   the [Array.make] filler. The released cell is cleared first so the pool
   never keeps an event's payload (or its handle) reachable. *)
let release_cell t c =
  c.cfn <- ignore_obj;
  c.carg <- unit_obj;
  c.cx <- Obj.repr 0;
  let k = t.cpool_n in
  if k = Array.length t.cpool then begin
    let a = Array.make (if k = 0 then 64 else 2 * k) c in
    Array.blit t.cpool 0 a 0 k;
    t.cpool <- a
  end;
  t.cpool.(k) <- c;
  t.cpool_n <- k + 1

(* Key/index assignment, shared by both scheduling paths. The clamp to
   [last_key] covers one legal corner: scheduling at the current µs from a
   context whose rank is below the executing event's (e.g. a test
   scheduling at [now] between runs) — the event then sorts right after
   the current one, which is exactly the old FIFO behaviour. The clamp
   never changes the µs part (times in the past are rejected first). *)
(* Two separate int-returning helpers rather than one returning a pair:
   the hot path is allocation-free by contract and without flambda a
   tuple return boxes three minor words per scheduled event. *)
let next_key t time =
  let us = Time.to_us time in
  let key = (us lsl rank_bits) lor t.cur_rank in
  if key < t.last_key then t.last_key else key

let next_cidx t =
  let r = t.cur_rank in
  let cidx = t.counters.(r) in
  t.counters.(r) <- cidx + 1;
  cidx

let enqueue : type a. t -> Time.t -> (a -> unit) -> a -> handle -> unit =
 fun t time fn arg h ->
  if Time.(time < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule: %a is before now (%a)" Time.pp time
         Time.pp t.now);
  let key = next_key t time in
  let cidx = next_cidx t in
  (* The only erasure point: [fn] and [arg] arrive at a common type [a], so
     applying the erased function to the erased payload is well-typed by
     construction. *)
  let fn : Obj.t -> unit = Obj.magic fn in
  let arg = Obj.repr arg in
  let cx =
    if h == t.anon then Obj.repr cidx
    else begin
      h.hcidx <- cidx;
      Obj.repr h
    end
  in
  (match t.queue with
  | Heap q -> Dstruct.Pqueue.push q { ckey = key; cfn = fn; carg = arg; cx }
  | Wheel w ->
      let c =
        if t.cpool_n = 0 then { ckey = key; cfn = fn; carg = arg; cx }
        else begin
          let k = t.cpool_n - 1 in
          t.cpool_n <- k;
          let c = t.cpool.(k) in
          c.ckey <- key;
          c.cfn <- fn;
          c.carg <- arg;
          c.cx <- cx;
          c
        end
      in
      Dstruct.Wheel.push w ~key c);
  t.live <- t.live + 1;
  if Obs.Sink.wants t.sink Obs.Event.c_engine then
    Obs.Sink.emit t.sink
      (Obs.Event.Sched { now = Time.to_us t.now; at = Time.to_us time })

(* Static trampoline for the closure API: the closure is the [arg]. *)
let call_thunk (f : unit -> unit) = f ()

let schedule_at t time action =
  let h = { hstate = 0; hcidx = 0 } in
  enqueue t time call_thunk action h;
  h

let schedule_after t delay action =
  schedule_at t (Time.add t.now delay) action

let call_at t time fn arg = enqueue t time fn arg t.anon
let call_after t delay fn arg = enqueue t (Time.add t.now delay) fn arg t.anon

let schedule_call_after t delay fn arg =
  let h = { hstate = 0; hcidx = 0 } in
  enqueue t (Time.add t.now delay) fn arg h;
  h

(* Batched fire-and-forget scheduling: a broadcast fan-out stages its n-1
   events and splices them into the wheel in one [batch_commit]
   ({!Dstruct.Wheel.stage} / [commit]). Everything observable — live count,
   Sched emission, canonical order among equal keys — happens exactly as
   the equivalent [call_after] sequence would produce it; only the bucket
   bookkeeping is amortized. The heap backend has no batch path (it is the
   allocate-per-event A/B reference), so it degrades to [call_after] and
   [batch_commit] is a no-op — the two backends still produce identical
   event streams. Batches must be committed before control returns to the
   event loop; staging happens inside a single handler, so no pop can
   intervene and the wheel's cursor cannot move mid-batch. *)
let batch_call_after : type a. t -> Time.t -> (a -> unit) -> a -> unit =
 fun t delay fn arg ->
  match t.queue with
  | Heap _ -> enqueue t (Time.add t.now delay) fn arg t.anon
  | Wheel w ->
      let time = Time.add t.now delay in
      if Time.(time < t.now) then
        invalid_arg
          (Format.asprintf "Engine.schedule: %a is before now (%a)" Time.pp
             time Time.pp t.now);
      let key = next_key t time in
      let cidx = next_cidx t in
      let fn : Obj.t -> unit = Obj.magic fn in
      let arg = Obj.repr arg in
      let c =
        if t.cpool_n = 0 then
          { ckey = key; cfn = fn; carg = arg; cx = Obj.repr cidx }
        else begin
          let k = t.cpool_n - 1 in
          t.cpool_n <- k;
          let c = t.cpool.(k) in
          c.ckey <- key;
          c.cfn <- fn;
          c.carg <- arg;
          c.cx <- Obj.repr cidx;
          c
        end
      in
      Dstruct.Wheel.stage w ~key c;
      t.live <- t.live + 1;
      if Obs.Sink.wants t.sink Obs.Event.c_engine then
        Obs.Sink.emit t.sink
          (Obs.Event.Sched { now = Time.to_us t.now; at = Time.to_us time })

let batch_commit t =
  match t.queue with
  | Heap _ -> ()
  | Wheel w -> Dstruct.Wheel.commit w

(* ---- Intra-run sharded execution support (DESIGN.md §18) ----
   A cross-shard event creation splits [call_after] in two: the creating
   shard [stamp]s the event — drawing the exact canonical (key, cidx) and
   emitting the Sched that the local path would have emitted — and ships
   the pair with the payload; at the window barrier the owning shard
   [enqueue_committed]s it silently (no second Sched, no counter bump).
   The union of both shards' observable actions is bit-identical to the
   sequential [call_after]. *)

let stamp t time =
  if Time.(time < t.now) then
    invalid_arg
      (Format.asprintf "Engine.stamp: %a is before now (%a)" Time.pp time
         Time.pp t.now);
  let key = next_key t time in
  let cidx = next_cidx t in
  if Obs.Sink.wants t.sink Obs.Event.c_engine then
    Obs.Sink.emit t.sink
      (Obs.Event.Sched { now = Time.to_us t.now; at = Time.to_us time });
  (key, cidx)

let enqueue_committed : type a. t -> key:int -> cidx:int -> (a -> unit) -> a -> unit
    =
 fun t ~key ~cidx fn arg ->
  let fn : Obj.t -> unit = Obj.magic fn in
  let arg = Obj.repr arg in
  (match t.queue with
  | Heap q ->
      Dstruct.Pqueue.push q
        { ckey = key; cfn = fn; carg = arg; cx = Obj.repr cidx }
  | Wheel w ->
      let c =
        if t.cpool_n = 0 then
          { ckey = key; cfn = fn; carg = arg; cx = Obj.repr cidx }
        else begin
          let k = t.cpool_n - 1 in
          t.cpool_n <- k;
          let c = t.cpool.(k) in
          c.ckey <- key;
          c.cfn <- fn;
          c.carg <- arg;
          c.cx <- Obj.repr cidx;
          c
        end
      in
      Dstruct.Wheel.push w ~key c);
  t.live <- t.live + 1

let executing_key t = t.exec_key
let executing_cidx t = t.exec_cidx

(* Earliest pending event's µs, or -1 when the queue is empty. Peeks only:
   the wheel's cursor must not advance (the engine may legally decide not
   to pop at a window horizon). *)
let next_pending_us t =
  match t.queue with
  | Heap q ->
      if Dstruct.Pqueue.is_empty q then -1
      else (Dstruct.Pqueue.peek_exn q).ckey asr rank_bits
  | Wheel w ->
      if Dstruct.Wheel.is_empty w then -1
      else Dstruct.Wheel.min_key_exn w asr rank_bits

(* Earliest pending event's full canonical key (µs and creator rank), or
   -1 when the queue is empty — the intra-run driver interleaves the
   control replica's events with shard events by key, not just by µs. *)
let next_pending_key t =
  match t.queue with
  | Heap q ->
      if Dstruct.Pqueue.is_empty q then -1
      else (Dstruct.Pqueue.peek_exn q).ckey
  | Wheel w ->
      if Dstruct.Wheel.is_empty w then -1 else Dstruct.Wheel.min_key_exn w

(* Advance the clock over an idle gap without running anything: barrier
   code (recovery, resync, fault application) computes relative delays
   from [now], which must read the barrier instant, not the last executed
   event's time. *)
let fast_forward t time = t.now <- Time.max t.now time

let cancel t h =
  if h.hstate = 0 then begin
    h.hstate <- 2;
    t.live <- t.live - 1;
    if Obs.Sink.wants t.sink Obs.Event.c_engine then
      Obs.Sink.emit t.sink (Obs.Event.Cancel { now = Time.to_us t.now })
  end

let is_cancelled h = h.hstate = 2
let pending t = t.live
let executed t = t.executed

(* [exec t c ~recycle] latches every field, optionally releases the cell
   (wheel backend — the heap's cells are garbage once popped), then fires.
   Latch-then-release, so the event's own schedules may reuse the cell.
   The executing event's creator rank becomes the creation context for
   whatever it schedules; deliver/forward override it to the receiving
   process's rank ([set_rank]) before running process code. *)
let fire t key cidx fn arg =
  t.live <- t.live - 1;
  let time = Time.of_us (key asr rank_bits) in
  assert (Time.(time >= t.now));
  t.now <- time;
  t.cur_rank <- key land rank_mask;
  t.last_key <- key;
  t.exec_key <- key;
  t.exec_cidx <- cidx;
  t.executed <- t.executed + 1;
  if Obs.Sink.wants t.sink Obs.Event.c_engine then
    Obs.Sink.emit t.sink (Obs.Event.Fire { now = Time.to_us t.now });
  fn arg

let exec t c ~recycle =
  let key = c.ckey in
  let fn = c.cfn and arg = c.carg and cx = c.cx in
  if recycle then release_cell t c;
  if Obj.is_int cx then
    (* Fire-and-forget: [cx] is the creation index and the event cannot
       have been cancelled. *)
    fire t key (Obj.obj cx : int) fn arg
  else begin
    let h : handle = Obj.obj cx in
    if h.hstate = 0 then begin
      h.hstate <- 1;
      fire t key h.hcidx fn arg
    end
  end

(* The run loops are specialized per backend so the per-event dispatch is
   hoisted out of the loop. The wheel loop decides from [min_key_exn]
   (memoized, non-mutating) before popping: peeking must not advance the
   wheel's cursor past [limit], or a later legal schedule below the cursor
   would be rejected. A time limit translates to the largest key at that
   µs — every rank at time [limit] is included, matching the old
   time-inclusive contract. *)
let limit_key limit = ((Time.to_us limit + 1) lsl rank_bits) - 1

let run_until t limit =
  (match t.queue with
  | Heap q ->
      let lim = limit_key limit in
      let rec loop () =
        if not (Dstruct.Pqueue.is_empty q) then begin
          let c = Dstruct.Pqueue.peek_exn q in
          if c.ckey <= lim then begin
            Dstruct.Pqueue.drop_exn q;
            exec t c ~recycle:false;
            loop ()
          end
        end
      in
      loop ()
  | Wheel w ->
      let lim = limit_key limit in
      let rec loop () =
        if not (Dstruct.Wheel.is_empty w) then
          if Dstruct.Wheel.min_key_exn w <= lim then begin
            exec t (Dstruct.Wheel.pop_exn w) ~recycle:true;
            loop ()
          end
      in
      loop ());
  t.now <- Time.max t.now limit

(* One conservative window (DESIGN.md §18): execute every event with
   canonical key STRICTLY below [limit_key] — key-exclusive, unlike
   [run_until]'s inclusive time limit, because a window boundary can fall
   {e inside} an instant: the driver cuts a window at the control
   replica's next pending key, so shard events at the barrier µs whose
   rank sorts below the barrier event's still run first, exactly as the
   one-queue sequential order has it. The clock is left at the last
   executed event, not advanced to the limit: the driver [fast_forward]s
   explicitly when barrier-time code needs [now] at the barrier
   instant. *)
let run_window_key t ~limit_key =
  let lim = limit_key in
  match t.queue with
  | Heap q ->
      let rec loop () =
        if not (Dstruct.Pqueue.is_empty q) then begin
          let c = Dstruct.Pqueue.peek_exn q in
          if c.ckey < lim then begin
            Dstruct.Pqueue.drop_exn q;
            exec t c ~recycle:false;
            loop ()
          end
        end
      in
      loop ()
  | Wheel w ->
      let rec loop () =
        if not (Dstruct.Wheel.is_empty w) then
          if Dstruct.Wheel.min_key_exn w < lim then begin
            exec t (Dstruct.Wheel.pop_exn w) ~recycle:true;
            loop ()
          end
      in
      loop ()

(* µs-exclusive window: every event strictly before [limit_us], any rank. *)
let run_window t ~limit_us = run_window_key t ~limit_key:(limit_us lsl rank_bits)

(* ---------------------------------------------------- snapshot / restore *)

let () =
  Checkpoint.register ~id:0 ignore_obj;
  Checkpoint.register ~id:1 call_thunk

(* Swizzle a cell's packed function to its registry id (an immediate int),
   and back. The walks below can visit the same cell several times (pool
   slots alias, heap stale slots alias live cells, wheel freelist cells
   share [dummy]), so both directions are idempotent: a swizzled [cfn] is
   an int and is skipped by [swizzle_cell]; an unswizzled one is a block
   and is skipped by [unswizzle_cell]. *)
let swizzle_cell c =
  if not (Obj.is_int (Obj.repr c.cfn)) then begin
    let id = Checkpoint.id_of c.cfn in
    if id < 0 then
      invalid_arg
        "Engine.snapshot: a pending event's function is not registered \
         (Sim.Checkpoint.register)";
    c.cfn <- Obj.magic id
  end

let unswizzle_cell c =
  let r = Obj.repr c.cfn in
  if Obj.is_int r then c.cfn <- Checkpoint.fn_of (Obj.magic r : int)

(* Every event cell reachable through the engine's marshalled graph: the
   queue's committed cells (plus the wheel's shared dummy, which recycled
   freelist cells alias), and the engine's own cell pool — whose stale
   slots may alias cells that are simultaneously live in the queue. *)
let iter_cells t f =
  (match t.queue with
  | Heap q -> Dstruct.Pqueue.iter_slots q f
  | Wheel w -> Dstruct.Wheel.iter_values w f);
  for i = 0 to Array.length t.cpool - 1 do
    f t.cpool.(i)
  done

let snapshot : type a. t -> a -> Bytes.t =
 fun t root ->
  (match t.queue with
  | Wheel w when Dstruct.Wheel.staged_count w <> 0 ->
      invalid_arg "Engine.snapshot: staged batch pending commit"
  | Wheel _ | Heap _ -> ());
  iter_cells t swizzle_cell;
  (* Unswizzle under protect: the live engine must come back runnable even
     if an unregistered function aborts the walk or marshalling fails
     (e.g. an out-channel-holding sink). One [to_bytes] call, so every
     physical sharing — the [anon] handle, interned ALIVE payloads, the
     SoA store — survives the round trip. *)
  Fun.protect
    ~finally:(fun () -> iter_cells t unswizzle_cell)
    (fun () -> Marshal.to_bytes (t, root) [ Marshal.Closures ])

let restore : type a. Bytes.t -> t * a =
 fun bytes ->
  let ((t, _) as pair) = (Marshal.from_bytes bytes 0 : t * a) in
  iter_cells t unswizzle_cell;
  pair

let run_until_idle ?limit t =
  match t.queue with
  | Heap q ->
      let lim = match limit with Some l -> limit_key l | None -> max_int in
      let rec loop () =
        if Dstruct.Pqueue.is_empty q then `Idle
        else begin
          let c = Dstruct.Pqueue.peek_exn q in
          if c.ckey > lim then begin
            (match limit with Some l -> t.now <- Time.max t.now l | None -> ());
            `Limit
          end
          else begin
            Dstruct.Pqueue.drop_exn q;
            exec t c ~recycle:false;
            loop ()
          end
        end
      in
      loop ()
  | Wheel w ->
      let lim = match limit with Some l -> limit_key l | None -> max_int in
      let rec loop () =
        if Dstruct.Wheel.is_empty w then `Idle
        else if Dstruct.Wheel.min_key_exn w > lim then begin
          (match limit with Some l -> t.now <- Time.max t.now l | None -> ());
          `Limit
        end
        else begin
          exec t (Dstruct.Wheel.pop_exn w) ~recycle:true;
          loop ()
        end
      in
      loop ()
