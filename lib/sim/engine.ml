(* [live] counts scheduled, not-yet-fired, not-cancelled events. Handles
   carry the engine so [cancel] can decrement eagerly (making [pending] O(1)
   instead of a sort of the whole queue) and emit into the engine's sink.
   [fired] guards the idempotence cases: cancel after the event ran (or
   after a prior cancel) must not decrement again. *)
type t = {
  queue : event Dstruct.Pqueue.t;
  rng : Dstruct.Rng.t;
  mutable now : Time.t;
  mutable executed : int;
  mutable live : int;  (* scheduled, not fired and not cancelled *)
  mutable sink : Obs.Sink.t;
}

and handle = { mutable cancelled : bool; mutable fired : bool; eng : t }
and event = { time : Time.t; action : unit -> unit; h : handle }

let compare_event (a : event) (b : event) = Time.compare a.time b.time

let create ~seed () =
  {
    queue = Dstruct.Pqueue.create ~compare:compare_event;
    rng = Dstruct.Rng.create seed;
    now = Time.zero;
    executed = 0;
    live = 0;
    sink = Obs.Sink.null;
  }

let now t = t.now
let rng t = t.rng
let sink t = t.sink
let set_sink t sink = t.sink <- sink

let schedule_at t time action =
  if Time.(time < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp
         time Time.pp t.now);
  let h = { cancelled = false; fired = false; eng = t } in
  Dstruct.Pqueue.push t.queue { time; action; h };
  t.live <- t.live + 1;
  if Obs.Sink.wants t.sink Obs.Event.c_engine then
    Obs.Sink.emit t.sink
      (Obs.Event.Sched { now = Time.to_us t.now; at = Time.to_us time });
  h

let schedule_after t delay action =
  schedule_at t (Time.add t.now delay) action

let cancel h =
  if not (h.cancelled || h.fired) then begin
    h.cancelled <- true;
    let t = h.eng in
    t.live <- t.live - 1;
    if Obs.Sink.wants t.sink Obs.Event.c_engine then
      Obs.Sink.emit t.sink (Obs.Event.Cancel { now = Time.to_us t.now })
  end

let is_cancelled h = h.cancelled
let pending t = t.live
let executed t = t.executed

let step t =
  match Dstruct.Pqueue.pop t.queue with
  | None -> false
  | Some e ->
      if not e.h.cancelled then begin
        e.h.fired <- true;
        t.live <- t.live - 1;
        assert (Time.(e.time >= t.now));
        t.now <- e.time;
        t.executed <- t.executed + 1;
        if Obs.Sink.wants t.sink Obs.Event.c_engine then
          Obs.Sink.emit t.sink (Obs.Event.Fire { now = Time.to_us t.now });
        e.action ()
      end;
      true

let run_until t limit =
  let rec loop () =
    match Dstruct.Pqueue.peek t.queue with
    | Some e when Time.(e.time <= limit) ->
        ignore (step t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- Time.max t.now limit

let run_until_idle ?limit t =
  let rec loop () =
    match Dstruct.Pqueue.peek t.queue with
    | None -> `Idle
    | Some e -> (
        match limit with
        | Some l when Time.(e.time > l) ->
            t.now <- Time.max t.now l;
            `Limit
        | Some _ | None ->
            ignore (step t);
            loop ())
  in
  loop ()
