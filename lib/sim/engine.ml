(* [live] counts scheduled, not-yet-fired, not-cancelled events. [fired]
   guards the idempotence cases: cancel after the event ran (or after a
   prior cancel) must not decrement again.

   Events are packed [(fn, arg)] pairs rather than closures: a closure
   capturing k variables costs k+2 words per schedule, while [call_after]
   with a static [fn] and a pre-existing [arg] costs only the event cell
   itself. The existential keeps the engine polymorphic in the payload
   without boxing it into a variant. Fire-and-forget events all share the
   engine's [anon] handle (never exposed, never cancelled), so only
   cancellable schedules allocate a handle. *)

type handle = { mutable cancelled : bool; mutable fired : bool }

type event =
  | E : { time : Time.t; fn : 'a -> unit; arg : 'a; h : handle } -> event

type t = {
  queue : event Dstruct.Pqueue.t;
  rng : Dstruct.Rng.t;
  mutable now : Time.t;
  mutable executed : int;
  mutable live : int;  (* scheduled, not fired and not cancelled *)
  mutable sink : Obs.Sink.t;
  anon : handle;  (* shared by all fire-and-forget events *)
}

let compare_event e1 e2 =
  match (e1, e2) with E a, E b -> Time.compare a.time b.time

let create ~seed () =
  {
    queue = Dstruct.Pqueue.create ~compare:compare_event;
    rng = Dstruct.Rng.create seed;
    now = Time.zero;
    executed = 0;
    live = 0;
    sink = Obs.Sink.null;
    anon = { cancelled = false; fired = false };
  }

let now t = t.now
let rng t = t.rng
let sink t = t.sink
let set_sink t sink = t.sink <- sink

let enqueue : type a. t -> Time.t -> (a -> unit) -> a -> handle -> unit =
 fun t time fn arg h ->
  if Time.(time < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule: %a is before now (%a)" Time.pp time
         Time.pp t.now);
  Dstruct.Pqueue.push t.queue (E { time; fn; arg; h });
  t.live <- t.live + 1;
  if Obs.Sink.wants t.sink Obs.Event.c_engine then
    Obs.Sink.emit t.sink
      (Obs.Event.Sched { now = Time.to_us t.now; at = Time.to_us time })

(* Static trampoline for the closure API: the closure is the [arg]. *)
let call_thunk (f : unit -> unit) = f ()

let schedule_at t time action =
  let h = { cancelled = false; fired = false } in
  enqueue t time call_thunk action h;
  h

let schedule_after t delay action =
  schedule_at t (Time.add t.now delay) action

let call_at t time fn arg = enqueue t time fn arg t.anon
let call_after t delay fn arg = enqueue t (Time.add t.now delay) fn arg t.anon

let schedule_call_after t delay fn arg =
  let h = { cancelled = false; fired = false } in
  enqueue t (Time.add t.now delay) fn arg h;
  h

let cancel t h =
  if not (h.cancelled || h.fired) then begin
    h.cancelled <- true;
    t.live <- t.live - 1;
    if Obs.Sink.wants t.sink Obs.Event.c_engine then
      Obs.Sink.emit t.sink (Obs.Event.Cancel { now = Time.to_us t.now })
  end

let is_cancelled h = h.cancelled
let pending t = t.live
let executed t = t.executed

let exec t ev =
  match ev with
  | E e ->
      if not e.h.cancelled then begin
        e.h.fired <- true;
        t.live <- t.live - 1;
        assert (Time.(e.time >= t.now));
        t.now <- e.time;
        t.executed <- t.executed + 1;
        if Obs.Sink.wants t.sink Obs.Event.c_engine then
          Obs.Sink.emit t.sink (Obs.Event.Fire { now = Time.to_us t.now });
        e.fn e.arg
      end

let run_until t limit =
  let rec loop () =
    if not (Dstruct.Pqueue.is_empty t.queue) then
      match Dstruct.Pqueue.peek_exn t.queue with
      | E { time; _ } as ev when Time.(time <= limit) ->
          Dstruct.Pqueue.drop_exn t.queue;
          exec t ev;
          loop ()
      | E _ -> ()
  in
  loop ();
  t.now <- Time.max t.now limit

let run_until_idle ?limit t =
  let rec loop () =
    if Dstruct.Pqueue.is_empty t.queue then `Idle
    else
      match Dstruct.Pqueue.peek_exn t.queue with
      | E { time; _ } as ev -> (
          match limit with
          | Some l when Time.(time > l) ->
              t.now <- Time.max t.now l;
              `Limit
          | Some _ | None ->
              Dstruct.Pqueue.drop_exn t.queue;
              exec t ev;
              loop ())
  in
  loop ()
