type pid = int

type sample = {
  time : Sim.Time.t;
  round : int;  (* slowest correct process's receiving round *)
  leaders : (pid * pid) list;
  agreed : pid option;
}

type result = {
  stabilized_at : Sim.Time.t option;
  final_leader : pid option;
  samples : sample list;
  messages_sent : int;
  messages_delivered : int;
  alive_bytes : int;
  suspicion_bytes : int;
  max_susp_level : int;
  max_timeout : Sim.Time.t;
  lattice_violations : int;
  max_round_state : int;
  min_sending_round : int;
  checker : Scenarios.Checker.report option;
  horizon : Sim.Time.t;
  digest : int64 option;
  metrics : Obs.Metrics.t option;
  re_elections : int;
  leadership_epochs : int;
  partition_downtime : Sim.Time.t;
  adversary_moves : int;
  recoveries : int;
}

module Spec = struct
  type t = {
    horizon : Sim.Time.t;
    sample_every : Sim.Time.t;
    min_stable : Sim.Time.t option;
    crashes : (pid * Sim.Time.t) list;
    plan : Fault.Plan.t;
    check : bool;
    wire_stats : bool;
    metrics : bool;
    digest : bool;
    sink : Obs.Sink.t option;
    sched : [ `Heap | `Wheel ];
    flight_pool : bool;
    algo : [ `Gossip | `Relay ];
    topology : Net.Topology.kind;
    link_channel : Net.Topology.channel;
  }

  let default =
    {
      horizon = Sim.Time.of_sec 30;
      sample_every = Sim.Time.of_ms 100;
      min_stable = None;
      crashes = [];
      plan = Fault.Plan.empty;
      check = true;
      wire_stats = false;
      metrics = false;
      digest = false;
      sink = None;
      sched = `Wheel;
      flight_pool = true;
      algo = `Gossip;
      topology = Net.Topology.Complete;
      link_channel = Net.Topology.Reliable;
    }

  let with_horizon horizon t = { t with horizon }
  let with_sample_every sample_every t = { t with sample_every }
  let with_min_stable w t = { t with min_stable = Some w }
  let with_crashes crashes t = { t with crashes }
  let with_plan plan t = { t with plan }
  let with_check check t = { t with check }
  let with_wire_stats wire_stats t = { t with wire_stats }
  let with_metrics metrics t = { t with metrics }
  let with_digest digest t = { t with digest }
  let with_sink sink t = { t with sink = Some sink }
  let with_sched sched t = { t with sched }
  let with_flight_pool flight_pool t = { t with flight_pool }
  let with_algo algo t = { t with algo }
  let with_topology topology t = { t with topology }
  let with_link_channel link_channel t = { t with link_channel }
end

(* The largest round whose every non-victim message is guaranteed delivered
   by [horizon] (Scenario.arrival_bound is monotone in the round number).
   [hops] is the routed network's diameter — every hop redraws its delay,
   so the per-link bound multiplies end to end. *)
let checkable_round ?(hops = 1) scenario horizon =
  let fits rn =
    Sim.Time.(Scenarios.Scenario.arrival_bound ~hops scenario rn <= horizon)
  in
  if not (fits 1) then 0
  else begin
    (* Exponential probe, then binary search for the last fitting round. *)
    let rec grow hi = if fits hi then grow (2 * hi) else hi in
    let rec bisect lo hi =
      (* invariant: fits lo, not (fits hi) *)
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if fits mid then bisect mid hi else bisect lo mid
      end
    in
    let hi = grow 2 in
    max 0 (bisect 1 hi - 2)
  end

(* Round [rn] is excused from assumption checking iff a message of round
   [rn] could have been sent or in flight during one of the plan's outage
   windows: sends start no earlier than [(rn-1) * (1-jitter) * beta]
   (period >= (1-jitter)*beta, first offset > 0) and non-victim arrivals
   end by [arrival_bound rn]. Conservative in both directions — masking a
   round the outage never touched only shrinks checked coverage, never
   forges a violation. *)
let masked_rounds ?(hops = 1) ~plan ~config ~scenario () =
  match Fault.Plan.outage_windows plan with
  | [] -> fun _ -> false
  | windows ->
      let beta = Sim.Time.to_us config.Omega.Config.beta in
      let jitter = config.Omega.Config.send_jitter in
      fun rn ->
        let lo =
          int_of_float (float_of_int ((rn - 1) * beta) *. (1. -. jitter))
        in
        let hi =
          Sim.Time.to_us (Scenarios.Scenario.arrival_bound ~hops scenario rn)
        in
        List.exists
          (fun (a, b) -> lo <= Sim.Time.to_us b && Sim.Time.to_us a <= hi)
          windows

(* Leadership history statistics over the sampled [agreed] sequence:
   [epochs] counts maximal stretches of one constant agreed leader
   (delimited by anarchy or a change), [re_elections] counts changes of
   agreed leader (anarchy gaps between two reigns of the same leader do
   not count — nobody else was elected in between). *)
let leadership_stats samples =
  let rec walk epochs changes last_epoch last_leader = function
    | [] -> (epochs, changes)
    | { agreed = None; _ } :: rest ->
        walk epochs changes None last_leader rest
    | { agreed = Some l; _ } :: rest ->
        if last_epoch = Some l then walk epochs changes last_epoch last_leader rest
        else
          let changes =
            match last_leader with
            | Some l' when l' <> l -> changes + 1
            | _ -> changes
          in
          walk (epochs + 1) changes (Some l) (Some l) rest
  in
  walk 0 0 None None samples

(* ------------------------------------------------------------ live runs *)

(* The sampler is a static task over a state record, not a recursive
   closure: it is a pending event at every instant of the run, so it must
   be registered with {!Sim.Checkpoint} for snapshots — and a packed
   [(sample_task, state)] cell checkpoints as (id 12, marshalled state)
   where a closure would pin the bytes to a code address. *)
type sampler_state = {
  st_engine : Sim.Engine.t;
  st_iface : Omega.Iface.t;
  st_net : Omega.Message.t Net.Network.t;
  st_horizon : Sim.Time.t;
  st_sample_every : Sim.Time.t;
  st_fig3 : bool;
  mutable st_samples : sample list;  (* newest first *)
  mutable st_lattice_violations : int;
  mutable st_max_round_state : int;
}

let observe_nodes st =
  List.iter
    (fun p ->
      if not (Omega.Iface.lattice_invariant_holds st.st_iface p) then
        st.st_lattice_violations <- st.st_lattice_violations + 1;
      let cardinal = Omega.Iface.round_state_cardinal st.st_iface p in
      if cardinal > st.st_max_round_state then
        st.st_max_round_state <- cardinal)
    (Net.Network.correct st.st_net)

let min_receiving_round st =
  List.fold_left
    (fun acc p -> min acc (Omega.Iface.receiving_round st.st_iface p))
    max_int
    (Net.Network.correct st.st_net)

let rec sample_task st =
  st.st_samples <-
    {
      time = Sim.Engine.now st.st_engine;
      round = min_receiving_round st;
      leaders = Omega.Iface.leaders st.st_iface;
      agreed = Omega.Iface.agreed_leader st.st_iface;
    }
    :: st.st_samples;
  if st.st_fig3 then observe_nodes st else ignore (observe_nodes st);
  if Sim.Time.(Sim.Engine.now st.st_engine < st.st_horizon) then
    Sim.Engine.call_after st.st_engine st.st_sample_every sample_task st

let () = Sim.Checkpoint.register ~id:12 sample_task

type live = {
  l_spec : Spec.t;
  l_config : Omega.Config.t;
  l_engine : Sim.Engine.t;
  l_scenario : Scenarios.Scenario.t;
  l_net : Omega.Message.t Net.Network.t;
  l_iface : Omega.Iface.t;
  l_injector : Fault.Injector.t option;
  l_checker : Scenarios.Checker.t option;
  l_alive_bytes : int ref;
  l_suspicion_bytes : int ref;
  l_metrics : Obs.Metrics.t option;
  l_digest : Obs.Digest.t option;
  l_sampler : sampler_state;
}

let start ?(spec = Spec.default) ~env ~seed () =
  let {
    Spec.horizon;
    sample_every;
    min_stable = _;
    crashes;
    plan;
    check;
    wire_stats;
    metrics;
    digest;
    sink;
    sched;
    flight_pool;
    algo;
    topology;
    link_channel;
  } =
    spec
  in
  let config = Scenarios.Env.config env in
  let engine = Sim.Engine.create ~queue:sched ~seed () in
  let scenario, net =
    Scenarios.Env.build ~flight_pool ~topology ~channel:link_channel env
      engine
  in
  let checker =
    if check && Option.is_some (Scenarios.Scenario.center scenario) then
      Some (Scenarios.Checker.create scenario)
    else None
  in
  (* E5's wire-cost accounting rides the event stream: a net-events-only
     sink counting ALIVE/SUSPICION bytes, attached only when asked for —
     any live net sink makes every send/deliver construct its event, so
     the default run keeps the engine's null sink (one dead branch per
     event site, nothing allocated; see DESIGN.md §10). *)
  let alive_bytes = ref 0 and suspicion_bytes = ref 0 in
  let bytes_sink =
    if not wire_stats then []
    else
      [
        Obs.Sink.make ~mask:Obs.Event.c_net (function
          | Obs.Event.Send { kind; bytes; _ } ->
              if String.equal kind "alive" then
                alive_bytes := !alive_bytes + bytes
              else if String.equal kind "susp" then
                suspicion_bytes := !suspicion_bytes + bytes
          | _ -> ());
      ]
  in
  let metrics_agg = if metrics then Some (Obs.Metrics.create ()) else None in
  let digest_st = if digest then Some (Obs.Digest.create ()) else None in
  (* The cluster exists before the sink is installed (creation emits
     nothing, it only splits RNG streams) because the fault injector needs
     it; the injector's action scheduling likewise pre-dates the sink, so
     plan-free digests see exactly the event stream they always did. The
     algorithm behind the interface is the spec's choice, exactly like the
     scheduler backend; Iface construction is observationally free. *)
  let iface =
    match algo with
    | `Gossip -> Omega.Cluster.iface (Omega.Cluster.create config net)
    | `Relay -> Omega.Lean.iface (Omega.Lean.create config net)
  in
  let injector =
    if Fault.Plan.is_empty plan then None
    else Some (Fault.Injector.attach plan ~iface ~scenario)
  in
  Sim.Engine.set_sink engine
    (Obs.Sink.tee
       (List.concat
          [
            bytes_sink;
            (match checker with
            | Some c -> [ Scenarios.Checker.sink c ]
            | None -> []);
            (match metrics_agg with
            | Some m -> [ Obs.Metrics.sink m ]
            | None -> []);
            (match digest_st with
            | Some d -> [ Obs.Digest.sink d ]
            | None -> []);
            (match injector with
            | Some inj when Fault.Injector.adaptive_in_plan plan ->
                [ Fault.Injector.sink inj ]
            | Some _ | None -> []);
            (match sink with Some s -> [ s ] | None -> []);
          ]));
  List.iter (fun (p, time) -> Omega.Iface.crash_at iface p time) crashes;
  let fig3 = Omega.Config.has_bounded_condition config.Omega.Config.variant in
  let sampler =
    {
      st_engine = engine;
      st_iface = iface;
      st_net = net;
      st_horizon = horizon;
      st_sample_every = sample_every;
      st_fig3 = fig3;
      st_samples = [];
      st_lattice_violations = 0;
      st_max_round_state = 0;
    }
  in
  Omega.Iface.start iface;
  Sim.Engine.call_after engine sample_every sample_task sampler;
  {
    l_spec = spec;
    l_config = config;
    l_engine = engine;
    l_scenario = scenario;
    l_net = net;
    l_iface = iface;
    l_injector = injector;
    l_checker = checker;
    l_alive_bytes = alive_bytes;
    l_suspicion_bytes = suspicion_bytes;
    l_metrics = metrics_agg;
    l_digest = digest_st;
    l_sampler = sampler;
  }

let now live = Sim.Engine.now live.l_engine
let horizon live = live.l_spec.Spec.horizon

(* Slicing is observationally invisible: [run_until] only advances the
   clock, and an [advance ~until] below the horizon leaves every pending
   event in place — the digest of sliced and straight runs is identical. *)
let advance live ~until =
  Sim.Engine.run_until live.l_engine
    (Sim.Time.min until live.l_spec.Spec.horizon)

let snapshot live =
  (match live.l_spec.Spec.sink with
  | Some _ ->
      invalid_arg
        "Run.snapshot: runs with an external sink (tracing) cannot be \
         snapshotted"
  | None -> ());
  Sim.Engine.snapshot live.l_engine live

let restore bytes =
  let (_ : Sim.Engine.t), (live : live) = Sim.Engine.restore bytes in
  live

let finish live =
  let {
    l_spec = spec;
    l_config = config;
    l_engine = engine;
    l_scenario = scenario;
    l_net = net;
    l_iface = iface;
    l_injector = injector;
    l_checker = checker;
    l_alive_bytes = alive_bytes;
    l_suspicion_bytes = suspicion_bytes;
    l_metrics = metrics_agg;
    l_digest = digest_st;
    l_sampler = sampler;
  } =
    live
  in
  let { Spec.horizon; min_stable; plan; _ } = spec in
  let min_stable =
    match min_stable with
    | Some w -> w
    | None -> Sim.Time.of_us (Sim.Time.to_us horizon / 5)
  in
  Sim.Engine.run_until engine horizon;
  let samples = List.rev sampler.st_samples in
  let verdict =
    Stability.judge ~horizon ~min_window:min_stable
      (List.map
         (fun s ->
           { Stability.time = s.time; round = s.round; agreed = s.agreed })
         samples)
  in
  let stabilized_at = verdict.Stability.stabilized_at in
  let final_leader = verdict.Stability.final_leader in
  let correct = Net.Network.correct net in
  let max_susp_level =
    List.fold_left
      (fun acc p ->
        max acc (Omega.Iface.max_susp_level_seen iface p))
      0 correct
  in
  let max_timeout =
    List.fold_left
      (fun acc p ->
        Sim.Time.max acc (Omega.Iface.max_timeout_armed iface p))
      Sim.Time.zero correct
  in
  let min_sending_round =
    List.fold_left
      (fun acc p ->
        min acc (Omega.Iface.sending_round iface p))
      max_int correct
  in
  let checker_report =
    (* On a routed topology a message crosses [diameter] links, each with
       its own oracle draw: the arrival horizon and the checker's
       timeliness bound both scale by the diameter. *)
    let hops = max 1 (Net.Network.diameter net) in
    Option.map
      (fun c ->
        Scenarios.Checker.verify c ~stretch:hops
          ~masked:(masked_rounds ~hops ~plan ~config ~scenario ())
          ~upto_round:
            (min (checkable_round ~hops scenario horizon) min_sending_round)
          ~crashed:(Net.Network.is_crashed net))
      checker
  in
  let leadership_epochs, re_elections = leadership_stats samples in
  {
    stabilized_at;
    final_leader;
    samples;
    messages_sent = Net.Network.sent_count net;
    messages_delivered = Net.Network.delivered_count net;
    alive_bytes = !alive_bytes;
    suspicion_bytes = !suspicion_bytes;
    max_susp_level;
    max_timeout;
    lattice_violations = sampler.st_lattice_violations;
    max_round_state = sampler.st_max_round_state;
    min_sending_round;
    checker = checker_report;
    horizon;
    digest = Option.map Obs.Digest.value digest_st;
    metrics = metrics_agg;
    re_elections;
    leadership_epochs;
    partition_downtime = Fault.Plan.partition_downtime ~horizon plan;
    adversary_moves =
      (match injector with Some i -> Fault.Injector.moves i | None -> 0);
    recoveries =
      (match injector with Some i -> Fault.Injector.recoveries i | None -> 0);
  }

let run ?spec ~env ~seed () = finish (start ?spec ~env ~seed ())

let stabilization_ms result =
  match result.stabilized_at with
  | Some t -> Sim.Time.to_ms_float t
  | None -> Float.nan

let pp_summary ppf r =
  Format.fprintf ppf "leader=%s stabilized=%s msgs=%d max_susp=%d max_to=%a"
    (match r.final_leader with Some l -> string_of_int l | None -> "-")
    (match r.stabilized_at with
    | Some t -> Format.asprintf "%a" Sim.Time.pp t
    | None -> "never")
    r.messages_sent r.max_susp_level Sim.Time.pp r.max_timeout
