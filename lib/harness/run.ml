type pid = int

type sample = {
  time : Sim.Time.t;
  round : int;  (* slowest correct process's receiving round *)
  leaders : (pid * pid) list;
  agreed : pid option;
}

type result = {
  stabilized_at : Sim.Time.t option;
  final_leader : pid option;
  samples : sample list;
  messages_sent : int;
  messages_delivered : int;
  alive_bytes : int;
  suspicion_bytes : int;
  max_susp_level : int;
  max_timeout : Sim.Time.t;
  lattice_violations : int;
  max_round_state : int;
  min_sending_round : int;
  checker : Scenarios.Checker.report option;
  horizon : Sim.Time.t;
  digest : int64 option;
  metrics : Obs.Metrics.t option;
  re_elections : int;
  leadership_epochs : int;
  partition_downtime : Sim.Time.t;
  adversary_moves : int;
  recoveries : int;
}

module Spec = struct
  type t = {
    horizon : Sim.Time.t;
    sample_every : Sim.Time.t;
    min_stable : Sim.Time.t option;
    crashes : (pid * Sim.Time.t) list;
    plan : Fault.Plan.t;
    check : bool;
    wire_stats : bool;
    metrics : bool;
    digest : bool;
    sink : Obs.Sink.t option;
    sched : [ `Heap | `Wheel ];
    flight_pool : bool;
    algo : [ `Gossip | `Relay ];
    topology : Net.Topology.kind;
    link_channel : Net.Topology.channel;
    intra_domains : int;
  }

  let default =
    {
      horizon = Sim.Time.of_sec 30;
      sample_every = Sim.Time.of_ms 100;
      min_stable = None;
      crashes = [];
      plan = Fault.Plan.empty;
      check = true;
      wire_stats = false;
      metrics = false;
      digest = false;
      sink = None;
      sched = `Wheel;
      flight_pool = true;
      algo = `Gossip;
      topology = Net.Topology.Complete;
      link_channel = Net.Topology.Reliable;
      intra_domains = 1;
    }

  let with_horizon horizon t = { t with horizon }
  let with_sample_every sample_every t = { t with sample_every }
  let with_min_stable w t = { t with min_stable = Some w }
  let with_crashes crashes t = { t with crashes }
  let with_plan plan t = { t with plan }
  let with_check check t = { t with check }
  let with_wire_stats wire_stats t = { t with wire_stats }
  let with_metrics metrics t = { t with metrics }
  let with_digest digest t = { t with digest }
  let with_sink sink t = { t with sink = Some sink }
  let with_sched sched t = { t with sched }
  let with_flight_pool flight_pool t = { t with flight_pool }
  let with_algo algo t = { t with algo }
  let with_topology topology t = { t with topology }
  let with_link_channel link_channel t = { t with link_channel }

  let with_intra_domains intra_domains t =
    if intra_domains < 1 then
      invalid_arg "Run.Spec.with_intra_domains: must be >= 1";
    { t with intra_domains }
end

(* The largest round whose every non-victim message is guaranteed delivered
   by [horizon] (Scenario.arrival_bound is monotone in the round number).
   [hops] is the routed network's diameter — every hop redraws its delay,
   so the per-link bound multiplies end to end. *)
let checkable_round ?(hops = 1) scenario horizon =
  let fits rn =
    Sim.Time.(Scenarios.Scenario.arrival_bound ~hops scenario rn <= horizon)
  in
  if not (fits 1) then 0
  else begin
    (* Exponential probe, then binary search for the last fitting round. *)
    let rec grow hi = if fits hi then grow (2 * hi) else hi in
    let rec bisect lo hi =
      (* invariant: fits lo, not (fits hi) *)
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if fits mid then bisect mid hi else bisect lo mid
      end
    in
    let hi = grow 2 in
    max 0 (bisect 1 hi - 2)
  end

(* Round [rn] is excused from assumption checking iff a message of round
   [rn] could have been sent or in flight during one of the plan's outage
   windows: sends start no earlier than [(rn-1) * (1-jitter) * beta]
   (period >= (1-jitter)*beta, first offset > 0) and non-victim arrivals
   end by [arrival_bound rn]. Conservative in both directions — masking a
   round the outage never touched only shrinks checked coverage, never
   forges a violation. *)
let masked_rounds ?(hops = 1) ~plan ~config ~scenario () =
  match Fault.Plan.outage_windows plan with
  | [] -> fun _ -> false
  | windows ->
      let beta = Sim.Time.to_us config.Omega.Config.beta in
      let jitter = config.Omega.Config.send_jitter in
      fun rn ->
        let lo =
          int_of_float (float_of_int ((rn - 1) * beta) *. (1. -. jitter))
        in
        let hi =
          Sim.Time.to_us (Scenarios.Scenario.arrival_bound ~hops scenario rn)
        in
        List.exists
          (fun (a, b) -> lo <= Sim.Time.to_us b && Sim.Time.to_us a <= hi)
          windows

(* Leadership history statistics over the sampled [agreed] sequence:
   [epochs] counts maximal stretches of one constant agreed leader
   (delimited by anarchy or a change), [re_elections] counts changes of
   agreed leader (anarchy gaps between two reigns of the same leader do
   not count — nobody else was elected in between). *)
let leadership_stats samples =
  let rec walk epochs changes last_epoch last_leader = function
    | [] -> (epochs, changes)
    | { agreed = None; _ } :: rest ->
        walk epochs changes None last_leader rest
    | { agreed = Some l; _ } :: rest ->
        if last_epoch = Some l then walk epochs changes last_epoch last_leader rest
        else
          let changes =
            match last_leader with
            | Some l' when l' <> l -> changes + 1
            | _ -> changes
          in
          walk (epochs + 1) changes (Some l) (Some l) rest
  in
  walk 0 0 None None samples

(* ------------------------------------------------------------ live runs *)

(* The sampler is a static task over a state record, not a recursive
   closure: it is a pending event at every instant of the run, so it must
   be registered with {!Sim.Checkpoint} for snapshots — and a packed
   [(sample_task, state)] cell checkpoints as (id 12, marshalled state)
   where a closure would pin the bytes to a code address. *)
type sampler_state = {
  st_engine : Sim.Engine.t;
  st_iface : Omega.Iface.t;
  st_net : Omega.Message.t Net.Network.t;
  st_horizon : Sim.Time.t;
  st_sample_every : Sim.Time.t;
  st_fig3 : bool;
  mutable st_samples : sample list;  (* newest first *)
  mutable st_lattice_violations : int;
  mutable st_max_round_state : int;
}

let observe_nodes st =
  List.iter
    (fun p ->
      if not (Omega.Iface.lattice_invariant_holds st.st_iface p) then
        st.st_lattice_violations <- st.st_lattice_violations + 1;
      let cardinal = Omega.Iface.round_state_cardinal st.st_iface p in
      if cardinal > st.st_max_round_state then
        st.st_max_round_state <- cardinal)
    (Net.Network.correct st.st_net)

let min_receiving_round st =
  List.fold_left
    (fun acc p -> min acc (Omega.Iface.receiving_round st.st_iface p))
    max_int
    (Net.Network.correct st.st_net)

let rec sample_task st =
  st.st_samples <-
    {
      time = Sim.Engine.now st.st_engine;
      round = min_receiving_round st;
      leaders = Omega.Iface.leaders st.st_iface;
      agreed = Omega.Iface.agreed_leader st.st_iface;
    }
    :: st.st_samples;
  if st.st_fig3 then observe_nodes st else ignore (observe_nodes st);
  if Sim.Time.(Sim.Engine.now st.st_engine < st.st_horizon) then
    Sim.Engine.call_after st.st_engine st.st_sample_every sample_task st

let () = Sim.Checkpoint.register ~id:12 sample_task

type live = {
  l_spec : Spec.t;
  l_config : Omega.Config.t;
  l_engine : Sim.Engine.t;
  l_scenario : Scenarios.Scenario.t;
  l_net : Omega.Message.t Net.Network.t;
  l_iface : Omega.Iface.t;
  l_injector : Fault.Injector.t option;
  l_checker : Scenarios.Checker.t option;
  l_alive_bytes : int ref;
  l_suspicion_bytes : int ref;
  l_metrics : Obs.Metrics.t option;
  l_digest : Obs.Digest.t option;
  l_sampler : sampler_state;
}

let start ?(spec = Spec.default) ~env ~seed () =
  let {
    Spec.horizon;
    sample_every;
    min_stable = _;
    crashes;
    plan;
    check;
    wire_stats;
    metrics;
    digest;
    sink;
    sched;
    flight_pool;
    algo;
    topology;
    link_channel;
    intra_domains;
  } =
    spec
  in
  if intra_domains > 1 then
    invalid_arg
      "Run.start: intra-run parallel execution covers whole runs only \
       (Run.run); the incremental start/advance/snapshot API is sequential";
  let config = Scenarios.Env.config env in
  let engine = Sim.Engine.create ~queue:sched ~seed () in
  let scenario, net =
    Scenarios.Env.build ~flight_pool ~topology ~channel:link_channel env
      engine
  in
  let checker =
    if check && Option.is_some (Scenarios.Scenario.center scenario) then
      Some (Scenarios.Checker.create scenario)
    else None
  in
  (* E5's wire-cost accounting rides the event stream: a net-events-only
     sink counting ALIVE/SUSPICION bytes, attached only when asked for —
     any live net sink makes every send/deliver construct its event, so
     the default run keeps the engine's null sink (one dead branch per
     event site, nothing allocated; see DESIGN.md §10). *)
  let alive_bytes = ref 0 and suspicion_bytes = ref 0 in
  let bytes_sink =
    if not wire_stats then []
    else
      [
        Obs.Sink.make ~mask:Obs.Event.c_net (function
          | Obs.Event.Send { kind; bytes; _ } ->
              if String.equal kind "alive" then
                alive_bytes := !alive_bytes + bytes
              else if String.equal kind "susp" then
                suspicion_bytes := !suspicion_bytes + bytes
          | _ -> ());
      ]
  in
  let metrics_agg = if metrics then Some (Obs.Metrics.create ()) else None in
  let digest_st = if digest then Some (Obs.Digest.create ()) else None in
  (* The cluster exists before the sink is installed (creation emits
     nothing, it only splits RNG streams) because the fault injector needs
     it; the injector's action scheduling likewise pre-dates the sink, so
     plan-free digests see exactly the event stream they always did. The
     algorithm behind the interface is the spec's choice, exactly like the
     scheduler backend; Iface construction is observationally free. *)
  let iface =
    match algo with
    | `Gossip -> Omega.Cluster.iface (Omega.Cluster.create config net)
    | `Relay -> Omega.Lean.iface (Omega.Lean.create config net)
  in
  let injector =
    if Fault.Plan.is_empty plan then None
    else Some (Fault.Injector.attach plan ~iface ~scenario)
  in
  Sim.Engine.set_sink engine
    (Obs.Sink.tee
       (List.concat
          [
            bytes_sink;
            (match checker with
            | Some c -> [ Scenarios.Checker.sink c ]
            | None -> []);
            (match metrics_agg with
            | Some m -> [ Obs.Metrics.sink m ]
            | None -> []);
            (match digest_st with
            | Some d -> [ Obs.Digest.sink d ]
            | None -> []);
            (match injector with
            | Some inj when Fault.Injector.adaptive_in_plan plan ->
                [ Fault.Injector.sink inj ]
            | Some _ | None -> []);
            (match sink with Some s -> [ s ] | None -> []);
          ]));
  List.iter (fun (p, time) -> Omega.Iface.crash_at iface p time) crashes;
  let fig3 = Omega.Config.has_bounded_condition config.Omega.Config.variant in
  let sampler =
    {
      st_engine = engine;
      st_iface = iface;
      st_net = net;
      st_horizon = horizon;
      st_sample_every = sample_every;
      st_fig3 = fig3;
      st_samples = [];
      st_lattice_violations = 0;
      st_max_round_state = 0;
    }
  in
  Omega.Iface.start iface;
  (* The sampler chain is harness work: its own reserved rank keeps it
     sorting after process events at a shared instant and its creation
     counter off every pid's (the sharded driver depends on that split). *)
  Sim.Engine.set_harness_rank engine;
  Sim.Engine.call_after engine sample_every sample_task sampler;
  {
    l_spec = spec;
    l_config = config;
    l_engine = engine;
    l_scenario = scenario;
    l_net = net;
    l_iface = iface;
    l_injector = injector;
    l_checker = checker;
    l_alive_bytes = alive_bytes;
    l_suspicion_bytes = suspicion_bytes;
    l_metrics = metrics_agg;
    l_digest = digest_st;
    l_sampler = sampler;
  }

let now live = Sim.Engine.now live.l_engine
let horizon live = live.l_spec.Spec.horizon

(* Slicing is observationally invisible: [run_until] only advances the
   clock, and an [advance ~until] below the horizon leaves every pending
   event in place — the digest of sliced and straight runs is identical. *)
let advance live ~until =
  Sim.Engine.run_until live.l_engine
    (Sim.Time.min until live.l_spec.Spec.horizon)

let snapshot live =
  (match live.l_spec.Spec.sink with
  | Some _ ->
      invalid_arg
        "Run.snapshot: runs with an external sink (tracing) cannot be \
         snapshotted"
  | None -> ());
  Sim.Engine.snapshot live.l_engine live

let restore bytes =
  let (_ : Sim.Engine.t), (live : live) = Sim.Engine.restore bytes in
  live

(* Result assembly shared by the sequential [finish] and the intra-run
   parallel driver: everything after the clock has reached the horizon.
   [net] provides liveness/topology state (the control replica on a
   sharded run — its crash state is kept in lockstep); the message
   counters are passed in because a sharded run must sum them over the
   shard replicas (each send and each delivery executes on exactly one). *)
let assemble ~spec ~config ~scenario ~net ~iface ~injector ~checker
    ~alive_bytes ~suspicion_bytes ~metrics_agg ~digest_st ~sampler ~sent
    ~delivered =
  let { Spec.horizon; min_stable; plan; _ } = spec in
  let min_stable =
    match min_stable with
    | Some w -> w
    | None -> Sim.Time.of_us (Sim.Time.to_us horizon / 5)
  in
  let samples = List.rev sampler.st_samples in
  let verdict =
    Stability.judge ~horizon ~min_window:min_stable
      (List.map
         (fun s ->
           { Stability.time = s.time; round = s.round; agreed = s.agreed })
         samples)
  in
  let stabilized_at = verdict.Stability.stabilized_at in
  let final_leader = verdict.Stability.final_leader in
  let correct = Net.Network.correct net in
  let max_susp_level =
    List.fold_left
      (fun acc p ->
        max acc (Omega.Iface.max_susp_level_seen iface p))
      0 correct
  in
  let max_timeout =
    List.fold_left
      (fun acc p ->
        Sim.Time.max acc (Omega.Iface.max_timeout_armed iface p))
      Sim.Time.zero correct
  in
  let min_sending_round =
    List.fold_left
      (fun acc p ->
        min acc (Omega.Iface.sending_round iface p))
      max_int correct
  in
  let checker_report =
    (* On a routed topology a message crosses [diameter] links, each with
       its own oracle draw: the arrival horizon and the checker's
       timeliness bound both scale by the diameter. *)
    let hops = max 1 (Net.Network.diameter net) in
    Option.map
      (fun c ->
        Scenarios.Checker.verify c ~stretch:hops
          ~masked:(masked_rounds ~hops ~plan ~config ~scenario ())
          ~upto_round:
            (min (checkable_round ~hops scenario horizon) min_sending_round)
          ~crashed:(Net.Network.is_crashed net))
      checker
  in
  let leadership_epochs, re_elections = leadership_stats samples in
  {
    stabilized_at;
    final_leader;
    samples;
    messages_sent = sent;
    messages_delivered = delivered;
    alive_bytes = !alive_bytes;
    suspicion_bytes = !suspicion_bytes;
    max_susp_level;
    max_timeout;
    lattice_violations = sampler.st_lattice_violations;
    max_round_state = sampler.st_max_round_state;
    min_sending_round;
    checker = checker_report;
    horizon;
    digest = Option.map Obs.Digest.value digest_st;
    metrics = metrics_agg;
    re_elections;
    leadership_epochs;
    partition_downtime = Fault.Plan.partition_downtime ~horizon plan;
    adversary_moves =
      (match injector with Some i -> Fault.Injector.moves i | None -> 0);
    recoveries =
      (match injector with Some i -> Fault.Injector.recoveries i | None -> 0);
  }

let finish live =
  let {
    l_spec = spec;
    l_config = config;
    l_engine = engine;
    l_scenario = scenario;
    l_net = net;
    l_iface = iface;
    l_injector = injector;
    l_checker = checker;
    l_alive_bytes = alive_bytes;
    l_suspicion_bytes = suspicion_bytes;
    l_metrics = metrics_agg;
    l_digest = digest_st;
    l_sampler = sampler;
  } =
    live
  in
  Sim.Engine.run_until engine spec.Spec.horizon;
  assemble ~spec ~config ~scenario ~net ~iface ~injector ~checker
    ~alive_bytes ~suspicion_bytes ~metrics_agg ~digest_st ~sampler
    ~sent:(Net.Network.sent_count net)
    ~delivered:(Net.Network.delivered_count net)

(* ------------------------- intra-run parallel execution (DESIGN.md §18) *)

(* A per-shard emission buffer: every event a shard's replica emits during
   a window, tagged with the canonical identity of the event that emitted
   it. Within one buffer tags are nondecreasing (execution order), so the
   barrier replay is a smallest-head merge of sorted streams. Three
   parallel arrays — a tuple per emission would box. *)
type ebuf = {
  mutable eb_key : int array;
  mutable eb_cidx : int array;
  mutable eb_ev : Obs.Event.t array;
  mutable eb_len : int;
}

let eb_dummy_ev = Obs.Event.Fire { now = 0 }

let eb_create () =
  {
    eb_key = Array.make 256 0;
    eb_cidx = Array.make 256 0;
    eb_ev = Array.make 256 eb_dummy_ev;
    eb_len = 0;
  }

let eb_push b ~key ~cidx ev =
  let n = b.eb_len in
  if n = Array.length b.eb_key then begin
    let cap = 2 * n in
    let k = Array.make cap 0
    and c = Array.make cap 0
    and e = Array.make cap eb_dummy_ev in
    Array.blit b.eb_key 0 k 0 n;
    Array.blit b.eb_cidx 0 c 0 n;
    Array.blit b.eb_ev 0 e 0 n;
    b.eb_key <- k;
    b.eb_cidx <- c;
    b.eb_ev <- e
  end;
  b.eb_key.(n) <- key;
  b.eb_cidx.(n) <- cidx;
  b.eb_ev.(n) <- ev;
  b.eb_len <- n + 1

let eb_clear b =
  Array.fill b.eb_ev 0 b.eb_len eb_dummy_ev;
  b.eb_len <- 0

(* Replay one window's emissions into [sink] in canonical order. A tag
   names the executing event, which ran on exactly one shard, so tags
   never tie across buffers and the merge is a total order: the replayed
   stream is the sequential stream, whatever the domains interleaved. *)
let eb_merge_replay bufs sink =
  let k = Array.length bufs in
  let pos = Array.make k 0 in
  let rec loop () =
    let best = ref (-1) and bk = ref max_int and bc = ref max_int in
    for i = 0 to k - 1 do
      let b = bufs.(i) in
      let p = pos.(i) in
      if p < b.eb_len then begin
        let key = b.eb_key.(p) and cidx = b.eb_cidx.(p) in
        if key < !bk || (key = !bk && cidx < !bc) then begin
          best := i;
          bk := key;
          bc := cidx
        end
      end
    done;
    if !best >= 0 then begin
      let b = bufs.(!best) in
      Obs.Sink.emit sink b.eb_ev.(pos.(!best));
      pos.(!best) <- pos.(!best) + 1;
      loop ()
    end
  in
  loop ();
  Array.iter eb_clear bufs

(* Whether a spec needs mid-window observability the barrier replay cannot
   provide: an external sink (tracing wants events as they happen) or an
   adaptive-adversary plan (its sink feeds back into oracle state between
   events). Such runs silently take the sequential path — same stream,
   same result. *)
let intra_fallback ~env spec =
  Option.is_some spec.Spec.sink
  || Fault.Injector.adaptive_in_plan spec.Spec.plan
  || Scenarios.Env.is_lossy env

(* One conservative-window parallel run (DESIGN.md §18). [k] shards own
   contiguous pid blocks; each owns a full replica of the simulation
   stack (engine, scenario, network, cluster) built from the same seed,
   so every derived RNG stream coincides and a replica reproduces exactly
   the draws the sequential engine would have made for the processes it
   owns. A control replica carries the harness-side rank-0 state: fault
   injector, scheduled crashes, the sampler. Windows [t, t+λ) run in
   parallel — λ is the certified minimum cross-shard latency, so nothing
   created in a window can land inside it — and barriers commit
   cross-shard messages, replay buffered emissions in canonical order,
   and run rank-0 work. *)
let run_intra ~spec ~env ~seed () =
  let {
    Spec.horizon;
    sample_every;
    crashes;
    plan;
    check;
    wire_stats;
    metrics;
    digest;
    sched;
    flight_pool;
    algo;
    topology;
    link_channel;
    intra_domains;
    _;
  } =
    spec
  in
  let config = Scenarios.Env.config env in
  let n = config.Omega.Config.n in
  let k = min intra_domains n in
  let shard_of = Array.init n (fun p -> p * k / n) in
  let mk () =
    let engine = Sim.Engine.create ~queue:sched ~seed () in
    let scenario, net =
      Scenarios.Env.build ~flight_pool ~topology ~channel:link_channel env
        engine
    in
    (engine, scenario, net)
  in
  let control_engine, scenario, control_net = mk () in
  let shards = Array.init k (fun _ -> mk ()) in
  let shard_engines = Array.map (fun (e, _, _) -> e) shards in
  let shard_nets = Array.map (fun (_, _, nt) -> nt) shards in
  let mk_iface nt =
    match algo with
    | `Gossip ->
        let c = Omega.Cluster.create config nt in
        (Omega.Cluster.iface c, fun owned -> Omega.Cluster.start ~owned c)
    | `Relay ->
        let c = Omega.Lean.create config nt in
        (Omega.Lean.iface c, fun owned -> Omega.Lean.start ~owned c)
  in
  (* The control replica builds its cluster too: construction splits the
     per-node RNG streams off the engine, so skipping it would desync the
     control stream from the shards'. Its nodes never start. *)
  let (_ : Omega.Iface.t), (_ : (pid -> bool) -> unit) =
    mk_iface control_net
  in
  let pairs = Array.map mk_iface shard_nets in
  Array.iteri
    (fun i nt -> Net.Network.set_sharding nt ~my_shard:i ~shard_of ~shards:k)
    shard_nets;
  Net.Network.set_sharding control_net ~my_shard:(-1) ~shard_of ~shards:k;
  let all_nets = Array.append [| control_net |] shard_nets in
  Net.Network.link_siblings all_nets;
  let owner p = fst pairs.(shard_of.(p)) in
  (* The composite interface: per-pid queries route to the owning shard's
     replica; [net] is the control replica, so [Iface.engine] — where the
     injector and crash closures schedule — is the control (rank-0)
     engine, and fault mutators fan out over the sibling link. *)
  let iface =
    {
      Omega.Iface.config;
      net = control_net;
      start =
        (fun () ->
          Array.iteri
            (fun i (_, st) -> st (fun p -> shard_of.(p) = i))
            pairs);
      leader_of = (fun p -> (owner p).Omega.Iface.leader_of p);
      recover = (fun p -> (owner p).Omega.Iface.recover p);
      resync = (fun p -> (owner p).Omega.Iface.resync p);
      sending_round = (fun p -> (owner p).Omega.Iface.sending_round p);
      receiving_round = (fun p -> (owner p).Omega.Iface.receiving_round p);
      susp_level_get = (fun p q -> (owner p).Omega.Iface.susp_level_get p q);
      max_susp_level_seen =
        (fun p -> (owner p).Omega.Iface.max_susp_level_seen p);
      max_timeout_armed =
        (fun p -> (owner p).Omega.Iface.max_timeout_armed p);
      lattice_invariant_holds =
        (fun p -> (owner p).Omega.Iface.lattice_invariant_holds p);
      round_state_cardinal =
        (fun p -> (owner p).Omega.Iface.round_state_cardinal p);
    }
  in
  let checker =
    if check && Option.is_some (Scenarios.Scenario.center scenario) then
      Some (Scenarios.Checker.create scenario)
    else None
  in
  let alive_bytes = ref 0 and suspicion_bytes = ref 0 in
  let bytes_sink =
    if not wire_stats then []
    else
      [
        Obs.Sink.make ~mask:Obs.Event.c_net (function
          | Obs.Event.Send { kind; bytes; _ } ->
              if String.equal kind "alive" then
                alive_bytes := !alive_bytes + bytes
              else if String.equal kind "susp" then
                suspicion_bytes := !suspicion_bytes + bytes
          | _ -> ());
      ]
  in
  let metrics_agg = if metrics then Some (Obs.Metrics.create ()) else None in
  let digest_st = if digest then Some (Obs.Digest.create ()) else None in
  let injector =
    if Fault.Plan.is_empty plan then None
    else Some (Fault.Injector.attach plan ~iface ~scenario)
  in
  let real =
    Obs.Sink.tee
      (List.concat
         [
           bytes_sink;
           (match checker with
           | Some c -> [ Scenarios.Checker.sink c ]
           | None -> []);
           (match metrics_agg with
           | Some m -> [ Obs.Metrics.sink m ]
           | None -> []);
           (match digest_st with
           | Some d -> [ Obs.Digest.sink d ]
           | None -> []);
         ])
  in
  (* Setup emissions (crash-schedule Scheds, node starts) go straight to
     the real tee from every replica: the driver performs setup in the
     sequential order, so no tagging is needed yet. *)
  Sim.Engine.set_sink control_engine real;
  Array.iter (fun e -> Sim.Engine.set_sink e real) shard_engines;
  List.iter (fun (p, time) -> Omega.Iface.crash_at iface p time) crashes;
  let fig3 = Omega.Config.has_bounded_condition config.Omega.Config.variant in
  let sampler =
    {
      st_engine = control_engine;
      st_iface = iface;
      st_net = control_net;
      st_horizon = horizon;
      st_sample_every = sample_every;
      st_fig3 = fig3;
      st_samples = [];
      st_lattice_violations = 0;
      st_max_round_state = 0;
    }
  in
  Omega.Iface.start iface;
  (* As in the sequential [start]: the sampler chain lives on the reserved
     harness rank, whose creation counter only the control replica draws
     from — so its (key, cidx) stamps coincide with the sequential
     engine's exactly. *)
  Sim.Engine.set_harness_rank control_engine;
  Sim.Engine.call_after control_engine sample_every sample_task sampler;
  let mask = Obs.Sink.mask real in
  let bufs = Array.init k (fun _ -> eb_create ()) in
  let rec_sinks =
    Array.init k (fun i ->
        if mask = 0 then Obs.Sink.null
        else begin
          let e = shard_engines.(i) and b = bufs.(i) in
          Obs.Sink.make ~mask (fun ev ->
              eb_push b
                ~key:(Sim.Engine.executing_key e)
                ~cidx:(Sim.Engine.executing_cidx e)
                ev)
        end)
  in
  let record_mode on =
    Array.iteri
      (fun i e -> Sim.Engine.set_sink e (if on then rec_sinks.(i) else real))
      shard_engines
  in
  (* λ: the smallest delay any event created in a window can put between
     itself and a cross-shard arrival — the scenario's delay floor, capped
     by the tightest eventually-timely channel clamp. *)
  let lookahead_us =
    min
      (Scenarios.Scenario.lookahead_us scenario)
      (Net.Network.channel_floor_us control_net)
  in
  if lookahead_us < 1 then
    invalid_arg "Run: intra-run parallelism needs a positive delay floor";
  let horizon_us = Sim.Time.to_us horizon in
  let nets_list = Array.to_list all_nets in
  let commit_all () =
    for s = 0 to k - 1 do
      Net.Network.commit_inbox shard_nets.(s)
        (List.map (fun nt -> Net.Network.drain_outbox nt s) nets_list)
    done
  in
  let wlim = ref 0 in
  let tasks =
    Array.init k (fun i () ->
        Sim.Engine.run_window_key shard_engines.(i) ~limit_key:!wlim)
  in
  let rb = Sim.Engine.rank_bits in
  let shard_min_key () =
    Array.fold_left
      (fun acc e ->
        let v = Sim.Engine.next_pending_key e in
        if v >= 0 && (acc < 0 || v < acc) then v else acc)
      (-1) shard_engines
  in
  let pool = Parallel.Pool.create ~jobs:k () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      record_mode true;
      (* Control (rank-0/harness) work — fault appliers, crashes, the
         sampler — runs between windows, one pending key at a time, for
         as long as it sorts before every shard event. Key order is the
         sequential order: a control event keyed at rank 0 precedes the
         shard events at its instant, the harness-ranked sampler follows
         them — [rk = sk] cannot happen because the control replica's
         chains draw only ranks the shards never do. Shards are
         fast-forwarded so barrier-time relative delays are computed from
         the barrier instant, and their sinks swap to the real tee so
         recovery/resync emissions land live, in place. *)
      let rec root () =
        let rk = Sim.Engine.next_pending_key control_engine in
        if rk >= 0 && rk asr rb <= horizon_us then begin
          let sk = shard_min_key () in
          if sk < 0 || rk < sk then begin
            let at = Sim.Time.of_us (rk asr rb) in
            Array.iter (fun e -> Sim.Engine.fast_forward e at) shard_engines;
            record_mode false;
            Sim.Engine.run_window_key control_engine ~limit_key:(rk + 1);
            record_mode true;
            commit_all ();
            root ()
          end
        end
      in
      let rec loop () =
        let sk = shard_min_key () in
        let rk = Sim.Engine.next_pending_key control_engine in
        let next_us =
          let a = if sk >= 0 then sk asr rb else max_int in
          let b = if rk >= 0 then rk asr rb else max_int in
          min a b
        in
        if next_us <= horizon_us then begin
          (if sk >= 0 && sk asr rb <= horizon_us then begin
             (* One parallel window: up to the lookahead bound, cut short
                at the control replica's next key — nothing sent in the
                window can arrive below the bound, so every shard event
                in [sk, lim) is causally closed under the commits already
                applied. *)
             let look =
               min ((sk asr rb) + lookahead_us) (horizon_us + 1) lsl rb
             in
             let lim = if rk >= 0 && rk < look then rk else look in
             if sk < lim then begin
               wlim := lim;
               ignore (Parallel.Pool.run pool tasks);
               eb_merge_replay bufs real;
               commit_all ()
             end
           end);
          root ();
          loop ()
        end
      in
      loop ();
      record_mode false);
  (* Everything left pends beyond the horizon, exactly as sequential
     [finish] leaves it; advance the clocks and assemble. *)
  Array.iter (fun e -> Sim.Engine.run_until e horizon) shard_engines;
  Sim.Engine.run_until control_engine horizon;
  eb_merge_replay bufs real;
  assemble ~spec ~config ~scenario ~net:control_net ~iface ~injector ~checker
    ~alive_bytes ~suspicion_bytes ~metrics_agg ~digest_st ~sampler
    ~sent:
      (Array.fold_left
         (fun a nt -> a + Net.Network.sent_count nt)
         0 shard_nets)
    ~delivered:
      (Array.fold_left
         (fun a nt -> a + Net.Network.delivered_count nt)
         0 shard_nets)

let run ?spec ~env ~seed () =
  let spec = match spec with Some s -> s | None -> Spec.default in
  let n = (Scenarios.Env.config env).Omega.Config.n in
  if min spec.Spec.intra_domains n > 1 && not (intra_fallback ~env spec) then
    run_intra ~spec ~env ~seed ()
  else finish (start ~spec:{ spec with Spec.intra_domains = 1 } ~env ~seed ())

let stabilization_ms result =
  match result.stabilized_at with
  | Some t -> Sim.Time.to_ms_float t
  | None -> Float.nan

let pp_summary ppf r =
  Format.fprintf ppf "leader=%s stabilized=%s msgs=%d max_susp=%d max_to=%a"
    (match r.final_leader with Some l -> string_of_int l | None -> "-")
    (match r.stabilized_at with
    | Some t -> Format.asprintf "%a" Sim.Time.pp t
    | None -> "never")
    r.messages_sent r.max_susp_level Sim.Time.pp r.max_timeout
