(** Single-run experiment driver: engine + network + scenario + cluster,
    with leader sampling, stabilization detection and assumption checking. *)

type pid = int

(** One leader-oracle sample. *)
type sample = {
  time : Sim.Time.t;
  round : int;  (** slowest correct process's receiving round *)
  leaders : (pid * pid) list;  (** non-crashed process -> its leader () *)
  agreed : pid option;  (** all agree on one correct leader? *)
}

type result = {
  stabilized_at : Sim.Time.t option;
      (** start of the maximal suffix of samples with one constant, correct,
          agreed leader reaching the horizon, provided the suffix spans at
          least [min_stable]; [None] if the run ends in anarchy or the
          suffix is too short to rule out a coincidental lull *)
  final_leader : pid option;  (** agreed leader at the horizon, if any *)
  samples : sample list;
  messages_sent : int;
  messages_delivered : int;
  alive_bytes : int;
      (** total wire bytes of ALIVE messages ([0] unless [~wire_stats]) *)
  suspicion_bytes : int;  (** ditto, SUSPICION messages *)
  max_susp_level : int;  (** max over correct nodes, end of run *)
  max_timeout : Sim.Time.t;  (** largest timeout any correct node armed *)
  lattice_violations : int;
      (** samples at which some correct node broke Lemma 8's
          [max - min <= 1] (only meaningful for Fig3 variants) *)
  max_round_state : int;
      (** peak live round-indexed entries on any node (memory boundedness) *)
  min_sending_round : int;  (** slowest correct process's final s_rn *)
  checker : Scenarios.Checker.report option;
      (** assumption-compliance report, when [~check:true] *)
  horizon : Sim.Time.t;
  digest : int64 option;
      (** FNV fold over the run's full event stream, when [~digest:true].
          Same seed ⇒ same digest, whatever the pool size — the
          determinism oracle (see {!Obs.Digest}). *)
  metrics : Obs.Metrics.t option;
      (** per-run counters/histograms, when [~metrics:true] *)
}

(** [run ~config ~scenario ~seed ()] executes one simulation.

    [crashes] schedules process failures. [horizon] defaults to 30 sim-s;
    [sample_every] to 100 sim-ms. With [check:true] (default), a
    {!Checker} is attached and verified over the prefix of rounds whose
    messages are guaranteed delivered by the horizon.

    Observability: [wire_stats:true] counts ALIVE/SUSPICION wire bytes
    (the [alive_bytes]/[suspicion_bytes] fields — E5's columns),
    [metrics:true] attaches an {!Obs.Metrics} aggregator, [digest:true] an
    {!Obs.Digest} over the full event stream (engine events included), and
    [sink] any extra consumer (e.g. an {!Obs.Jsonl} writer for [--trace]);
    all compose under one {!Obs.Sink.tee} on the run's engine. None of
    them perturbs the simulation — results are bit-identical with or
    without — and with all off (and [check:false]) the engine keeps its
    null sink: the whole layer costs one branch per event site. *)
val run :
  ?horizon:Sim.Time.t ->
  ?sample_every:Sim.Time.t ->
  ?min_stable:Sim.Time.t ->
  ?crashes:(pid * Sim.Time.t) list ->
  ?check:bool ->
  ?wire_stats:bool ->
  ?metrics:bool ->
  ?digest:bool ->
  ?sink:Obs.Sink.t ->
  config:Omega.Config.t ->
  scenario:Scenarios.Scenario.t ->
  seed:int64 ->
  unit ->
  result

(** Stabilization latency [stabilized_at] as float ms, or [nan]. *)
val stabilization_ms : result -> float

val pp_summary : Format.formatter -> result -> unit
