(** Single-run experiment driver: engine + network + scenario + cluster,
    with leader sampling, stabilization detection, fault injection and
    assumption checking.

    The world under test is a {!Scenarios.Env.t} (validated once, shared
    across runs); everything about {e this} run — horizon, crashes, fault
    plan, which observers to attach — is a {!Spec.t}. *)

type pid = int

(** One leader-oracle sample. *)
type sample = {
  time : Sim.Time.t;
  round : int;  (** slowest correct process's receiving round *)
  leaders : (pid * pid) list;  (** non-crashed process -> its leader () *)
  agreed : pid option;  (** all agree on one correct leader? *)
}

type result = {
  stabilized_at : Sim.Time.t option;
      (** start of the maximal suffix of samples with one constant, correct,
          agreed leader reaching the horizon, provided the suffix spans at
          least [min_stable]; [None] if the run ends in anarchy or the
          suffix is too short to rule out a coincidental lull *)
  final_leader : pid option;  (** agreed leader at the horizon, if any *)
  samples : sample list;
  messages_sent : int;
  messages_delivered : int;
  alive_bytes : int;
      (** total wire bytes of ALIVE messages ([0] unless [wire_stats]) *)
  suspicion_bytes : int;  (** ditto, SUSPICION messages *)
  max_susp_level : int;  (** max over correct nodes, end of run *)
  max_timeout : Sim.Time.t;  (** largest timeout any correct node armed *)
  lattice_violations : int;
      (** samples at which some correct node broke Lemma 8's
          [max - min <= 1] (only meaningful for Fig3 variants) *)
  max_round_state : int;
      (** peak live round-indexed entries on any node (memory boundedness) *)
  min_sending_round : int;  (** slowest correct process's final s_rn *)
  checker : Scenarios.Checker.report option;
      (** assumption-compliance report, when [check] (rounds overlapping a
          plan outage window are masked, see {!Scenarios.Checker.verify}) *)
  horizon : Sim.Time.t;
  digest : int64 option;
      (** FNV fold over the run's full event stream, when [digest]. Same
          seed (and same plan) ⇒ same digest, whatever the pool size — the
          determinism oracle (see {!Obs.Digest}). *)
  metrics : Obs.Metrics.t option;
      (** per-run counters/histograms, when [metrics] *)
  re_elections : int;
      (** changes of agreed leader over the sampled history (anarchy gaps
          between two reigns of the {e same} leader do not count) *)
  leadership_epochs : int;
      (** maximal sampled stretches of one constant agreed leader *)
  partition_downtime : Sim.Time.t;
      (** total time (within the horizon) some plan partition was in force *)
  adversary_moves : int;  (** adaptive-adversary re-targetings *)
  recoveries : int;  (** plan recoveries applied *)
}

(** Per-run knobs, separated from the environment. Build one with
    functional updates over {!Spec.default}:
    {[
      Run.Spec.(default |> with_horizon (Sim.Time.of_sec 10)
                        |> with_plan plan |> with_digest true)
    ]}
    The setters take the record {e last} so they chain with [|>]. *)
module Spec : sig
  type t = {
    horizon : Sim.Time.t;  (** default 30 sim-s *)
    sample_every : Sim.Time.t;  (** default 100 sim-ms *)
    min_stable : Sim.Time.t option;  (** default [horizon / 5] *)
    crashes : (pid * Sim.Time.t) list;  (** permanent process failures *)
    plan : Fault.Plan.t;  (** default {!Fault.Plan.empty} — zero cost *)
    check : bool;  (** attach an assumption {!Scenarios.Checker} (default) *)
    wire_stats : bool;  (** count ALIVE/SUSPICION wire bytes (E5) *)
    metrics : bool;  (** attach an {!Obs.Metrics} aggregator *)
    digest : bool;  (** attach an {!Obs.Digest} over the event stream *)
    sink : Obs.Sink.t option;
        (** extra consumer (e.g. an {!Obs.Jsonl} writer for [--trace]) *)
    sched : [ `Heap | `Wheel ];
        (** engine scheduler backend (default [`Wheel]); both produce the
            identical event stream — [`Heap] is the reference for A/B
            benchmarking (see {!Sim.Engine.create}) *)
    flight_pool : bool;
        (** recycle network flight records (default [true]); [false] is
            the A/B allocation baseline (see {!Net.Spec.with_pool}) *)
    algo : [ `Gossip | `Relay ];
        (** Ω algorithm behind the {!Omega.Iface} surface (default
            [`Gossip], the Figure-1/2/3 family selected by
            {!Omega.Config.variant}); [`Relay] is the
            communication-efficient {!Omega.Lean} variant — O(n) messages
            per round instead of Θ(n²) (DESIGN.md §15) *)
    topology : Net.Topology.kind;
        (** network graph (default [Complete]); any other kind routes every
            message hop by hop over precomputed shortest paths and scales
            the checker's timeliness bound by the diameter (DESIGN.md §17) *)
    link_channel : Net.Topology.channel;
        (** channel class applied uniformly to every edge (default
            [Reliable]); a non-default class also switches the network to
            the routed path, even on [Complete] *)
    intra_domains : int;
        (** shard one run's event execution over this many domains under
            conservative windows (default 1 = the sequential engine, the
            only path with zero overhead; DESIGN.md §18). The event
            stream, digest and result are byte-identical for every value.
            Runs that need mid-window observability — an external [sink],
            an adaptive-adversary plan — silently fall back to sequential
            execution; {!start} (and so snapshots) rejects values > 1. *)
  }

  val default : t
  val with_horizon : Sim.Time.t -> t -> t
  val with_sample_every : Sim.Time.t -> t -> t
  val with_min_stable : Sim.Time.t -> t -> t
  val with_crashes : (pid * Sim.Time.t) list -> t -> t
  val with_plan : Fault.Plan.t -> t -> t
  val with_check : bool -> t -> t
  val with_wire_stats : bool -> t -> t
  val with_metrics : bool -> t -> t
  val with_digest : bool -> t -> t
  val with_sink : Obs.Sink.t -> t -> t
  val with_sched : [ `Heap | `Wheel ] -> t -> t
  val with_flight_pool : bool -> t -> t
  val with_algo : [ `Gossip | `Relay ] -> t -> t
  val with_topology : Net.Topology.kind -> t -> t
  val with_link_channel : Net.Topology.channel -> t -> t

  (** Raises [Invalid_argument] below 1. Values above the process count
      are clamped to one process per shard. *)
  val with_intra_domains : int -> t -> t
end

(** [run ~env ~seed ()] executes one simulation of [env] under [spec]
    (default {!Spec.default}).

    The run owns its whole stack: a fresh engine seeded with [seed], the
    scenario and network built by {!Scenarios.Env.build}, the cluster, and
    — when [spec.plan] is non-empty — a {!Fault.Injector} compiled onto
    the engine. All observers ([wire_stats], [check], [metrics], [digest],
    [sink], the adaptive adversary's sink) compose under one
    {!Obs.Sink.tee}; none perturbs the simulation, and with all off the
    engine keeps its null sink (the whole layer costs one branch per event
    site). An empty plan adds nothing to the event stream: digests of
    plan-free runs are byte-identical to the pre-fault-API ones. *)
val run : ?spec:Spec.t -> env:Scenarios.Env.t -> seed:int64 -> unit -> result

(** {2 Sliced execution and snapshots (DESIGN.md §16)}

    [run] is [finish (start ())]. The sliced form exists for checkpointed
    sweeps: build the stack, advance in simulated-time slices, snapshot
    between slices, and resume a snapshot in a later process. Slicing is
    observationally invisible — however a run is cut into [advance] calls,
    the event stream, digest and result are bit-identical to the
    uninterrupted [run]. *)

(** A started, resumable run: the whole simulation stack plus the
    accumulating observers. *)
type live

(** Build the stack and schedule the first events, without executing any:
    the returned run sits at time zero. *)
val start : ?spec:Spec.t -> env:Scenarios.Env.t -> seed:int64 -> unit -> live

val now : live -> Sim.Time.t
val horizon : live -> Sim.Time.t

(** Execute every event up to [min until horizon]. *)
val advance : live -> until:Sim.Time.t -> unit

(** Marshal the whole run (engine, pending events, nodes, observers) to
    bytes via {!Sim.Engine.snapshot}. Raises [Invalid_argument] if the
    spec carries an external [sink] (a trace writer holds an out-channel)
    or a broadcast batch is mid-commit (impossible between events). The
    live run is unperturbed. *)
val snapshot : live -> Bytes.t

(** Rebuild a run from {!snapshot} bytes: a disjoint stack that continues
    bit-identically. Same-binary only ([Marshal.Closures]). *)
val restore : Bytes.t -> live

(** Run the remaining events to the horizon and compute the {!result}.
    Idempotent over [advance]: finishing an already-exhausted run only
    folds the observers. *)
val finish : live -> result

(** Stabilization latency [stabilized_at] as float ms, or [nan]. *)
val stabilization_ms : result -> float

val pp_summary : Format.formatter -> result -> unit
