(* Tables normally go to stdout; a sharded producer (bin/experiments.exe
   --shard, DESIGN.md §16) renders into the void instead — its stdout
   contract is "nothing", the rows travel in the shard file and the merge
   step re-renders them byte-identically. *)
let out = ref Stdlib.stdout

let set_out oc = out := oc

let widths header rows =
  let all = header :: rows in
  let columns = List.length header in
  let w = Array.make columns 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < columns && String.length cell > w.(i) then
            w.(i) <- String.length cell)
        row)
    all;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let print_row w row =
  let cells = List.mapi (fun i cell -> pad w.(i) cell) row in
  output_string !out "| ";
  output_string !out (String.concat " | " cells);
  output_string !out " |\n"

let rule w =
  let dashes = Array.to_list (Array.map (fun n -> String.make n '-') w) in
  output_string !out "+-";
  output_string !out (String.concat "-+-" dashes);
  output_string !out "-+\n"

let print ~title ~header rows =
  output_char !out '\n';
  output_string !out ("== " ^ title ^ " ==\n");
  let w = widths header rows in
  rule w;
  print_row w header;
  rule w;
  List.iter (print_row w) rows;
  rule w;
  flush !out

let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.1fms" v
let yesno b = if b then "yes" else "no"
let intc = string_of_int
let wall label seconds = Printf.sprintf "%-28s %6.2f s wall" label seconds
