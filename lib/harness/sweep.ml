type aggregate = {
  runs : int;
  stabilized : int;
  stabilization_ms : Dstruct.Stats.t;
  elected_center : int;
  messages : Dstruct.Stats.t;
  max_susp_level : Dstruct.Stats.t;
  violations : int;
}

let run ?(pool = Parallel.Pool.sequential) ?horizon ?crashes ?check ~seeds
    ~config ~scenario_of () =
  (* Each seed's run is an independent simulation (own engine, RNG streams,
     event queue), so the runs fan out across the pool; the fold below walks
     the results in seed-list order, so every [Stats.add] happens in exactly
     the sequence the sequential code produced — aggregates are identical
     whatever the pool size. *)
  let results =
    Parallel.Pool.map pool
      (fun seed ->
        let scenario = scenario_of seed in
        let result =
          Run.run ?horizon ?crashes ?check ~config ~scenario ~seed ()
        in
        (result, Scenarios.Scenario.center_at scenario max_int))
      seeds
  in
  let agg =
    {
      runs = 0;
      stabilized = 0;
      stabilization_ms = Dstruct.Stats.create ();
      elected_center = 0;
      messages = Dstruct.Stats.create ();
      max_susp_level = Dstruct.Stats.create ();
      violations = 0;
    }
  in
  List.fold_left
    (fun agg (result, center) ->
      let stabilized = Option.is_some result.Run.stabilized_at in
      if stabilized then
        Dstruct.Stats.add agg.stabilization_ms (Run.stabilization_ms result);
      Dstruct.Stats.add agg.messages (float_of_int result.Run.messages_sent);
      Dstruct.Stats.add agg.max_susp_level
        (float_of_int result.Run.max_susp_level);
      {
        agg with
        runs = agg.runs + 1;
        stabilized = (agg.stabilized + if stabilized then 1 else 0);
        elected_center =
          (agg.elected_center
          + if stabilized && result.Run.final_leader = center then 1 else 0);
        violations =
          (agg.violations
          +
          match result.Run.checker with
          | Some report -> List.length report.Scenarios.Checker.violations
          | None -> 0);
      })
    agg results

let stabilized_cell agg = Printf.sprintf "%d/%d" agg.stabilized agg.runs

let latency_cell agg =
  if Dstruct.Stats.is_empty agg.stabilization_ms then "-"
  else
    Printf.sprintf "%.0f±%.0fms"
      (Dstruct.Stats.mean agg.stabilization_ms)
      (Dstruct.Stats.stddev agg.stabilization_ms)
