type aggregate = {
  runs : int;
  stabilized : int;
  stabilization_ms : Dstruct.Stats.t;
  elected_center : int;
  messages : Dstruct.Stats.t;
  max_susp_level : Dstruct.Stats.t;
  violations : int;
  digests : int64 list;
  suspicion_churn : Dstruct.Stats.t;
  timer_fires : Dstruct.Stats.t;
  re_elections : Dstruct.Stats.t;
}

let run ?(pool = Parallel.Pool.sequential) ?spec ~seeds ~env_of () =
  (* Each seed's run is an independent simulation (own engine, RNG streams,
     event queue — and its own obs sinks and fault injector), so the runs
     fan out across the pool; the fold below walks the results in seed-list
     order, so every [Stats.add] happens in exactly the sequence the
     sequential code produced — aggregates (and the digests list) are
     identical whatever the pool size. *)
  let results =
    Parallel.Pool.map pool
      (fun seed ->
        let env = env_of seed in
        let result = Run.run ?spec ~env ~seed () in
        (result, Scenarios.Env.center_at env max_int))
      seeds
  in
  let agg =
    {
      runs = 0;
      stabilized = 0;
      stabilization_ms = Dstruct.Stats.create ();
      elected_center = 0;
      messages = Dstruct.Stats.create ();
      max_susp_level = Dstruct.Stats.create ();
      violations = 0;
      digests = [];
      suspicion_churn = Dstruct.Stats.create ();
      timer_fires = Dstruct.Stats.create ();
      re_elections = Dstruct.Stats.create ();
    }
  in
  let agg =
    List.fold_left
      (fun agg (result, center) ->
        let stabilized = Option.is_some result.Run.stabilized_at in
        if stabilized then
          Dstruct.Stats.add agg.stabilization_ms (Run.stabilization_ms result);
        Dstruct.Stats.add agg.messages (float_of_int result.Run.messages_sent);
        Dstruct.Stats.add agg.max_susp_level
          (float_of_int result.Run.max_susp_level);
        Dstruct.Stats.add agg.re_elections
          (float_of_int result.Run.re_elections);
        (match result.Run.metrics with
        | Some m ->
            Dstruct.Stats.add agg.suspicion_churn
              (float_of_int (Obs.Metrics.suspicion_increments m));
            Dstruct.Stats.add agg.timer_fires
              (float_of_int (Obs.Metrics.timer_fires m))
        | None -> ());
        {
          agg with
          runs = agg.runs + 1;
          stabilized = (agg.stabilized + if stabilized then 1 else 0);
          elected_center =
            (agg.elected_center
            + if stabilized && result.Run.final_leader = center then 1 else 0);
          violations =
            (agg.violations
            +
            match result.Run.checker with
            | Some report -> List.length report.Scenarios.Checker.violations
            | None -> 0);
          digests =
            (match result.Run.digest with
            | Some d -> d :: agg.digests
            | None -> agg.digests);
        })
      agg results
  in
  { agg with digests = List.rev agg.digests }

let stabilized_cell agg = Printf.sprintf "%d/%d" agg.stabilized agg.runs

let latency_cell agg =
  if Dstruct.Stats.is_empty agg.stabilization_ms then "-"
  else
    Printf.sprintf "%.0f±%.0fms"
      (Dstruct.Stats.mean agg.stabilization_ms)
      (Dstruct.Stats.stddev agg.stabilization_ms)
