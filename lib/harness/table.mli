(** Plain-text table rendering for experiment output. *)

(** [print ~title ~header rows] renders an aligned ASCII table to the
    current output channel (stdout unless {!set_out}). *)
val print : title:string -> header:string list -> string list list -> unit

(** Redirect all subsequent {!print} output (a sharded experiment producer
    sends its tables nowhere — the merge step re-renders them). *)
val set_out : out_channel -> unit

(** Cell helpers. *)
val ms : float -> string
(** "123.4ms", or "-" for nan (never stabilized). *)

val yesno : bool -> string
val intc : int -> string

(** One per-row wall-clock line for stderr: machine time is
    nondeterministic, so it must never reach the (byte-diffed) stdout
    tables. *)
val wall : string -> float -> string
