(** Multi-seed replication: run the same configuration under several seeds
    and aggregate the outcomes, so experiment tables can report means and
    spreads instead of single draws. *)

type aggregate = {
  runs : int;
  stabilized : int;  (** how many runs stabilized *)
  stabilization_ms : Dstruct.Stats.t;  (** over the stabilized runs *)
  elected_center : int;  (** runs whose final leader was the (last) center *)
  messages : Dstruct.Stats.t;
  max_susp_level : Dstruct.Stats.t;
  violations : int;  (** total checker violations across runs *)
  digests : int64 list;
      (** per-run digests in seed-list order, when [~digest:true] *)
  suspicion_churn : Dstruct.Stats.t;
      (** per-run SUSPICION increments, when [~metrics:true] *)
  timer_fires : Dstruct.Stats.t;  (** per-run timer fires, ditto *)
}

(** [run ~seeds ~config ~scenario_of ...] replicates {!Run.run}. Both the
    engine seed and the scenario seed vary: [scenario_of seed] must build a
    fresh scenario (plans are stateful).

    [pool] (default {!Parallel.Pool.sequential}) fans the seeds out across
    domains; results are folded in seed-list order, so the aggregate —
    including [digests] — is identical for every pool size.

    [metrics]/[digest] (default false) thread through to {!Run.run}; each
    pooled run owns its own sinks, like its RNG. *)
val run :
  ?pool:Parallel.Pool.t ->
  ?horizon:Sim.Time.t ->
  ?crashes:(int * Sim.Time.t) list ->
  ?check:bool ->
  ?metrics:bool ->
  ?digest:bool ->
  seeds:int64 list ->
  config:Omega.Config.t ->
  scenario_of:(int64 -> Scenarios.Scenario.t) ->
  unit ->
  aggregate

(** "k/n ok, mean=… sd=…" cells for tables. *)
val stabilized_cell : aggregate -> string

val latency_cell : aggregate -> string
