(** Multi-seed replication: run the same configuration under several seeds
    and aggregate the outcomes, so experiment tables can report means and
    spreads instead of single draws. *)

type aggregate = {
  runs : int;
  stabilized : int;  (** how many runs stabilized *)
  stabilization_ms : Dstruct.Stats.t;  (** over the stabilized runs *)
  elected_center : int;  (** runs whose final leader was the (last) center *)
  messages : Dstruct.Stats.t;
  max_susp_level : Dstruct.Stats.t;
  violations : int;  (** total checker violations across runs *)
  digests : int64 list;
      (** per-run digests in seed-list order, when [spec.digest] *)
  suspicion_churn : Dstruct.Stats.t;
      (** per-run SUSPICION increments, when [spec.metrics] *)
  timer_fires : Dstruct.Stats.t;  (** per-run timer fires, ditto *)
  re_elections : Dstruct.Stats.t;  (** per-run agreed-leader changes *)
}

(** [run ~seeds ~env_of ()] replicates {!Run.run} under [spec] (default
    {!Run.Spec.default}). Both the engine seed and the environment vary:
    [env_of seed] picks the world for that seed — return a shared
    environment for pure engine-seed replication, or derive the scenario
    seed from [seed] to vary the adversary's plan too.

    [pool] (default {!Parallel.Pool.sequential}) fans the seeds out across
    domains; results are folded in seed-list order, so the aggregate —
    including [digests] — is identical for every pool size. Each pooled
    run owns its whole stack (engine, sinks, fault injector), like its
    RNG. *)
val run :
  ?pool:Parallel.Pool.t ->
  ?spec:Run.Spec.t ->
  seeds:int64 list ->
  env_of:(int64 -> Scenarios.Env.t) ->
  unit ->
  aggregate

(** "k/n ok, mean=… sd=…" cells for tables. *)
val stabilized_cell : aggregate -> string

val latency_cell : aggregate -> string
