(* Reassemble sharded experiment output (DESIGN.md §16).

   Usage: merge_tables SHARD_FILE...

   Each file comes from `experiments --shard i/k --shard-out FILE`. The
   headers must agree pairwise (same k, same experiment selection, same
   --quick/--metrics/--sched flags) and cover every index 1..k exactly
   once. The suite is then replayed with a Merge farm: no simulation
   runs — every row is looked up by its cell id — so the rendered stdout
   is byte-identical to the unsharded run of the same command. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then fail "usage: merge_tables SHARD_FILE...";
  let shards =
    List.map
      (fun p ->
        try Experiments.Suite.Shard.load p
        with e -> fail "%s: %s" p (Printexc.to_string e))
      paths
  in
  let first = List.hd shards in
  List.iter
    (fun (s : Experiments.Suite.Shard.file) ->
      if s.count <> first.count then
        fail "shard count mismatch: %d vs %d" s.count first.count;
      if s.ids <> first.ids then fail "shards ran different experiment sets";
      if s.quick <> first.quick then fail "shards mix --quick and full runs";
      if s.metrics <> first.metrics then fail "shards mix --metrics settings";
      if s.sched <> first.sched then fail "shards mix --sched backends";
      if s.topology <> first.topology then
        fail "shards mix --topology overrides")
    shards;
  let seen =
    List.sort Int.compare
      (List.map (fun (s : Experiments.Suite.Shard.file) -> s.index) shards)
  in
  if seen <> List.init first.count (fun i -> i + 1) then
    fail "incomplete shard set: need every index 1..%d exactly once"
      first.count;
  let table = Hashtbl.create 256 in
  List.iter
    (fun (s : Experiments.Suite.Shard.file) ->
      List.iter (fun (id, rows) -> Hashtbl.replace table id rows) s.cells)
    shards;
  let obs =
    {
      Experiments.Suite.no_obs with
      metrics = first.metrics;
      sched = (if first.sched = "heap" then `Heap else `Wheel);
      topology =
        (if first.topology = "-" then None
         else Net.Topology.kind_of_string first.topology);
      farm = { Experiments.Suite.mode = Merge table; next_cell = 0 };
    }
  in
  let selected =
    List.filter
      (fun (id, _, _) -> List.mem id first.ids)
      Experiments.Suite.all
  in
  (* Nothing executes under Merge; a sequential pool is just the cheapest
     way to satisfy the signature. *)
  Parallel.Pool.with_pool ~jobs:1 (fun pool ->
      List.iter (fun (_, _, f) -> f ~pool ~quick:first.quick ~obs) selected)
