(* Compare two bench/main.exe --json dumps (see BENCH_pr2.json for the
   format) and report per-benchmark drift of the monotonic-clock and
   minor-allocated estimates.

   Usage:
     bench_diff OLD.json NEW.json [--tolerance PCT] [--strict]
                [--alloc-tolerance PCT] [--strict-alloc PREFIX]

   Prints one line per benchmark; clock estimates drifting beyond
   --tolerance (default 25%) and allocation estimates drifting beyond
   --alloc-tolerance (default 5% — allocation counts are near-deterministic,
   unlike wall time) are flagged. Exit status is 0 unless:

   - --strict is given and a clock estimate drifted, or
   - --strict-alloc PREFIX is given and some benchmark whose name starts
     with PREFIX *increased* its minor-allocated beyond the allocation
     tolerance, or
   - --strict-alloc PREFIX is given and a benchmark whose name starts with
     PREFIX exists in OLD but not NEW: a gated bench silently disappearing
     would un-gate the hot path it covered, so retiring one must be an
     explicit baseline change, not a quiet deletion.

   CI runs the clock comparison permissive (shared runners are noisy) but
   the allocation gate strict for micro:* — allocation on a fixed workload
   does not wobble with machine load, so a breach is a real regression of
   the zero-allocation hot path.

   Benchmarks present on only one side are reported as explicit
   "added"/"removed" lines; outside the gated prefix they never fail the
   comparison (new benches appear, old ones retire). *)

let tolerance = ref 25.0
let alloc_tolerance = ref 5.0
let strict = ref false
let strict_alloc_prefix = ref None

(* The dumps are produced by our own writer (bench/main.ml json_dump):
   objects one per line, ASCII names, plain number or null values — a full
   JSON parser would be dead weight, a line scanner is honest about what it
   accepts. *)
let parse_file path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       let find_string key =
         let pat = Printf.sprintf "\"%s\": \"" key in
         match String.index_opt line '{' with
         | None -> None
         | Some _ -> (
             let rec search from =
               if from + String.length pat > String.length line then None
               else if String.sub line from (String.length pat) = pat then
                 let start = from + String.length pat in
                 let stop = String.index_from line start '"' in
                 Some (String.sub line start (stop - start))
               else search (from + 1)
             in
             try search 0 with Not_found -> None)
       in
       let find_number key =
         let pat = Printf.sprintf "\"%s\": " key in
         let rec search from =
           if from + String.length pat > String.length line then None
           else if String.sub line from (String.length pat) = pat then begin
             let start = from + String.length pat in
             let stop = ref start in
             while
               !stop < String.length line
               && (match line.[!stop] with
                  | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
                  | _ -> false)
             do
               incr stop
             done;
             if !stop = start then None
             else float_of_string_opt (String.sub line start (!stop - start))
           end
           else search (from + 1)
         in
         search 0
       in
       match (find_string "name", find_number "monotonic-clock") with
       | Some name, Some ns ->
           rows := (name, (ns, find_number "minor-allocated")) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--strict" :: rest ->
        strict := true;
        parse_args rest
    | "--tolerance" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some p when p > 0. -> tolerance := p
        | _ ->
            prerr_endline "bench_diff: --tolerance expects a positive number";
            exit 2);
        parse_args rest
    | "--alloc-tolerance" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some p when p > 0. -> alloc_tolerance := p
        | _ ->
            prerr_endline
              "bench_diff: --alloc-tolerance expects a positive number";
            exit 2);
        parse_args rest
    | "--strict-alloc" :: prefix :: rest ->
        strict_alloc_prefix := Some prefix;
        parse_args rest
    | arg :: rest ->
        positional := arg :: !positional;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !positional with
    | [ o; n ] -> (o, n)
    | _ ->
        prerr_endline
          "usage: bench_diff OLD.json NEW.json [--tolerance PCT] [--strict] \
           [--alloc-tolerance PCT] [--strict-alloc PREFIX]";
        exit 2
  in
  let old_rows = parse_file old_path in
  let new_rows = parse_file new_path in
  let drifted = ref 0 in
  let alloc_regressed = ref 0 in
  let pct_of old_v new_v = (new_v -. old_v) /. old_v *. 100. in
  Printf.printf "%-32s %12s %12s %9s %12s %12s %9s\n" "benchmark" "old ns"
    "new ns" "drift" "old words" "new words" "drift";
  Printf.printf "%s\n" (String.make 104 '-');
  List.iter
    (fun (name, (new_ns, new_alloc)) ->
      match List.assoc_opt name old_rows with
      | None ->
          Printf.printf "%-32s %12s %12.0f %9s %12s %12s %9s\n" name "-"
            new_ns "added" "-"
            (match new_alloc with Some w -> Printf.sprintf "%.0f" w | None -> "-")
            ""
      | Some (old_ns, old_alloc) ->
          let clock_pct, clock_flag =
            if old_ns = 0. then (0., " ?")
            else begin
              let p = pct_of old_ns new_ns in
              if Float.abs p > !tolerance then begin
                incr drifted;
                (p, " <-- clock")
              end
              else (p, "")
            end
          in
          let alloc_cells, alloc_flag =
            match (old_alloc, new_alloc) with
            | Some ow, Some nw when ow > 0. ->
                let p = pct_of ow nw in
                let gate_applies =
                  match !strict_alloc_prefix with
                  | Some prefix -> starts_with ~prefix name
                  | None -> false
                in
                let flag =
                  if p > !alloc_tolerance then begin
                    if gate_applies then incr alloc_regressed;
                    if gate_applies then " <-- ALLOC REGRESSION"
                    else " <-- alloc"
                  end
                  else ""
                in
                (Printf.sprintf "%12.0f %12.0f %+8.1f%%" ow nw p, flag)
            | Some ow, Some nw ->
                (Printf.sprintf "%12.0f %12.0f %9s" ow nw "?", "")
            | _ -> (Printf.sprintf "%12s %12s %9s" "-" "-" "", "")
          in
          Printf.printf "%-32s %12.0f %12.0f %+8.1f%% %s%s%s\n" name old_ns
            new_ns clock_pct alloc_cells clock_flag alloc_flag)
    new_rows;
  let gated_removed = ref 0 in
  List.iter
    (fun (name, (old_ns, _)) ->
      if not (List.mem_assoc name new_rows) then begin
        let gated =
          match !strict_alloc_prefix with
          | Some prefix -> starts_with ~prefix name
          | None -> false
        in
        if gated then incr gated_removed;
        Printf.printf "%-32s %12.0f %12s %9s%s\n" name old_ns "-" "removed"
          (if gated then " <-- GATED BENCH REMOVED" else "")
      end)
    old_rows;
  let failing = ref false in
  if !drifted > 0 then begin
    Printf.printf "\n%d clock estimate(s) drifted beyond +/-%.0f%%%s\n"
      !drifted !tolerance
      (if !strict then "" else " (informational; pass --strict to fail)");
    if !strict then failing := true
  end
  else Printf.printf "\nAll shared clock estimates within +/-%.0f%%\n" !tolerance;
  (match !strict_alloc_prefix with
  | Some prefix ->
      if !alloc_regressed > 0 then begin
        Printf.printf
          "%d %s* benchmark(s) allocate more than +%.0f%% over baseline\n"
          !alloc_regressed prefix !alloc_tolerance;
        failing := true
      end
      else
        Printf.printf "No %s* allocation regressions beyond +%.0f%%\n" prefix
          !alloc_tolerance;
      if !gated_removed > 0 then begin
        Printf.printf
          "%d gated %s* benchmark(s) removed from the baseline — retire \
           them explicitly by regenerating the committed baseline\n"
          !gated_removed prefix;
        failing := true
      end
  | None -> ());
  if !failing then exit 1
