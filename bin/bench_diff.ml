(* Compare two bench/main.exe --json dumps (see BENCH_pr1.json for the
   format) and report per-benchmark drift of the monotonic-clock estimate.

   Usage:
     bench_diff OLD.json NEW.json [--tolerance PCT] [--strict]

   Prints one line per benchmark; those drifting beyond the tolerance
   (default 25%) are flagged. Exit status is 0 unless --strict is given and
   something drifted — CI runs it permissive, so noisy runners warn instead
   of blocking merges. Benchmarks present on only one side are reported but
   never fail the comparison (new benches appear, old ones retire). *)

let tolerance = ref 25.0
let strict = ref false

(* The dumps are produced by our own writer (bench/main.ml json_dump):
   objects one per line, ASCII names, plain number or null values — a full
   JSON parser would be dead weight, a line scanner is honest about what it
   accepts. *)
let parse_file path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       let find_string key =
         let pat = Printf.sprintf "\"%s\": \"" key in
         match String.index_opt line '{' with
         | None -> None
         | Some _ -> (
             let rec search from =
               if from + String.length pat > String.length line then None
               else if String.sub line from (String.length pat) = pat then
                 let start = from + String.length pat in
                 let stop = String.index_from line start '"' in
                 Some (String.sub line start (stop - start))
               else search (from + 1)
             in
             try search 0 with Not_found -> None)
       in
       let find_number key =
         let pat = Printf.sprintf "\"%s\": " key in
         let rec search from =
           if from + String.length pat > String.length line then None
           else if String.sub line from (String.length pat) = pat then begin
             let start = from + String.length pat in
             let stop = ref start in
             while
               !stop < String.length line
               && (match line.[!stop] with
                  | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
                  | _ -> false)
             do
               incr stop
             done;
             if !stop = start then None
             else float_of_string_opt (String.sub line start (!stop - start))
           end
           else search (from + 1)
         in
         search 0
       in
       match (find_string "name", find_number "monotonic-clock") with
       | Some name, Some ns -> rows := (name, ns) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let () =
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--strict" :: rest ->
        strict := true;
        parse_args rest
    | "--tolerance" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some p when p > 0. -> tolerance := p
        | _ ->
            prerr_endline "bench_diff: --tolerance expects a positive number";
            exit 2);
        parse_args rest
    | arg :: rest ->
        positional := arg :: !positional;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !positional with
    | [ o; n ] -> (o, n)
    | _ ->
        prerr_endline
          "usage: bench_diff OLD.json NEW.json [--tolerance PCT] [--strict]";
        exit 2
  in
  let old_rows = parse_file old_path in
  let new_rows = parse_file new_path in
  let drifted = ref 0 in
  Printf.printf "%-32s %12s %12s %9s\n" "benchmark" "old" "new" "drift";
  Printf.printf "%s\n" (String.make 68 '-');
  List.iter
    (fun (name, new_ns) ->
      match List.assoc_opt name old_rows with
      | None -> Printf.printf "%-32s %12s %12.0f %9s\n" name "-" new_ns "new"
      | Some old_ns when old_ns = 0. ->
          Printf.printf "%-32s %12.0f %12.0f %9s\n" name old_ns new_ns "?"
      | Some old_ns ->
          let pct = (new_ns -. old_ns) /. old_ns *. 100. in
          let flag =
            if Float.abs pct > !tolerance then begin
              incr drifted;
              "  <-- beyond tolerance"
            end
            else ""
          in
          Printf.printf "%-32s %12.0f %12.0f %+8.1f%%%s\n" name old_ns new_ns
            pct flag)
    new_rows;
  List.iter
    (fun (name, old_ns) ->
      if not (List.mem_assoc name new_rows) then
        Printf.printf "%-32s %12.0f %12s %9s\n" name old_ns "-" "gone")
    old_rows;
  if !drifted > 0 then begin
    Printf.printf "\n%d benchmark(s) drifted beyond +/-%.0f%%%s\n" !drifted
      !tolerance
      (if !strict then "" else " (informational; pass --strict to fail)");
    if !strict then exit 1
  end
  else Printf.printf "\nAll shared benchmarks within +/-%.0f%%\n" !tolerance
