(* Command-line driver for the experiment suite (EXPERIMENTS.md).

   Usage:
     experiments               run every experiment (full size)
     experiments --quick       run every experiment (reduced size)
     experiments --jobs 4      fan runs out over 4 domains (same output)
     experiments --metrics     append per-run digest columns to the tables
     experiments --sched heap  run every simulation on the heap scheduler
     experiments --trace f.jsonl  stream every run's typed events to f.jsonl
     experiments --checkpoint-dir D --checkpoint-every 5
                               persist resumable per-row snapshots into D
     experiments --shard 1/2 --shard-out a.shard
                               execute half the rows; merge_tables reassembles
     experiments e2 e4         run selected experiments
     experiments --list        list experiments *)

let list_term =
  Cmdliner.Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let quick_term =
  Cmdliner.Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Run reduced-size versions (shorter horizons, fewer points).")

let jobs_term =
  Cmdliner.Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run simulations on $(docv) domains (default: the recommended \
           domain count of this machine). Tables are byte-identical for \
           every N; $(docv)=1 is the plain sequential path.")

let intra_jobs_term =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "intra-jobs" ] ~docv:"K"
        ~doc:
          "Shard every simulation over $(docv) domains with \
           conservative-window execution (DESIGN.md §18) — parallelism \
           $(i,inside) a run, orthogonal to --jobs' parallelism between \
           runs. Tables are byte-identical for every $(docv); $(docv)=1 \
           is the plain sequential path. Incompatible with --trace and \
           --checkpoint-dir (both need the run on one engine).")

let metrics_term =
  Cmdliner.Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Attach per-run metrics and append a digest column (FNV fold over \
           the run's full event stream) to each Run-backed table. Digests \
           are identical for every --jobs N: the determinism oracle the CI \
           gate diffs.")

let trace_term =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream every run's typed events to $(docv) as JSON lines, each \
           run prefixed by a note naming it. Forces --jobs 1 (the writer is \
           shared across runs).")

let sched_term =
  Cmdliner.Arg.(
    value
    & opt (enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
    & info [ "sched" ] ~docv:"BACKEND"
        ~doc:
          "Engine scheduler backend for every run: $(b,wheel) (the default            timing wheel) or $(b,heap) (the binary-heap A/B reference). Both            print byte-identical tables — the CI determinism gate diffs            them.")

let topology_conv =
  let parse s =
    match Net.Topology.kind_of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg "expected complete, ring, grid, rgg, fattree, or wan")
  in
  let print ppf k = Format.pp_print_string ppf (Net.Topology.kind_to_string k) in
  Cmdliner.Arg.conv (parse, print)

let topology_term =
  Cmdliner.Arg.(
    value
    & opt (some topology_conv) None
    & info [ "topology" ] ~docv:"KIND"
        ~doc:
          "Run every simulation over this network graph instead of the \
           paper's complete one: $(b,ring), $(b,grid), $(b,rgg), \
           $(b,fattree), $(b,wan) (or $(b,complete), the default). Rows \
           that pick their own topology (E13) keep it. Routed runs produce \
           different (still deterministic) tables than the default.")

let checkpoint_dir_term =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Persist a resumable snapshot of every in-flight run into $(docv) \
           (created if missing), refreshed every --checkpoint-every \
           simulated seconds and deleted when the row completes. A rerun of \
           the same command resumes each interrupted row from its last \
           snapshot; the tables stay byte-identical to an uninterrupted \
           run. Snapshots only load in the binary that wrote them.")

let checkpoint_every_term =
  Cmdliner.Arg.(
    value & opt float 5.
    & info [ "checkpoint-every" ] ~docv:"SIM_S"
        ~doc:
          "Simulated seconds between checkpoint snapshots (default 5). Only \
           meaningful with --checkpoint-dir.")

let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ i; k ] -> (
        match (int_of_string_opt i, int_of_string_opt k) with
        | Some i, Some k when k >= 1 && i >= 1 && i <= k -> Ok (i, k)
        | _ -> Error (`Msg "expected I/K with 1 <= I <= K"))
    | _ -> Error (`Msg "expected I/K, e.g. --shard 1/2")
  in
  let print ppf (i, k) = Format.fprintf ppf "%d/%d" i k in
  Cmdliner.Arg.conv (parse, print)

let shard_term =
  Cmdliner.Arg.(
    value
    & opt (some shard_conv) None
    & info [ "shard" ] ~docv:"I/K"
        ~doc:
          "Execute only shard $(docv) of the sweep (cells interleaved by \
           declaration id, so each table's heavy tail spreads across \
           shards). Prints nothing; the rows go to --shard-out, and \
           $(b,merge_tables) reassembles the K files into the exact \
           unsharded output.")

let shard_out_term =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "shard-out" ] ~docv:"FILE"
        ~doc:"Where --shard writes its rows (required with --shard).")

let ids_term =
  Cmdliner.Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiment ids to run (e1..e13). Default: all.")

let run list quick jobs intra_jobs metrics trace sched topology checkpoint_dir
    checkpoint_every shard shard_out ids =
  if list then begin
    List.iter
      (fun (id, doc, _) -> Printf.printf "%-4s %s\n" id doc)
      Experiments.Suite.all;
    `Ok ()
  end
  else if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else if intra_jobs < 1 then `Error (false, "--intra-jobs must be >= 1")
  else if intra_jobs > 1 && Option.is_some trace then
    `Error (false, "--intra-jobs needs the run on one engine; drop --trace")
  else if intra_jobs > 1 && Option.is_some checkpoint_dir then
    `Error
      (false, "--intra-jobs needs the run on one engine; drop --checkpoint-dir")
  else if Option.is_some trace && Option.is_some shard then
    `Error (false, "--trace and --shard are mutually exclusive")
  else if Option.is_some trace && Option.is_some checkpoint_dir then
    `Error (false, "--trace disables --checkpoint-dir (pick one)")
  else if Option.is_some shard && Option.is_none shard_out then
    `Error (false, "--shard requires --shard-out FILE")
  else if checkpoint_every <= 0. then
    `Error (false, "--checkpoint-every must be > 0")
  else begin
    let selected =
      match ids with
      | [] -> Experiments.Suite.all
      | ids ->
          List.filter (fun (id, _, _) -> List.mem id ids) Experiments.Suite.all
    in
    match (selected, ids) with
    | [], _ :: _ ->
        `Error (false, "unknown experiment id; try --list")
    | selected, _ ->
        let oc = Option.map open_out trace in
        let jsonl = Option.map Obs.Jsonl.create oc in
        let checkpoint =
          Option.map
            (fun dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              (dir, Sim.Time.of_ms (int_of_float (checkpoint_every *. 1000.))))
            checkpoint_dir
        in
        let farm =
          match shard with
          | None -> Experiments.Suite.local_farm ()
          | Some (index, count) ->
              (* A shard's stdout contract is "nothing": the rows travel in
                 the shard file and merge_tables re-renders the tables. *)
              Harness.Table.set_out (open_out Filename.null);
              {
                Experiments.Suite.mode =
                  Shard { index; count; recorded = ref [] };
                next_cell = 0;
              }
        in
        let obs =
          {
            Experiments.Suite.trace = jsonl;
            metrics;
            sched;
            checkpoint;
            farm;
            topology;
            intra = intra_jobs;
          }
        in
        (* The JSONL writer is one shared out-channel: events from
           concurrent runs would interleave, so tracing pins the run farm
           to a single domain. *)
        let jobs = if Option.is_some jsonl then 1 else jobs in
        Parallel.Pool.with_pool ~jobs (fun pool ->
            List.iter (fun (_, _, f) -> f ~pool ~quick ~obs) selected);
        Option.iter Obs.Jsonl.close jsonl;
        (match (farm.Experiments.Suite.mode, shard_out) with
        | Shard { index; count; recorded }, Some path ->
            Experiments.Suite.Shard.save ~path ~index ~count
              ~ids:(List.map (fun (id, _, _) -> id) selected)
              ~quick ~metrics
              ~sched:(match sched with `Wheel -> "wheel" | `Heap -> "heap")
              ~topology:
                (match topology with
                | Some k -> Net.Topology.kind_to_string k
                | None -> "-")
              ~cells:!recorded
        | _ -> ());
        `Ok ()
  end

let cmd =
  let doc =
    "Reproduce the evaluation of 'From an intermittent rotating star to a \
     leader' (Fernandez & Raynal)."
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "experiments" ~doc)
    Cmdliner.Term.(
      ret
        (const run $ list_term $ quick_term $ jobs_term $ intra_jobs_term
       $ metrics_term $ trace_term $ sched_term $ topology_term
       $ checkpoint_dir_term $ checkpoint_every_term $ shard_term
       $ shard_out_term $ ids_term))

let () = exit (Cmdliner.Cmd.eval cmd)
