(* Command-line driver for the experiment suite (EXPERIMENTS.md).

   Usage:
     experiments               run every experiment (full size)
     experiments --quick       run every experiment (reduced size)
     experiments --jobs 4      fan runs out over 4 domains (same output)
     experiments --metrics     append per-run digest columns to the tables
     experiments --sched heap  run every simulation on the heap scheduler
     experiments --trace f.jsonl  stream every run's typed events to f.jsonl
     experiments e2 e4         run selected experiments
     experiments --list        list experiments *)

let list_term =
  Cmdliner.Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let quick_term =
  Cmdliner.Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Run reduced-size versions (shorter horizons, fewer points).")

let jobs_term =
  Cmdliner.Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run simulations on $(docv) domains (default: the recommended \
           domain count of this machine). Tables are byte-identical for \
           every N; $(docv)=1 is the plain sequential path.")

let metrics_term =
  Cmdliner.Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Attach per-run metrics and append a digest column (FNV fold over \
           the run's full event stream) to each Run-backed table. Digests \
           are identical for every --jobs N: the determinism oracle the CI \
           gate diffs.")

let trace_term =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream every run's typed events to $(docv) as JSON lines, each \
           run prefixed by a note naming it. Forces --jobs 1 (the writer is \
           shared across runs).")

let sched_term =
  Cmdliner.Arg.(
    value
    & opt (enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
    & info [ "sched" ] ~docv:"BACKEND"
        ~doc:
          "Engine scheduler backend for every run: $(b,wheel) (the default            timing wheel) or $(b,heap) (the binary-heap A/B reference). Both            print byte-identical tables — the CI determinism gate diffs            them.")

let ids_term =
  Cmdliner.Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiment ids to run (e1..e12). Default: all.")

let run list quick jobs metrics trace sched ids =
  if list then begin
    List.iter
      (fun (id, doc, _) -> Printf.printf "%-4s %s\n" id doc)
      Experiments.Suite.all;
    `Ok ()
  end
  else if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else begin
    let selected =
      match ids with
      | [] -> Experiments.Suite.all
      | ids ->
          List.filter (fun (id, _, _) -> List.mem id ids) Experiments.Suite.all
    in
    match (selected, ids) with
    | [], _ :: _ ->
        `Error (false, "unknown experiment id; try --list")
    | selected, _ ->
        let oc = Option.map open_out trace in
        let jsonl = Option.map Obs.Jsonl.create oc in
        let obs = { Experiments.Suite.trace = jsonl; metrics; sched } in
        (* The JSONL writer is one shared out-channel: events from
           concurrent runs would interleave, so tracing pins the run farm
           to a single domain. *)
        let jobs = if Option.is_some jsonl then 1 else jobs in
        Parallel.Pool.with_pool ~jobs (fun pool ->
            List.iter (fun (_, _, f) -> f ~pool ~quick ~obs) selected);
        Option.iter Obs.Jsonl.close jsonl;
        `Ok ()
  end

let cmd =
  let doc =
    "Reproduce the evaluation of 'From an intermittent rotating star to a \
     leader' (Fernandez & Raynal)."
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "experiments" ~doc)
    Cmdliner.Term.(
      ret
        (const run $ list_term $ quick_term $ jobs_term $ metrics_term
       $ trace_term $ sched_term $ ids_term))

let () = exit (Cmdliner.Cmd.eval cmd)
